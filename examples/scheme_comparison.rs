//! Compare every scheme (and the OBF baseline) on one network: response
//! time, space, and PIR fetch counts — a miniature of the paper's Table 3.
//!
//! ```text
//! cargo run --release --example scheme_comparison
//! ```

use privpath::core::config::BuildConfig;
use privpath::core::engine::{Engine, SchemeKind};
use privpath::graph::gen::{road_like, RoadGenConfig};
use privpath::pir::Meter;

fn main() {
    let net = road_like(&RoadGenConfig {
        nodes: 3_000,
        seed: 5,
        ..Default::default()
    });
    let queries: Vec<(u32, u32)> = (0..25u32)
        .map(|k| ((k * 997) % 3_000, (k * 331 + 13) % 3_000))
        .filter(|(s, t)| s != t)
        .collect();

    println!(
        "{:<6} {:>12} {:>12} {:>10} {:>9} {:>8}",
        "scheme", "response (s)", "space (MB)", "fetches", "rounds", "regions"
    );
    for kind in [
        SchemeKind::Af,
        SchemeKind::Lm,
        SchemeKind::Ci,
        SchemeKind::Hy,
        SchemeKind::PiStar,
        SchemeKind::Pi,
    ] {
        let cfg = BuildConfig::default();
        let mut engine = match Engine::build(&net, kind, &cfg) {
            Ok(e) => e,
            Err(e) => {
                println!("{:<6} inapplicable: {e}", kind.name());
                continue;
            }
        };
        let mut total = Meter::new();
        for &(s, t) in &queries {
            let out = engine.query_nodes(&net, s, t).expect("query");
            total.add(&out.meter);
        }
        let avg = total.scale_down(queries.len() as u64);
        println!(
            "{:<6} {:>12.1} {:>12.2} {:>10} {:>9} {:>8}",
            kind.name(),
            avg.response_time_s(),
            engine.db_bytes() as f64 / 1e6,
            avg.total_fetches(),
            avg.rounds,
            engine.stats().regions
        );
    }

    // OBF for context: weak privacy (candidate sets leak), no PIR — but the
    // same unified build/query API as every other scheme.
    for decoys in [20usize, 60] {
        let cfg = BuildConfig {
            obf_decoys: decoys,
            ..Default::default()
        };
        let mut engine = Engine::build(&net, SchemeKind::Obf, &cfg).expect("build");
        let mut total = Meter::new();
        for &(s, t) in &queries {
            total.add(&engine.query_nodes(&net, s, t).expect("query").meter);
        }
        let avg = total.scale_down(queries.len() as u64);
        println!(
            "{:<6} {:>12.1} {:>12} {:>10} {:>9} {:>8}",
            format!("OBF{decoys}"),
            avg.response_time_s(),
            "-",
            "-",
            avg.rounds,
            "-"
        );
    }
    println!("\n(OBF rows are the obfuscation baseline of §7.3 — it reveals the");
    println!(" candidate source/destination sets and is shown for context only.)");
}
