//! Adversary's-eye view: what does the LBS actually see, and what happens if
//! it misbehaves?
//!
//! Part 1 runs many different queries and audits the observable traces
//! (Theorem 1). Part 2 replaces the PIR backend with a tampering one and
//! shows the client detecting the corruption through page checksums — the
//! extension beyond the paper's honest-but-curious model (DESIGN.md §7).
//!
//! ```text
//! cargo run --release --example adversary_audit
//! ```

use privpath::core::audit::assert_indistinguishable;
use privpath::core::config::BuildConfig;
use privpath::core::engine::{Engine, SchemeKind};
use privpath::core::CoreError;
use privpath::graph::gen::{road_like, RoadGenConfig};
use privpath::pir::PirMode;

fn main() {
    let net = road_like(&RoadGenConfig {
        nodes: 1_000,
        seed: 31,
        ..Default::default()
    });

    // ---- Part 1: indistinguishability audit across many queries ----
    let mut engine =
        Engine::build(&net, SchemeKind::Ci, &BuildConfig::default()).expect("build CI");
    let mut traces = Vec::new();
    let n = net.num_nodes() as u32;
    for k in 0..30u32 {
        let (s, t) = ((k * 131 + 3) % n, (k * 577 + 71) % n);
        if s == t {
            continue;
        }
        let out = engine.query_nodes(&net, s, t).expect("query");
        traces.push(out.trace);
    }
    println!("adversary view of every query: {}", traces[0].summary());
    match assert_indistinguishable(&traces) {
        Ok(()) => println!(
            "audit: {} queries, all pairwise indistinguishable ✓\n",
            traces.len()
        ),
        Err(e) => panic!("PRIVACY BUG: {e}"),
    }

    // ---- Part 2: a tampering server is caught ----
    // Corrupt the 3rd PIR fetch the server performs.
    let cfg = BuildConfig {
        pir_mode: PirMode::Faulty {
            corrupt_fetches: vec![2],
        },
        ..Default::default()
    };
    let mut bad_engine = Engine::build(&net, SchemeKind::Ci, &cfg).expect("build");
    match bad_engine.query_nodes(&net, 1, n - 2) {
        Err(CoreError::Storage(privpath::storage::StorageError::ChecksumMismatch { .. })) => {
            println!("tampering server: client detected page corruption via CRC-32 ✓");
        }
        Err(e) => println!("tampering server: rejected with: {e}"),
        Ok(_) => panic!("corruption went UNDETECTED — checksum bug"),
    }
}
