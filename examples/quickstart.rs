//! Quickstart: build a private shortest-path database (Concise Index) over a
//! synthetic road network and answer one query without leaking anything to
//! the server.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use privpath::core::config::BuildConfig;
use privpath::core::engine::{Engine, SchemeKind};
use privpath::graph::gen::{road_like, RoadGenConfig};

fn main() {
    // A ~2,000-node road-like network (deterministic for the seed).
    let net = road_like(&RoadGenConfig {
        nodes: 2_000,
        seed: 7,
        ..Default::default()
    });
    println!(
        "network: {} nodes, {} road segments",
        net.num_nodes(),
        net.num_arcs() / 2
    );

    // Build the CI database: packed KD-tree partitioning, border-node
    // pre-computation, the four files Fh/Fl/Fi/Fd, and a fixed query plan.
    let cfg = BuildConfig::default();
    let mut engine = Engine::build(&net, SchemeKind::Ci, &cfg).expect("build CI");
    println!(
        "database: {:.2} MB across regions={} (m = {})",
        engine.db_bytes() as f64 / 1e6,
        engine.stats().regions,
        engine.stats().m
    );
    println!(
        "fixed plan: {} rounds, {} PIR fetches per query",
        engine.plan().num_rounds(),
        engine.plan().total_fetches()
    );

    // Query between two far-apart points. The client sends only PIR page
    // requests; the server learns nothing about s, t, or the path.
    let s = net.node_point(0);
    let t = net.node_point((net.num_nodes() - 1) as u32);
    let out = engine.query(s, t).expect("query");

    println!(
        "\nanswer: cost = {:?}, {} hops",
        out.answer.cost,
        out.answer.path_nodes.len().saturating_sub(1)
    );
    println!(
        "simulated response time: {:.1} s (PIR {:.1} s + comm {:.1} s + client {:.3} s)",
        out.meter.response_time_s(),
        out.meter.pir.total_s(),
        out.meter.comm_s,
        out.meter.client_s
    );
    println!("adversary view: {}", out.trace.summary());
    println!("\nRun a second, different query and compare the view:");
    let out2 = engine
        .query(net.node_point(17), net.node_point(18))
        .expect("query");
    println!("adversary view: {}", out2.trace.summary());
    assert_eq!(
        out.trace, out2.trace,
        "Theorem 1: queries must be indistinguishable"
    );
    println!("-> identical: the LBS cannot tell the two queries apart.");
}
