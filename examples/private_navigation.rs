//! Private navigation scenario — the paper's motivating workload.
//!
//! A client repeatedly asks for driving directions between sensitive places
//! (home, clinic, workplace). With a plain LBS every query reveals position
//! and destination; here the queries run over the PI scheme with a
//! *functional* oblivious backend, so even the physical page-access pattern
//! at the server is query-independent.
//!
//! ```text
//! cargo run --release --example private_navigation
//! ```

use privpath::core::audit::assert_indistinguishable;
use privpath::core::config::BuildConfig;
use privpath::core::engine::{Engine, SchemeKind};
use privpath::graph::gen::{road_like, RoadGenConfig};
use privpath::graph::types::Point;
use privpath::pir::PirMode;

fn main() {
    // The "city": a 1,500-node road network.
    let net = road_like(&RoadGenConfig {
        nodes: 1_500,
        seed: 99,
        ..Default::default()
    });
    let (min, max) = net.bounding_box().expect("non-empty");

    // Sensitive places, expressed as Euclidean coordinates (clients never
    // know node or region identifiers — §5.1 footnote 3).
    let home = Point::new(min.x + (max.x - min.x) / 10, min.y + (max.y - min.y) / 10);
    let clinic = Point::new(max.x - (max.x - min.x) / 8, max.y - (max.y - min.y) / 3);
    let office = Point::new((min.x + max.x) / 2, (min.y + max.y) / 2);
    let pharmacy = Point::new(min.x + (max.x - min.x) / 3, max.y - (max.y - min.y) / 12);

    // PI database with the square-root-ORAM-style functional backend: the
    // server's page reads are real *and* oblivious.
    let cfg = BuildConfig {
        pir_mode: PirMode::Shuffled { seed: 2024 },
        ..Default::default()
    };
    let mut engine = Engine::build(&net, SchemeKind::Pi, &cfg).expect("build PI");
    println!(
        "PI database ready: {:.1} MB, plan = {} PIR fetches/query\n",
        engine.db_bytes() as f64 / 1e6,
        engine.plan().total_fetches()
    );

    let trips = [
        ("home -> clinic", home, clinic),
        ("clinic -> pharmacy", clinic, pharmacy),
        ("pharmacy -> home", pharmacy, home),
        ("home -> office", home, office),
        ("office -> home (evening)", office, home),
    ];

    let mut traces = Vec::new();
    for (label, s, t) in trips {
        let out = engine.query(s, t).expect("query");
        println!(
            "{label:<26} cost {:>8}  hops {:>4}  response {:>6.1} s  view {}",
            out.answer
                .cost
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into()),
            out.answer.path_nodes.len().saturating_sub(1),
            out.meter.response_time_s(),
            out.trace.summary()
        );
        traces.push(out.trace);
    }

    assert_indistinguishable(&traces).expect("all trips must look identical to the LBS");
    println!("\nAll five trips are indistinguishable at the server — it learns only");
    println!("that five queries happened, not where from, where to, or how long.");
}
