//! Small, fast, non-cryptographic generators.

use crate::{Rng, SeedableRng};

/// xoshiro256++ generator — the algorithm behind the real `SmallRng` on
/// 64-bit platforms. Not cryptographically secure.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SmallRng { s }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
