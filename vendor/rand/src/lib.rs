//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the tiny slice of `rand` it actually uses: the [`Rng`]
//! and [`SeedableRng`] traits, integer `gen_range` over `Range` /
//! `RangeInclusive`, and [`rngs::SmallRng`] (xoshiro256++, seeded via
//! SplitMix64 — the same construction the real `SmallRng` uses on 64-bit
//! targets). Determinism for a given seed is the only contract the
//! reproduction relies on; no cryptographic claims are made.

pub mod rngs;

pub use rngs::SmallRng;

/// Seedable random generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random-value interface (subset: raw words + `gen_range`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Maps a random word into `[0, span)` (widening-multiply reduction; the
/// ≤ 2⁻⁶⁴ bias is irrelevant for simulation workloads).
fn reduce(word: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: usize = rng.gen_range(0..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _: u32 = rng.gen_range(5..5);
    }
}
