//! Minimal read-only file mappings without libc.
//!
//! The build environment has no registry access, so this vendored shim
//! provides the one primitive the storage layer's `MmapFile` driver needs:
//! map a byte window of a file read-only, expose it as a `&[u8]`, unmap on
//! drop. On Linux x86_64/aarch64 it issues the `mmap`/`munmap` syscalls
//! directly via inline assembly; everywhere else [`Mapping::map`] returns
//! `None` and callers fall back to buffered reads (the driver contract is
//! that the choice is invisible to observable behavior).

/// A read-only mapping of a byte window of a file.
///
/// The window need not be page-aligned: the mapping internally starts at an
/// aligned offset at or before the requested one and [`Mapping::as_slice`]
/// skips the leading slack. The mapped file must not shrink below the end of
/// the window while the mapping is alive (mapped files in this workspace are
/// immutable once served).
pub struct Mapping {
    ptr: *mut u8,
    map_len: usize,
    delta: usize,
    len: usize,
}

// The mapping is read-only and the backing file immutable; sharing the
// raw pointer across threads is safe.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `len` bytes of `file` starting at byte `offset`, read-only.
    ///
    /// Returns `None` when mapping is unsupported on this target or the
    /// kernel refuses — callers must treat that as "use buffered reads",
    /// not as an error. The caller is responsible for having validated that
    /// `offset + len` does not run past the end of the file (reading a
    /// mapping past EOF faults instead of erroring).
    pub fn map(file: &std::fs::File, offset: u64, len: usize) -> Option<Mapping> {
        if len == 0 {
            return Some(Mapping {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                map_len: 0,
                delta: 0,
                len: 0,
            });
        }
        // Align the file offset down to 64 KiB: a multiple of every page
        // size Linux ships (4K/16K/64K), so no runtime page-size probe is
        // needed.
        const ALIGN: u64 = 64 * 1024;
        let base = offset - (offset % ALIGN);
        let delta = (offset - base) as usize;
        let map_len = len.checked_add(delta)?;
        let ptr = imp::mmap_readonly(file, base, map_len)?;
        Some(Mapping {
            ptr,
            map_len,
            delta,
            len,
        })
    }

    /// The mapped window, exactly as requested.
    pub fn as_slice(&self) -> &[u8] {
        // Safety: `ptr + delta .. ptr + delta + len` lies inside the live
        // mapping established in `map` and the backing file is immutable.
        unsafe { std::slice::from_raw_parts(self.ptr.add(self.delta), self.len) }
    }

    /// Length of the window in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length window.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        if self.map_len != 0 {
            imp::munmap(self.ptr, self.map_len);
        }
    }
}

/// True when this target can establish real mappings (raw-syscall path).
pub fn supported() -> bool {
    imp::SUPPORTED
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use std::os::unix::io::AsRawFd;

    pub const SUPPORTED: bool = true;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc #0",
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            in("x8") nr,
            options(nostack),
        );
        ret
    }

    pub fn mmap_readonly(file: &std::fs::File, offset: u64, len: usize) -> Option<*mut u8> {
        let fd = file.as_raw_fd();
        // Safety: arguments follow the mmap(2) ABI; a read-only private
        // mapping of a valid fd cannot alias Rust-owned memory.
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len,
                PROT_READ,
                MAP_PRIVATE,
                fd as usize,
                offset as usize,
            )
        };
        // Kernel errors come back as -errno in [-4095, -1].
        if (-4095..0).contains(&ret) {
            return None;
        }
        Some(ret as *mut u8)
    }

    pub fn munmap(ptr: *mut u8, len: usize) {
        // Safety: `ptr`/`len` delimit a mapping previously returned by
        // `mmap_readonly`. A failing munmap leaks the mapping, which is the
        // safe direction.
        unsafe {
            syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0);
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    pub const SUPPORTED: bool = false;

    pub fn mmap_readonly(_file: &std::fs::File, _offset: u64, _len: usize) -> Option<*mut u8> {
        None
    }

    pub fn munmap(_ptr: *mut u8, _len: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("sysmap-{tag}-{}", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        f.sync_all().unwrap();
        path
    }

    #[test]
    fn maps_whole_file_and_windows() {
        if !supported() {
            return;
        }
        let bytes: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        let path = temp_file("whole", &bytes);
        let f = std::fs::File::open(&path).unwrap();

        let all = Mapping::map(&f, 0, bytes.len()).expect("mapping supported");
        assert_eq!(all.as_slice(), &bytes[..]);

        // Unaligned window crossing the 64 KiB alignment quantum.
        let m = Mapping::map(&f, 70_001, 5000).unwrap();
        assert_eq!(m.len(), 5000);
        assert_eq!(m.as_slice(), &bytes[70_001..75_001]);

        let empty = Mapping::map(&f, 10, 0).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.as_slice(), &[] as &[u8]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_survives_file_close_and_unmaps_on_drop() {
        if !supported() {
            return;
        }
        let bytes = vec![0xA5u8; 4096];
        let path = temp_file("close", &bytes);
        let m = {
            let f = std::fs::File::open(&path).unwrap();
            Mapping::map(&f, 0, bytes.len()).unwrap()
        };
        // fd closed; the mapping stays valid until dropped
        assert!(m.as_slice().iter().all(|&b| b == 0xA5));
        drop(m);
        std::fs::remove_file(&path).ok();
    }
}
