//! Collection strategies (subset: `vec`, `btree_set`).

use crate::{Strategy, TestRng};
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `Vec` strategy: `size` is the length range.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.end.saturating_sub(self.size.start).max(1);
        let len = self.size.start + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `BTreeSet` strategy: `size` is the target cardinality range. If the
/// element domain is too small to reach the target, the set is as large as
/// repeated sampling achieves (mirroring proptest's best-effort behaviour).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.end.saturating_sub(self.size.start).max(1);
        let target = self.size.start + rng.below(span as u64) as usize;
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 20 + 32 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
