//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of `proptest` its tests use: the
//! [`proptest!`] macro, integer range and tuple strategies, `any::<T>()`,
//! `collection::{vec, btree_set}`, `prop_assert!` / `prop_assert_eq!`, and
//! [`ProptestConfig`]. Shrinking is intentionally not implemented — failures
//! report the generated inputs (every strategy value is `Debug`) and the
//! deterministic per-test RNG makes each failure reproducible by rerunning
//! the test.

use rand::{Rng, SeedableRng, SmallRng};
use std::fmt;

pub mod collection;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Test-runner configuration (subset: `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Unused compatibility field (accepted, ignored).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 32,
            max_shrink_iters: 0,
        }
    }
}

/// Error produced by `prop_assert!` family macros inside a test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test RNG.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seeds the runner RNG from the test's name so each test draws a fixed,
    /// independent sequence.
    pub fn deterministic(test_name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    /// Next raw word.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.0.gen_range(0..n.max(1))
    }
}

/// A generator of random values (subset of proptest's `Strategy`: generation
/// only, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(core::marker::PhantomData<T>);

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Asserts a condition inside a `proptest!` body, returning a
/// [`TestCaseError`] (rather than panicking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let dbg = format!(concat!($(stringify!($arg), " = {:?}, "),+), $(&$arg),+);
                let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("proptest case {case} failed: {e}\n  inputs: {dbg}");
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 0u32..10, y in -5i64..=5) {
            prop_assert!(x < 10);
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn collections_sized(v in crate::collection::vec(0u8..255, 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
        }

        #[test]
        fn sets_are_sets(s in crate::collection::btree_set(0u16..50, 0..20)) {
            prop_assert!(s.len() < 20);
            prop_assert_eq!(s.iter().collect::<std::collections::BTreeSet<_>>().len(), s.len());
        }
    }

    #[test]
    fn deterministic_rng_repeats() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
