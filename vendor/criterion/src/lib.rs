//! Offline drop-in subset of the `criterion` benchmark API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of `criterion` its benches use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `bench_function` /
//! `bench_with_input`, and the `criterion_group!` / `criterion_main!`
//! macros. Measurement is deliberately simple — warm up, run a fixed number
//! of timed samples, report min / median / mean — which is enough to
//! compare kernels on the same machine in the same process.

use std::time::{Duration, Instant};

/// Opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration times of the last run.
    last: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample after a warm-up pass.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few untimed iterations to populate caches.
        for _ in 0..self.samples.min(3) {
            black_box(routine());
        }
        self.last.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.last.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (still subject to the
    /// `PRIVPATH_BENCH_QUICK` smoke cap).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = self.criterion.capped(n);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        let mut b = Bencher {
            samples: self.sample_size,
            last: Vec::new(),
        };
        f(&mut b);
        report(&full, &mut b.last);
        self.criterion.ran += 1;
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        let mut b = Bencher {
            samples: self.sample_size,
            last: Vec::new(),
        };
        f(&mut b, input);
        report(&full, &mut b.last);
        self.criterion.ran += 1;
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    sample_cap: Option<usize>,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Smoke mode for CI: `PRIVPATH_BENCH_QUICK=1` caps every benchmark
        // (including explicit `sample_size` requests) at 3 samples, so a
        // bench run validates that the harnesses still execute without
        // paying measurement-grade sample counts.
        let sample_cap = match std::env::var("PRIVPATH_BENCH_QUICK") {
            Ok(v) if v != "0" && !v.is_empty() => Some(3),
            _ => None,
        };
        Criterion {
            default_sample_size: 30,
            sample_cap,
            ran: 0,
        }
    }
}

impl Criterion {
    /// Compatibility no-op (CLI args are ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn capped(&self, n: usize) -> usize {
        self.sample_cap.map_or(n, |cap| n.min(cap)).max(1)
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.capped(self.default_sample_size);
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.capped(self.default_sample_size),
            last: Vec::new(),
        };
        f(&mut b);
        report(&name.into_benchmark_id().0, &mut b.last);
        self.ran += 1;
        self
    }
}

/// Conversion into a [`BenchmarkId`] (accepts `&str`, `String`, ids).
pub trait IntoBenchmarkId {
    /// Converts self.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; this harness ignores
            // all CLI arguments.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(5);
        let mut count = 0u64;
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(count >= 5);
        assert_eq!(c.ran, 2);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).0, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
