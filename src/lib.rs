//! # privpath — Shortest Path Computation with No Information Leakage
//!
//! A full Rust reproduction of Mouratidis & Yiu, *"Shortest Path Computation
//! with No Information Leakage"*, PVLDB 5(8), 2012. The facade crate
//! re-exports the workspace crates so downstream users can depend on a single
//! crate:
//!
//! * [`storage`] — fixed-size disk pages, byte codecs, paged files;
//! * [`graph`] — road-network graphs, shortest-path algorithms, generators;
//! * [`partition`] — (packed) KD-tree network partitioning and border nodes;
//! * [`pir`] — the PIR substrate: SCP cost model (Table 2), oblivious
//!   backends, access traces;
//! * [`core`] — the paper's contribution: CI / PI / HY / PI* schemes and the
//!   LM / AF / OBF baselines — all behind one `Database`/`QuerySession`
//!   build-and-query API — plus the fixed-query-plan client/server protocol
//!   and the security auditor.
//!
//! ## Quick start
//!
//! ```
//! use privpath::core::engine::{Engine, SchemeKind};
//! use privpath::graph::gen::{road_like, RoadGenConfig};
//!
//! // A small synthetic road network (deterministic for a given seed).
//! let net = road_like(&RoadGenConfig { nodes: 500, extra_edge_frac: 0.15, seed: 7, ..Default::default() });
//!
//! // Build the Concise Index database and query it privately.
//! let mut engine = Engine::build(&net, SchemeKind::Ci, &Default::default()).unwrap();
//! let a = net.node_point(0);
//! let b = net.node_point((net.num_nodes() - 1) as u32);
//! let out = engine.query(a, b).unwrap();
//! assert!(out.answer.found());
//! ```
//!
//! ## Concurrent querying: `Database` + `QuerySession`
//!
//! [`Engine`](core::engine::Engine) bundles one database with one session
//! for the single-threaded case. To serve many clients at once, build a
//! [`Database`](core::engine::Database) (immutable once built), share it
//! with an [`Arc`](std::sync::Arc), and open one
//! [`QuerySession`](core::engine::QuerySession) per thread. Sessions own all
//! mutable query state — the cost meter, the adversary trace, the
//! dummy-fetch RNG, and the reusable client scratch (CSR subgraph arena +
//! Dijkstra buffers), which is cleared, not reallocated, between queries.
//! Every scheme kind — including the LM/AF baselines (whose interleaved
//! fetch-and-search runs on the same CSR arena) and the non-PIR OBF
//! baseline — builds and queries through this one API.
//!
//! ```
//! use privpath::core::engine::{Database, SchemeKind};
//! use privpath::graph::gen::{road_like, RoadGenConfig};
//! use std::sync::Arc;
//!
//! let net = road_like(&RoadGenConfig { nodes: 300, seed: 7, ..Default::default() });
//! let db = Arc::new(Database::build(&net, SchemeKind::Ci, &Default::default()).unwrap());
//! std::thread::scope(|scope| {
//!     for client in 0..4u64 {
//!         let db = Arc::clone(&db);
//!         let net = &net;
//!         scope.spawn(move || {
//!             let mut session = db.session_with_seed(client);
//!             let out = session.query_nodes(net, 0, 99).unwrap();
//!             assert!(out.answer.found());
//!         });
//!     }
//! });
//! ```

pub use privpath_core as core;
pub use privpath_graph as graph;
pub use privpath_partition as partition;
pub use privpath_pir as pir;
pub use privpath_storage as storage;
