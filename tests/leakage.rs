//! Theorem 1 as an executable, CI-enforced test suite.
//!
//! "Our methodology leaks no information to the adversary about the shortest
//! path query. Equivalently, every processed query is indistinguishable from
//! any other." The adversary's view is the [`AccessTrace`] — file identities
//! and round boundaries, never page numbers — so the theorem reduces to a
//! testable property: **every query against a built database produces the
//! same trace**, and that trace conforms to the published plan. This suite
//! asserts it over randomized networks and query workloads for every
//! PIR-based scheme, plus two supporting invariants:
//!
//! * the CSR-arena LM/AF searches are behaviourally identical to the
//!   retained `HashMap` reference implementations (answers, snapped nodes,
//!   paths, fetch counts — and therefore PIR meter charges — match exactly);
//! * the meter's charged PIR fetch counts equal the `PirFetch` events in the
//!   recorded trace, per file, for every scheme (the two accounting views
//!   can never drift apart);
//! * the theorem survives bad weather: a session over a fault-injected link
//!   with retries is observably identical — answers, traces, meters, and
//!   the logical server-observed frame stream — to a clean-link session
//!   (the chaos differential at the bottom of this file).

use privpath::core::audit::{
    assert_indistinguishable, check_plan_conformance, check_wire_conformance,
};
use privpath::core::config::BuildConfig;
use privpath::core::engine::{Database, Engine, SchemeKind};
use privpath::core::files::fd::{decode_region, RegionData};
use privpath::core::files::unseal_page;
use privpath::core::plan::PlanFile;
use privpath::core::schemes::{af, lm};
use privpath::core::subgraph::{search_af, search_lm, ClientSubgraph, QueryScratch};
use privpath::core::Result;
use privpath::graph::gen::{road_like, RoadGenConfig};
use privpath::pir::{FileId, InProc, PirSession, TraceEvent};
use proptest::prelude::*;
use std::sync::Arc;

/// The PIR-based schemes Theorem 1 covers. OBF is excluded by design: its
/// leakage is the uploaded candidate sets themselves, which the trace
/// abstraction (built for PIR access patterns) deliberately does not model.
const PIR_SCHEMES: [SchemeKind; 6] = [
    SchemeKind::Ci,
    SchemeKind::Pi,
    SchemeKind::Hy,
    SchemeKind::PiStar,
    SchemeKind::Lm,
    SchemeKind::Af,
];

fn cfg_small() -> BuildConfig {
    let mut cfg = BuildConfig::default();
    // Small pages so a couple-hundred-node network still yields many regions.
    cfg.spec.page_size = 512;
    // Exhaustive plan derivation (the paper's method): the derived budget is
    // a true maximum, so no query can violate the plan and every trace is
    // deterministic in length.
    cfg.plan_sample = 0;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    /// Executable Theorem 1: for every PIR-based scheme, arbitrary queries
    /// from arbitrary sessions over the same built database produce
    /// identical adversary-observable traces, and the trace conforms to the
    /// published plan.
    #[test]
    fn pir_schemes_produce_identical_traces(
        seed in 0u64..10_000,
        nodes in 100usize..180,
        queries in proptest::collection::vec((0u32..1_000_000, 0u32..1_000_000), 5..9),
    ) {
        let net = road_like(&RoadGenConfig { nodes, seed, ..Default::default() });
        let n = net.num_nodes() as u32;
        for kind in PIR_SCHEMES {
            let db = Arc::new(
                Database::build(&net, kind, &cfg_small())
                    .unwrap_or_else(|e| panic!("{} build failed: {e}", kind.name())),
            );
            // Two sessions with different dummy-fetch RNG streams: the
            // dummies hit different pages, but the *observable* sequence
            // must be identical across sessions too.
            let mut sessions = [db.session(), db.session_with_seed(seed ^ 0xdead)];
            let mut traces = Vec::new();
            for (i, &(a, b)) in queries.iter().enumerate() {
                let (s, t) = (a % n, b % n);
                if s == t {
                    continue;
                }
                let out = sessions[i % 2]
                    .query_nodes(&net, s, t)
                    .unwrap_or_else(|e| panic!("{} query {s}->{t} failed: {e}", kind.name()));
                prop_assert!(
                    !out.plan_violation,
                    "{}: plan violation for {s}->{t}", kind.name()
                );
                traces.push(out.trace);
            }
            let verdict = assert_indistinguishable(&traces);
            prop_assert!(
                verdict.is_ok(),
                "{}: queries distinguishable: {:?}", kind.name(), verdict
            );
            // The uniform trace also matches the plan the header publishes.
            let file_of = |f: PlanFile| db.file_of(f).expect("plan file registered");
            for (qi, trace) in traces.iter().enumerate() {
                let conform = check_plan_conformance(qi, trace, db.plan(), &file_of);
                prop_assert!(
                    conform.is_ok(),
                    "{}: trace violates plan: {:?}", kind.name(), conform
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2, ..ProptestConfig::default() })]

    /// Differential: batched round execution (the default — one server
    /// batch per round) is observably identical to the per-fetch reference
    /// path, for every PIR scheme and for both functional oblivious store
    /// kinds. Identical `AccessTrace`s, identical meter fetch/round/cost
    /// totals (the f64 accumulators bit-for-bit), identical answers and
    /// paths. This is the invariant that lets the server amortize a round's
    /// page work without moving Theorem 1 an inch.
    #[test]
    fn batched_rounds_are_identical_to_per_fetch_execution(
        seed in 0u64..10_000,
        nodes in 100usize..170,
        queries in proptest::collection::vec((0u32..1_000_000, 0u32..1_000_000), 4..7),
    ) {
        use privpath::pir::PirMode;
        let net = road_like(&RoadGenConfig { nodes, seed, ..Default::default() });
        let n = net.num_nodes() as u32;
        // Alternate the functional store so both batch implementations (the
        // one-pass linear scan and the epoch-amortized shuffled store) get
        // coverage; cost-only serving is exercised by every other suite.
        let mode = if seed % 2 == 0 {
            PirMode::LinearScan
        } else {
            PirMode::Shuffled { seed }
        };
        for kind in PIR_SCHEMES {
            let mut cfg = cfg_small();
            cfg.pir_mode = mode.clone();
            let db = Arc::new(
                Database::build(&net, kind, &cfg)
                    .unwrap_or_else(|e| panic!("{} build failed: {e}", kind.name())),
            );
            // Same dummy-fetch RNG seed on both sides: any divergence is the
            // batching, not the randomness.
            let mut batched = db.session_with_seed(seed ^ 0xbeef);
            let mut unbatched = db.session_with_seed(seed ^ 0xbeef);
            unbatched.set_batched(false);
            for &(a, b) in &queries {
                let (s, t) = (a % n, b % n);
                if s == t {
                    continue;
                }
                let want = unbatched
                    .query_nodes(&net, s, t)
                    .unwrap_or_else(|e| panic!("{} per-fetch {s}->{t}: {e}", kind.name()));
                let got = batched
                    .query_nodes(&net, s, t)
                    .unwrap_or_else(|e| panic!("{} batched {s}->{t}: {e}", kind.name()));
                prop_assert_eq!(&got.trace, &want.trace, "{}: trace {}->{}", kind.name(), s, t);
                prop_assert_eq!(got.answer.cost, want.answer.cost);
                prop_assert_eq!(&got.answer.path_nodes, &want.answer.path_nodes);
                prop_assert_eq!(got.answer.src_node, want.answer.src_node);
                prop_assert_eq!(got.answer.dst_node, want.answer.dst_node);
                prop_assert_eq!(got.meter.rounds, want.meter.rounds);
                prop_assert_eq!(got.meter.total_fetches(), want.meter.total_fetches());
                prop_assert_eq!(&got.meter.fetches_per_file, &want.meter.fetches_per_file);
                prop_assert_eq!(got.meter.bytes_transferred, want.meter.bytes_transferred);
                // Exact f64 equality is intentional: the batched path must
                // perform the same cost additions in the same order.
                prop_assert_eq!(got.meter.pir.total_s(), want.meter.pir.total_s());
                prop_assert_eq!(got.meter.comm_s, want.meter.comm_s);
                prop_assert_eq!(got.meter.server_s, want.meter.server_s);
                prop_assert_eq!(
                    got.trace.num_rounds() as u32,
                    got.meter.rounds,
                    "{}: rounds vs RoundStart events", kind.name()
                );
            }
        }
    }
}

/// Fetches one LM region page through a PIR session (the differential
/// drivers below charge a real meter so the two implementations' PIR costs
/// can be compared exactly).
fn lm_fetch<'a>(
    db: &'a Arc<Database>,
    pir: &'a mut PirSession,
    data_file: FileId,
) -> impl FnMut(u16) -> Result<RegionData> + 'a {
    let header = db.header().expect("LM database has a header").clone();
    let mut link = InProc::new(Arc::clone(db));
    move |region: u16| {
        let page = pir.pir_fetch(&mut link, data_file, header.region_page[region as usize])?;
        decode_region(unseal_page(&page)?, &header.record_format)
    }
}

/// Fetches one AF region (all of its pages) through a PIR session.
fn af_fetch<'a>(
    db: &'a Arc<Database>,
    pir: &'a mut PirSession,
    data_file: FileId,
) -> impl FnMut(u16) -> Result<RegionData> + 'a {
    let header = db.header().expect("AF database has a header").clone();
    let mut link = InProc::new(Arc::clone(db));
    move |region: u16| {
        let ppr = u32::from(header.cluster_pages.max(1));
        let base = header.region_page[region as usize];
        let mut bytes = Vec::new();
        for c in 0..ppr {
            let page = pir.pir_fetch(&mut link, data_file, base + c)?;
            bytes.extend_from_slice(unseal_page(&page)?);
        }
        decode_region(&bytes, &header.record_format)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    /// Differential: the CSR-arena LM search equals the retained `HashMap`
    /// reference — answers, snapped nodes, paths, fetch counts, and the PIR
    /// meter costs those fetches accrue.
    #[test]
    fn lm_csr_search_matches_hashmap_reference(
        seed in 0u64..10_000,
        nodes in 100usize..200,
        queries in proptest::collection::vec((0u32..1_000_000, 0u32..1_000_000), 4..8),
    ) {
        let net = road_like(&RoadGenConfig { nodes, seed, ..Default::default() });
        let n = net.num_nodes() as u32;
        let mut cfg = cfg_small();
        cfg.landmarks = 4;
        let db = Arc::new(Database::build(&net, SchemeKind::Lm, &cfg).expect("build"));
        let header = db.header().expect("header").clone();
        let data_file = db.file_of(PlanFile::Data).expect("Fd registered");
        let mut session = db.session();
        let mut sub = ClientSubgraph::new();
        let mut scratch = QueryScratch::new();
        for &(a, b) in &queries {
            let (s, t) = (a % n, b % n);
            if s == t {
                continue;
            }
            let (ps, pt) = (net.node_point(s), net.node_point(t));
            let (rs, rt) = (header.tree.region_of(ps), header.tree.region_of(pt));

            let mut ref_pir = PirSession::new();
            let want = {
                let mut fetch = lm_fetch(&db, &mut ref_pir, data_file);
                lm::reference::lm_search(rs, rt, ps, pt, &mut fetch).expect("reference search")
            };

            let mut csr_pir = PirSession::new();
            sub.clear();
            let got = {
                // The CSR search hands decoded pages around as `Arc`s (so
                // the offline probe cache can satisfy fetches for free);
                // wrapping here keeps the PIR charges identical.
                let mut inner = lm_fetch(&db, &mut csr_pir, data_file);
                let mut fetch = |region: u16| inner(region).map(Arc::new);
                search_lm(&mut sub, &mut scratch, rs, rt, ps, pt, &mut fetch)
                    .expect("CSR search")
            };

            prop_assert_eq!(got.cost, want.cost, "cost for {}->{}", s, t);
            prop_assert_eq!(got.s_node, want.s_node);
            prop_assert_eq!(got.t_node, want.t_node);
            prop_assert_eq!(got.fetches, want.pages, "fetches for {}->{}", s, t);
            if want.cost.is_some() {
                prop_assert_eq!(&scratch.path, &want.path, "path for {}->{}", s, t);
            }
            // Identical fetch sequences mean identical PIR meter charges.
            prop_assert_eq!(ref_pir.meter.total_fetches(), csr_pir.meter.total_fetches());
            prop_assert_eq!(&ref_pir.meter.fetches_per_file, &csr_pir.meter.fetches_per_file);
            prop_assert_eq!(ref_pir.meter.bytes_transferred, csr_pir.meter.bytes_transferred);
            prop_assert!(
                (ref_pir.meter.pir.total_s() - csr_pir.meter.pir.total_s()).abs() < 1e-12
            );

            // And the full protocol (with dummy padding) returns the same
            // answer while staying inside the fixed plan.
            let out = session.query_nodes(&net, s, t).expect("full query");
            prop_assert_eq!(out.answer.cost, want.cost);
            prop_assert_eq!(
                out.meter.total_fetches(),
                u64::from(db.plan().total_fetches())
            );
        }
    }

    /// Differential: the CSR-arena AF search equals the retained `HashMap`
    /// reference the same way.
    #[test]
    fn af_csr_search_matches_hashmap_reference(
        seed in 0u64..10_000,
        nodes in 100usize..200,
        queries in proptest::collection::vec((0u32..1_000_000, 0u32..1_000_000), 4..8),
    ) {
        let net = road_like(&RoadGenConfig { nodes, seed, ..Default::default() });
        let n = net.num_nodes() as u32;
        let mut cfg = cfg_small();
        cfg.af_regions = 8;
        let db = Arc::new(Database::build(&net, SchemeKind::Af, &cfg).expect("build"));
        let header = db.header().expect("header").clone();
        let data_file = db.file_of(PlanFile::Data).expect("Fd registered");
        let mut session = db.session();
        let mut sub = ClientSubgraph::new();
        let mut scratch = QueryScratch::new();
        for &(a, b) in &queries {
            let (s, t) = (a % n, b % n);
            if s == t {
                continue;
            }
            let (ps, pt) = (net.node_point(s), net.node_point(t));
            let (rs, rt) = (header.tree.region_of(ps), header.tree.region_of(pt));

            let mut ref_pir = PirSession::new();
            let want = {
                let mut fetch = af_fetch(&db, &mut ref_pir, data_file);
                af::reference::af_search(rs, rt, ps, pt, &mut fetch).expect("reference search")
            };

            let mut csr_pir = PirSession::new();
            sub.clear();
            let got = {
                let mut inner = af_fetch(&db, &mut csr_pir, data_file);
                let mut fetch = |region: u16| inner(region).map(Arc::new);
                search_af(&mut sub, &mut scratch, rs, rt, ps, pt, &mut fetch)
                    .expect("CSR search")
            };

            prop_assert_eq!(got.cost, want.cost, "cost for {}->{}", s, t);
            prop_assert_eq!(got.s_node, want.s_node);
            prop_assert_eq!(got.t_node, want.t_node);
            prop_assert_eq!(got.fetches, want.regions_fetched, "fetches for {}->{}", s, t);
            if want.cost.is_some() {
                prop_assert_eq!(&scratch.path, &want.path, "path for {}->{}", s, t);
            }
            prop_assert_eq!(ref_pir.meter.total_fetches(), csr_pir.meter.total_fetches());
            prop_assert_eq!(&ref_pir.meter.fetches_per_file, &csr_pir.meter.fetches_per_file);
            prop_assert_eq!(ref_pir.meter.bytes_transferred, csr_pir.meter.bytes_transferred);
            prop_assert!(
                (ref_pir.meter.pir.total_s() - csr_pir.meter.pir.total_s()).abs() < 1e-12
            );

            let out = session.query_nodes(&net, s, t).expect("full query");
            prop_assert_eq!(out.answer.cost, want.cost);
            prop_assert_eq!(
                out.meter.total_fetches(),
                u64::from(db.plan().total_fetches())
            );
        }
    }
}

/// The meter's charged PIR fetch counts equal the `PirFetch` events in the
/// recorded trace — in total and per file — and the charged rounds equal the
/// `RoundStart` events, for every scheme (including OBF, where both are
/// zero fetches and one round).
#[test]
fn meter_fetches_equal_trace_fetches_for_every_scheme() {
    let net = road_like(&RoadGenConfig {
        nodes: 180,
        seed: 4242,
        ..Default::default()
    });
    let n = net.num_nodes() as u32;
    for kind in SchemeKind::ALL {
        let mut cfg = cfg_small();
        cfg.obf_decoys = 6;
        let mut engine = Engine::build(&net, kind, &cfg)
            .unwrap_or_else(|e| panic!("{} build failed: {e}", kind.name()));
        for k in 0..6u32 {
            let (s, t) = ((k * 37 + 5) % n, (k * 151 + 89) % n);
            if s == t {
                continue;
            }
            let out = engine
                .query_nodes(&net, s, t)
                .unwrap_or_else(|e| panic!("{} query {s}->{t} failed: {e}", kind.name()));
            assert_eq!(
                out.meter.total_fetches(),
                out.trace.total_fetches() as u64,
                "{}: meter vs trace fetch totals for {s}->{t}",
                kind.name()
            );
            for (idx, &charged) in out.meter.fetches_per_file.iter().enumerate() {
                assert_eq!(
                    charged,
                    out.trace.fetches_of(FileId(idx as u16)) as u64,
                    "{}: meter vs trace for file {idx}",
                    kind.name()
                );
            }
            let round_events = out
                .trace
                .events()
                .iter()
                .filter(|e| matches!(e, TraceEvent::RoundStart(_)))
                .count();
            assert_eq!(
                out.meter.rounds,
                round_events as u32,
                "{}: meter rounds vs trace RoundStart events",
                kind.name()
            );
        }
    }
}

/// The wire boundary is observably invisible (PR 5's decisive check), in
/// three parts, for every scheme:
///
/// 1. **Differential equality.** A session over a [`privpath::pir::WireChannel`]
///    produces exactly what the in-process session produces for the same
///    queries and RNG seed: identical answers, paths, traces, and simulated
///    meter charges (f64 accumulators bit-for-bit; wall-measured
///    `client_s`/`server_s` excluded). Serializing rounds into frames must
///    change *nothing* a client or adversary can see.
/// 2. **Server-observed frame uniformity.** The masked frame streams the
///    server records are byte-identical across sessions (different dummy
///    RNG streams!), and within a session every query's frame block is
///    identical — even HY's data-dependent continuation walk presents a
///    fixed number of fixed-size exchanges.
/// 3. **Plan conformance of the wire view.** The recorded streams parse and
///    re-aggregate to exactly the published plan.
#[test]
fn wire_execution_is_differentially_equal_and_frame_uniform() {
    let net = road_like(&RoadGenConfig {
        nodes: 160,
        seed: 1234,
        ..Default::default()
    });
    let n = net.num_nodes() as u32;
    let pairs: Vec<(u32, u32)> = (0..6u32)
        .map(|k| ((k * 53 + 11) % n, (k * 131 + 97) % n))
        .filter(|(s, t)| s != t)
        .collect();
    for kind in SchemeKind::ALL {
        let mut cfg = cfg_small();
        cfg.obf_decoys = 5;
        let db = Arc::new(
            Database::build(&net, kind, &cfg)
                .unwrap_or_else(|e| panic!("{} build failed: {e}", kind.name())),
        );
        let front = db.serve_wire();
        let mut inproc = db.session_with_seed(0x5eed);
        // connected sequentially, so the server assigns session ids 1 and 2
        let mut wire_a = db.wire_session_with_seed(&front, 0x5eed).expect("connect");
        let mut wire_b = db.wire_session_with_seed(&front, 0xbead).expect("connect");
        for &(s, t) in &pairs {
            let want = inproc
                .query_nodes(&net, s, t)
                .unwrap_or_else(|e| panic!("{} inproc {s}->{t}: {e}", kind.name()));
            let got = wire_a
                .query_nodes(&net, s, t)
                .unwrap_or_else(|e| panic!("{} wire {s}->{t}: {e}", kind.name()));
            let _ = wire_b
                .query_nodes(&net, s, t)
                .unwrap_or_else(|e| panic!("{} wire-b {s}->{t}: {e}", kind.name()));
            assert_eq!(got.trace, want.trace, "{}: trace {s}->{t}", kind.name());
            assert_eq!(got.answer.cost, want.answer.cost, "{}", kind.name());
            assert_eq!(got.answer.path_nodes, want.answer.path_nodes);
            assert_eq!(got.answer.src_node, want.answer.src_node);
            assert_eq!(got.answer.dst_node, want.answer.dst_node);
            assert!(!got.plan_violation && !want.plan_violation);
            assert_eq!(got.meter.rounds, want.meter.rounds);
            assert_eq!(got.meter.exchanges, want.meter.exchanges);
            assert_eq!(got.meter.fetches_per_file, want.meter.fetches_per_file);
            assert_eq!(got.meter.bytes_transferred, want.meter.bytes_transferred);
            // simulated f64 costs are computed from the same published
            // metadata on both sides: bit-for-bit equal
            assert_eq!(got.meter.pir.total_s(), want.meter.pir.total_s());
            assert_eq!(got.meter.comm_s, want.meter.comm_s);
            if kind.is_pir() {
                // OBF's server_s is measured wall time; every PIR scheme's
                // is the deterministic header-read cost
                assert_eq!(got.meter.server_s, want.meter.server_s);
            }
        }
        // server-observed frame streams: byte-identical across sessions
        // (the dummy page choices differ — the masked view must not)
        let stream_a = front.observed_stream(1).expect("session 1 recorded");
        let stream_b = front.observed_stream(2).expect("session 2 recorded");
        assert_eq!(
            stream_a,
            stream_b,
            "{}: server-observed streams differ between sessions",
            kind.name()
        );
        let events = privpath::pir::wire::parse_observed(&stream_a)
            .unwrap_or_else(|e| panic!("{}: unparseable stream: {e}", kind.name()));
        // ... uniform across queries within a session too: every query
        // block (split at QueryOpen) is event-identical
        let blocks: Vec<&[privpath::pir::ObservedEvent]> = {
            let starts: Vec<usize> = events
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e, privpath::pir::ObservedEvent::QueryOpen))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(starts.len(), pairs.len(), "{}: query count", kind.name());
            starts
                .iter()
                .enumerate()
                .map(|(bi, &lo)| {
                    let hi = starts.get(bi + 1).copied().unwrap_or(events.len());
                    &events[lo..hi]
                })
                .collect()
        };
        for (bi, block) in blocks.iter().enumerate().skip(1) {
            assert_eq!(
                *block,
                blocks[0],
                "{}: query {bi}'s frame block differs from query 0's",
                kind.name()
            );
        }
        // ... and conformant to the published plan
        let file_of = |f: PlanFile| db.file_of(f).expect("plan file registered");
        let stats = front.session_stats();
        for session in [1usize, 2] {
            let stream = front.observed_stream(session as u64).expect("recorded");
            let events = privpath::pir::wire::parse_observed(&stream).expect("parse");
            check_wire_conformance(
                session,
                &events,
                stats[&(session as u64)].observed_truncated,
                pairs.len(),
                db.plan(),
                &file_of,
            )
            .unwrap_or_else(|e| panic!("{}: wire stream violates plan: {e}", kind.name()));
        }
        drop((wire_a, wire_b));
        front.shutdown();
    }
}

/// Theorem 1 under faults: a lossy link with retries leaks nothing. For
/// every scheme, a session over a fault-injected [`privpath::pir::ChaosLink`]
/// (drops, corruption, truncation, duplication, delays, plus one
/// mid-session outage window) with a resilient [`privpath::pir::RetryPolicy`]
/// is compared against a clean-link session on the same server:
///
/// 1. **Client view.** Answers, paths, traces and every deterministic meter
///    component are bit-identical. Retransmissions are deliberately *not*
///    metered (the meter models the protocol, not the weather), so the
///    meters match exactly once the wall-measured `client_s` (and OBF's
///    wall-measured `server_s`) are excluded.
/// 2. **Adversary view.** The server records every frame it sees —
///    retransmissions included, the adversary sees those too. The *logical*
///    stream ([`privpath::pir::wire::parse_observed`], which verifies each
///    same-sequence duplicate is bit-identical to its original before
///    dropping it) equals the clean session's, and still conforms to the
///    published plan. A retransmission that differed from its original
///    would be new information flowing to the server; `parse_observed`
///    rejects the stream and this test fails.
///
/// The retransmission totals are asserted non-zero across the matrix, so a
/// regression that silently stops injecting faults cannot pass vacuously.
#[test]
fn chaos_link_with_retries_is_observably_identical_to_clean_link() {
    use privpath::pir::{FaultPlan, RetryPolicy};
    let net = road_like(&RoadGenConfig {
        nodes: 150,
        seed: 3456,
        ..Default::default()
    });
    let n = net.num_nodes() as u32;
    let pairs: Vec<(u32, u32)> = (0..5u32)
        .map(|k| ((k * 67 + 13) % n, (k * 149 + 101) % n))
        .filter(|(s, t)| s != t)
        .collect();
    let mut total_retries = 0u64;
    let mut total_retransmits = 0u64;
    for kind in SchemeKind::ALL {
        let mut cfg = cfg_small();
        cfg.obf_decoys = 5;
        let db = Arc::new(
            Database::build(&net, kind, &cfg)
                .unwrap_or_else(|e| panic!("{} build failed: {e}", kind.name())),
        );
        let front = db.serve_wire();
        // same dummy-fetch RNG seed on both sides: any divergence is the
        // chaos, not the randomness
        let mut clean = db.wire_session_with_seed(&front, 0x5eed).expect("connect"); // session 1
        let mut chaos = db
            .chaos_wire_session_with_seed(
                &front,
                0x5eed,
                FaultPlan::with_outage(0xFA_0713 ^ u64::from(kind.byte()), 25, 2),
                RetryPolicy::resilient(),
            )
            .expect("chaos connect"); // session 2
        for &(s, t) in &pairs {
            let want = clean
                .query_nodes(&net, s, t)
                .unwrap_or_else(|e| panic!("{} clean {s}->{t}: {e}", kind.name()));
            let got = chaos
                .query_nodes(&net, s, t)
                .unwrap_or_else(|e| panic!("{} chaos {s}->{t}: {e}", kind.name()));
            assert_eq!(got.trace, want.trace, "{}: trace {s}->{t}", kind.name());
            assert_eq!(got.answer.cost, want.answer.cost, "{}", kind.name());
            assert_eq!(got.answer.path_nodes, want.answer.path_nodes);
            assert_eq!(got.answer.src_node, want.answer.src_node);
            assert_eq!(got.answer.dst_node, want.answer.dst_node);
            assert!(!got.plan_violation && !want.plan_violation);
            // full meter equality modulo the wall-measured components:
            // client_s always, server_s for the non-PIR OBF baseline
            let (mut got_m, mut want_m) = (got.meter.clone(), want.meter.clone());
            got_m.client_s = 0.0;
            want_m.client_s = 0.0;
            if !kind.is_pir() {
                got_m.server_s = 0.0;
                want_m.server_s = 0.0;
            }
            assert_eq!(
                got_m,
                want_m,
                "{}: the meter must not see the weather for {s}->{t}",
                kind.name()
            );
        }
        total_retries += chaos.transport_retries();

        // adversary view: the chaos session's raw stream carries the
        // retransmissions (at least as many frames as logical events) ...
        let raw_clean = front.observed_stream(1).expect("session 1 recorded");
        let raw_chaos = front.observed_stream(2).expect("session 2 recorded");
        let logical_clean = privpath::pir::wire::parse_observed(&raw_clean)
            .unwrap_or_else(|e| panic!("{}: clean stream unparseable: {e}", kind.name()));
        let logical_chaos = privpath::pir::wire::parse_observed(&raw_chaos)
            .unwrap_or_else(|e| panic!("{}: chaos stream unparseable: {e}", kind.name()));
        let raw_events = privpath::pir::wire::parse_observed_raw(&raw_chaos)
            .unwrap_or_else(|e| panic!("{}: chaos raw stream unparseable: {e}", kind.name()));
        assert!(raw_events.len() >= logical_chaos.len());
        // ... but dedup-by-sequence reduces it to exactly the clean view
        assert_eq!(
            logical_chaos,
            logical_clean,
            "{}: logical observable streams differ under chaos",
            kind.name()
        );
        // ... which still conforms to the published plan
        let file_of = |f: PlanFile| db.file_of(f).expect("plan file registered");
        let stats = front.session_stats();
        check_wire_conformance(
            2,
            &logical_chaos,
            stats[&2].observed_truncated,
            pairs.len(),
            db.plan(),
            &file_of,
        )
        .unwrap_or_else(|e| panic!("{}: chaos wire stream violates plan: {e}", kind.name()));
        total_retransmits += stats[&2].retransmits;
        assert_eq!(
            stats[&1].retransmits,
            0,
            "{}: clean session retransmitted",
            kind.name()
        );
        drop((clean, chaos));
        front.shutdown();
    }
    // the matrix as a whole must have actually exercised the retry path
    assert!(
        total_retries > 0,
        "no client retries across the whole matrix"
    );
    assert!(
        total_retransmits > 0,
        "no server-side replay across the whole matrix"
    );
}

/// Theorem 1 under cross-session round coalescing (PR 7's decisive check):
/// whether or not a neighbour's concurrent round shared the server's
/// linear-scan sweep must be invisible in everything the client computes
/// and everything the adversary observes. For every PIR scheme, the same
/// query sequence runs twice over the wire with the same dummy-RNG seed:
///
/// 1. **Solo.** A front with coalescing off — the reference.
/// 2. **Coalesced.** A front with a coalescing window, the target client
///    connecting first (session 1, as in the solo run) while three
///    neighbour sessions hammer the same workload concurrently, so the
///    target's rounds land in shared sweeps.
///
/// The target's answers, paths, traces and deterministic meter components
/// must be bit-identical between the runs, and its *masked observable
/// frame stream* must be byte-identical — coalescing is pure server-side
/// scheduling, invisible at the trust boundary. The stream must still
/// conform to the published plan. Sweep sharing is asserted to have
/// actually happened (`coalesced_rounds > 0` summed over sessions, with
/// the run repeated a few times in case scheduling never overlapped), so
/// the test cannot pass vacuously.
#[test]
fn coalesced_serving_is_observably_identical_to_solo_serving() {
    use privpath::pir::{FrontConfig, PirMode};
    use std::time::Duration;
    let net = road_like(&RoadGenConfig {
        nodes: 150,
        seed: 7777,
        ..Default::default()
    });
    let n = net.num_nodes() as u32;
    let pairs: Vec<(u32, u32)> = (0..4u32)
        .map(|k| ((k * 71 + 19) % n, (k * 137 + 91) % n))
        .filter(|(s, t)| s != t)
        .collect();
    for kind in PIR_SCHEMES {
        let mut cfg = cfg_small();
        // linear-scan stores: the one mode whose rounds are coalescable
        cfg.pir_mode = PirMode::LinearScan;
        let db = Arc::new(
            Database::build(&net, kind, &cfg)
                .unwrap_or_else(|e| panic!("{} build failed: {e}", kind.name())),
        );

        // solo reference: no coalescing
        let solo_front = db.serve_wire();
        let mut solo = db
            .wire_session_with_seed(&solo_front, 0x5eed)
            .expect("connect"); // session 1
        let solo_out: Vec<_> = pairs
            .iter()
            .map(|&(s, t)| {
                solo.query_nodes(&net, s, t)
                    .unwrap_or_else(|e| panic!("{} solo {s}->{t}: {e}", kind.name()))
            })
            .collect();
        let solo_stream = solo_front.observed_stream(1).expect("session 1 recorded");
        drop(solo);
        solo_front.shutdown();

        let mut attempt = 0;
        loop {
            attempt += 1;
            let front = db.serve_wire_with(FrontConfig {
                coalesce_window: Some(Duration::from_millis(5)),
                coalesce_max_batch: 0, // no batch cap: flush on the window
                ..Default::default()
            });
            // the target connects first, so it is session 1 — the same id
            // (and thus the same recorded stream slot) as the solo run
            let mut target = db.wire_session_with_seed(&front, 0x5eed).expect("connect");
            let outs: Vec<_> = std::thread::scope(|scope| {
                let neighbours: Vec<_> = (0..3u64)
                    .map(|k| {
                        let db = Arc::clone(&db);
                        let (front, net, pairs) = (&front, &net, &pairs);
                        scope.spawn(move || {
                            let mut s = db
                                .wire_session_with_seed(front, 0xbead ^ k)
                                .expect("neighbour connect");
                            for &(a, b) in pairs {
                                s.query_nodes(net, a, b).expect("neighbour query");
                            }
                            s.close().expect("neighbour close");
                        })
                    })
                    .collect();
                let outs = pairs
                    .iter()
                    .map(|&(s, t)| {
                        target
                            .query_nodes(&net, s, t)
                            .unwrap_or_else(|e| panic!("{} coalesced {s}->{t}: {e}", kind.name()))
                    })
                    .collect();
                for h in neighbours {
                    h.join().expect("neighbour thread");
                }
                outs
            });
            let stream = front.observed_stream(1).expect("session 1 recorded");
            drop(target);
            let stats = front.shutdown();
            let shared: u64 = stats.values().map(|s| s.coalesced_rounds).sum();
            if shared == 0 && attempt < 3 {
                continue; // scheduling never overlapped any rounds; rerun
            }
            assert!(
                shared > 0,
                "{}: no rounds ever coalesced in {attempt} attempts",
                kind.name()
            );

            // 1. client view: bit-identical to the solo run
            for ((got, want), &(s, t)) in outs.iter().zip(&solo_out).zip(&pairs) {
                assert_eq!(got.trace, want.trace, "{}: trace {s}->{t}", kind.name());
                assert_eq!(got.answer.cost, want.answer.cost, "{}", kind.name());
                assert_eq!(got.answer.path_nodes, want.answer.path_nodes);
                assert_eq!(got.answer.src_node, want.answer.src_node);
                assert_eq!(got.answer.dst_node, want.answer.dst_node);
                assert!(!got.plan_violation && !want.plan_violation);
                // full meter equality modulo the wall-measured client_s
                let (mut got_m, mut want_m) = (got.meter.clone(), want.meter.clone());
                got_m.client_s = 0.0;
                want_m.client_s = 0.0;
                assert_eq!(
                    got_m,
                    want_m,
                    "{}: the meter must not see the coalescer for {s}->{t}",
                    kind.name()
                );
            }
            // 2. adversary view: the masked frame stream the server recorded
            // for the target is byte-identical to the solo run's
            assert_eq!(
                stream,
                solo_stream,
                "{}: coalescing changed the observable stream",
                kind.name()
            );
            // 3. ... and still conforms to the published plan
            let events = privpath::pir::wire::parse_observed(&stream)
                .unwrap_or_else(|e| panic!("{}: unparseable stream: {e}", kind.name()));
            let file_of = |f: PlanFile| db.file_of(f).expect("plan file registered");
            check_wire_conformance(
                1,
                &events,
                stats[&1].observed_truncated,
                pairs.len(),
                db.plan(),
                &file_of,
            )
            .unwrap_or_else(|e| {
                panic!("{}: coalesced wire stream violates plan: {e}", kind.name())
            });
            break;
        }
    }
}

/// Theorem 1 across a generation hot swap (PR 8's decisive check): a client
/// whose workload straddles a swap sees — and shows the adversary — exactly
/// what two clients running the two halves against the two generations solo
/// would. For every PIR scheme:
///
/// 1. Generation 1 (original weights) and generation 2 (reweighted edges)
///    are built; a [`privpath::core::DbRegistry`] serves generation 1.
/// 2. The straddling client opens a session, runs part of the first half,
///    then the registry publishes generation 2 *mid-workload*. The session
///    is pinned: it finishes the first half draining on generation 1.
/// 3. Reopening while expecting generation 1 surfaces the typed, retryable
///    [`privpath::pir::PirError::StaleGeneration`]; the client re-resolves
///    and runs the second half on a generation-2 session.
/// 4. Each half's answers, traces, and deterministic meter components are
///    bit-identical to a solo run of that half against that generation on
///    its own (never-swapped) front, the masked server-observed streams are
///    byte-identical per half, and each generation's stream independently
///    conforms to that generation's published plan.
///
/// Shuffled-store epochs are deliberately in play (`PirMode::Shuffled`):
/// each generation owns its stores, so epoch state stays consistent within
/// a generation no matter when the swap lands.
#[test]
fn generation_swap_is_observably_lossless_mid_workload() {
    use privpath::core::DbRegistry;
    use privpath::pir::{PirError, PirMode, RetryPolicy};
    let net = road_like(&RoadGenConfig {
        nodes: 150,
        seed: 9911,
        ..Default::default()
    });
    let net2 = net.reweighted(42);
    let n = net.num_nodes() as u32;
    let pairs: Vec<(u32, u32)> = (0..6u32)
        .map(|k| ((k * 59 + 17) % n, (k * 139 + 83) % n))
        .filter(|(s, t)| s != t)
        .collect();
    let (half1, half2) = pairs.split_at(pairs.len() / 2);
    for kind in PIR_SCHEMES {
        let mut cfg = cfg_small();
        // functional shuffled stores: epoch state must stay per-generation
        cfg.pir_mode = PirMode::Shuffled { seed: 0x5107 };
        let db1 = Arc::new(
            Database::build(&net, kind, &cfg)
                .unwrap_or_else(|e| panic!("{} gen-1 build failed: {e}", kind.name())),
        );
        let db2 = Arc::new(
            Database::build(&net2, kind, &cfg)
                .unwrap_or_else(|e| panic!("{} gen-2 build failed: {e}", kind.name())),
        );

        // solo references: each half against its generation, no swap ever
        let run_solo = |db: &Arc<Database>,
                        net: &privpath::graph::network::RoadNetwork,
                        seed: u64,
                        half: &[(u32, u32)]| {
            let front = db.serve_wire();
            let mut s = db.wire_session_with_seed(&front, seed).expect("connect");
            let outs: Vec<_> = half
                .iter()
                .map(|&(a, b)| {
                    s.query_nodes(net, a, b)
                        .unwrap_or_else(|e| panic!("{} solo {a}->{b}: {e}", kind.name()))
                })
                .collect();
            s.close().expect("close");
            let stream = front.observed_stream(1).expect("session 1 recorded");
            let stats = front.shutdown();
            (outs, stream, stats[&1].observed_truncated)
        };
        let (solo1, stream1, trunc1) = run_solo(&db1, &net, 0x5eed, half1);
        let (solo2, stream2, trunc2) = run_solo(&db2, &net2, 0xfeed, half2);

        // the straddling client, against one registry-served front
        let registry = DbRegistry::new(Arc::clone(&db1));
        let front = registry.serve_wire();
        let mut sess = registry
            .wire_session_with_seed(&front, 0x5eed)
            .expect("connect"); // session 1, pinned to generation 1
        let mut straddle1 = Vec::new();
        for (qi, &(a, b)) in half1.iter().enumerate() {
            if qi == 1 {
                // the swap lands mid-workload, between two queries
                assert_eq!(
                    registry.publish(Arc::clone(&db2)).expect("publish"),
                    2,
                    "{}: publish",
                    kind.name()
                );
            }
            straddle1.push(
                sess.query_nodes(&net, a, b)
                    .unwrap_or_else(|e| panic!("{} straddle {a}->{b}: {e}", kind.name())),
            );
        }
        sess.close().expect("close");

        // reopening with the held (now drained) generation is typed staleness
        let Err(err) = front.connect_expecting(RetryPolicy::none(), 1) else {
            panic!("{}: stale reopen must fail", kind.name());
        };
        assert!(err.is_retryable(), "{}: {err}", kind.name());
        assert!(
            matches!(
                err,
                PirError::StaleGeneration {
                    held: 1,
                    current: 2
                }
            ),
            "{}: {err}",
            kind.name()
        );

        // the client re-resolves and runs the second half on generation 2
        let mut sess = registry
            .wire_session_with_seed(&front, 0xfeed)
            .expect("reconnect"); // session 3 (2 was the stale probe)
        let straddle2: Vec<_> = half2
            .iter()
            .map(|&(a, b)| {
                sess.query_nodes(&net2, a, b)
                    .unwrap_or_else(|e| panic!("{} straddle-2 {a}->{b}: {e}", kind.name()))
            })
            .collect();
        sess.close().expect("close");
        let straddle_stream1 = front.observed_stream(1).expect("session 1 recorded");
        let straddle_stream3 = front.observed_stream(3).expect("session 3 recorded");
        let probe_stream = front.observed_stream(2).expect("probe recorded");
        front.shutdown();

        // 1. client view: each half bit-identical to its solo run
        for (half_name, straddle, solo, half) in [
            ("first", &straddle1, &solo1, half1),
            ("second", &straddle2, &solo2, half2),
        ] {
            for ((got, want), &(s, t)) in straddle.iter().zip(solo.iter()).zip(half) {
                assert_eq!(
                    got.trace,
                    want.trace,
                    "{}: {half_name}-half trace {s}->{t}",
                    kind.name()
                );
                assert_eq!(got.answer.cost, want.answer.cost, "{}", kind.name());
                assert_eq!(got.answer.path_nodes, want.answer.path_nodes);
                assert_eq!(got.answer.src_node, want.answer.src_node);
                assert_eq!(got.answer.dst_node, want.answer.dst_node);
                assert!(!got.plan_violation && !want.plan_violation);
                // full meter equality modulo the wall-measured client_s
                let (mut got_m, mut want_m) = (got.meter.clone(), want.meter.clone());
                got_m.client_s = 0.0;
                want_m.client_s = 0.0;
                assert_eq!(
                    got_m,
                    want_m,
                    "{}: the meter must not see the swap for {s}->{t}",
                    kind.name()
                );
            }
        }

        // 2. adversary view: masked streams byte-identical per half (the
        // masked stream is session-id-blind, so cross-front comparison is
        // exact), regardless of when the swap landed
        assert_eq!(
            straddle_stream1,
            stream1,
            "{}: generation-1 observable stream changed under the swap",
            kind.name()
        );
        assert_eq!(
            straddle_stream3,
            stream2,
            "{}: generation-2 observable stream changed under the swap",
            kind.name()
        );

        // 3. each generation's stream independently conforms to *that*
        // generation's published plan
        for (session, stream, trunc, db, half) in [
            (1usize, &straddle_stream1, trunc1, &db1, half1),
            (3, &straddle_stream3, trunc2, &db2, half2),
        ] {
            let events = privpath::pir::wire::parse_observed(stream)
                .unwrap_or_else(|e| panic!("{}: unparseable stream: {e}", kind.name()));
            let file_of = |f: PlanFile| db.file_of(f).expect("plan file registered");
            check_wire_conformance(session, &events, trunc, half.len(), db.plan(), &file_of)
                .unwrap_or_else(|e| {
                    panic!("{}: generation stream violates its plan: {e}", kind.name())
                });
        }
        // the stale probe (session 2) opened a session and nothing else
        let probe = privpath::pir::wire::parse_observed(&probe_stream).expect("probe parses");
        assert_eq!(probe, vec![privpath::pir::ObservedEvent::SessionOpen]);
    }
}

/// Theorem 1 across the storage boundary (PR 9's decisive check): whether
/// the server reads pages from memory or from a disk snapshot must be
/// invisible in everything the client computes and everything the adversary
/// observes. For every PIR scheme (alternating linear-scan and shuffled
/// functional stores so both drive through the page-driver trait):
///
/// 1. The built database is persisted ([`Database::persist`]) and reopened
///    three ways — [`StorageBackend::Mem`] (pages loaded and
///    checksum-verified up front), [`StorageBackend::Disk`] (pages read
///    lazily through the checksum-verifying snapshot reader on every fetch)
///    and [`StorageBackend::Mmap`] (same checksum envelope, run reads out
///    of a memory mapping).
/// 2. The same wire workload with the same dummy-RNG seed runs against the
///    freshly built database and against every reopened one. Answers,
///    paths, traces and every deterministic meter component must be
///    bit-identical, and the masked server-observed frame stream must be
///    byte-identical — storage is pure server-side plumbing, invisible at
///    the trust boundary.
/// 3. Each run's stream still conforms to the published plan
///    ([`check_wire_conformance`]).
#[test]
fn disk_backed_serving_is_observably_identical_to_in_memory() {
    use privpath::core::snapshot::StorageBackend;
    use privpath::pir::PirMode;
    let net = road_like(&RoadGenConfig {
        nodes: 150,
        seed: 6161,
        ..Default::default()
    });
    let n = net.num_nodes() as u32;
    let pairs: Vec<(u32, u32)> = (0..5u32)
        .map(|k| ((k * 61 + 23) % n, (k * 127 + 79) % n))
        .filter(|(s, t)| s != t)
        .collect();
    let dir = std::env::temp_dir().join(format!("privpath-leakage-disk-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for kind in PIR_SCHEMES {
        let mut cfg = cfg_small();
        // alternate the functional store kind so both implementations are
        // exercised over both page drivers
        cfg.pir_mode = if kind.byte() % 2 == 0 {
            PirMode::LinearScan
        } else {
            PirMode::Shuffled { seed: 0x51ED }
        };
        let built = Arc::new(
            Database::build(&net, kind, &cfg)
                .unwrap_or_else(|e| panic!("{} build failed: {e}", kind.name())),
        );
        let path = dir.join(format!("{}.snap", kind.byte()));
        built.persist(&path).expect("persist");

        let run = |db: &Arc<Database>, tag: &str| {
            let front = db.serve_wire();
            let mut s = db.wire_session_with_seed(&front, 0x5eed).expect("connect");
            let outs: Vec<_> = pairs
                .iter()
                .map(|&(a, b)| {
                    s.query_nodes(&net, a, b)
                        .unwrap_or_else(|e| panic!("{} {tag} {a}->{b}: {e}", kind.name()))
                })
                .collect();
            s.close().expect("close");
            let stream = front.observed_stream(1).expect("session 1 recorded");
            let stats = front.shutdown();
            (outs, stream, stats[&1].observed_truncated)
        };
        let (want, want_stream, want_trunc) = run(&built, "built");

        for backend in [
            StorageBackend::Mem,
            StorageBackend::Disk,
            StorageBackend::Mmap,
        ] {
            let re = Arc::new(
                Database::open_snapshot(&path, backend)
                    .unwrap_or_else(|e| panic!("{} reopen {backend:?}: {e}", kind.name())),
            );
            assert_eq!(re.kind(), kind);
            assert_eq!(re.db_bytes(), built.db_bytes());
            assert_eq!(re.plan(), built.plan());
            let (got, got_stream, got_trunc) = run(&re, backend.name());
            for ((got, want), &(s, t)) in got.iter().zip(want.iter()).zip(&pairs) {
                assert_eq!(
                    got.trace,
                    want.trace,
                    "{} {}: trace {s}->{t}",
                    kind.name(),
                    backend.name()
                );
                assert_eq!(got.answer.cost, want.answer.cost);
                assert_eq!(got.answer.path_nodes, want.answer.path_nodes);
                assert_eq!(got.answer.src_node, want.answer.src_node);
                assert_eq!(got.answer.dst_node, want.answer.dst_node);
                assert!(!got.plan_violation && !want.plan_violation);
                // full meter equality modulo the wall-measured client_s
                let (mut got_m, mut want_m) = (got.meter.clone(), want.meter.clone());
                got_m.client_s = 0.0;
                want_m.client_s = 0.0;
                assert_eq!(
                    got_m,
                    want_m,
                    "{} {}: the meter must not see the storage driver for {s}->{t}",
                    kind.name(),
                    backend.name()
                );
            }
            assert_eq!(
                got_stream,
                want_stream,
                "{} {}: storage driver changed the observable stream",
                kind.name(),
                backend.name()
            );
            assert_eq!(got_trunc, want_trunc);
            let events = privpath::pir::wire::parse_observed(&got_stream)
                .unwrap_or_else(|e| panic!("{}: unparseable stream: {e}", kind.name()));
            let file_of = |f: PlanFile| re.file_of(f).expect("plan file registered");
            check_wire_conformance(1, &events, got_trunc, pairs.len(), re.plan(), &file_of)
                .unwrap_or_else(|e| {
                    panic!(
                        "{} {}: snapshot-served stream violates plan: {e}",
                        kind.name(),
                        backend.name()
                    )
                });
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The scheme-kind predicate and the trace shape agree: PIR schemes fetch
/// through PIR, OBF never does.
#[test]
fn obf_is_the_only_non_pir_scheme() {
    assert!(SchemeKind::Obf.byte() == 7 && !SchemeKind::Obf.is_pir());
    for kind in PIR_SCHEMES {
        assert!(kind.is_pir(), "{} should be PIR-based", kind.name());
    }
    // PIR_SCHEMES is exactly the canonical list minus the non-PIR kinds, so
    // an eighth SchemeKind cannot silently escape this suite.
    let pir_from_all: Vec<SchemeKind> =
        SchemeKind::ALL.into_iter().filter(|k| k.is_pir()).collect();
    assert_eq!(pir_from_all, PIR_SCHEMES.to_vec());
}
