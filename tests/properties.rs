//! Property-based tests over randomized networks and query workloads: the
//! core invariants of the system must hold for *any* input, not just the
//! hand-picked ones.

use privpath::core::audit::assert_indistinguishable;
use privpath::core::config::BuildConfig;
use privpath::core::engine::{Engine, SchemeKind};
use privpath::graph::dijkstra::{distance, INFINITY};
use privpath::graph::gen::{road_like, RoadGenConfig};
use proptest::prelude::*;

fn cfg_small() -> BuildConfig {
    let mut cfg = BuildConfig::default();
    cfg.spec.page_size = 512;
    cfg.plan_sample = 32; // sampled plans for speed; violations asserted below
    cfg.plan_margin = 1.0;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// CI answers are optimal and traces uniform on random road networks
    /// with random queries.
    #[test]
    fn ci_optimal_on_random_networks(
        seed in 0u64..10_000,
        nodes in 120usize..350,
        queries in proptest::collection::vec((0u32..100_000, 0u32..100_000), 4..8),
    ) {
        let net = road_like(&RoadGenConfig { nodes, seed, ..Default::default() });
        let n = net.num_nodes() as u32;
        let mut engine = Engine::build(&net, SchemeKind::Ci, &cfg_small()).expect("build");
        let mut traces = Vec::new();
        for (rs, rt) in queries {
            let (s, t) = (rs % n, rt % n);
            if s == t { continue; }
            let out = engine.query_nodes(&net, s, t).expect("query");
            prop_assert_eq!(out.answer.cost.unwrap_or(INFINITY), distance(&net, s, t));
            traces.push(out.trace);
        }
        prop_assert!(assert_indistinguishable(&traces).is_ok());
    }

    /// PI agrees with CI (and with plain Dijkstra) on random inputs.
    #[test]
    fn pi_matches_ci_on_random_networks(
        seed in 0u64..10_000,
        nodes in 120usize..300,
    ) {
        let net = road_like(&RoadGenConfig { nodes, seed, ..Default::default() });
        let n = net.num_nodes() as u32;
        let mut ci = Engine::build(&net, SchemeKind::Ci, &cfg_small()).expect("ci");
        let mut pi = Engine::build(&net, SchemeKind::Pi, &cfg_small()).expect("pi");
        for k in 0..5u32 {
            let (s, t) = ((k * 41 + 1) % n, (k * 97 + 55) % n);
            if s == t { continue; }
            let a = ci.query_nodes(&net, s, t).expect("ci query");
            let b = pi.query_nodes(&net, s, t).expect("pi query");
            prop_assert_eq!(a.answer.cost, b.answer.cost);
            prop_assert_eq!(a.answer.cost.unwrap_or(INFINITY), distance(&net, s, t));
        }
    }

    /// The decoded-path cost always verifies against the edge weights the
    /// client received (internal consistency of file formats end to end).
    #[test]
    fn path_costs_internally_consistent(
        seed in 0u64..10_000,
        nodes in 100usize..250,
    ) {
        let net = road_like(&RoadGenConfig { nodes, seed, ..Default::default() });
        let n = net.num_nodes() as u32;
        let mut engine = Engine::build(&net, SchemeKind::Hy, &cfg_small()).expect("build");
        for k in 0..4u32 {
            let (s, t) = ((k * 13) % n, (k * 89 + 31) % n);
            if s == t { continue; }
            let out = engine.query_nodes(&net, s, t).expect("query");
            if let Some(cost) = out.answer.cost {
                // recompute the cost along the returned node path using the
                // true network weights
                let mut total = 0u64;
                for w in out.answer.path_nodes.windows(2) {
                    let arc = (0..net.num_arcs() as u32)
                        .find(|&e| net.edge_endpoints(e) == (w[0], w[1]))
                        .expect("path edge must exist in the network");
                    total += u64::from(net.edge_weight(arc));
                }
                prop_assert_eq!(total, cost);
            }
        }
    }
}
