//! Property-based tests over randomized networks and query workloads: the
//! core invariants of the system must hold for *any* input, not just the
//! hand-picked ones.

use privpath::core::audit::assert_indistinguishable;
use privpath::core::config::BuildConfig;
use privpath::core::engine::{Engine, SchemeKind};
use privpath::core::subgraph::{reference::HashSubgraph, ClientSubgraph};
use privpath::graph::dijkstra::{distance, INFINITY};
use privpath::graph::gen::{road_like, RoadGenConfig};
use proptest::prelude::*;

fn cfg_small() -> BuildConfig {
    let mut cfg = BuildConfig::default();
    cfg.spec.page_size = 512;
    cfg.plan_sample = 32; // sampled plans for speed; violations asserted below
    cfg.plan_margin = 1.0;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// CI answers are optimal and traces uniform on random road networks
    /// with random queries.
    #[test]
    fn ci_optimal_on_random_networks(
        seed in 0u64..10_000,
        nodes in 120usize..350,
        queries in proptest::collection::vec((0u32..100_000, 0u32..100_000), 4..8),
    ) {
        let net = road_like(&RoadGenConfig { nodes, seed, ..Default::default() });
        let n = net.num_nodes() as u32;
        let mut engine = Engine::build(&net, SchemeKind::Ci, &cfg_small()).expect("build");
        let mut traces = Vec::new();
        for (rs, rt) in queries {
            let (s, t) = (rs % n, rt % n);
            if s == t { continue; }
            let out = engine.query_nodes(&net, s, t).expect("query");
            prop_assert_eq!(out.answer.cost.unwrap_or(INFINITY), distance(&net, s, t));
            traces.push(out.trace);
        }
        prop_assert!(assert_indistinguishable(&traces).is_ok());
    }

    /// PI agrees with CI (and with plain Dijkstra) on random inputs.
    #[test]
    fn pi_matches_ci_on_random_networks(
        seed in 0u64..10_000,
        nodes in 120usize..300,
    ) {
        let net = road_like(&RoadGenConfig { nodes, seed, ..Default::default() });
        let n = net.num_nodes() as u32;
        let mut ci = Engine::build(&net, SchemeKind::Ci, &cfg_small()).expect("ci");
        let mut pi = Engine::build(&net, SchemeKind::Pi, &cfg_small()).expect("pi");
        for k in 0..5u32 {
            let (s, t) = ((k * 41 + 1) % n, (k * 97 + 55) % n);
            if s == t { continue; }
            let a = ci.query_nodes(&net, s, t).expect("ci query");
            let b = pi.query_nodes(&net, s, t).expect("pi query");
            prop_assert_eq!(a.answer.cost, b.answer.cost);
            prop_assert_eq!(a.answer.cost.unwrap_or(INFINITY), distance(&net, s, t));
        }
    }

    /// The decoded-path cost always verifies against the edge weights the
    /// client received (internal consistency of file formats end to end).
    #[test]
    fn path_costs_internally_consistent(
        seed in 0u64..10_000,
        nodes in 100usize..250,
    ) {
        let net = road_like(&RoadGenConfig { nodes, seed, ..Default::default() });
        let n = net.num_nodes() as u32;
        let mut engine = Engine::build(&net, SchemeKind::Hy, &cfg_small()).expect("build");
        for k in 0..4u32 {
            let (s, t) = ((k * 13) % n, (k * 89 + 31) % n);
            if s == t { continue; }
            let out = engine.query_nodes(&net, s, t).expect("query");
            if let Some(cost) = out.answer.cost {
                // recompute the cost along the returned node path using the
                // true network weights
                let mut total = 0u64;
                for w in out.answer.path_nodes.windows(2) {
                    let arc = (0..net.num_arcs() as u32)
                        .find(|&e| net.edge_endpoints(e) == (w[0], w[1]))
                        .expect("path edge must exist in the network");
                    total += u64::from(net.edge_weight(arc));
                }
                prop_assert_eq!(total, cost);
            }
        }
    }

    /// The CSR client Dijkstra agrees with the `HashMap` reference it
    /// replaced on arbitrary multigraph views (duplicate arcs, self-loops,
    /// disconnected nodes included).
    #[test]
    fn csr_dijkstra_matches_hashmap_reference(
        n in 2u32..60,
        edges in proptest::collection::vec((0u32..1000, 0u32..1000, 1u32..500), 1..150),
        ends in (0u32..1000, 0u32..1000),
    ) {
        let triples: Vec<(u32, u32, u32)> =
            edges.into_iter().map(|(u, v, w)| (u % n, v % n, w)).collect();
        let (s, t) = (ends.0 % n, ends.1 % n);
        if s == t { return Ok(()); }
        let mut csr = ClientSubgraph::new();
        csr.add_edges(&triples);
        let mut href = HashSubgraph::new();
        href.add_edges(&triples);
        let got = csr.shortest_path(s, t);
        let want = href.shortest_path(s, t);
        prop_assert_eq!(got.as_ref().map(|(c, _)| *c), want.as_ref().map(|(c, _)| *c));
        // When a path exists, both views must report a cost-consistent path.
        if let (Some((cost, path)), Some(_)) = (&got, &want) {
            prop_assert_eq!(path.first(), Some(&s));
            prop_assert_eq!(path.last(), Some(&t));
            let mut walked = 0u64;
            for w in path.windows(2) {
                let cheapest = triples
                    .iter()
                    .filter(|&&(a, b, _)| a == w[0] && b == w[1])
                    .map(|&(_, _, wt)| u64::from(wt))
                    .min();
                prop_assert!(cheapest.is_some(), "path uses a non-edge {:?}", w);
                walked += cheapest.unwrap();
            }
            prop_assert_eq!(walked, *cost);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// `RoadNetwork::reweighted` — the update feed for PR 8's generation
    /// rebuilds — must preserve topology exactly (same nodes, arcs and
    /// endpoints, so queries planned against the old network remain valid),
    /// keep every jittered weight within the documented ±20% envelope
    /// (clamped at 1), and be a pure function of `(network, seed)`.
    #[test]
    fn reweighted_preserves_topology_and_bounds_weights(
        seed in 0u64..10_000,
        reseed in 0u64..10_000,
        nodes in 80usize..250,
    ) {
        let net = road_like(&RoadGenConfig { nodes, seed, ..Default::default() });
        let jittered = net.reweighted(reseed);
        prop_assert_eq!(jittered.num_nodes(), net.num_nodes());
        prop_assert_eq!(jittered.num_arcs(), net.num_arcs());
        for e in 0..net.num_arcs() as u32 {
            prop_assert_eq!(jittered.edge_endpoints(e), net.edge_endpoints(e));
            let (w, j) = (u64::from(net.edge_weight(e)), u64::from(jittered.edge_weight(e)));
            prop_assert!(j >= ((w * 80) / 100).max(1), "arc {}: {} fell below -20% of {}", e, j, w);
            prop_assert!(j <= (w * 120 + 50) / 100, "arc {}: {} exceeds +20% of {}", e, j, w);
        }
        let again = net.reweighted(reseed);
        for e in 0..net.num_arcs() as u32 {
            prop_assert_eq!(again.edge_weight(e), jittered.edge_weight(e));
        }
    }

    /// The registry's generation counter under concurrent publishers: ids
    /// are handed out exactly once, strictly increasing, and every reader
    /// snapshot ([`DbRegistry::current`]) is internally consistent — an id
    /// never runs backwards between two observations.
    #[test]
    fn registry_generations_are_coherent_under_concurrent_publishes(
        seed in 0u64..10_000,
    ) {
        use privpath::core::engine::Database;
        use privpath::core::DbRegistry;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let net = road_like(&RoadGenConfig { nodes: 60, seed, ..Default::default() });
        let db = Arc::new(Database::build(&net, SchemeKind::Ci, &cfg_small()).expect("build"));
        let registry = DbRegistry::new(Arc::clone(&db));
        const PUBLISHERS: usize = 4;
        const PER_THREAD: u64 = 8;
        let done = AtomicBool::new(false);
        let ids: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let reader = scope.spawn(|| {
                let mut last = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let (id, cur) = registry.current();
                    assert!(id >= last, "generation ran backwards: {last} -> {id}");
                    assert_eq!(cur.kind(), SchemeKind::Ci, "snapshot pair incoherent");
                    last = id;
                    std::hint::spin_loop();
                }
            });
            let handles: Vec<_> = (0..PUBLISHERS)
                .map(|_| {
                    let db = Arc::clone(&db);
                    let registry = &registry;
                    scope.spawn(move || {
                        (0..PER_THREAD)
                            .map(|_| registry.publish(Arc::clone(&db)).expect("publish"))
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            let ids = handles.into_iter().map(|h| h.join().expect("publisher")).collect();
            done.store(true, Ordering::Relaxed);
            reader.join().expect("reader");
            ids
        });
        // each thread's ids strictly increase (publishes are ordered)...
        for per_thread in &ids {
            prop_assert!(per_thread.windows(2).all(|w| w[0] < w[1]));
        }
        // ... and globally every id in 2..=N+1 was handed out exactly once
        let mut all: Vec<u64> = ids.into_iter().flatten().collect();
        all.sort_unstable();
        let want: Vec<u64> = (2..=(PUBLISHERS as u64 * PER_THREAD + 1)).collect();
        prop_assert_eq!(all, want);
        prop_assert_eq!(registry.generation(), PUBLISHERS as u64 * PER_THREAD + 1);
    }

    /// Every scheme's full protocol — all of which now build into a
    /// `Database` and query through a `QuerySession`, solving on the CSR
    /// client arena — returns reference-optimal Dijkstra costs on seeded
    /// random networks. Includes the non-PIR OBF baseline.
    #[test]
    fn all_schemes_match_reference_dijkstra(
        seed in 0u64..10_000,
        nodes in 100usize..200,
    ) {
        let net = road_like(&RoadGenConfig { nodes, seed, ..Default::default() });
        let n = net.num_nodes() as u32;
        for kind in [
            SchemeKind::Ci,
            SchemeKind::Pi,
            SchemeKind::Hy,
            SchemeKind::PiStar,
            SchemeKind::Lm,
            SchemeKind::Af,
            SchemeKind::Obf,
        ] {
            let mut engine = Engine::build(&net, kind, &cfg_small()).expect("build");
            for k in 0..3u32 {
                let (s, t) = ((k * 53 + seed as u32) % n, (k * 151 + 29) % n);
                if s == t { continue; }
                let out = engine.query_nodes(&net, s, t).expect("query");
                prop_assert_eq!(
                    out.answer.cost.unwrap_or(INFINITY),
                    distance(&net, s, t),
                    "{} disagrees with reference Dijkstra for {}->{}",
                    kind.name(), s, t
                );
            }
        }
    }
}
