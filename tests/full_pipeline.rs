//! Cross-crate integration tests: the full pipeline from network generation
//! through partitioning, pre-computation, file formation, PIR protocol, and
//! client-side path computation.

use privpath::core::audit::assert_indistinguishable;
use privpath::core::config::BuildConfig;
use privpath::core::engine::{Engine, SchemeKind};
use privpath::graph::dijkstra::{distance, INFINITY};
use privpath::graph::gen::{grid_network, road_like, GridGenConfig, RoadGenConfig};
use privpath::graph::network::RoadNetwork;

fn cfg_small() -> BuildConfig {
    let mut cfg = BuildConfig::default();
    cfg.spec.page_size = 512;
    cfg.plan_sample = 0;
    cfg
}

fn all_schemes() -> [SchemeKind; 6] {
    [
        SchemeKind::Ci,
        SchemeKind::Pi,
        SchemeKind::Hy,
        SchemeKind::PiStar,
        SchemeKind::Lm,
        SchemeKind::Af,
    ]
}

fn verify_costs(net: &RoadNetwork, engine: &mut Engine, pairs: &[(u32, u32)]) {
    for &(s, t) in pairs {
        let out = engine.query_nodes(net, s, t).expect("query");
        let want = distance(net, s, t);
        assert_eq!(
            out.answer.cost.unwrap_or(INFINITY),
            want,
            "{}: cost mismatch {s}->{t}",
            engine.kind().name()
        );
        if out.answer.found() {
            // returned node path must chain from s to t
            assert_eq!(out.answer.path_nodes.first(), Some(&s));
            assert_eq!(out.answer.path_nodes.last(), Some(&t));
        }
    }
}

#[test]
fn every_scheme_on_a_grid_city() {
    // Grids have massive coordinate ties — the partition builders' boundary
    // handling gets exercised hard here.
    let net = grid_network(&GridGenConfig {
        nx: 15,
        ny: 15,
        ..Default::default()
    });
    let pairs: Vec<(u32, u32)> = (0..10u32)
        .map(|k| ((k * 17) % 225, (k * 101 + 60) % 225))
        .collect();
    for kind in all_schemes() {
        let mut engine = Engine::build(&net, kind, &cfg_small())
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        verify_costs(&net, &mut engine, &pairs);
    }
}

#[test]
fn every_scheme_on_a_road_network() {
    let net = road_like(&RoadGenConfig {
        nodes: 280,
        seed: 2024,
        ..Default::default()
    });
    let n = net.num_nodes() as u32;
    let pairs: Vec<(u32, u32)> = (0..10u32)
        .map(|k| ((k * 37) % n, (k * 211 + 13) % n))
        .collect();
    for kind in all_schemes() {
        let mut engine = Engine::build(&net, kind, &cfg_small())
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        verify_costs(&net, &mut engine, &pairs);
    }
}

#[test]
fn traces_uniform_across_schemes_and_extreme_queries() {
    // Adjacent nodes, identical regions, antipodal extremes — all must look
    // the same.
    let net = road_like(&RoadGenConfig {
        nodes: 300,
        seed: 77,
        ..Default::default()
    });
    let n = net.num_nodes() as u32;
    let pairs = [
        (0u32, 1u32),
        (5, 6),
        (0, n - 1),
        (n / 2, n / 2 + 1),
        (3, n / 3),
    ];
    for kind in all_schemes() {
        let mut engine = Engine::build(&net, kind, &cfg_small()).expect("build");
        let mut traces = Vec::new();
        for &(s, t) in &pairs {
            let out = engine.query_nodes(&net, s, t).expect("query");
            assert!(!out.plan_violation, "{}: plan violation", kind.name());
            traces.push(out.trace);
        }
        assert_indistinguishable(&traces).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
    }
}

#[test]
fn same_region_queries_work() {
    let net = road_like(&RoadGenConfig {
        nodes: 300,
        seed: 3,
        ..Default::default()
    });
    let mut engine = Engine::build(&net, SchemeKind::Ci, &cfg_small()).expect("build");
    // find two nodes in the same region by probing close ids
    let stats_regions = engine.stats().regions;
    assert!(stats_regions > 1);
    for (s, t) in [(0u32, 1u32), (10, 11), (100, 101)] {
        let out = engine.query_nodes(&net, s, t).expect("query");
        assert_eq!(out.answer.cost.unwrap_or(u64::MAX), distance(&net, s, t));
    }
}

#[test]
fn tampering_is_detected() {
    let net = road_like(&RoadGenConfig {
        nodes: 200,
        seed: 4,
        ..Default::default()
    });
    let mut cfg = cfg_small();
    cfg.pir_mode = privpath::pir::PirMode::Faulty {
        corrupt_fetches: vec![1],
    };
    let mut engine = Engine::build(&net, SchemeKind::Ci, &cfg).expect("build");
    let err = engine
        .query_nodes(&net, 0, 150)
        .expect_err("corruption must surface");
    let msg = err.to_string();
    assert!(msg.contains("checksum"), "unexpected error: {msg}");
}

#[test]
fn tampering_mid_batch_is_detected_same_as_per_fetch() {
    use privpath::core::engine::Database;
    use std::sync::Arc;
    // A CI query's round four is a single server batch of (m+2) data pages.
    // Corrupt the data file's fetch sequence number 5 — a page deep inside
    // that batch — and check the client's page checksum catches it, under
    // both batched and per-fetch execution (a batch of k pages consumes k
    // sequence numbers in issue order, so the same logical fetch is hit).
    let net = road_like(&RoadGenConfig {
        nodes: 200,
        seed: 4,
        ..Default::default()
    });
    let mut cfg = cfg_small();
    cfg.pir_mode = privpath::pir::PirMode::Faulty {
        corrupt_fetches: vec![5],
    };
    for batched in [true, false] {
        let db = Arc::new(Database::build(&net, SchemeKind::Ci, &cfg).expect("build"));
        let mut session = db.session();
        session.set_batched(batched);
        let err = session
            .query_nodes(&net, 0, 150)
            .expect_err("mid-batch corruption must surface");
        let msg = err.to_string();
        assert!(
            msg.contains("checksum"),
            "batched={batched}: unexpected error: {msg}"
        );
    }
}

#[test]
fn tampering_mid_batch_is_detected_identically_over_the_wire() {
    use privpath::core::engine::Database;
    use std::sync::Arc;
    // The FaultyStore consumes one corruption sequence number per batched
    // page in issue order — and the wire transport serves a round through
    // the exact same store pass as the in-process path, so a fault
    // scheduled mid-batch (data-file fetch #5, deep inside CI's round-four
    // batch) must be detected by the client's page checksum at the same
    // logical fetch whether the round crossed a wire or not. Two separate
    // builds (identical nets and configs produce identical stores) keep
    // the two transports' fault schedules independent.
    let net = road_like(&RoadGenConfig {
        nodes: 200,
        seed: 4,
        ..Default::default()
    });
    let mut cfg = cfg_small();
    cfg.pir_mode = privpath::pir::PirMode::Faulty {
        corrupt_fetches: vec![5],
    };
    let probe = |wire: bool| -> String {
        let db = Arc::new(Database::build(&net, SchemeKind::Ci, &cfg).expect("build"));
        if wire {
            let front = db.serve_wire();
            let mut session = db.wire_session_with_seed(&front, 7).expect("connect");
            let err = session
                .query_nodes(&net, 0, 150)
                .expect_err("wire corruption must surface");
            err.to_string()
        } else {
            let mut session = db.session_with_seed(7);
            let err = session
                .query_nodes(&net, 0, 150)
                .expect_err("in-process corruption must surface");
            err.to_string()
        }
    };
    let inproc_msg = probe(false);
    let wire_msg = probe(true);
    assert!(inproc_msg.contains("checksum"), "in-proc: {inproc_msg}");
    assert!(wire_msg.contains("checksum"), "wire: {wire_msg}");
    assert_eq!(
        inproc_msg, wire_msg,
        "the same logical fetch must fail on both transports"
    );
}

#[test]
fn directed_one_way_roads() {
    // Take a road network and drop the reverse arcs of a fraction of
    // segments: costs must still be optimal (and possibly asymmetric).
    let base = road_like(&RoadGenConfig {
        nodes: 250,
        seed: 8,
        ..Default::default()
    });
    let mut b = privpath::graph::NetworkBuilder::new();
    for u in 0..base.num_nodes() as u32 {
        b.add_node(base.node_point(u));
    }
    for e in 0..base.num_arcs() as u32 {
        let (u, v) = base.edge_endpoints(e);
        // keep all forward arcs, drop reverse arcs where (u+v) % 5 == 0
        if u < v || (u + v) % 5 != 0 {
            b.add_arc(u, v, base.edge_weight(e));
        }
    }
    let net = b.build();
    let mut engine = Engine::build(&net, SchemeKind::Ci, &cfg_small()).expect("build");
    let n = net.num_nodes() as u32;
    for k in 0..8u32 {
        let (s, t) = ((k * 31) % n, (k * 73 + 11) % n);
        if s == t {
            continue;
        }
        let out = engine.query_nodes(&net, s, t).expect("query");
        assert_eq!(
            out.answer.cost.unwrap_or(INFINITY),
            distance(&net, s, t),
            "{s}->{t}"
        );
    }
}

#[test]
fn arbitrary_query_points_snap_to_host_regions() {
    let net = road_like(&RoadGenConfig {
        nodes: 300,
        seed: 12,
        ..Default::default()
    });
    let mut engine = Engine::build(&net, SchemeKind::Pi, &cfg_small()).expect("build");
    // points that are NOT node coordinates
    let (min, max) = net.bounding_box().unwrap();
    let s = privpath::graph::Point::new(min.x + 37, min.y + 91);
    let t = privpath::graph::Point::new(max.x - 53, max.y - 17);
    let out = engine.query(s, t).expect("query");
    assert!(out.answer.found());
    // the snapped endpoints must exist and the cost must match a direct
    // computation between them
    let want = distance(&net, out.answer.src_node, out.answer.dst_node);
    assert_eq!(out.answer.cost, Some(want));
}

/// PR 8 end-to-end hot swap over real sockets: a [`DbRegistry`] serves the
/// full pipeline through a TCP front while a background worker rebuilds
/// the database from reweighted edges. The pinned session drains on
/// generation 1 with optimal answers for the *old* weights, a stale reopen
/// is a typed retryable error, and a fresh session plans and answers
/// optimally against the *new* weights — the whole swap across a socket.
#[test]
fn tcp_hot_swap_serves_both_generations_end_to_end() {
    use privpath::core::engine::Database;
    use privpath::core::DbRegistry;
    use privpath::pir::RetryPolicy;
    use std::sync::Arc;
    use std::time::Duration;

    let net = road_like(&RoadGenConfig {
        nodes: 200,
        seed: 61,
        ..Default::default()
    });
    let net2 = net.reweighted(0xBEE5);
    let n = net.num_nodes() as u32;
    let db = Arc::new(Database::build(&net, SchemeKind::Ci, &cfg_small()).expect("build gen 1"));
    let registry = DbRegistry::new(Arc::clone(&db));
    let front = registry.serve_tcp().expect("bind loopback front");

    let mut pinned = registry
        .tcp_session_with_seed(&front, 0x5eed)
        .expect("connect gen 1");
    let out = pinned
        .query_nodes(&net, 0, 150 % n)
        .expect("pre-swap query");
    assert_eq!(
        out.answer.cost.unwrap_or(INFINITY),
        distance(&net, 0, 150 % n)
    );

    // rebuild from the reweighted network on the worker thread
    let rebuilt = net2.clone();
    let handle = registry.rebuild_in_background(
        move || Database::build(&rebuilt, SchemeKind::Ci, &cfg_small()),
        RetryPolicy {
            max_attempts: 2,
            attempt_timeout: None,
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            deadline: Some(Duration::from_secs(60)),
        },
    );
    // ... while the pinned session keeps draining on generation 1
    for k in 1..4u32 {
        let (s, t) = ((k * 41) % n, (k * 97 + 23) % n);
        if s == t {
            continue;
        }
        let out = pinned
            .query_nodes(&net, s, t)
            .expect("serving must not hiccup during the rebuild");
        assert_eq!(
            out.answer.cost.unwrap_or(INFINITY),
            distance(&net, s, t),
            "pinned session must answer for the old weights: {s}->{t}"
        );
    }
    assert_eq!(
        handle.wait().expect("rebuild"),
        2,
        "publish as generation 2"
    );

    // the pinned session still drains on generation 1 after the cutover
    let out = pinned.query_nodes(&net, 5, 120 % n).expect("drain query");
    assert_eq!(
        out.answer.cost.unwrap_or(INFINITY),
        distance(&net, 5, 120 % n)
    );
    pinned.close().expect("drain close");

    // reopening with the stale generation is typed and retryable
    let stale = front.connect_expecting(RetryPolicy::none(), 1);
    match stale {
        Err(e) => assert!(e.is_retryable(), "staleness must invite a retry: {e}"),
        Ok(_) => panic!("stale expectation must fail after the swap"),
    }

    // a fresh session opens on generation 2 and answers for the new weights
    let mut fresh = registry
        .tcp_session_with_seed(&front, 0xfeed)
        .expect("connect gen 2");
    for k in 0..3u32 {
        let (s, t) = ((k * 53 + 7) % n, (k * 113 + 31) % n);
        if s == t {
            continue;
        }
        let out = fresh.query_nodes(&net2, s, t).expect("gen-2 query");
        assert_eq!(
            out.answer.cost.unwrap_or(INFINITY),
            distance(&net2, s, t),
            "fresh session must answer for the new weights: {s}->{t}"
        );
    }
    fresh.close().expect("close");
    front.shutdown();
}

#[test]
fn db_size_scaling_pi_vs_hy_vs_ci() {
    // Figure 10/12 structure: CI smallest, HY between, PI largest.
    let net = road_like(&RoadGenConfig {
        nodes: 500,
        seed: 21,
        ..Default::default()
    });
    let mut cfg = cfg_small();
    let ci = Engine::build(&net, SchemeKind::Ci, &cfg).expect("ci");
    cfg.hy_threshold = Some(6);
    let hy = Engine::build(&net, SchemeKind::Hy, &cfg).expect("hy");
    let pi = Engine::build(&net, SchemeKind::Pi, &cfg).expect("pi");
    assert!(
        ci.db_bytes() < hy.db_bytes(),
        "CI {} < HY {}",
        ci.db_bytes(),
        hy.db_bytes()
    );
    assert!(
        hy.db_bytes() < pi.db_bytes(),
        "HY {} < PI {}",
        hy.db_bytes(),
        pi.db_bytes()
    );
}

#[test]
fn pir_file_limit_rejects_oversized_index() {
    // A tiny SCP makes PI inapplicable — the §7.5 regime.
    let net = road_like(&RoadGenConfig {
        nodes: 400,
        seed: 22,
        ..Default::default()
    });
    let mut cfg = cfg_small();
    cfg.spec.scp_memory_bytes = 48 << 10; // 48 KB SCP
    let err = Engine::build(&net, SchemeKind::Pi, &cfg);
    assert!(err.is_err(), "PI should exceed the PIR file limit");
    // CI still fits
    let ci = Engine::build(&net, SchemeKind::Ci, &cfg);
    assert!(
        ci.is_ok(),
        "CI should fit: {:?}",
        ci.err().map(|e| e.to_string())
    );
}
