//! Durability suite: crash-safe snapshots and cold-start recovery (PR 9).
//!
//! The paper's server is long-lived: the LBS builds the database once
//! (§5.2-§5.5) and serves queries indefinitely. PR 9 makes that build
//! *durable* — [`Database::persist`] writes one integrity-checked snapshot
//! file (atomic rename, per-page CRCs) and
//! [`DbRegistry::recover`] cold-starts from the newest valid snapshot in a
//! directory. This suite is the kill-and-restart story end to end:
//!
//! * a server that persists, "crashes" (every in-memory structure
//!   dropped), and recovers from disk answers the same workload
//!   bit-identically — costs, paths, and access traces — on both the
//!   disk-backed and memory-resident drivers;
//! * a torn or truncated newest snapshot is skipped: recovery falls back
//!   to the newest *valid* generation with a working database, and a
//!   directory holding only garbage fails with a typed error, never a
//!   panic;
//! * persistence is deterministic: the same built database snapshots to
//!   byte-identical files, so backup tooling can de-duplicate and a
//!   re-persist after recovery is a no-op at the byte level.
//!
//! The privacy half — that the disk-backed driver is observably identical
//! to in-memory per scheme — lives in `tests/leakage.rs`.

use privpath::core::config::BuildConfig;
use privpath::core::engine::{Database, QueryOutput, SchemeKind};
use privpath::core::{CoreError, DbRegistry, StorageBackend};
use privpath::graph::dijkstra::{distance, INFINITY};
use privpath::graph::gen::{road_like, RoadGenConfig};
use privpath::graph::network::RoadNetwork;
use privpath::pir::PirMode;
use std::sync::Arc;

fn test_net(nodes: usize, seed: u64) -> RoadNetwork {
    road_like(&RoadGenConfig {
        nodes,
        seed,
        ..Default::default()
    })
}

fn small_cfg() -> BuildConfig {
    let mut cfg = BuildConfig::default();
    cfg.spec.page_size = 512;
    cfg.plan_sample = 0;
    cfg.pir_mode = PirMode::LinearScan;
    cfg
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("privpath-dura-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Runs a fixed wire workload (same seed, same pairs) against `registry`
/// and returns the outputs.
fn run_workload(
    registry: &Arc<DbRegistry>,
    net: &RoadNetwork,
    pairs: &[(u32, u32)],
    seed: u64,
) -> Vec<QueryOutput> {
    let front = registry.serve_wire();
    let (_, db) = registry.current();
    let mut session = db.wire_session_with_seed(&front, seed).expect("connect");
    let outs: Vec<QueryOutput> = pairs
        .iter()
        .map(|&(s, t)| {
            session
                .query_nodes(net, s, t)
                .unwrap_or_else(|e| panic!("query {s}->{t}: {e}"))
        })
        .collect();
    session.close().expect("close");
    front.shutdown();
    outs
}

fn workload_pairs(net: &RoadNetwork) -> Vec<(u32, u32)> {
    let n = net.num_nodes() as u32;
    (1..=6u32)
        .map(|q| ((q * 151 + 7) % n, (q * 271 + 61) % n))
        .filter(|(s, t)| s != t)
        .collect()
}

/// The acceptance round trip: build, serve, persist, *crash* (drop every
/// in-memory structure), recover from the directory, and serve the same
/// workload — answers, paths, and traces bit-identical on both storage
/// backends, and the recovered registry keeps the persisted generation.
#[test]
fn kill_and_restart_recovers_the_newest_generation_exactly() {
    let net = test_net(200, 33);
    let dir = temp_dir("restart");
    let pairs;
    let before;
    {
        let db = Database::build(&net, SchemeKind::Ci, &small_cfg()).expect("build");
        let registry = DbRegistry::with_generation(Arc::new(db), 4);
        pairs = workload_pairs(&net);
        before = run_workload(&registry, &net, &pairs, 0xdead_5eed);
        let (generation, path) = registry.persist_current(&dir).expect("persist");
        assert_eq!(generation, 4);
        assert!(path.ends_with("gen-4.snap"));
    } // <- the "crash": registry, database, server, sessions all dropped

    for backend in [
        StorageBackend::Disk,
        StorageBackend::Mem,
        StorageBackend::Mmap,
    ] {
        let recovered = DbRegistry::recover(&dir, backend)
            .unwrap_or_else(|e| panic!("recover ({}) failed: {e}", backend.name()));
        assert_eq!(recovered.generation(), 4, "recovered generation");
        let after = run_workload(&recovered, &net, &pairs, 0xdead_5eed);
        assert_eq!(before.len(), after.len());
        for (k, (b, a)) in before.iter().zip(&after).enumerate() {
            let (s, t) = pairs[k];
            assert_eq!(
                a.answer.cost.unwrap_or(INFINITY),
                distance(&net, s, t),
                "{}: wrong cost for {s}->{t} after restart",
                backend.name()
            );
            assert_eq!(b.answer.cost, a.answer.cost);
            assert_eq!(b.answer.path_nodes, a.answer.path_nodes);
            assert_eq!(
                b.trace,
                a.trace,
                "{}: trace drifted across the restart for {s}->{t}",
                backend.name()
            );
            assert!(!a.plan_violation);
        }
    }
}

/// A torn newest snapshot (interrupted write) and a truncated middle one
/// are both skipped: recovery lands on the newest *valid* generation and
/// serves correct answers. A directory holding only garbage yields a
/// typed error — never a panic, never a half-open database.
#[test]
fn recovery_skips_torn_and_truncated_snapshots() {
    let net = test_net(160, 7);
    let dir = temp_dir("torn");
    let db = Database::build(&net, SchemeKind::Ci, &small_cfg()).expect("build");
    let registry = DbRegistry::new(Arc::new(db));
    let (generation, valid_path) = registry.persist_current(&dir).expect("persist");
    assert_eq!(generation, 1);
    drop(registry);

    // gen-5: the first half of a valid snapshot (a crash mid-copy);
    // gen-9: pure garbage (a torn direct write).
    let valid = std::fs::read(&valid_path).expect("read snapshot");
    std::fs::write(
        DbRegistry::snapshot_path(&dir, 5),
        &valid[..valid.len() / 2],
    )
    .expect("write truncated");
    std::fs::write(DbRegistry::snapshot_path(&dir, 9), b"not a snapshot").expect("write torn");

    let recovered = DbRegistry::recover(&dir, StorageBackend::Disk).expect("recover");
    assert_eq!(
        recovered.generation(),
        1,
        "must fall back past gen-9 and gen-5 to the valid gen-1"
    );
    let pairs = workload_pairs(&net);
    let outs = run_workload(&recovered, &net, &pairs, 0x70a5);
    for (k, out) in outs.iter().enumerate() {
        let (s, t) = pairs[k];
        assert_eq!(out.answer.cost.unwrap_or(INFINITY), distance(&net, s, t));
    }

    // Only garbage left: a typed error, not a panic.
    let garbage = temp_dir("garbage");
    std::fs::write(DbRegistry::snapshot_path(&garbage, 2), b"junk").expect("write junk");
    let err = match DbRegistry::recover(&garbage, StorageBackend::Disk) {
        Err(e) => e,
        Ok(_) => panic!("recovering a garbage-only directory must fail"),
    };
    assert!(
        matches!(err, CoreError::Storage(_)),
        "want the newest snapshot's typed storage error, got: {err}"
    );
}

/// Persistence is deterministic: the same built database snapshots to
/// byte-identical files, and a recover → re-persist round trip reproduces
/// the original bytes exactly.
#[test]
fn persisted_snapshots_are_byte_stable() {
    let net = test_net(140, 11);
    let dir = temp_dir("stable");
    let db = Database::build(&net, SchemeKind::Ci, &small_cfg()).expect("build");
    let a = dir.join("a.snap");
    let b = dir.join("b.snap");
    db.persist(&a).expect("persist a");
    db.persist(&b).expect("persist b");
    let bytes_a = std::fs::read(&a).expect("read a");
    assert_eq!(
        bytes_a,
        std::fs::read(&b).expect("read b"),
        "persist must be deterministic"
    );

    let reopened = Database::open_snapshot(&a, StorageBackend::Mem).expect("reopen");
    let c = dir.join("c.snap");
    reopened.persist(&c).expect("re-persist");
    assert_eq!(
        bytes_a,
        std::fs::read(&c).expect("read c"),
        "recover -> re-persist must reproduce the snapshot bit for bit"
    );
}
