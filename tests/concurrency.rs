//! Concurrency tests: N `QuerySession`s over one `Arc`-shared `Database`
//! must return the same (optimal) answers as a lone session, keep their
//! accounting fully independent, and stay indistinguishable to the
//! adversary no matter how queries interleave across clients.

use privpath::core::audit::assert_indistinguishable;
use privpath::core::config::BuildConfig;
use privpath::core::engine::{Database, QueryOutput, SchemeKind};
use privpath::graph::dijkstra::{distance, INFINITY};
use privpath::graph::gen::{road_like, RoadGenConfig};
use privpath::graph::network::RoadNetwork;
use privpath::pir::PirMode;
use std::sync::Arc;

fn test_net(nodes: usize, seed: u64) -> RoadNetwork {
    road_like(&RoadGenConfig {
        nodes,
        seed,
        extra_edge_frac: 0.15,
        ..Default::default()
    })
}

fn small_cfg() -> BuildConfig {
    let mut cfg = BuildConfig::default();
    cfg.spec.page_size = 512;
    cfg.plan_sample = 64;
    cfg.plan_margin = 1.0;
    cfg
}

/// Runs `counts[k]` queries on thread `k`, all against one shared database.
/// Returns, per thread, the `(s, t, output)` of every query it ran.
fn run_parallel(
    db: &Arc<Database>,
    net: &RoadNetwork,
    counts: &[usize],
) -> Vec<Vec<(u32, u32, QueryOutput)>> {
    let n = net.num_nodes() as u32;
    std::thread::scope(|scope| {
        let handles: Vec<_> = counts
            .iter()
            .enumerate()
            .map(|(k, &count)| {
                let db = Arc::clone(db);
                scope.spawn(move || {
                    let mut session = db.session_with_seed(0xc0ffee + k as u64);
                    let mut outs = Vec::new();
                    let mut q = 0u32;
                    while outs.len() < count {
                        q += 1;
                        let s = (q * 131 + 7 + k as u32 * 37) % n;
                        let t = (q * 277 + 83 + k as u32 * 11) % n;
                        if s == t {
                            continue;
                        }
                        let out = session
                            .query_nodes(net, s, t)
                            .unwrap_or_else(|e| panic!("thread {k}: query {s}->{t}: {e}"));
                        outs.push((s, t, out));
                    }
                    outs
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query thread panicked"))
            .collect()
    })
}

#[test]
fn parallel_sessions_agree_and_account_independently() {
    let net = test_net(300, 7);
    let db = Arc::new(Database::build(&net, SchemeKind::Ci, &small_cfg()).expect("build"));
    // Deliberately unequal workloads: cross-session bleed of meters, rounds
    // or traces would show up as count mismatches below.
    let counts = [3usize, 5, 7, 9];
    let per_thread = run_parallel(&db, &net, &counts);

    let mut traces = Vec::new();
    let mut fetch_totals = Vec::new();
    for (k, outs) in per_thread.iter().enumerate() {
        assert_eq!(outs.len(), counts[k], "thread {k} ran a wrong query count");
        for (s, t, out) in outs {
            assert_eq!(
                out.answer.cost.unwrap_or(INFINITY),
                distance(&net, *s, *t),
                "thread {k}: wrong cost for {s}->{t}"
            );
            assert!(!out.plan_violation);
            // Per-query accounting must look like a lone session's: one
            // query's worth of rounds and fetches, regardless of what the
            // other three threads were doing at the time.
            fetch_totals.push(out.meter.total_fetches());
            assert_eq!(
                out.meter.rounds,
                db.plan().rounds.len() as u32,
                "thread {k}: rounds"
            );
            traces.push(out.trace.clone());
        }
    }
    // The fixed plan makes every query's fetch count identical.
    assert!(
        fetch_totals.windows(2).all(|w| w[0] == w[1]),
        "per-query fetch totals differ across sessions: {fetch_totals:?}"
    );
    // Theorem 1 must survive concurrency: any query, from any session, is
    // indistinguishable from any other.
    assert_indistinguishable(&traces).expect("concurrent traces distinguishable");
}

#[test]
fn parallel_sessions_match_sequential_session_results() {
    let net = test_net(250, 21);
    let db = Arc::new(Database::build(&net, SchemeKind::Hy, &small_cfg()).expect("build"));
    let counts = [4usize, 4];
    let per_thread = run_parallel(&db, &net, &counts);
    // A fresh lone session must reproduce each thread's answers exactly
    // (costs and snapped endpoints are deterministic; only wall times vary).
    let mut lone = db.session();
    for outs in &per_thread {
        for (s, t, out) in outs {
            let again = lone.query_nodes(&net, *s, *t).expect("sequential query");
            assert_eq!(again.answer.cost, out.answer.cost, "{s}->{t} cost diverged");
            assert_eq!(again.answer.src_node, out.answer.src_node);
            assert_eq!(again.answer.dst_node, out.answer.dst_node);
            assert_eq!(again.meter.total_fetches(), out.meter.total_fetches());
        }
    }
}

#[test]
fn parallel_sessions_over_functional_oblivious_store() {
    // The shuffled store mutates on every fetch (epoch reshuffles) behind
    // the server's internal lock; answers must stay optimal under
    // concurrent sessions.
    let net = test_net(200, 33);
    let mut cfg = small_cfg();
    cfg.pir_mode = PirMode::Shuffled { seed: 5 };
    let db = Arc::new(Database::build(&net, SchemeKind::Ci, &cfg).expect("build"));
    let counts = [3usize, 3, 3];
    let per_thread = run_parallel(&db, &net, &counts);
    for outs in &per_thread {
        for (s, t, out) in outs {
            assert_eq!(
                out.answer.cost.unwrap_or(INFINITY),
                distance(&net, *s, *t),
                "wrong cost for {s}->{t} through the shuffled store"
            );
        }
    }
}
