//! Concurrency tests: N `QuerySession`s over one `Arc`-shared `Database`
//! must return the same (optimal) answers as a lone session, keep their
//! accounting fully independent, and stay indistinguishable to the
//! adversary no matter how queries interleave across clients.

use privpath::core::audit::assert_indistinguishable;
use privpath::core::config::BuildConfig;
use privpath::core::engine::{Database, QueryOutput, SchemeKind};
use privpath::graph::dijkstra::{distance, INFINITY};
use privpath::graph::gen::{road_like, RoadGenConfig};
use privpath::graph::network::RoadNetwork;
use privpath::pir::PirMode;
use std::sync::Arc;

fn test_net(nodes: usize, seed: u64) -> RoadNetwork {
    road_like(&RoadGenConfig {
        nodes,
        seed,
        extra_edge_frac: 0.15,
        ..Default::default()
    })
}

fn small_cfg() -> BuildConfig {
    let mut cfg = BuildConfig::default();
    cfg.spec.page_size = 512;
    cfg.plan_sample = 64;
    cfg.plan_margin = 1.0;
    cfg
}

/// Runs `counts[k]` queries on thread `k`, all against one shared database.
/// Returns, per thread, the `(s, t, output)` of every query it ran.
fn run_parallel(
    db: &Arc<Database>,
    net: &RoadNetwork,
    counts: &[usize],
) -> Vec<Vec<(u32, u32, QueryOutput)>> {
    let n = net.num_nodes() as u32;
    std::thread::scope(|scope| {
        let handles: Vec<_> = counts
            .iter()
            .enumerate()
            .map(|(k, &count)| {
                let db = Arc::clone(db);
                scope.spawn(move || {
                    let mut session = db.session_with_seed(0xc0ffee + k as u64);
                    let mut outs = Vec::new();
                    let mut q = 0u32;
                    while outs.len() < count {
                        q += 1;
                        let s = (q * 131 + 7 + k as u32 * 37) % n;
                        let t = (q * 277 + 83 + k as u32 * 11) % n;
                        if s == t {
                            continue;
                        }
                        let out = session
                            .query_nodes(net, s, t)
                            .unwrap_or_else(|e| panic!("thread {k}: query {s}->{t}: {e}"));
                        outs.push((s, t, out));
                    }
                    outs
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query thread panicked"))
            .collect()
    })
}

#[test]
fn parallel_sessions_agree_and_account_independently() {
    let net = test_net(300, 7);
    let db = Arc::new(Database::build(&net, SchemeKind::Ci, &small_cfg()).expect("build"));
    // Deliberately unequal workloads: cross-session bleed of meters, rounds
    // or traces would show up as count mismatches below.
    let counts = [3usize, 5, 7, 9];
    let per_thread = run_parallel(&db, &net, &counts);

    let mut traces = Vec::new();
    let mut fetch_totals = Vec::new();
    for (k, outs) in per_thread.iter().enumerate() {
        assert_eq!(outs.len(), counts[k], "thread {k} ran a wrong query count");
        for (s, t, out) in outs {
            assert_eq!(
                out.answer.cost.unwrap_or(INFINITY),
                distance(&net, *s, *t),
                "thread {k}: wrong cost for {s}->{t}"
            );
            assert!(!out.plan_violation);
            // Per-query accounting must look like a lone session's: one
            // query's worth of rounds and fetches, regardless of what the
            // other three threads were doing at the time.
            fetch_totals.push(out.meter.total_fetches());
            assert_eq!(
                out.meter.rounds,
                db.plan().rounds.len() as u32,
                "thread {k}: rounds"
            );
            traces.push(out.trace.clone());
        }
    }
    // The fixed plan makes every query's fetch count identical.
    assert!(
        fetch_totals.windows(2).all(|w| w[0] == w[1]),
        "per-query fetch totals differ across sessions: {fetch_totals:?}"
    );
    // Theorem 1 must survive concurrency: any query, from any session, is
    // indistinguishable from any other.
    assert_indistinguishable(&traces).expect("concurrent traces distinguishable");
}

#[test]
fn parallel_sessions_match_sequential_session_results() {
    let net = test_net(250, 21);
    let db = Arc::new(Database::build(&net, SchemeKind::Hy, &small_cfg()).expect("build"));
    let counts = [4usize, 4];
    let per_thread = run_parallel(&db, &net, &counts);
    // A fresh lone session must reproduce each thread's answers exactly
    // (costs and snapped endpoints are deterministic; only wall times vary).
    let mut lone = db.session();
    for outs in &per_thread {
        for (s, t, out) in outs {
            let again = lone.query_nodes(&net, *s, *t).expect("sequential query");
            assert_eq!(again.answer.cost, out.answer.cost, "{s}->{t} cost diverged");
            assert_eq!(again.answer.src_node, out.answer.src_node);
            assert_eq!(again.answer.dst_node, out.answer.dst_node);
            assert_eq!(again.meter.total_fetches(), out.meter.total_fetches());
        }
    }
}

/// PR 5 wire stress: many wire clients hammer one `ServerFront` loop with
/// interleaved sessions and unequal workloads (so rounds of different
/// sessions complete out of order relative to each other), half the
/// clients close their sessions and half just drop them, answers stay
/// optimal, Theorem 1 survives, the server-side session table matches the
/// client-side plan arithmetic — and shutdown is clean even with sessions
/// still open.
#[test]
fn many_wire_clients_one_server_stress_and_graceful_shutdown() {
    let net = test_net(250, 9);
    let db = Arc::new(Database::build(&net, SchemeKind::Ci, &small_cfg()).expect("build"));
    let front = db.serve_wire();
    let n = net.num_nodes() as u32;
    let counts = [2usize, 5, 3, 6, 2, 4];
    let per_thread: Vec<Vec<(u32, u32, QueryOutput)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = counts
            .iter()
            .enumerate()
            .map(|(k, &count)| {
                let db = Arc::clone(&db);
                let net = &net;
                let front = &front;
                scope.spawn(move || {
                    let mut session = db
                        .wire_session_with_seed(front, 0xfade + k as u64)
                        .expect("connect");
                    let mut outs = Vec::new();
                    let mut q = 0u32;
                    while outs.len() < count {
                        q += 1;
                        let s = (q * 173 + 7 + k as u32 * 41) % n;
                        let t = (q * 311 + 83 + k as u32 * 13) % n;
                        if s == t {
                            continue;
                        }
                        let out = session
                            .query_nodes(net, s, t)
                            .unwrap_or_else(|e| panic!("wire thread {k}: query {s}->{t}: {e}"));
                        outs.push((s, t, out));
                    }
                    if k % 2 == 0 {
                        session.close().expect("clean session close");
                    } // odd threads just drop their session mid-flight
                    outs
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("wire thread panicked"))
            .collect()
    });

    let mut traces = Vec::new();
    for (k, outs) in per_thread.iter().enumerate() {
        assert_eq!(outs.len(), counts[k]);
        for (s, t, out) in outs {
            assert_eq!(
                out.answer.cost.unwrap_or(INFINITY),
                distance(&net, *s, *t),
                "wire thread {k}: wrong cost for {s}->{t}"
            );
            assert!(!out.plan_violation);
            traces.push(out.trace.clone());
        }
    }
    assert_indistinguishable(&traces).expect("wire traces distinguishable");

    // Server-side session table: one entry per client; per-session query
    // counts are the thread workloads (in some order — session ids are
    // assigned in connection order, which is racy); fetch and round counts
    // follow from the fixed plan.
    let stats = front.session_stats();
    assert_eq!(stats.len(), counts.len());
    let mut seen: Vec<usize> = stats.values().map(|s| s.queries as usize).collect();
    seen.sort_unstable();
    let mut want = counts.to_vec();
    want.sort_unstable();
    assert_eq!(seen, want, "per-session query counts");
    let plan_fetches = u64::from(db.plan().total_fetches());
    let plan_rounds = db.plan().rounds.len() as u64;
    for (sid, s) in &stats {
        assert_eq!(s.fetches, s.queries * plan_fetches, "session {sid} fetches");
        assert_eq!(s.rounds, s.queries * plan_rounds, "session {sid} rounds");
        assert_eq!(s.downloads, s.queries, "session {sid} header downloads");
        assert!(s.bytes_in > 0 && s.bytes_out > 0);
    }

    // Graceful shutdown with sessions open: connect two more clients, leave
    // their sessions live across the shutdown, then check they fail cleanly
    // (error, not hang or panic) instead of talking to a dead loop.
    let mut open_a = db.wire_session_with_seed(&front, 0x0af1).expect("connect");
    let mut open_b = db.wire_session_with_seed(&front, 0x0af2).expect("connect");
    open_a
        .query_nodes(&net, 1, 200)
        .expect("query before shutdown");
    let final_stats = front.shutdown();
    assert_eq!(final_stats.len(), counts.len() + 2);
    assert!(
        final_stats.values().all(|s| s.closed),
        "shutdown must close every session"
    );
    for session in [&mut open_a, &mut open_b] {
        let err = session
            .query_nodes(&net, 2, 100)
            .expect_err("post-shutdown queries must error");
        assert!(err.to_string().contains("disconnected"), "{err}");
    }
}

/// PR 7 network stress: the same many-clients shape as the wire stress,
/// but over real loopback TCP sockets into a [`privpath::pir::TcpFront`]
/// accept loop — with cross-session round coalescing enabled, so the
/// interleaved rounds actually land in shared linear-scan sweeps. Half the
/// clients close their sessions, half just drop them (dropping a TCP
/// session closes its socket, i.e. a mid-session disconnect the reader
/// thread must turn into a clean server-side teardown). Then two more
/// clients stay live across `shutdown()`: the drain must flush their
/// buffered replies and close the sockets so post-shutdown queries fail
/// with a clean error, not a hang.
#[test]
fn many_tcp_clients_one_server_stress_and_graceful_shutdown() {
    use privpath::pir::FrontConfig;
    use std::time::Duration;
    let net = test_net(250, 9);
    let mut cfg = small_cfg();
    // linear-scan stores: the one mode whose rounds are coalescable
    cfg.pir_mode = PirMode::LinearScan;
    let db = Arc::new(Database::build(&net, SchemeKind::Ci, &cfg).expect("build"));
    let front = db
        .serve_tcp_with(FrontConfig {
            coalesce_window: Some(Duration::from_millis(2)),
            coalesce_max_batch: 32,
            ..Default::default()
        })
        .expect("bind loopback front");
    let n = net.num_nodes() as u32;
    let counts = [2usize, 5, 3, 6, 2, 4];
    let per_thread: Vec<Vec<(u32, u32, QueryOutput)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = counts
            .iter()
            .enumerate()
            .map(|(k, &count)| {
                let db = Arc::clone(&db);
                let net = &net;
                let front = &front;
                scope.spawn(move || {
                    let mut session = db
                        .tcp_session_with_seed(front, 0xfade + k as u64)
                        .expect("connect");
                    let mut outs = Vec::new();
                    let mut q = 0u32;
                    while outs.len() < count {
                        q += 1;
                        let s = (q * 173 + 7 + k as u32 * 41) % n;
                        let t = (q * 311 + 83 + k as u32 * 13) % n;
                        if s == t {
                            continue;
                        }
                        let out = session
                            .query_nodes(net, s, t)
                            .unwrap_or_else(|e| panic!("tcp thread {k}: query {s}->{t}: {e}"));
                        outs.push((s, t, out));
                    }
                    if k % 2 == 0 {
                        session.close().expect("clean session close");
                    } // odd threads drop the session: a mid-session disconnect
                    outs
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tcp thread panicked"))
            .collect()
    });

    let mut traces = Vec::new();
    for (k, outs) in per_thread.iter().enumerate() {
        assert_eq!(outs.len(), counts[k]);
        for (s, t, out) in outs {
            assert_eq!(
                out.answer.cost.unwrap_or(INFINITY),
                distance(&net, *s, *t),
                "tcp thread {k}: wrong cost for {s}->{t}"
            );
            assert!(!out.plan_violation);
            traces.push(out.trace.clone());
        }
    }
    assert_indistinguishable(&traces).expect("tcp traces distinguishable");

    // Server-side table: exactly as over the in-process wire — the socket
    // (and any sweep sharing) must not change the accounting.
    let stats = front.session_stats();
    assert_eq!(stats.len(), counts.len());
    let mut seen: Vec<usize> = stats.values().map(|s| s.queries as usize).collect();
    seen.sort_unstable();
    let mut want = counts.to_vec();
    want.sort_unstable();
    assert_eq!(seen, want, "per-session query counts");
    let plan_fetches = u64::from(db.plan().total_fetches());
    let plan_rounds = db.plan().rounds.len() as u64;
    for (sid, s) in &stats {
        assert_eq!(s.fetches, s.queries * plan_fetches, "session {sid} fetches");
        assert_eq!(s.rounds, s.queries * plan_rounds, "session {sid} rounds");
        assert_eq!(s.downloads, s.queries, "session {sid} header downloads");
        assert!(s.bytes_in > 0 && s.bytes_out > 0);
    }

    // Graceful drain with live sockets: two more clients connect, one has
    // queried, both stay open across shutdown, then observe a severed
    // connection — an error, never a hang.
    let mut open_a = db.tcp_session_with_seed(&front, 0x0af1).expect("connect");
    let mut open_b = db.tcp_session_with_seed(&front, 0x0af2).expect("connect");
    open_a
        .query_nodes(&net, 1, 200)
        .expect("query before shutdown");
    let final_stats = front.shutdown();
    assert_eq!(final_stats.len(), counts.len() + 2);
    assert!(
        final_stats.values().all(|s| s.closed),
        "shutdown must close every session"
    );
    for session in [&mut open_a, &mut open_b] {
        let err = session
            .query_nodes(&net, 2, 100)
            .expect_err("post-shutdown queries must error");
        assert!(err.to_string().contains("disconnected"), "{err}");
    }
}

/// PR 8 drain regression: a graceful TCP shutdown must flush *every*
/// `Chunk` frame of a partially-written chunked response before the writer
/// closes the socket. A slow-reading client requests a download far larger
/// than the loopback socket buffers (so most of the chunk train is still
/// buffered server-side when the drain starts), the front shuts down the
/// moment the server loop has served the request, and the client must
/// still reassemble the complete, byte-correct file.
#[test]
fn tcp_shutdown_flushes_partially_written_chunk_trains() {
    use privpath::pir::{
        FileId, FrameLink, FrontConfig, PirServer, RetryPolicy, SystemSpec, TcpFront, TcpLink,
        Transport, WireChannel,
    };
    use privpath::storage::{MemFile, PageBuf, DEFAULT_PAGE_SIZE};
    use std::time::{Duration, Instant};

    /// A [`TcpLink`] whose first `slow_frames` receives are delayed, pinning
    /// the client far behind the writer so the shutdown drain races a
    /// mostly-unwritten response train.
    struct SlowLink {
        inner: TcpLink,
        slow_frames: u32,
        delay: Duration,
    }
    impl FrameLink for SlowLink {
        fn send(&mut self, frame: &[u8]) -> privpath::pir::Result<()> {
            self.inner.send(frame)
        }
        fn recv(&mut self, timeout: Option<Duration>) -> privpath::pir::Result<Vec<u8>> {
            if self.slow_frames > 0 {
                self.slow_frames -= 1;
                std::thread::sleep(self.delay);
            }
            self.inner.recv(timeout)
        }
    }

    // 256 tagged pages = 1 MiB: larger than both loopback socket buffers
    // combined, so the writer cannot have flushed the train when the drain
    // begins. chunk_bytes far below a page puts >1000 chunks on the wire.
    const PAGES: u32 = 256;
    let mut srv = PirServer::new(SystemSpec::default());
    let mut f = MemFile::empty(DEFAULT_PAGE_SIZE);
    for p in 0..PAGES {
        let mut page = PageBuf::zeroed(DEFAULT_PAGE_SIZE);
        page.as_mut_slice()[..4].copy_from_slice(&p.to_le_bytes());
        f.push_page(page);
    }
    srv.add_file("Fd", f, PirMode::LinearScan).unwrap();
    let front = TcpFront::spawn_with(
        Arc::new(srv),
        FrontConfig {
            chunk_bytes: Some(1024),
            ..FrontConfig::default()
        },
    )
    .unwrap();

    let link = SlowLink {
        inner: TcpLink::connect(front.addr()).unwrap(),
        slow_frames: 40,
        delay: Duration::from_millis(3),
    };
    let mut chan = WireChannel::handshake(Box::new(link), RetryPolicy::none()).unwrap();
    let sid = chan.session_id();
    chan.begin_query().unwrap();
    let downloader = std::thread::spawn(move || chan.download(FileId(0)));

    // Shut down the instant the server loop has served the download — the
    // slow client has consumed only a sliver of the chunk train by then.
    let deadline = Instant::now() + Duration::from_secs(10);
    while front.session_stats().get(&sid).map_or(0, |s| s.downloads) == 0 {
        assert!(
            Instant::now() < deadline,
            "server never served the download"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    front.shutdown();

    let bytes = downloader
        .join()
        .expect("downloader thread panicked")
        .expect("the drain must deliver the full chunk train, not a severed socket");
    assert_eq!(bytes.len(), PAGES as usize * DEFAULT_PAGE_SIZE);
    for p in 0..PAGES as usize {
        let tag = u32::from_le_bytes(
            bytes[p * DEFAULT_PAGE_SIZE..p * DEFAULT_PAGE_SIZE + 4]
                .try_into()
                .unwrap(),
        );
        assert_eq!(
            tag, p as u32,
            "page {p} corrupted or reordered in the drain"
        );
    }
}

/// PR 9 storage stress: N concurrent wire sessions hammer ONE shared
/// **disk-backed** database — every page any store serves crosses the
/// snapshot reader's checksum verification under contention — and each
/// answer is differentially compared against an in-memory session on the
/// same snapshot with the same seed and workload (bit-identical answers,
/// paths, traces). Half the clients close cleanly, half drop mid-session;
/// a final live client stays open across `shutdown()` to check the drain
/// flushes and then fails cleanly, never hangs.
#[test]
fn many_wire_clients_on_one_disk_backed_database() {
    use privpath::core::snapshot::StorageBackend;
    let net = test_net(220, 14);
    let mut cfg = small_cfg();
    cfg.pir_mode = PirMode::LinearScan;
    let built = Database::build(&net, SchemeKind::Ci, &cfg).expect("build");
    let dir = std::env::temp_dir().join(format!("privpath-conc-disk-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("ci.snap");
    built.persist(&path).expect("persist");
    drop(built);

    let disk = Arc::new(Database::open_snapshot(&path, StorageBackend::Disk).expect("open disk"));
    let mem = Arc::new(Database::open_snapshot(&path, StorageBackend::Mem).expect("open mem"));
    let front = disk.serve_wire();
    let n = net.num_nodes() as u32;
    let counts = [3usize, 4, 2, 5, 3];
    let per_thread: Vec<Vec<(u32, u32, QueryOutput)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = counts
            .iter()
            .enumerate()
            .map(|(k, &count)| {
                let disk = Arc::clone(&disk);
                let net = &net;
                let front = &front;
                scope.spawn(move || {
                    let mut session = disk
                        .wire_session_with_seed(front, 0xd15c + k as u64)
                        .expect("connect");
                    let mut outs = Vec::new();
                    let mut q = 0u32;
                    while outs.len() < count {
                        q += 1;
                        let s = (q * 179 + 3 + k as u32 * 43) % n;
                        let t = (q * 307 + 89 + k as u32 * 17) % n;
                        if s == t {
                            continue;
                        }
                        let out = session
                            .query_nodes(net, s, t)
                            .unwrap_or_else(|e| panic!("disk thread {k}: query {s}->{t}: {e}"));
                        outs.push((s, t, out));
                    }
                    if k % 2 == 0 {
                        session.close().expect("clean session close");
                    } // odd threads drop their session mid-flight
                    outs
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("disk-backed thread panicked"))
            .collect()
    });

    // differential: an in-memory session replays each thread's workload
    // with the same seed — answers, paths and traces must be bit-identical
    let mut traces = Vec::new();
    for (k, outs) in per_thread.iter().enumerate() {
        assert_eq!(outs.len(), counts[k]);
        let mut reference = mem.session_with_seed(0xd15c + k as u64);
        for (s, t, out) in outs {
            assert_eq!(
                out.answer.cost.unwrap_or(INFINITY),
                distance(&net, *s, *t),
                "disk thread {k}: wrong cost for {s}->{t}"
            );
            let want = reference
                .query_nodes(&net, *s, *t)
                .unwrap_or_else(|e| panic!("mem reference {s}->{t}: {e}"));
            assert_eq!(out.answer.cost, want.answer.cost);
            assert_eq!(out.answer.path_nodes, want.answer.path_nodes);
            assert_eq!(out.trace, want.trace, "disk vs mem trace for {s}->{t}");
            assert!(!out.plan_violation);
            traces.push(out.trace.clone());
        }
    }
    assert_indistinguishable(&traces).expect("disk-backed traces distinguishable");

    // graceful drain with a live client: its buffered work flushes, then
    // post-shutdown queries fail with a clean error
    let mut live = disk
        .wire_session_with_seed(&front, 0xd15f)
        .expect("connect");
    live.query_nodes(&net, 1, 100)
        .expect("query before shutdown");
    let stats = front.shutdown();
    assert_eq!(stats.len(), counts.len() + 1);
    assert!(
        stats.values().all(|s| s.closed),
        "shutdown must close every session"
    );
    let err = live
        .query_nodes(&net, 2, 50)
        .expect_err("post-shutdown queries must error");
    assert!(err.to_string().contains("disconnected"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallel_sessions_over_functional_oblivious_store() {
    // The shuffled store mutates on every fetch (epoch reshuffles) behind
    // the server's internal lock; answers must stay optimal under
    // concurrent sessions.
    let net = test_net(200, 33);
    let mut cfg = small_cfg();
    cfg.pir_mode = PirMode::Shuffled { seed: 5 };
    let db = Arc::new(Database::build(&net, SchemeKind::Ci, &cfg).expect("build"));
    let counts = [3usize, 3, 3];
    let per_thread = run_parallel(&db, &net, &counts);
    for outs in &per_thread {
        for (s, t, out) in outs {
            assert_eq!(
                out.answer.cost.unwrap_or(INFINITY),
                distance(&net, *s, *t),
                "wrong cost for {s}->{t} through the shuffled store"
            );
        }
    }
}
