//! Chaos suite: the wire boundary under byzantine links and sabotaged
//! stores.
//!
//! PR 5 made the wire boundary observably invisible on a perfect link; this
//! suite asserts it stays *safe* on an imperfect one. Three escalating
//! failure domains are exercised:
//!
//! * **Hostile bytes.** Arbitrary, truncated, and bit-flipped byte strings
//!   fed to the frame decoder and to a live [`ServerFront`] produce typed
//!   errors or clean session teardown — never a panic, and never collateral
//!   damage to other sessions (the CRC-guarded v2 framing is what makes
//!   corrupt-vs-malicious distinguishable).
//! * **Faulty links.** A seeded [`FaultPlan`] drops, corrupts, truncates,
//!   duplicates and delays frames, and severs the link mid-session; the
//!   client's [`RetryPolicy`] must recover exactly (idempotent per-sequence
//!   replay on the server) or fail with a *typed, final* error once the
//!   budget is exhausted — with the server loop and every other session
//!   still alive either way.
//! * **Sabotaged stores.** A store that panics mid-fetch costs exactly one
//!   session: the panic is caught, the offending client gets a typed
//!   internal error, the poisoned store surfaces as a typed serve error to
//!   later fetches, and sessions on healthy files never notice.
//!
//! PR 7 extends the faulty-link domain to real sockets: the same seeded
//! fault plan layered *above* a loopback TCP connection must recover to a
//! stream observably identical to a clean TCP session's.
//!
//! PR 8 adds a fourth domain: **generation swaps under fire**. A
//! [`privpath::core::DbRegistry`] publishes a rebuilt database while
//! sessions are mid-workload on a faulty link, and while sabotaged
//! background rebuilds panic on the worker thread — pinned sessions must
//! drain on their generation with exact answers, and a failed rebuild must
//! never interrupt serving.
//!
//! PR 9 adds a fifth domain: **faulty disks**. A seeded
//! [`privpath::pir::DiskFaultPlan`] injects transient read errors, bit
//! rot, and torn reads *below* the snapshot checksum layer; transient
//! faults must be absorbed by the client's retry budget with answers
//! bit-identical to a clean disk, while data corruption surfaces as a
//! typed, fatal `PageCorrupt` that costs exactly one session — bystanders
//! on healthy files never blink.
//!
//! The privacy half of fault tolerance — that retries leak nothing — lives
//! in `tests/leakage.rs` (the chaos and swap differentials), next to the
//! rest of Theorem 1.

use privpath::core::config::BuildConfig;
use privpath::core::engine::{Database, SchemeKind};
use privpath::core::{CoreError, DbRegistry};
use privpath::graph::gen::{road_like, RoadGenConfig};
use privpath::pir::wire::{parse_observed, split_frame};
use privpath::pir::{
    DiskFaultPlan, FaultPlan, FaultyDisk, FileId, FrontConfig, PanicStore, PirMode, PirServer,
    RetryPolicy, ServerFront, SystemSpec, Transport,
};
use privpath::storage::{crc32, ChecksumFile, MemFile, PageBuf, PagedFile, DEFAULT_PAGE_SIZE};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Frame kind 10 is `Error` (the kind constants are module-private; the
/// tests only ever need to recognize this one).
const KIND_ERROR: u8 = 10;

fn cfg_small() -> BuildConfig {
    let mut cfg = BuildConfig::default();
    cfg.spec.page_size = 512;
    cfg.plan_sample = 0;
    cfg
}

/// A tiny two-file PIR server: file 0 healthy, each page tagged with its
/// index so correctness is checkable end to end.
fn tagged_file(pages: u32) -> MemFile {
    let mut f = MemFile::empty(DEFAULT_PAGE_SIZE);
    for p in 0..pages {
        let mut page = PageBuf::zeroed(DEFAULT_PAGE_SIZE);
        page.as_mut_slice()[..4].copy_from_slice(&p.to_le_bytes());
        f.push_page(page);
    }
    f
}

fn page_tag(buf: &PageBuf) -> u32 {
    u32::from_le_bytes(buf.as_slice()[..4].try_into().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Arbitrary bytes into the frame decoder: a typed error or a parsed
    /// frame, never a panic. (A random string passing the CRC *and* magic
    /// *and* version checks is a ~2^-56 event, so in practice every case
    /// exercises an error path.)
    #[test]
    fn frame_decoder_survives_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let _ = split_frame(&bytes);
        let _ = parse_observed(&bytes);
    }

    /// Arbitrary garbage thrown at a *live* server: every reply is a
    /// well-formed typed `Error` frame, the garbage-sending channel itself
    /// stays usable for real work afterwards, and a neighbouring session is
    /// never disturbed.
    #[test]
    fn server_answers_garbage_with_typed_errors(
        garbage in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..120), 1..5),
    ) {
        let mut srv = PirServer::new(SystemSpec::default());
        srv.add_file("Fd", tagged_file(24), PirMode::LinearScan).unwrap();
        let srv = Arc::new(srv);
        let front = ServerFront::spawn(Arc::clone(&srv));
        let mut bystander = front.connect().unwrap();
        let mut chan = front.connect().unwrap();
        for bytes in &garbage {
            let reply = chan.raw_exchange(bytes).unwrap();
            let frame = split_frame(&reply).unwrap_or_else(|e| {
                panic!("server replied with an unparseable frame: {e}")
            });
            prop_assert_eq!(frame.kind, KIND_ERROR, "reply to garbage must be an Error frame");
        }
        // the garbage never advanced the sequence cursor: real protocol
        // work on the same channel still succeeds...
        chan.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 2];
        chan.serve_round(2, &[(FileId(0), 3), (FileId(0), 17)], &mut out).unwrap();
        prop_assert_eq!(page_tag(&out[0]), 3);
        prop_assert_eq!(page_tag(&out[1]), 17);
        chan.close().unwrap();
        // ... and the bystander session was never touched
        bystander.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE)];
        bystander.serve_round(2, &[(FileId(0), 9)], &mut out).unwrap();
        prop_assert_eq!(page_tag(&out[0]), 9);
        front.shutdown();
    }
}

/// Every truncation and every single-bit flip of a stream of genuine
/// protocol frames decodes to a typed error or a valid frame — never a
/// panic. The corpus is a real session's server-observed stream, so the
/// mutations hit live header layouts, not synthetic ones.
#[test]
fn truncations_and_bitflips_of_real_frames_decode_safely() {
    let mut srv = PirServer::new(SystemSpec::default());
    srv.add_file("Fd", tagged_file(16), PirMode::LinearScan)
        .unwrap();
    let srv = Arc::new(srv);
    let front = ServerFront::spawn(Arc::clone(&srv));
    let mut chan = front.connect().unwrap();
    chan.begin_query().unwrap();
    let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 2];
    chan.serve_round(2, &[(FileId(0), 1), (FileId(0), 14)], &mut out)
        .unwrap();
    chan.close().unwrap();
    let stream = front.observed_stream(1).expect("session recorded");
    assert!(parse_observed(&stream).is_ok(), "corpus must be valid");

    for cut in 0..stream.len() {
        let _ = split_frame(&stream[..cut]);
        let _ = parse_observed(&stream[..cut]);
    }
    for i in 0..stream.len() {
        for bit in [0x01u8, 0x80] {
            let mut mutated = stream.clone();
            mutated[i] ^= bit;
            let _ = split_frame(&mutated);
            let _ = parse_observed(&mutated);
        }
    }
    front.shutdown();
}

/// An unrecoverable link (a permanent outage window) exhausts the retry
/// budget and surfaces as a *typed* error — retryable cause, terminal
/// verdict — while the server loop and a parallel clean session keep
/// working untouched.
#[test]
fn exhausted_retries_are_typed_and_contained() {
    let net = road_like(&RoadGenConfig {
        nodes: 140,
        seed: 99,
        ..Default::default()
    });
    let n = net.num_nodes() as u32;
    let db = Arc::new(Database::build(&net, SchemeKind::Ci, &cfg_small()).expect("build"));
    let front = db.serve_wire();

    // The outage opens after the handshake and never closes.
    let plan = FaultPlan {
        outage_at_op: Some(8),
        outage_ops: u32::MAX,
        ..FaultPlan::clean(5)
    };
    let policy = RetryPolicy {
        max_attempts: 4,
        attempt_timeout: Some(Duration::from_millis(20)),
        backoff: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        deadline: Some(Duration::from_secs(10)),
    };
    let mut doomed = db
        .chaos_wire_session_with_seed(&front, 0x0dd, plan, policy)
        .expect("handshake precedes the outage");
    let err = doomed
        .query_nodes(&net, 1 % n, 77 % n)
        .expect_err("a permanent outage must fail the query");
    assert!(
        err.is_retry_exhausted(),
        "want a typed retry-exhausted error, got: {err}"
    );
    assert!(
        !err.is_retryable(),
        "an exhausted budget is final, not retryable: {err}"
    );

    // The failure was the client's alone: the server still answers a clean
    // session correctly.
    let mut inproc = db.session_with_seed(0x5eed);
    let mut clean = db.wire_session_with_seed(&front, 0x5eed).expect("connect");
    let want = inproc.query_nodes(&net, 3 % n, 90 % n).expect("inproc");
    let got = clean.query_nodes(&net, 3 % n, 90 % n).expect("wire");
    assert_eq!(got.answer.cost, want.answer.cost);
    assert_eq!(got.answer.path_nodes, want.answer.path_nodes);
    assert_eq!(got.trace, want.trace);
    drop((doomed, clean));
    front.shutdown();
}

/// Chaos above a real socket (PR 7): a [`privpath::pir::ChaosLink`] layered
/// over a `TcpLink` injects drops, corruption, truncation, duplication and
/// delays *above* TCP, so the retry machinery — attempt timeouts, backoff,
/// idempotent server-side replay — is exercised end-to-end over the
/// network path. The chaos session must be observably identical to a clean
/// TCP session on the same front: answers, paths, traces, and every
/// deterministic meter component, with the recovery work visible only in
/// the retry counters.
#[test]
fn chaos_link_over_tcp_recovers_and_matches_clean_session() {
    let net = road_like(&RoadGenConfig {
        nodes: 140,
        seed: 77,
        ..Default::default()
    });
    let n = net.num_nodes() as u32;
    let db = Arc::new(Database::build(&net, SchemeKind::Ci, &cfg_small()).expect("build"));
    let front = db.serve_tcp().expect("bind loopback front");

    // same dummy-fetch RNG seed on both sides: any divergence is the chaos
    let mut clean = db.tcp_session_with_seed(&front, 0x5eed).expect("connect"); // session 1
    let mut chaos = db
        .chaos_tcp_session_with_seed(
            &front,
            0x5eed,
            FaultPlan::lossy(0x7C9),
            RetryPolicy::resilient(),
        )
        .expect("chaos connect"); // session 2
    for k in 0..4u32 {
        let (s, t) = ((k * 67 + 13) % n, (k * 149 + 101) % n);
        if s == t {
            continue;
        }
        let want = clean
            .query_nodes(&net, s, t)
            .unwrap_or_else(|e| panic!("clean tcp {s}->{t}: {e}"));
        let got = chaos
            .query_nodes(&net, s, t)
            .unwrap_or_else(|e| panic!("chaos tcp {s}->{t}: {e}"));
        assert_eq!(got.trace, want.trace, "trace {s}->{t}");
        assert_eq!(got.answer.cost, want.answer.cost);
        assert_eq!(got.answer.path_nodes, want.answer.path_nodes);
        assert!(!got.plan_violation && !want.plan_violation);
        let (mut got_m, mut want_m) = (got.meter.clone(), want.meter.clone());
        got_m.client_s = 0.0;
        want_m.client_s = 0.0;
        assert_eq!(got_m, want_m, "the meter must not see the weather");
    }
    let retries = chaos.transport_retries();
    assert!(retries > 0, "the lossy link never forced a retry");
    drop((clean, chaos));
    let stats = front.shutdown();
    assert_eq!(stats[&1].retransmits, 0, "clean session retransmitted");
    assert!(
        stats[&2].retransmits > 0,
        "server never replayed for the chaos session"
    );
}

/// A store that panics mid-fetch costs exactly one session. The panicking
/// client gets a typed internal error; a client on a healthy file of the
/// *same* server never notices; a later fetch of the sabotaged file hits
/// the poisoned store and gets a typed serve error — the loop survives all
/// of it.
#[test]
fn store_panic_tears_down_only_the_offending_session() {
    let mut srv = PirServer::new(SystemSpec::default());
    srv.add_file("Fgood", tagged_file(16), PirMode::LinearScan)
        .unwrap();
    srv.add_file_with_store(
        "Fbad",
        tagged_file(16),
        Box::new(PanicStore::new(tagged_file(16), 0)),
    )
    .unwrap();
    let srv = Arc::new(srv);
    let front = ServerFront::spawn(Arc::clone(&srv));

    let mut victim = front.connect().unwrap(); // session 1
    let mut healthy = front.connect().unwrap(); // session 2
    healthy.begin_query().unwrap();
    let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE)];
    healthy.serve_round(2, &[(FileId(0), 5)], &mut out).unwrap();
    assert_eq!(page_tag(&out[0]), 5);

    // First fetch of the sabotaged store panics inside the handler.
    victim.begin_query().unwrap();
    let err = victim
        .serve_round(2, &[(FileId(1), 3)], &mut out)
        .expect_err("sabotaged store must fail the round");
    assert!(!err.is_retryable(), "a handler panic is fatal: {err}");
    assert!(
        err.to_string().contains("server error 7"),
        "want ERR_INTERNAL from the caught panic, got: {err}"
    );

    // The healthy session keeps being served after the panic...
    healthy
        .serve_round(2, &[(FileId(0), 11)], &mut out)
        .unwrap();
    assert_eq!(page_tag(&out[0]), 11);

    // ... and a later client touching the poisoned store gets a typed
    // serve error, not a panic — and can still fetch healthy files on the
    // very same channel.
    let mut late = front.connect().unwrap(); // session 3
    late.begin_query().unwrap();
    let err = late
        .serve_round(2, &[(FileId(1), 3)], &mut out)
        .expect_err("poisoned store must fail the round");
    assert!(
        err.to_string().contains("server error 5"),
        "want ERR_SERVE from the poisoned store, got: {err}"
    );
    late.serve_round(2, &[(FileId(0), 7)], &mut out).unwrap();
    assert_eq!(page_tag(&out[0]), 7);

    healthy.close().unwrap();
    let stats = front.shutdown();
    assert_eq!(stats[&1].panics, 1, "victim session recorded the panic");
    assert!(stats[&1].closed, "victim session torn down");
    assert_eq!(stats[&2].panics, 0, "healthy session unaffected");
    assert_eq!(stats[&3].panics, 0, "late session survived the poison");
}

/// Wraps a tagged file in a seeded [`FaultyDisk`] under the same
/// [`ChecksumFile`] guard the snapshot loader installs over real disks,
/// returning both the guarded driver and a handle to the fault injector.
fn guarded_faulty_file(pages: u32, plan: DiskFaultPlan) -> (Arc<dyn PagedFile>, Arc<FaultyDisk>) {
    let clean = tagged_file(pages);
    let crcs: Vec<u32> = (0..pages)
        .map(|p| crc32(clean.read_page(p).unwrap().as_slice()))
        .collect();
    let faulty = Arc::new(FaultyDisk::new(Arc::new(clean), plan));
    let guarded: Arc<dyn PagedFile> = Arc::new(ChecksumFile::new(
        "Fbad",
        Arc::clone(&faulty) as Arc<dyn PagedFile>,
        crcs,
    ));
    (guarded, faulty)
}

/// PR 9 containment: bit rot on a disk-backed file costs exactly one
/// session. The victim's fetches ride a corrupting [`FaultyDisk`] whose
/// flipped bits surface through the [`ChecksumFile`] guard as a typed,
/// fatal `PageCorrupt` serve error — while a bystander session fetching a
/// healthy file on the same front is served between every victim round,
/// keeps being served after the victim dies, and a fresh session still
/// connects and works.
#[test]
fn corrupt_disk_read_tears_down_only_the_affected_session() {
    let pages = 24u32;
    let (guarded, faulty) = guarded_faulty_file(pages, DiskFaultPlan::corrupting(0xbad_d15c));

    let mut srv = PirServer::new(SystemSpec::default());
    srv.add_file("Fgood", tagged_file(16), PirMode::LinearScan)
        .unwrap();
    srv.add_file_with_driver("Fbad", guarded, PirMode::LinearScan)
        .unwrap();
    let front = ServerFront::spawn(Arc::new(srv));

    let mut victim = front.connect().unwrap(); // session 1
    let mut healthy = front.connect().unwrap(); // session 2
    victim.begin_query().unwrap();
    healthy.begin_query().unwrap();
    let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE)];

    // Hammer the faulty file until the seeded bit rot lands; every clean
    // read still answers the right page, and the bystander is served
    // between victim rounds.
    let mut fatal = None;
    for k in 0..400u32 {
        match victim.serve_round(2, &[(FileId(1), k % pages)], &mut out) {
            Ok(()) => assert_eq!(page_tag(&out[0]), k % pages),
            Err(e) => {
                fatal = Some(e);
                break;
            }
        }
        healthy
            .serve_round(2, &[(FileId(0), k % 16)], &mut out)
            .unwrap();
        assert_eq!(page_tag(&out[0]), k % 16);
    }
    let err = fatal.expect("the corrupting plan must fire within its budget");
    assert!(
        !err.is_retryable(),
        "bit rot is fatal, not retryable: {err}"
    );
    let msg = err.to_string();
    assert!(
        msg.contains("server error 5") && msg.contains("page corrupt"),
        "want a typed PageCorrupt serve error, got: {err}"
    );
    assert!(
        faulty.faults_injected() > 0,
        "the chaos plan actually fired"
    );

    // Blast radius is one session: the bystander keeps serving and a fresh
    // session on the healthy file connects and works.
    healthy.serve_round(2, &[(FileId(0), 7)], &mut out).unwrap();
    assert_eq!(page_tag(&out[0]), 7);
    let mut late = front.connect().unwrap(); // session 3
    late.begin_query().unwrap();
    late.serve_round(2, &[(FileId(0), 3)], &mut out).unwrap();
    assert_eq!(page_tag(&out[0]), 3);

    healthy.close().unwrap();
    late.close().unwrap();
    front.shutdown();
}

/// PR 9 recovery: transient disk read errors (`ErrorKind::Interrupted`)
/// are answered with the retryable `ERR_SERVE_TRANSIENT`, absorbed by the
/// client's retry budget, and every recovered answer is bit-identical to
/// the same workload against a clean in-memory file.
#[test]
fn flaky_disk_reads_are_retried_to_identical_answers() {
    let pages = 24u32;
    let (guarded, faulty) = guarded_faulty_file(pages, DiskFaultPlan::flaky(0xf1a_c0de));

    let mut srv = PirServer::new(SystemSpec::default());
    srv.add_file_with_driver("Fd", guarded, PirMode::LinearScan)
        .unwrap();
    let front = ServerFront::spawn(Arc::new(srv));

    let mut refsrv = PirServer::new(SystemSpec::default());
    refsrv
        .add_file("Fd", tagged_file(pages), PirMode::LinearScan)
        .unwrap();
    let reffront = ServerFront::spawn(Arc::new(refsrv));

    let mut chan = front.connect_with(RetryPolicy::resilient()).unwrap();
    let mut refchan = reffront.connect().unwrap();
    chan.begin_query().unwrap();
    refchan.begin_query().unwrap();
    let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 2];
    let mut refout = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 2];
    for round in 1..=40u32 {
        let reqs = [
            (FileId(0), (round * 7 + 1) % pages),
            (FileId(0), (round * 13 + 5) % pages),
        ];
        chan.serve_round(round, &reqs, &mut out)
            .expect("transient faults must be absorbed by the retry budget");
        refchan.serve_round(round, &reqs, &mut refout).unwrap();
        for (i, (got, want)) in out.iter().zip(&refout).enumerate() {
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "round {round} fetch {i} differs from the clean-disk run"
            );
        }
    }
    assert!(
        faulty.faults_injected() > 0,
        "the flaky plan actually fired"
    );
    assert!(
        chan.retries() > 0,
        "recovery must have gone through the retry path"
    );
    assert_eq!(refchan.retries(), 0, "the clean link never retries");
    chan.close().unwrap();
    refchan.close().unwrap();
    front.shutdown();
    reffront.shutdown();
}

/// PR 10's batched run reads must not create a bypass around chaos
/// injection or integrity checking. [`FaultyDisk`] only overrides per-page
/// reads, so the trait's default `read_run_into` loop routes every page of
/// a multi-page run through the injector; the [`ChecksumFile`] guard
/// verifies each page of the run and refuses the zero-copy `contiguous`
/// window. Bit rot landing anywhere inside a run therefore surfaces as the
/// same typed, fatal `PageCorrupt` the per-page path raises, transient
/// faults stay transient and recover on retry of the identical run, and
/// every clean run serves bit-exact tagged pages.
#[test]
fn run_reads_keep_per_page_fault_injection_and_verification() {
    use privpath::storage::StorageError;

    let pages = 24u32;
    let run_pages = 8usize;

    // Bit rot: the corrupting plan must fire *through the run path* and
    // surface as PageCorrupt with an in-run page identity.
    let (guarded, faulty) = guarded_faulty_file(pages, DiskFaultPlan::corrupting(0x5ca_bad));
    assert!(
        guarded.contiguous().is_none(),
        "the checksum guard must never expose a verification-free window"
    );
    let ps = guarded.page_size();
    let mut run = vec![0u8; run_pages * ps];
    let mut fatal = None;
    for k in 0..400usize {
        let first = (k * 5 % (pages as usize - run_pages + 1)) as u32;
        match guarded.read_run_into(first, &mut run) {
            Ok(()) => {
                for (i, page) in run.chunks_exact(ps).enumerate() {
                    let tag = u32::from_le_bytes(page[..4].try_into().unwrap());
                    assert_eq!(tag, first + i as u32, "clean run served a wrong page");
                }
            }
            Err(e) => {
                fatal = Some((first, e));
                break;
            }
        }
    }
    let (first, err) = fatal.expect("the corrupting plan must fire within its budget");
    match err {
        StorageError::PageCorrupt { page, .. } => {
            assert!(
                page >= first && page < first + run_pages as u32,
                "corrupt page {page} must lie inside the failed run [{first}, {})",
                first + run_pages as u32
            );
        }
        other => panic!("want PageCorrupt through the run path, got: {other}"),
    }
    assert!(!err.is_transient(), "bit rot is fatal, not retryable");
    assert!(
        faulty.faults_injected() > 0,
        "the chaos plan actually fired"
    );

    // Transient faults: the same run errors retryably, and re-reading the
    // identical run recovers to bit-exact content.
    let (flaky, injector) = guarded_faulty_file(pages, DiskFaultPlan::flaky(0xf1a_2a11));
    let mut transient_seen = 0u32;
    for k in 0..200usize {
        let first = (k * 3 % (pages as usize - run_pages + 1)) as u32;
        let got = loop {
            match flaky.read_run_into(first, &mut run) {
                Ok(()) => break &run,
                Err(e) => {
                    assert!(
                        e.is_transient(),
                        "the flaky plan injects only retryable faults, got: {e}"
                    );
                    transient_seen += 1;
                }
            }
        };
        for (i, page) in got.chunks_exact(ps).enumerate() {
            let tag = u32::from_le_bytes(page[..4].try_into().unwrap());
            assert_eq!(tag, first + i as u32, "retried run must recover exactly");
        }
    }
    assert!(transient_seen > 0, "the flaky plan actually fired");
    assert_eq!(injector.faults_injected(), u64::from(transient_seen));
}

/// Idle sessions are evicted on the configured deadline while an active
/// session on the same front keeps querying; the evicted client observes a
/// severed channel, not a hang.
#[test]
fn idle_sessions_are_evicted_while_active_ones_survive() {
    let net = road_like(&RoadGenConfig {
        nodes: 120,
        seed: 21,
        ..Default::default()
    });
    let n = net.num_nodes() as u32;
    let db = Arc::new(Database::build(&net, SchemeKind::Ci, &cfg_small()).expect("build"));
    let front = db.serve_wire_with(FrontConfig {
        idle_timeout: Some(Duration::from_millis(120)),
        ..Default::default()
    });
    let mut idle = db.wire_session_with_seed(&front, 1).expect("connect"); // session 1
    let mut active = db.wire_session_with_seed(&front, 2).expect("connect"); // session 2
    idle.query_nodes(&net, 0, 50 % n)
        .expect("query before idling");
    // Keep the active session warm well past the idle deadline.
    for k in 0..15u32 {
        active
            .query_nodes(&net, k % n, (k * 31 + 7) % n)
            .expect("active session must keep working");
        std::thread::sleep(Duration::from_millis(20));
    }
    let err = idle
        .query_nodes(&net, 0, 50 % n)
        .expect_err("evicted session must observe a severed channel");
    assert!(
        err.to_string().contains("disconnected"),
        "want a severed-channel error, got: {err}"
    );
    let stats = front.session_stats();
    assert!(stats[&1].evicted, "session 1 evicted for idleness");
    assert!(!stats[&2].evicted, "session 2 stayed warm");
    drop((idle, active));
    front.shutdown();
}

/// A generation swap lands while a chaos session is riding out a link
/// outage: the session must recover *and* keep draining on its pinned
/// generation — every post-swap answer bit-identical to an in-process
/// reference against the old network — while a fresh session opens on the
/// new generation and sees the reweighted answers.
#[test]
fn swap_during_outage_drains_on_pinned_generation() {
    let net = road_like(&RoadGenConfig {
        nodes: 140,
        seed: 4242,
        ..Default::default()
    });
    let net2 = net.reweighted(0xA11CE);
    let n = net.num_nodes() as u32;
    let db1 = Arc::new(Database::build(&net, SchemeKind::Ci, &cfg_small()).expect("build gen 1"));
    let db2 = Arc::new(Database::build(&net2, SchemeKind::Ci, &cfg_small()).expect("build gen 2"));
    let registry = DbRegistry::new(Arc::clone(&db1));
    let front = registry.serve_wire();

    let mut reference = db1.session_with_seed(0x5eed);
    let mut chaos = db1
        .chaos_wire_session_with_seed(
            &front,
            0x5eed,
            FaultPlan::with_outage(0xD00F, 30, 3),
            RetryPolicy::resilient(),
        )
        .expect("chaos connect");

    let pairs: Vec<(u32, u32)> = (0..5u32)
        .map(|k| ((k * 67 + 13) % n, (k * 149 + 101) % n))
        .filter(|(s, t)| s != t)
        .collect();
    for (qi, &(s, t)) in pairs.iter().enumerate() {
        if qi == 1 {
            // the swap lands mid-workload, while the fault plan is still
            // dropping and severing frames around the session
            let id = registry.publish(Arc::clone(&db2)).expect("publish gen 2");
            assert_eq!(id, 2);
        }
        let want = reference
            .query_nodes(&net, s, t)
            .unwrap_or_else(|e| panic!("inproc {s}->{t}: {e}"));
        let got = chaos
            .query_nodes(&net, s, t)
            .unwrap_or_else(|e| panic!("chaos {s}->{t}: {e}"));
        assert_eq!(got.answer.cost, want.answer.cost, "pinned answer {s}->{t}");
        assert_eq!(got.answer.path_nodes, want.answer.path_nodes);
        assert_eq!(got.trace, want.trace, "pinned trace {s}->{t}");
        assert!(!got.plan_violation);
    }
    assert!(
        chaos.transport_retries() > 0,
        "the outage plan never forced a retry — the swap was not under fire"
    );
    chaos.close().expect("drain close");

    // the drained generation is typed staleness on reopen...
    let err = match front.connect_expecting(RetryPolicy::none(), 1) {
        Err(e) => e,
        Ok(_) => panic!("stale expectation must fail after the swap"),
    };
    assert!(err.is_retryable(), "staleness is retryable: {err}");

    // ... and a fresh registry session plans against generation 2
    let mut reference2 = db2.session_with_seed(0xfeed);
    let mut fresh = registry
        .wire_session_with_seed(&front, 0xfeed)
        .expect("fresh session on gen 2");
    let (s, t) = pairs[0];
    let want = reference2.query_nodes(&net2, s, t).expect("inproc gen 2");
    let got = fresh.query_nodes(&net2, s, t).expect("wire gen 2");
    assert_eq!(got.answer.cost, want.answer.cost, "gen-2 answer {s}->{t}");
    assert_eq!(got.trace, want.trace);
    fresh.close().unwrap();
    front.shutdown();
}

/// A sabotaged rebuild — the build closure panics on every attempt — costs
/// nothing but the worker thread: the serving session never hiccups, the
/// failure surfaces as a typed [`CoreError::RebuildFailed`], and the
/// registry still swaps cleanly on the *next* (healthy) rebuild.
#[test]
fn sabotaged_rebuild_never_interrupts_serving() {
    let net = road_like(&RoadGenConfig {
        nodes: 120,
        seed: 31,
        ..Default::default()
    });
    let n = net.num_nodes() as u32;
    let db = Arc::new(Database::build(&net, SchemeKind::Ci, &cfg_small()).expect("build"));
    let registry = DbRegistry::new(Arc::clone(&db));
    let front = registry.serve_wire();
    let mut session = registry
        .wire_session_with_seed(&front, 0x5eed)
        .expect("connect");
    let policy = RetryPolicy {
        max_attempts: 3,
        attempt_timeout: None,
        backoff: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        deadline: Some(Duration::from_secs(30)),
    };

    // the rebuild panics on the worker thread while the session queries
    let handle = registry.rebuild_in_background(|| panic!("sabotaged rebuild"), policy.clone());
    let mut reference = db.session_with_seed(0x5eed);
    for k in 0..4u32 {
        let (s, t) = ((k * 53 + 11) % n, (k * 131 + 97) % n);
        if s == t {
            continue;
        }
        let want = reference.query_nodes(&net, s, t).expect("inproc");
        let got = session
            .query_nodes(&net, s, t)
            .expect("serving must never hiccup during a failing rebuild");
        assert_eq!(got.answer.cost, want.answer.cost);
        assert_eq!(got.trace, want.trace);
    }
    let err = handle.wait().expect_err("sabotaged rebuild must fail");
    match err {
        CoreError::RebuildFailed {
            attempts,
            ref reason,
        } => {
            assert_eq!(attempts, 3, "retry budget honoured");
            assert!(reason.contains("sabotaged rebuild"), "{reason}");
        }
        ref other => panic!("expected RebuildFailed, got {other}"),
    }
    assert_eq!(
        registry.generation(),
        1,
        "containment: generation 1 serves on"
    );

    // a healthy rebuild afterwards still swaps: the failure left no scar
    let rebuilt = net.reweighted(77);
    let handle = registry.rebuild_in_background(
        move || Database::build(&rebuilt, SchemeKind::Ci, &cfg_small()),
        policy,
    );
    assert_eq!(handle.wait().expect("healthy rebuild"), 2);
    let stats = registry.stats();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.published, 1);

    // the pinned session still drains on generation 1 after the real swap
    let got = session.query_nodes(&net, 1 % n, 60 % n).expect("drain");
    let want = reference.query_nodes(&net, 1 % n, 60 % n).expect("inproc");
    assert_eq!(got.answer.cost, want.answer.cost);
    session.close().unwrap();
    front.shutdown();
}

/// The CI chaos-soak matrix (run with `--ignored`): every scheme, several
/// fault seeds, each run under a lossy link with a mid-session outage and a
/// resilient retry policy — answers must match the in-process reference
/// exactly and every query must stay inside the published plan. The
/// retransmission totals prove the chaos actually bit.
#[test]
#[ignore = "chaos soak: minutes-long fault matrix, run via the CI chaos-soak job (cargo test --test chaos -- --ignored)"]
fn chaos_soak_matrix() {
    let net = road_like(&RoadGenConfig {
        nodes: 150,
        seed: 777,
        ..Default::default()
    });
    let n = net.num_nodes() as u32;
    let pairs: Vec<(u32, u32)> = (0..4u32)
        .map(|k| ((k * 53 + 11) % n, (k * 131 + 97) % n))
        .filter(|(s, t)| s != t)
        .collect();
    let mut total_retries = 0u64;
    for kind in SchemeKind::ALL {
        let mut cfg = cfg_small();
        cfg.obf_decoys = 5;
        let db = Arc::new(
            Database::build(&net, kind, &cfg)
                .unwrap_or_else(|e| panic!("{} build failed: {e}", kind.name())),
        );
        let front = db.serve_wire();
        let mut reference = db.session_with_seed(0x5eed);
        for (round, chaos_seed) in [1u64, 0xBEEF, 0xC0FFEE].into_iter().enumerate() {
            let mut session = db
                .chaos_wire_session_with_seed(
                    &front,
                    0x5eed,
                    FaultPlan::with_outage(chaos_seed ^ u64::from(kind.byte()), 30, 3),
                    RetryPolicy::resilient(),
                )
                .unwrap_or_else(|e| panic!("{} chaos connect: {e}", kind.name()));
            for &(s, t) in &pairs {
                let want = reference
                    .query_nodes(&net, s, t)
                    .unwrap_or_else(|e| panic!("{} inproc {s}->{t}: {e}", kind.name()));
                let got = session.query_nodes(&net, s, t).unwrap_or_else(|e| {
                    panic!("{} chaos round {round} {s}->{t}: {e}", kind.name())
                });
                assert_eq!(got.answer.cost, want.answer.cost, "{}", kind.name());
                assert_eq!(
                    got.answer.path_nodes,
                    want.answer.path_nodes,
                    "{}",
                    kind.name()
                );
                assert!(!got.plan_violation, "{}: plan violation", kind.name());
            }
            total_retries += session.transport_retries();
        }
        front.shutdown();
    }
    assert!(
        total_retries > 0,
        "the soak matrix should have provoked at least one retransmission"
    );
}

/// The CI swap-soak matrix (run with `--ignored`): every scheme serves
/// through a [`DbRegistry`] front while a chaos session (lossy link plus a
/// mid-session outage) straddles a generation swap. The pinned session must
/// drain on generation 1 with answers exactly matching the in-process
/// reference, a stale reopen must be typed, and a fresh session must match
/// the generation-2 reference — per scheme, per fault seed.
#[test]
#[ignore = "swap soak: minutes-long swap-under-chaos matrix, run via the CI swap-soak job (cargo test --test chaos -- --ignored)"]
fn swap_soak_matrix() {
    let net = road_like(&RoadGenConfig {
        nodes: 150,
        seed: 888,
        ..Default::default()
    });
    let net2 = net.reweighted(0x50AB);
    let n = net.num_nodes() as u32;
    let pairs: Vec<(u32, u32)> = (0..4u32)
        .map(|k| ((k * 53 + 11) % n, (k * 131 + 97) % n))
        .filter(|(s, t)| s != t)
        .collect();
    let mut total_retries = 0u64;
    for kind in SchemeKind::ALL {
        let mut cfg = cfg_small();
        cfg.obf_decoys = 5;
        let db1 = Arc::new(
            Database::build(&net, kind, &cfg)
                .unwrap_or_else(|e| panic!("{} gen-1 build failed: {e}", kind.name())),
        );
        let db2 = Arc::new(
            Database::build(&net2, kind, &cfg)
                .unwrap_or_else(|e| panic!("{} gen-2 build failed: {e}", kind.name())),
        );
        for chaos_seed in [2u64, 0xFACE] {
            let registry = DbRegistry::new(Arc::clone(&db1));
            let front = registry.serve_wire();
            let mut reference = db1.session_with_seed(0x5eed);
            let mut session = db1
                .chaos_wire_session_with_seed(
                    &front,
                    0x5eed,
                    FaultPlan::with_outage(chaos_seed ^ u64::from(kind.byte()), 30, 3),
                    RetryPolicy::resilient(),
                )
                .unwrap_or_else(|e| panic!("{} chaos connect: {e}", kind.name()));
            for (qi, &(s, t)) in pairs.iter().enumerate() {
                if qi == 1 {
                    registry
                        .publish(Arc::clone(&db2))
                        .unwrap_or_else(|e| panic!("{} publish: {e}", kind.name()));
                }
                let want = reference
                    .query_nodes(&net, s, t)
                    .unwrap_or_else(|e| panic!("{} inproc {s}->{t}: {e}", kind.name()));
                let got = session
                    .query_nodes(&net, s, t)
                    .unwrap_or_else(|e| panic!("{} chaos swap {s}->{t}: {e}", kind.name()));
                assert_eq!(got.answer.cost, want.answer.cost, "{}", kind.name());
                assert_eq!(
                    got.answer.path_nodes,
                    want.answer.path_nodes,
                    "{}",
                    kind.name()
                );
                assert_eq!(got.trace, want.trace, "{}", kind.name());
                assert!(!got.plan_violation, "{}: plan violation", kind.name());
            }
            total_retries += session.transport_retries();
            session
                .close()
                .unwrap_or_else(|e| panic!("{} drain close: {e}", kind.name()));

            let stale = front.connect_expecting(RetryPolicy::none(), 1);
            assert!(stale.is_err(), "{}: stale reopen must fail", kind.name());

            let mut reference2 = db2.session_with_seed(0xfeed);
            let mut fresh = registry
                .wire_session_with_seed(&front, 0xfeed)
                .unwrap_or_else(|e| panic!("{} gen-2 connect: {e}", kind.name()));
            let (s, t) = pairs[0];
            let want = reference2
                .query_nodes(&net2, s, t)
                .unwrap_or_else(|e| panic!("{} inproc gen-2: {e}", kind.name()));
            let got = fresh
                .query_nodes(&net2, s, t)
                .unwrap_or_else(|e| panic!("{} wire gen-2: {e}", kind.name()));
            assert_eq!(got.answer.cost, want.answer.cost, "{}", kind.name());
            assert_eq!(got.trace, want.trace, "{}", kind.name());
            front.shutdown();
        }
    }
    assert!(
        total_retries > 0,
        "the swap-soak matrix should have provoked at least one retransmission"
    );
}
