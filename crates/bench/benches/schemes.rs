//! Criterion benchmarks for end-to-end private queries, one per scheme —
//! the wall-clock counterpart of the simulated response times the
//! `experiments` binary reports (per table/figure of the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use privpath_core::config::BuildConfig;
use privpath_core::engine::{Engine, SchemeKind};
use privpath_graph::gen::{road_like, RoadGenConfig};

fn bench_net() -> privpath_graph::network::RoadNetwork {
    road_like(&RoadGenConfig {
        nodes: 2_000,
        seed: 17,
        ..Default::default()
    })
}

fn cfg() -> BuildConfig {
    let mut cfg = BuildConfig::default();
    cfg.spec.page_size = 1024; // more regions at bench scale
    cfg.plan_sample = 64;
    cfg
}

/// Query wall time per scheme (the real client+server computation; the
/// simulated PIR/communication seconds are what the experiments report).
fn bench_scheme_queries(c: &mut Criterion) {
    let net = bench_net();
    let mut g = c.benchmark_group("query");
    g.sample_size(20);
    for kind in [
        SchemeKind::Ci,
        SchemeKind::Pi,
        SchemeKind::Hy,
        SchemeKind::PiStar,
        SchemeKind::Lm,
        SchemeKind::Af,
    ] {
        let mut engine = Engine::build(&net, kind, &cfg()).expect("build");
        let n = net.num_nodes() as u32;
        let mut k = 0u32;
        g.bench_function(kind.name(), |b| {
            b.iter(|| {
                k = k.wrapping_add(1);
                let s = (k * 997) % n;
                let t = (k * 331 + 13) % n;
                if s == t {
                    return;
                }
                engine.query_nodes(&net, s, t).expect("query");
            });
        });
    }
    g.finish();
}

/// Scheme database build time (partition + borders + pre-computation +
/// file formation) — one per table/figure family.
fn bench_scheme_builds(c: &mut Criterion) {
    let net = bench_net();
    let mut g = c.benchmark_group("build");
    g.sample_size(10);
    for kind in [
        SchemeKind::Ci,
        SchemeKind::Pi,
        SchemeKind::Lm,
        SchemeKind::Af,
    ] {
        g.bench_function(kind.name(), |b| {
            b.iter(|| Engine::build(&net, kind, &cfg()).expect("build"));
        });
    }
    g.finish();
}

/// OBF query cost growth with the decoy-set size (Figure 6's kernel) —
/// driven through the same `Database`/`QuerySession` API as every scheme.
fn bench_obf(c: &mut Criterion) {
    let net = bench_net();
    let mut g = c.benchmark_group("obf_query");
    g.sample_size(20);
    for decoys in [10usize, 40] {
        g.bench_function(format!("decoys_{decoys}"), |b| {
            let mut cfg = cfg();
            cfg.obf_decoys = decoys;
            let mut engine = Engine::build(&net, SchemeKind::Obf, &cfg).expect("build");
            let n = net.num_nodes() as u32;
            let mut k = 0u32;
            b.iter(|| {
                k = k.wrapping_add(1);
                engine
                    .query_nodes(&net, (k * 97) % n, (k * 31 + 7) % n)
                    .expect("query")
            });
        });
    }
    g.finish();
}

criterion_group!(
    schemes,
    bench_scheme_queries,
    bench_scheme_builds,
    bench_obf
);
criterion_main!(schemes);
