//! Criterion micro-benchmarks for the computational kernels behind the
//! paper's experiments: shortest paths, partitioning, border computation,
//! pre-computation, PIR backends, and index compression.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privpath_core::augment::AugGraph;
use privpath_core::precompute::{precompute, PrecomputeOptions};
use privpath_core::subgraph::{reference::HashSubgraph, ClientSubgraph, QueryScratch};
use privpath_graph::dijkstra::dijkstra;
use privpath_graph::gen::{road_like, RoadGenConfig};
use privpath_graph::landmark::Landmarks;
use privpath_partition::{compute_borders, partition_packed, partition_plain};
use privpath_pir::{LinearScanStore, ObliviousStore, Prp, ShuffledStore};
use privpath_storage::{crc32, DiskFile, MemFile, MmapFile, PageBuf, PagedFile, DEFAULT_PAGE_SIZE};
use std::sync::Arc;

fn net(nodes: usize) -> privpath_graph::network::RoadNetwork {
    road_like(&RoadGenConfig {
        nodes,
        seed: 42,
        ..Default::default()
    })
}

fn bench_dijkstra(c: &mut Criterion) {
    let mut g = c.benchmark_group("dijkstra");
    for nodes in [1_000usize, 5_000, 20_000] {
        let network = net(nodes);
        g.bench_with_input(
            BenchmarkId::from_parameter(nodes),
            &network,
            |b, network| {
                let mut src = 0u32;
                b.iter(|| {
                    src = (src + 7919) % network.num_nodes() as u32;
                    dijkstra(network, src)
                });
            },
        );
    }
    g.finish();
}

/// The client hot path: CSR subgraph Dijkstra (with a reused scratch arena)
/// vs the `HashMap`-based implementation it replaced, on a client view of
/// the whole 10k-node network.
fn bench_client_subgraph(c: &mut Criterion) {
    let network = net(10_000);
    let triples: Vec<(u32, u32, u32)> = (0..network.num_arcs() as u32)
        .map(|e| {
            let (a, b) = network.edge_endpoints(e);
            (a, b, network.edge_weight(e))
        })
        .collect();
    let n = network.num_nodes() as u32;
    let mut g = c.benchmark_group("client_dijkstra_10k");

    g.bench_function("csr_reused_scratch", |b| {
        // Steady-state session shape: arena + scratch reused across queries.
        let mut sub = ClientSubgraph::new();
        let mut scratch = QueryScratch::new();
        let mut k = 0u32;
        b.iter(|| {
            sub.clear();
            sub.add_edges(&triples);
            k = k.wrapping_add(1);
            let s = (k * 997) % n;
            let t = (k * 331 + 13) % n;
            sub.shortest_path_in(&mut scratch, s, t)
        });
    });

    g.bench_function("hashmap_reference", |b| {
        let mut k = 0u32;
        b.iter(|| {
            let mut sub = HashSubgraph::new();
            sub.add_edges(&triples);
            k = k.wrapping_add(1);
            let s = (k * 997) % n;
            let t = (k * 331 + 13) % n;
            sub.shortest_path(s, t).map(|(c, _)| c)
        });
    });
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    let network = net(10_000);
    let bytes = |u: u32| network.node_record_bytes(u);
    let mut g = c.benchmark_group("partition");
    g.bench_function("packed_10k", |b| {
        b.iter(|| partition_packed(&network, 4088, &bytes))
    });
    g.bench_function("plain_10k", |b| {
        b.iter(|| partition_plain(&network, 4088, &bytes))
    });
    g.finish();
}

fn bench_borders(c: &mut Criterion) {
    let network = net(10_000);
    let p = partition_packed(&network, 4088, &|u| network.node_record_bytes(u));
    c.bench_function("borders_10k", |b| {
        b.iter(|| compute_borders(&network, &p.tree))
    });
}

fn bench_precompute(c: &mut Criterion) {
    let network = net(2_000);
    let p = partition_packed(&network, 1024, &|u| network.node_record_bytes(u));
    let borders = compute_borders(&network, &p.tree);
    let aug = AugGraph::build(&network, &borders, &p.region_of_node);
    let mut g = c.benchmark_group("precompute_2k");
    g.sample_size(10);
    g.bench_function("s_only", |b| {
        b.iter(|| {
            precompute(
                &aug,
                &borders,
                p.num_regions(),
                network.num_arcs(),
                &PrecomputeOptions {
                    compute_g: false,
                    threads: 1,
                    ..PrecomputeOptions::default()
                },
            )
        })
    });
    g.bench_function("s_and_g", |b| {
        b.iter(|| {
            precompute(
                &aug,
                &borders,
                p.num_regions(),
                network.num_arcs(),
                &PrecomputeOptions {
                    compute_g: true,
                    threads: 1,
                    ..PrecomputeOptions::default()
                },
            )
        })
    });
    g.finish();
}

/// PR 4's tentpole kernel: the pruned border Dijkstra + settled-prefix
/// sweep against (a) the unpruned run of the same kernel and (b) the
/// retained PR 3 path (`precompute::reference` — lazy `BinaryHeap`
/// Dijkstras, cloned trees, mutex-guarded rows), on the same network and
/// single-threaded throughout. Pruning terminates each search the moment
/// all reachable border nodes are settled — exact, as the differential
/// proptests in `core::precompute` prove — so both ratios are pure win.
fn bench_precompute_border_sweep(c: &mut Criterion) {
    let network = net(4_000);
    let p = partition_packed(&network, 4088, &|u| network.node_record_bytes(u));
    let borders = compute_borders(&network, &p.tree);
    let aug = AugGraph::build(&network, &borders, &p.region_of_node);
    let mut g = c.benchmark_group("precompute_border_sweep");
    g.sample_size(10);
    for (label, prune) in [("pruned", true), ("full", false)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                precompute(
                    &aug,
                    &borders,
                    p.num_regions(),
                    network.num_arcs(),
                    &PrecomputeOptions {
                        compute_g: true,
                        threads: 1,
                        prune,
                        ..PrecomputeOptions::default()
                    },
                )
            })
        });
    }
    g.bench_function("pr3_reference", |b| {
        b.iter(|| {
            privpath_core::precompute::reference::precompute_ref(
                &aug,
                &borders,
                p.num_regions(),
                network.num_arcs(),
                true,
                1,
            )
        })
    });
    g.finish();
}

fn bench_landmarks(c: &mut Criterion) {
    let network = net(5_000);
    let mut g = c.benchmark_group("landmarks_5k");
    g.sample_size(10);
    g.bench_function("build_5", |b| b.iter(|| Landmarks::build(&network, 5)));
    g.finish();
}

fn make_file(pages: u32) -> MemFile {
    let mut f = MemFile::empty(DEFAULT_PAGE_SIZE);
    for p in 0..pages {
        let mut page = PageBuf::zeroed(DEFAULT_PAGE_SIZE);
        page.as_mut_slice()[..4].copy_from_slice(&p.to_le_bytes());
        f.push_page(page);
    }
    f
}

fn bench_pir_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("pir_fetch");
    let pages = 1024u32;
    g.bench_function("linear_scan_1k_pages", |b| {
        let mut store = LinearScanStore::new(make_file(pages));
        let mut q = 0u32;
        b.iter(|| {
            q = (q + 37) % pages;
            store.fetch(q).unwrap()
        });
    });
    g.bench_function("shuffled_1k_pages", |b| {
        let mut store = ShuffledStore::new(make_file(pages), 7);
        let mut q = 0u32;
        b.iter(|| {
            q = (q + 37) % pages;
            store.fetch(q).unwrap()
        });
    });
    g.finish();
}

/// The tentpole win of the batched round API: serving a k-page round from a
/// `LinearScanStore` in one pass over the file (`N` page reads) versus the
/// per-fetch path's one pass *per page* (`k·N` reads). The acceptance bar is
/// a ≥ 2x wall-time reduction per multi-fetch round; the one-pass batch is
/// typically ~k× cheaper.
fn bench_linear_scan_round(c: &mut Criterion) {
    let pages = 1024u32;
    let round = 8u32; // a CI-style round: several region pages + dummies
    let requests: Vec<u32> = (0..round).map(|i| (i * 131 + 5) % pages).collect();
    let mut g = c.benchmark_group("linear_scan_round_8x1k");
    g.bench_function("batched_one_pass", |b| {
        let mut store = LinearScanStore::new(make_file(pages));
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); requests.len()];
        b.iter(|| store.fetch_batch(&requests, &mut out).unwrap());
    });
    g.bench_function("per_fetch", |b| {
        let mut store = LinearScanStore::new(make_file(pages));
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); requests.len()];
        b.iter(|| {
            for (slot, &p) in out.iter_mut().zip(&requests) {
                *slot = store.fetch(p).unwrap();
            }
        });
    });
    g.finish();
}

/// PR 10's tentpole kernel: the run-streamed branchless lane scan
/// (`fetch_batch`) against the retained PR 3 copy path
/// (`fetch_batch_reference` — one page read + branchy cursor copy per
/// page), over every storage driver. The acceptance pairing (≥ 1.5x) is
/// how a disk-resident database is served before vs after this PR:
/// `pr3_copy/disk` (per-page positioned reads) against `lanes/mmap` (the
/// mapped driver streamed zero-copy) — ~3x on the committed host. The
/// same-driver rows isolate the terms: `disk` shows the run-read batching
/// win alone (syscall granularity, ~1.2-1.6x here), while `mem`/`mmap`
/// show the PR 3 copy path was *already* memory-bandwidth-bound there, so
/// the lane kernel buys constant per-page work (obliviousness under the
/// adversarial-server timing model) at rough parity, not extra speed.
/// Both paths are observably identical (answers and `0..N` physical log),
/// as the differential tests in `pir::backend` prove.
fn bench_scan_kernel(c: &mut Criterion) {
    let pages = 1024u32;
    let round = 8u32;
    let requests: Vec<u32> = (0..round).map(|i| (i * 131 + 5) % pages).collect();
    let mem = make_file(pages);
    let dir = std::env::temp_dir().join(format!("privpath-bench-scan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let path = dir.join("scan.bin");
    mem.persist(&path).expect("persist bench file");

    let drivers: Vec<(&str, Arc<dyn PagedFile>)> = vec![
        ("mem", Arc::new(mem) as Arc<dyn PagedFile>),
        (
            "disk",
            Arc::new(DiskFile::open(&path, DEFAULT_PAGE_SIZE).expect("open disk")),
        ),
        (
            "mmap",
            Arc::new(MmapFile::open(&path, DEFAULT_PAGE_SIZE).expect("open mmap")),
        ),
    ];

    let mut g = c.benchmark_group("linear_scan_round");
    g.sample_size(20);
    for (name, driver) in drivers {
        g.bench_with_input(BenchmarkId::new("pr3_copy", name), &driver, |b, driver| {
            let mut store = LinearScanStore::from_driver(Arc::clone(driver));
            let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); requests.len()];
            b.iter(|| store.fetch_batch_reference(&requests, &mut out).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("lanes", name), &driver, |b, driver| {
            let mut store = LinearScanStore::from_driver(Arc::clone(driver));
            let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); requests.len()];
            b.iter(|| store.fetch_batch(&requests, &mut out).unwrap());
        });
    }
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_prp_and_crc(c: &mut Criterion) {
    let prp = Prp::new(1 << 20, 99);
    c.bench_function("prp_apply", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = (x + 1) % (1 << 20);
            prp.apply(x)
        });
    });
    let page = vec![0xA5u8; DEFAULT_PAGE_SIZE];
    c.bench_function("crc32_page", |b| b.iter(|| crc32(&page)));
}

criterion_group!(
    kernels,
    bench_dijkstra,
    bench_client_subgraph,
    bench_partition,
    bench_borders,
    bench_precompute,
    bench_precompute_border_sweep,
    bench_landmarks,
    bench_pir_backends,
    bench_linear_scan_round,
    bench_scan_kernel,
    bench_prp_and_crc
);
criterion_main!(kernels);
