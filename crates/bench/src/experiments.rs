//! One function per table/figure of the paper's evaluation (§7).
//!
//! Every function prints an aligned table (plus the paper's reference values
//! where the paper reports absolute numbers) and writes a CSV under
//! `results/`. Networks are seeded synthetic stand-ins at the scales of
//! [`crate::scales`]; DESIGN.md §2 documents the substitution and
//! EXPERIMENTS.md the committed runs.

use crate::report::{mb, secs, Table};
use crate::runner::{run_workload, WorkloadResult};
use crate::scales::effective_scale;
use privpath_core::config::BuildConfig;
use privpath_core::engine::SchemeKind;
use privpath_core::{CoreError, Result};
use privpath_graph::gen::{paper_network, PaperNetwork, ALL_PAPER_NETWORKS};
use privpath_graph::network::RoadNetwork;
use privpath_pir::SystemSpec;

/// Harness-wide knobs from the CLI.
#[derive(Debug, Clone)]
pub struct ExpCtx {
    /// Multiplier on the default per-network scales.
    pub scale_factor: f64,
    /// Queries per workload (paper: 1000).
    pub queries: usize,
    /// Pre-computation threads (0 = all cores).
    pub threads: usize,
}

impl Default for ExpCtx {
    fn default() -> Self {
        ExpCtx {
            scale_factor: 1.0,
            queries: 100,
            threads: 0,
        }
    }
}

impl ExpCtx {
    fn cfg(&self) -> BuildConfig {
        BuildConfig {
            threads: self.threads,
            ..Default::default()
        }
    }

    fn net(&self, which: PaperNetwork) -> (RoadNetwork, f64) {
        let scale = effective_scale(which, self.scale_factor);
        (paper_network(which, scale), scale)
    }

    /// Scales the SCP memory with the network so the PIR file-size limit
    /// binds at reduced scale exactly as the 2.5 GB limit binds at full
    /// scale (used by the large-network experiments, §7.5).
    fn scaled_spec(&self, scale: f64) -> SystemSpec {
        let mut spec = SystemSpec::default();
        spec.scp_memory_bytes =
            ((spec.scp_memory_bytes as f64) * scale).max((1u64 << 20) as f64) as u64;
        spec
    }
}

/// All experiment ids, in paper order.
pub const ALL_EXPERIMENTS: [&str; 11] = [
    "table1", "table2", "fig5", "table3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
];

/// Runs one experiment by id (or `all`).
pub fn run(id: &str, ctx: &ExpCtx) -> Result<()> {
    match id {
        "table1" => table1(ctx),
        "table2" => table2(ctx),
        "fig5" => fig5(ctx),
        "table3" => table3(ctx),
        "fig6" => fig6(ctx),
        "fig7" => fig7(ctx),
        "fig8" => fig8(ctx),
        "fig9" => fig9(ctx),
        "fig10" => fig10(ctx),
        "fig11" => fig11(ctx),
        "fig12" => fig12(ctx),
        "all" => {
            for e in ALL_EXPERIMENTS {
                run(e, ctx)?;
            }
            Ok(())
        }
        other => Err(CoreError::Build(format!(
            "unknown experiment '{other}' (expected one of {ALL_EXPERIMENTS:?} or 'all')"
        ))),
    }
}

/// Table 1: the road networks (paper counts vs generated stand-ins).
pub fn table1(ctx: &ExpCtx) -> Result<()> {
    let mut t = Table::new(
        "Table 1: road networks (synthetic stand-ins)",
        &[
            "network",
            "paper nodes",
            "paper edges",
            "scale",
            "gen nodes",
            "gen edges",
        ],
    );
    for which in ALL_PAPER_NETWORKS {
        let (net, scale) = ctx.net(which);
        t.row(vec![
            which.name().into(),
            which.nodes().to_string(),
            which.edges().to_string(),
            format!("{scale:.3}"),
            net.num_nodes().to_string(),
            (net.num_arcs() / 2).to_string(),
        ]);
    }
    t.emit("table1");
    Ok(())
}

/// Table 2: system specifications (the simulation constants in force).
pub fn table2(_ctx: &ExpCtx) -> Result<()> {
    let s = SystemSpec::default();
    let mut t = Table::new("Table 2: system specifications", &["parameter", "value"]);
    t.row(vec!["Disk page size".into(), format!("{} B", s.page_size)]);
    t.row(vec![
        "Disk seek time".into(),
        format!("{} ms", s.disk_seek_s * 1e3),
    ]);
    t.row(vec![
        "Disk read/write rate".into(),
        format!("{} MB/s", s.disk_rate_bps / 1e6),
    ]);
    t.row(vec![
        "SCP read/write rate".into(),
        format!("{} MB/s", s.scp_io_rate_bps / 1e6),
    ]);
    t.row(vec![
        "SCP crypto rate".into(),
        format!("{} MB/s", s.crypto_rate_bps / 1e6),
    ]);
    t.row(vec![
        "Communication bandwidth".into(),
        format!("{} KB/s", s.comm_rate_bps / 1024.0),
    ]);
    t.row(vec![
        "Communication RTT".into(),
        format!("{} ms", s.comm_rtt_s * 1e3),
    ]);
    t.row(vec![
        "SCP memory".into(),
        format!("{} MB", s.scp_memory_bytes >> 20),
    ]);
    t.row(vec![
        "Max PIR file".into(),
        format!("{:.2} GB", s.max_file_bytes() as f64 / 1e9),
    ]);
    t.emit("table2");
    Ok(())
}

/// Figure 5: LM tuning — response time and space vs number of landmarks
/// (Argentina). Paper: best at 5 anchors; too few → weak bounds, too many →
/// bigger Fd and costlier PIR fetches.
pub fn fig5(ctx: &ExpCtx) -> Result<()> {
    let (net, scale) = ctx.net(PaperNetwork::Argentina);
    let mut t = Table::new(
        &format!("Figure 5: LM tuning (Argentina @ {scale:.3})"),
        &[
            "landmarks",
            "response (s)",
            "space (MB)",
            "Fd pages",
            "plan pages",
        ],
    );
    for k in [1usize, 2, 5, 8, 12, 16, 20] {
        let mut cfg = ctx.cfg();
        cfg.landmarks = k;
        let r = run_workload(&net, SchemeKind::Lm, &cfg, ctx.queries, 77)?;
        t.row(vec![
            k.to_string(),
            secs(r.response_s()),
            mb(r.db_bytes),
            r.stats.pages.2.to_string(),
            r.avg.total_fetches().to_string(),
        ]);
    }
    t.emit("fig5");
    Ok(())
}

fn component_rows(t: &mut Table, r: &WorkloadResult, paper: Option<[&str; 4]>) {
    let p = paper.unwrap_or(["-", "-", "-", "-"]);
    t.row(vec![
        r.kind.name().into(),
        secs(r.response_s()),
        p[0].into(),
        secs(r.avg.pir.total_s()),
        p[1].into(),
        secs(r.avg.comm_s),
        p[2].into(),
        format!("{:.3}", r.avg.client_s),
        format!("{}", r.avg.total_fetches()),
        format!(
            "(fl {}, fi {}, fd {})",
            r.stats.pages.0, r.stats.pages.1, r.stats.pages.2
        ),
        mb(r.db_bytes),
        p[3].into(),
    ]);
}

/// Table 3: response-time components on Argentina for AF, LM, CI, PI.
pub fn table3(ctx: &ExpCtx) -> Result<()> {
    let (net, scale) = ctx.net(PaperNetwork::Argentina);
    let mut t = Table::new(
        &format!("Table 3: components of response time (Argentina @ {scale:.3}; 'paper' columns are the full-scale published values)"),
        &[
            "method",
            "resp (s)",
            "paper",
            "PIR (s)",
            "paper",
            "comm (s)",
            "paper",
            "client (s)",
            "fetches",
            "file pages",
            "space (MB)",
            "paper MB",
        ],
    );
    let paper: [(SchemeKind, [&str; 4]); 4] = [
        (SchemeKind::Af, ["324.18", "272.56", "51.47", "3.28"]),
        (SchemeKind::Lm, ["311.93", "265.38", "46.43", "4.38"]),
        (SchemeKind::Ci, ["105.45", "88.09", "17.34", "8.40"]),
        (SchemeKind::Pi, ["58.17", "54.21", "3.94", "1102"]),
    ];
    for (kind, p) in paper {
        let r = run_workload(&net, kind, &ctx.cfg(), ctx.queries, 31)?;
        component_rows(&mut t, &r, Some(p));
        if r.violations > 0 {
            println!("note: {} plan violations for {}", r.violations, kind.name());
        }
    }
    t.emit("table3");
    Ok(())
}

/// Figure 6: OBF response time vs |S| = |T| (Argentina), with CI and PI
/// reference lines. OBF leaks the candidate sets — performance context only.
pub fn fig6(ctx: &ExpCtx) -> Result<()> {
    let (net, scale) = ctx.net(PaperNetwork::Argentina);
    let mut t = Table::new(
        &format!("Figure 6: OBF vs decoy-set size (Argentina @ {scale:.3})"),
        &[
            "method",
            "|S|=|T|",
            "response (s)",
            "server (s)",
            "comm (s)",
            "shipped MB",
        ],
    );
    for decoys in [20usize, 40, 60, 80, 100] {
        let mut cfg = ctx.cfg();
        cfg.obf_decoys = decoys;
        let r = run_workload(&net, SchemeKind::Obf, &cfg, ctx.queries.min(30), 55)?;
        t.row(vec![
            "OBF".into(),
            decoys.to_string(),
            secs(r.response_s()),
            secs(r.avg.server_s),
            secs(r.avg.comm_s),
            mb(r.avg.bytes_transferred),
        ]);
    }
    for kind in [SchemeKind::Ci, SchemeKind::Pi] {
        let r = run_workload(&net, kind, &ctx.cfg(), ctx.queries.min(30), 55)?;
        t.row(vec![
            kind.name().into(),
            "-".into(),
            secs(r.response_s()),
            "0".into(),
            secs(r.avg.comm_s),
            "-".into(),
        ]);
    }
    t.emit("fig6");
    Ok(())
}

/// Figure 7: AF/LM/CI/PI across Oldenburg, Germany, Argentina.
pub fn fig7(ctx: &ExpCtx) -> Result<()> {
    let mut t = Table::new(
        "Figure 7: response time and space on different road networks",
        &[
            "network",
            "scale",
            "method",
            "response (s)",
            "space (MB)",
            "fetches",
        ],
    );
    for which in [
        PaperNetwork::Oldenburg,
        PaperNetwork::Germany,
        PaperNetwork::Argentina,
    ] {
        let (net, scale) = ctx.net(which);
        for kind in [
            SchemeKind::Af,
            SchemeKind::Lm,
            SchemeKind::Ci,
            SchemeKind::Pi,
        ] {
            let r = run_workload(&net, kind, &ctx.cfg(), ctx.queries, 41)?;
            t.row(vec![
                which.short_name().into(),
                format!("{scale:.3}"),
                kind.name().into(),
                secs(r.response_s()),
                mb(r.db_bytes),
                r.avg.total_fetches().to_string(),
            ]);
        }
    }
    t.emit("fig7");
    Ok(())
}

/// Figure 8: packed vs plain KD-tree partitioning (CI, CI-P, PI, PI-P).
pub fn fig8(ctx: &ExpCtx) -> Result<()> {
    let mut t = Table::new(
        "Figure 8: effect of packed partitioning",
        &[
            "network",
            "variant",
            "Fd util (%)",
            "response (s)",
            "space (MB)",
            "regions",
        ],
    );
    for which in [
        PaperNetwork::Oldenburg,
        PaperNetwork::Germany,
        PaperNetwork::Argentina,
    ] {
        let (net, _) = ctx.net(which);
        for (kind, packed, label) in [
            (SchemeKind::Ci, true, "CI"),
            (SchemeKind::Ci, false, "CI-P"),
            (SchemeKind::Pi, true, "PI"),
            (SchemeKind::Pi, false, "PI-P"),
        ] {
            let mut cfg = ctx.cfg();
            cfg.packed_partition = packed;
            let r = run_workload(&net, kind, &cfg, ctx.queries, 43)?;
            t.row(vec![
                which.short_name().into(),
                label.into(),
                format!("{:.1}", r.stats.fd_utilization * 100.0),
                secs(r.response_s()),
                mb(r.db_bytes),
                r.stats.regions.to_string(),
            ]);
        }
    }
    t.emit("fig8");
    Ok(())
}

/// Figure 9: index compression on/off (CI, CI-C, PI, PI-C).
pub fn fig9(ctx: &ExpCtx) -> Result<()> {
    let mut t = Table::new(
        "Figure 9: effect of index compression",
        &[
            "network",
            "variant",
            "response (s)",
            "space (MB)",
            "Fi pages",
        ],
    );
    for which in [
        PaperNetwork::Oldenburg,
        PaperNetwork::Germany,
        PaperNetwork::Argentina,
    ] {
        let (net, _) = ctx.net(which);
        for (kind, compress, label) in [
            (SchemeKind::Ci, true, "CI"),
            (SchemeKind::Ci, false, "CI-C"),
            (SchemeKind::Pi, true, "PI"),
            (SchemeKind::Pi, false, "PI-C"),
        ] {
            let mut cfg = ctx.cfg();
            cfg.compress_index = compress;
            match run_workload(&net, kind, &cfg, ctx.queries, 47) {
                Ok(r) => t.row(vec![
                    which.short_name().into(),
                    label.into(),
                    secs(r.response_s()),
                    mb(r.db_bytes),
                    r.stats.pages.1.to_string(),
                ]),
                Err(CoreError::Pir(privpath_pir::PirError::FileTooLarge { .. })) => t.row(vec![
                    which.short_name().into(),
                    label.into(),
                    "Nil".into(),
                    "Nil".into(),
                    "-".into(),
                ]),
                Err(e) => return Err(e),
            }
        }
    }
    t.emit("fig9");
    Ok(())
}

/// Figure 10: HY on Denmark — |S_ij| histogram plus the threshold sweep.
/// The SCP memory scales with the network so the file-size limit binds as it
/// does at full scale.
pub fn fig10(ctx: &ExpCtx) -> Result<()> {
    let (net, scale) = ctx.net(PaperNetwork::Denmark);
    let spec = ctx.scaled_spec(scale);

    // (a) the |S_ij| cardinality histogram from a CI build
    let mut cfg = ctx.cfg();
    cfg.spec = spec.clone();
    let ci = run_workload(&net, SchemeKind::Ci, &cfg, ctx.queries, 61)?;
    let mut ha = Table::new(
        &format!(
            "Figure 10(a): |S_ij| distribution (Denmark @ {scale:.3}, m = {})",
            ci.stats.m
        ),
        &["|S_ij| bucket", "pairs"],
    );
    let bucket = (ci.stats.m as usize / 12).max(1);
    let mut buckets = std::collections::BTreeMap::new();
    for &(len, count) in &ci.stats.s_histogram {
        *buckets.entry(len / bucket).or_insert(0usize) += count;
    }
    for (b, count) in buckets {
        ha.row(vec![
            format!("{}..{}", b * bucket, (b + 1) * bucket - 1),
            count.to_string(),
        ]);
    }
    ha.emit("fig10a");

    // (b, c) threshold sweep
    let mut t = Table::new(
        &format!(
            "Figure 10(b,c): HY threshold sweep (Denmark @ {scale:.3}; PIR file limit {:.1} MB)",
            spec.max_file_bytes() as f64 / 1e6
        ),
        &[
            "variant",
            "threshold",
            "response (s)",
            "space (MB)",
            "plan fetches",
        ],
    );
    let m = ci.stats.m as usize;
    t.row(vec![
        "CI".into(),
        "-".into(),
        secs(ci.response_s()),
        mb(ci.db_bytes),
        ci.avg.total_fetches().to_string(),
    ]);
    for frac in [0.15, 0.3, 0.5, 0.7, 0.9] {
        let threshold = ((m as f64 * frac) as usize).max(1);
        let mut cfg = ctx.cfg();
        cfg.spec = spec.clone();
        cfg.hy_threshold = Some(threshold);
        match run_workload(&net, SchemeKind::Hy, &cfg, ctx.queries, 61) {
            Ok(r) => t.row(vec![
                "HY".into(),
                threshold.to_string(),
                secs(r.response_s()),
                mb(r.db_bytes),
                r.avg.total_fetches().to_string(),
            ]),
            Err(CoreError::Pir(privpath_pir::PirError::FileTooLarge { .. })) => t.row(vec![
                "HY".into(),
                threshold.to_string(),
                "Nil (exceeds PIR limit)".into(),
                "-".into(),
                "-".into(),
            ]),
            Err(e) => return Err(e),
        }
    }
    t.emit("fig10");
    Ok(())
}

/// Figure 11: PI* cluster-size sweep on Denmark (scaled SCP).
pub fn fig11(ctx: &ExpCtx) -> Result<()> {
    let (net, scale) = ctx.net(PaperNetwork::Denmark);
    let spec = ctx.scaled_spec(scale);
    let mut t = Table::new(
        &format!(
            "Figure 11: PI* vs cluster size (Denmark @ {scale:.3}; PIR file limit {:.1} MB)",
            spec.max_file_bytes() as f64 / 1e6
        ),
        &[
            "variant",
            "cluster pages",
            "response (s)",
            "space (MB)",
            "regions",
        ],
    );
    let mut cfg = ctx.cfg();
    cfg.spec = spec.clone();
    let ci = run_workload(&net, SchemeKind::Ci, &cfg, ctx.queries, 67)?;
    t.row(vec![
        "CI".into(),
        "1".into(),
        secs(ci.response_s()),
        mb(ci.db_bytes),
        ci.stats.regions.to_string(),
    ]);
    for cluster in [2u16, 4, 6, 8, 12, 16] {
        let mut cfg = ctx.cfg();
        cfg.spec = spec.clone();
        cfg.cluster_pages = cluster;
        match run_workload(&net, SchemeKind::PiStar, &cfg, ctx.queries, 67) {
            Ok(r) => t.row(vec![
                "PI*".into(),
                cluster.to_string(),
                secs(r.response_s()),
                mb(r.db_bytes),
                r.stats.regions.to_string(),
            ]),
            Err(CoreError::Pir(privpath_pir::PirError::FileTooLarge { .. })) => t.row(vec![
                "PI*".into(),
                cluster.to_string(),
                "Nil (exceeds PIR limit)".into(),
                "-".into(),
                "-".into(),
            ]),
            Err(e) => return Err(e),
        }
    }
    t.emit("fig11");
    Ok(())
}

/// Figure 12: CI vs HY vs PI* on the three large networks (scaled SCP).
pub fn fig12(ctx: &ExpCtx) -> Result<()> {
    let mut t = Table::new(
        "Figure 12: performance on larger networks",
        &[
            "network",
            "scale",
            "method",
            "response (s)",
            "space (MB)",
            "fetches",
        ],
    );
    for which in [
        PaperNetwork::Denmark,
        PaperNetwork::India,
        PaperNetwork::NorthAmerica,
    ] {
        let (net, scale) = ctx.net(which);
        let spec = ctx.scaled_spec(scale);
        // CI
        let mut cfg = ctx.cfg();
        cfg.spec = spec.clone();
        let ci = run_workload(&net, SchemeKind::Ci, &cfg, ctx.queries, 71)?;
        t.row(vec![
            which.short_name().into(),
            format!("{scale:.3}"),
            "CI".into(),
            secs(ci.response_s()),
            mb(ci.db_bytes),
            ci.avg.total_fetches().to_string(),
        ]);
        // HY auto-tuned to the (scaled) PIR limit
        let mut cfg = ctx.cfg();
        cfg.spec = spec.clone();
        cfg.hy_threshold = None;
        let hy = run_workload(&net, SchemeKind::Hy, &cfg, ctx.queries, 71)?;
        t.row(vec![
            which.short_name().into(),
            format!("{scale:.3}"),
            "HY".into(),
            secs(hy.response_s()),
            mb(hy.db_bytes),
            hy.avg.total_fetches().to_string(),
        ]);
        // PI*: smallest cluster whose index fits
        let mut placed = false;
        for cluster in [2u16, 3, 4, 6, 8, 12, 16] {
            let mut cfg = ctx.cfg();
            cfg.spec = spec.clone();
            cfg.cluster_pages = cluster;
            match run_workload(&net, SchemeKind::PiStar, &cfg, ctx.queries, 71) {
                Ok(r) => {
                    t.row(vec![
                        which.short_name().into(),
                        format!("{scale:.3}"),
                        format!("PI* (k={cluster})"),
                        secs(r.response_s()),
                        mb(r.db_bytes),
                        r.avg.total_fetches().to_string(),
                    ]);
                    placed = true;
                    break;
                }
                Err(CoreError::Pir(privpath_pir::PirError::FileTooLarge { .. })) => continue,
                Err(e) => return Err(e),
            }
        }
        if !placed {
            t.row(vec![
                which.short_name().into(),
                format!("{scale:.3}"),
                "PI*".into(),
                "Nil".into(),
                "-".into(),
                "-".into(),
            ]);
        }
    }
    t.emit("fig12");
    Ok(())
}
