use privpath_core::config::BuildConfig;
use privpath_core::engine::{Engine, SchemeKind};
use privpath_graph::gen::{paper_network, PaperNetwork};
use std::time::Instant;

fn main() {
    for (net_kind, scale) in [
        (PaperNetwork::Oldenburg, 1.0),
        (PaperNetwork::Germany, 0.5),
        (PaperNetwork::Argentina, 0.25),
    ] {
        let t0 = Instant::now();
        let net = paper_network(net_kind, scale);
        let gen_t = t0.elapsed();
        for kind in [SchemeKind::Ci, SchemeKind::Pi] {
            let t1 = Instant::now();
            let cfg = BuildConfig::default();
            let mut e = Engine::build(&net, kind, &cfg).unwrap();
            let build_t = t1.elapsed();
            let t2 = Instant::now();
            let mut total = 0f64;
            for k in 0..20u32 {
                let n = net.num_nodes() as u32;
                let out = e
                    .query_nodes(&net, (k * 997) % n, (k * 331 + 13) % n)
                    .unwrap();
                total += out.meter.response_time_s();
            }
            let q_t = t2.elapsed();
            println!("{:?}@{} {}: gen {:.1?} build {:.1?} 20q {:.1?} | regions {} borders {} m {} db {:.1} MB avg-resp {:.1}s",
                net_kind, scale, kind.name(), gen_t, build_t, q_t,
                e.stats().regions, e.stats().borders, e.stats().m,
                e.db_bytes() as f64/1e6, total/20.0);
        }
    }
}
