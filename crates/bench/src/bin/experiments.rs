//! CLI for the experiment harness.
//!
//! ```text
//! experiments <id|all> [--scale F] [--queries N] [--threads T]
//! ```

use privpath_bench::experiments::{run, ExpCtx, ALL_EXPERIMENTS};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <id|all> [--scale F|full] [--queries N] [--threads T]\n  \
         ids: {}\n  --scale full (or paper) runs every network at its exact Table 1 size",
        ALL_EXPERIMENTS.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let id = args[0].clone();
    let mut ctx = ExpCtx::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                ctx.scale_factor = args
                    .get(i + 1)
                    .and_then(|v| privpath_bench::scales::parse_scale_arg(v))
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--queries" => {
                ctx.queries = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--threads" => {
                ctx.threads = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }
    let t0 = std::time::Instant::now();
    if let Err(e) = run(&id, &ctx) {
        eprintln!("experiment '{id}' failed: {e}");
        std::process::exit(1);
    }
    let scale_desc = if ctx.scale_factor == privpath_bench::scales::FULL_SCALE {
        "full (paper sizes)".to_string()
    } else {
        format!("x{}", ctx.scale_factor)
    };
    eprintln!(
        "[{} completed in {:.1?} — scale {scale_desc}, {} queries/workload]",
        id,
        t0.elapsed(),
        ctx.queries
    );
}
