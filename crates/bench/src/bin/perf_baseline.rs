//! Produces (or validates) the committed `BENCH_PR<N>.json` perf baseline:
//! shared databases for every requested scheme, a fixed query workload,
//! single-thread vs multi-thread session throughput, tail latencies, and the
//! per-stage breakdown — one `runs[]` entry per (scheme, thread-count) and
//! one `builds[]` entry per scheme carrying `build_breakdown_ms`
//! (partition / borders / precompute / files / plan).
//!
//! ```text
//! perf_baseline [--nodes N] [--queries Q] [--threads T]
//!               [--scheme all|name[,name...]]
//!               [--transport inproc|wire|both|tcp]
//!               [--storage mem|disk|mmap|both]
//!               [--chaos SEED] [--swap] [--pr N] [--out FILE]
//!               [--build-profile] [--kernel-nodes N]
//! perf_baseline --check FILE
//! ```
//!
//! `--transport` picks the session transport (PR 5): `inproc` is the
//! direct-call reference path, `wire` drives every session through the
//! versioned frame protocol into a `ServerFront` loop thread, and `both`
//! runs each configuration twice and records the per-scheme
//! `wire_overhead` (in-process single-thread q/s over wire single-thread
//! q/s) in `builds[]` — the cost of the real client/server boundary.
//!
//! `--transport tcp` (PR 7) serves every session over a real loopback
//! socket into a `TcpFront` accept loop and runs each configuration twice:
//! once with cross-session round coalescing off and once with it on (each
//! `runs[]` entry carries a boolean `coalesced`), so the committed file
//! records coalesced vs uncoalesced multi-client throughput. Because
//! coalescing only engages on linear-scan stores, this mode builds the
//! databases with `pir_mode = LinearScan` — real oblivious sweeps — so its
//! absolute q/s is not comparable to the cost-only `inproc`/`wire` runs.
//!
//! `--chaos SEED` (PR 6) additionally runs every configuration over a
//! seeded lossy `ChaosLink` with the resilient retry policy, recording the
//! retry overhead: each chaos `runs[]` entry carries `retransmits` and its
//! `chaos_seed`. The simulated meters of a chaos run are asserted equal to
//! the clean wire run's — link faults must never perturb the cost model —
//! so the only chaos-visible deltas are wall time and retransmit counts.
//!
//! `--storage mem|disk|mmap|both` (PR 9, `mmap` since PR 10) picks the
//! storage driver the databases serve from: `mem` (the default) serves the
//! freshly built memory-resident files, `disk` and `mmap` persist each
//! database to a snapshot and serve it back through the checksum-verified
//! persistent drivers (positioned per-run reads vs a memory mapping), and
//! `both` runs every configuration on all three so the committed file
//! records the per-backend throughput deltas directly (each `runs[]` entry
//! carries a `storage` tag; the schema validator requires it on `pr >= 9`
//! baselines, and requires an `mmap` run on `pr >= 10`). When a persistent
//! driver is in play the file also gains a `recovery` section — the persist
//! wall, the cold-start `open_snapshot` wall, and the snapshot's size —
//! measured on the first requested scheme.
//!
//! Every emitted baseline also carries a `scan_kernel` section (PR 10): one
//! k-page linear-scan round timed per storage driver on both the retained
//! PR 3 sorted-cursor copy path and the run-streamed branchless lane
//! kernel, with the headline `disk_serving_ratio` (PR 3 per-page disk reads
//! vs the lane kernel over the mapped driver). The schema validator
//! requires the section on `pr >= 10`.
//!
//! `--swap` (PR 8) additionally measures the generation hot-swap subsystem
//! on the first requested scheme: a `DbRegistry` serves the database over a
//! wire front while a background worker rebuilds it from a reweighted copy
//! of the network, and the committed file gains a `swap` section — serve
//! throughput *during* the rebuild, the rebuild's wall time, and the
//! publish-to-first-answer cutover latency. Every `runs[]` entry also
//! carries the `generation` it served (1 for these single-database
//! workloads); the schema validator requires the tag on `pr >= 8`
//! baselines.
//!
//! `--build-profile` is the offline-pipeline mode (PR 4): it additionally
//! runs the pruned-vs-full border-Dijkstra kernel comparison (on a
//! `--kernel-nodes` network, default 4000, so the unpruned reference stays
//! affordable even when `--nodes` is paper-scale) and records the ratio
//! under `precompute_kernel`. Use it with a large `--nodes` and a small
//! `--queries` to profile builds rather than query throughput.
//!
//! Measurement caveat: multi-thread wall speedup is only meaningful on a
//! multi-core host. On a 1-CPU container (`host_cpus == 1` in the emitted
//! JSON, flagged by `single_cpu_host: true`) a speedup of ≈ 1.0 is the
//! *expected* outcome, not a scaling regression — re-measure on a multi-core
//! machine before drawing scaling conclusions.

use privpath_bench::perf::{
    obj, run_to_json, stage_breakdown_to_json, swap_to_json, validate_baseline, Json,
};
use privpath_bench::runner::{
    run_shared_workload_with, run_swap_workload, workload_pairs, TransportKind,
};
use privpath_core::augment::AugGraph;
use privpath_core::config::BuildConfig;
use privpath_core::engine::{Database, SchemeKind};
use privpath_core::precompute::{precompute, PrecomputeOptions};
use privpath_core::StorageBackend;
use privpath_graph::gen::{road_like, RoadGenConfig};
use privpath_pir::PirMode;
use std::sync::Arc;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: perf_baseline [--nodes N] [--queries Q] [--threads T] \
         [--scheme all|name[,name...]] [--transport inproc|wire|both|tcp] \
         [--storage mem|disk|mmap|both] [--chaos SEED] [--swap] [--pr N] \
         [--out FILE] [--build-profile] [--kernel-nodes N]\n       \
         perf_baseline --check FILE"
    );
    std::process::exit(2);
}

/// Times the §5.2 pre-computation kernel three ways on a fresh
/// `nodes`-node road-like net — the new kernel with pruned border
/// Dijkstras, the new kernel unpruned, and the retained PR 3 path
/// (`precompute::reference`: lazy `BinaryHeap`, cloned trees, mutex-guarded
/// rows) — and returns the JSON record for `precompute_kernel`.
/// Single-threaded on all sides so the ratios are kernel comparisons, not
/// scheduling ones. `ratio` is the headline PR 3 / pruned speedup;
/// `ratio_vs_full` isolates the border-pruning term alone.
fn kernel_measure(nodes: usize, seed: u64) -> Json {
    let net = road_like(&RoadGenConfig {
        nodes,
        seed,
        ..Default::default()
    });
    let p = privpath_partition::partition_packed(&net, 4088, &|u| net.node_record_bytes(u));
    let borders = privpath_partition::compute_borders(&net, &p.tree);
    let aug = AugGraph::build(&net, &borders, &p.region_of_node);
    let time_one = |prune: bool| {
        let t0 = Instant::now();
        let pre = precompute(
            &aug,
            &borders,
            p.num_regions(),
            net.num_arcs(),
            &PrecomputeOptions {
                compute_g: true,
                threads: 1,
                prune,
                ..PrecomputeOptions::default()
            },
        );
        (t0.elapsed().as_secs_f64() * 1e3, pre.m)
    };
    let (full_ms, m_full) = time_one(false);
    let (pruned_ms, m_pruned) = time_one(true);
    let t0 = Instant::now();
    let pre_ref = privpath_core::precompute::reference::precompute_ref(
        &aug,
        &borders,
        p.num_regions(),
        net.num_arcs(),
        true,
        1,
    );
    let pr3_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(m_full, m_pruned, "pruning changed the pre-computation");
    assert_eq!(
        pre_ref.m, m_pruned,
        "new kernel diverged from the PR 3 path"
    );
    let ratio = pr3_ms / pruned_ms.max(1e-9);
    let ratio_vs_full = full_ms / pruned_ms.max(1e-9);
    eprintln!(
        "precompute kernel ({nodes} nodes, {} borders): pruned {pruned_ms:.0} ms, \
         full {full_ms:.0} ms, PR 3 path {pr3_ms:.0} ms — {ratio:.2}x vs PR 3, \
         {ratio_vs_full:.2}x vs full",
        borders.len()
    );
    obj([
        ("nodes", Json::Num(net.num_nodes() as f64)),
        ("regions", Json::Num(f64::from(p.num_regions()))),
        ("borders", Json::Num(borders.len() as f64)),
        ("pruned_ms", Json::Num(pruned_ms)),
        ("full_ms", Json::Num(full_ms)),
        ("pr3_ms", Json::Num(pr3_ms)),
        ("ratio", Json::Num(ratio)),
        ("ratio_vs_full", Json::Num(ratio_vs_full)),
    ])
}

/// Times one k-page round of the PR 10 lane-scan kernel
/// (`LinearScanStore::fetch_batch`: run-streamed, branchless masked select)
/// against the retained PR 3 sorted-cursor copy path
/// (`fetch_batch_reference`: one page read + branchy copy per page) on every
/// storage driver, and returns the `scan_kernel` JSON record. Both paths
/// are asserted answer-identical per driver before timing. Medians over the
/// timed rounds, because 1-CPU container hosts are noisy.
///
/// `disk_serving_ratio` is the headline: the PR 3 path over per-page
/// `DiskFile` reads versus the lane kernel over the mapped driver — the way
/// a disk-resident database was actually served before this PR versus
/// after. The same-driver `ratio` rows isolate the kernel + run-read term
/// alone: large on `disk` (syscall batching), near 1.0 on `mem`/`mmap`
/// where the PR 3 copy path is already memory-bandwidth-bound — the lane
/// kernel's point there is constant per-page work (obliviousness), not
/// added speed.
fn scan_kernel_measure() -> Json {
    use privpath_pir::{LinearScanStore, ObliviousStore};
    use privpath_storage::{DiskFile, MemFile, MmapFile, PageBuf, PagedFile, DEFAULT_PAGE_SIZE};

    let pages = 1024u32;
    let round = 8usize;
    let iters = 25usize;
    let mut mem = MemFile::empty(DEFAULT_PAGE_SIZE);
    for p in 0..pages {
        let mut page = PageBuf::zeroed(DEFAULT_PAGE_SIZE);
        page.as_mut_slice()[..4].copy_from_slice(&p.to_le_bytes());
        mem.push_page(page);
    }
    let dir = std::env::temp_dir().join(format!("privpath-bench-scan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
        eprintln!("cannot create scan bench dir {}: {e}", dir.display());
        std::process::exit(1);
    });
    let path = dir.join("scan.bin");
    mem.persist(&path).unwrap_or_else(|e| {
        eprintln!("scan bench persist failed: {e}");
        std::process::exit(1);
    });
    let requests: Vec<u32> = (0..round as u32).map(|i| (i * 131 + 5) % pages).collect();

    let median_ms = |mut f: Box<dyn FnMut() + '_>| -> f64 {
        for _ in 0..4 {
            f(); // warm-up: page cache, mappings, arena growth
        }
        let mut samples: Vec<f64> = (0..iters)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };

    let mut backends = Vec::new();
    let mut pr3_disk_ms = f64::NAN;
    let mut lanes_mmap_ms = f64::NAN;
    for storage in ["mem", "disk", "mmap"] {
        let driver: Arc<dyn PagedFile> = match storage {
            "mem" => Arc::new(mem.clone()),
            "disk" => Arc::new(
                DiskFile::open(&path, DEFAULT_PAGE_SIZE).unwrap_or_else(|e| {
                    eprintln!("scan bench disk open failed: {e}");
                    std::process::exit(1);
                }),
            ),
            _ => Arc::new(
                MmapFile::open(&path, DEFAULT_PAGE_SIZE).unwrap_or_else(|e| {
                    eprintln!("scan bench mmap open failed: {e}");
                    std::process::exit(1);
                }),
            ),
        };
        let mut lanes = LinearScanStore::from_driver(Arc::clone(&driver));
        let mut pr3 = LinearScanStore::from_driver(driver);
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); round];
        let mut refout = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); round];
        lanes.fetch_batch(&requests, &mut out).expect("lane scan");
        pr3.fetch_batch_reference(&requests, &mut refout)
            .expect("pr3 scan");
        for (a, b) in out.iter().zip(&refout) {
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "lane kernel diverged from the PR 3 path on {storage}"
            );
        }
        let pr3_ms = median_ms(Box::new(|| {
            pr3.fetch_batch_reference(&requests, &mut refout)
                .expect("pr3 scan")
        }));
        let lanes_ms = median_ms(Box::new(|| {
            lanes.fetch_batch(&requests, &mut out).expect("lane scan")
        }));
        eprintln!(
            "scan kernel [{storage}]: PR 3 copy {pr3_ms:.3} ms/round, \
             lanes {lanes_ms:.3} ms/round — x{:.2}",
            pr3_ms / lanes_ms
        );
        if storage == "disk" {
            pr3_disk_ms = pr3_ms;
        }
        if storage == "mmap" {
            lanes_mmap_ms = lanes_ms;
        }
        backends.push(obj([
            ("storage", Json::Str(storage.into())),
            ("pr3_scan_ms", Json::Num(pr3_ms)),
            ("lanes_scan_ms", Json::Num(lanes_ms)),
            ("ratio", Json::Num(pr3_ms / lanes_ms)),
        ]));
    }
    std::fs::remove_dir_all(&dir).ok();
    let disk_serving_ratio = pr3_disk_ms / lanes_mmap_ms;
    eprintln!(
        "scan kernel: disk serving {disk_serving_ratio:.2}x \
         (PR 3 per-page disk reads {pr3_disk_ms:.3} ms vs lanes over mmap {lanes_mmap_ms:.3} ms)"
    );
    obj([
        ("pages", Json::Num(f64::from(pages))),
        ("page_size", Json::Num(DEFAULT_PAGE_SIZE as f64)),
        ("round", Json::Num(round as f64)),
        ("iters", Json::Num(iters as f64)),
        ("backends", Json::Arr(backends)),
        ("disk_serving_ratio", Json::Num(disk_serving_ratio)),
    ])
}

/// Parses `--scheme`: `all`, one name, or a comma list (`CI,LM`).
fn schemes_by_name(name: &str) -> Option<Vec<SchemeKind>> {
    if name.eq_ignore_ascii_case("all") {
        return Some(SchemeKind::ALL.to_vec());
    }
    name.split(',')
        .map(|part| {
            SchemeKind::ALL
                .into_iter()
                .find(|k| k.name().eq_ignore_ascii_case(part.trim()))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut nodes = 10_000usize;
    let mut queries = 256usize;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 16);
    let mut schemes = SchemeKind::ALL.to_vec();
    let mut transports = vec![TransportKind::InProc];
    let mut storages: Vec<&'static str> = vec!["mem"];
    let mut chaos_seed: Option<u64> = None;
    let mut pr = 3u32;
    let mut out_path: Option<String> = None;
    let mut check: Option<String> = None;
    let mut build_profile = false;
    let mut swap = false;
    let mut kernel_nodes = 4_000usize;
    let mut i = 0;
    while i < args.len() {
        let val = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--nodes" => nodes = val(i).parse().unwrap_or_else(|_| usage()),
            "--queries" => queries = val(i).parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val(i).parse().unwrap_or_else(|_| usage()),
            "--scheme" => schemes = schemes_by_name(&val(i)).unwrap_or_else(|| usage()),
            "--transport" => {
                transports = match val(i).as_str() {
                    "inproc" => vec![TransportKind::InProc],
                    "wire" => vec![TransportKind::Wire],
                    "both" => vec![TransportKind::InProc, TransportKind::Wire],
                    // uncoalesced first: it is the reference the coalesced
                    // run's throughput is compared against
                    "tcp" => vec![
                        TransportKind::Tcp { coalesce: false },
                        TransportKind::Tcp { coalesce: true },
                    ],
                    _ => usage(),
                }
            }
            "--storage" => {
                storages = match val(i).as_str() {
                    "mem" => vec!["mem"],
                    "disk" => vec!["disk"],
                    "mmap" => vec!["mmap"],
                    // mem first: it is the reference the persistent-driver
                    // runs' throughput is compared against
                    "both" => vec!["mem", "disk", "mmap"],
                    _ => usage(),
                }
            }
            "--chaos" => chaos_seed = Some(val(i).parse().unwrap_or_else(|_| usage())),
            "--pr" => pr = val(i).parse().unwrap_or_else(|_| usage()),
            "--out" => out_path = Some(val(i)),
            "--check" => check = Some(val(i)),
            "--build-profile" => {
                build_profile = true;
                i += 1;
                continue;
            }
            "--swap" => {
                swap = true;
                i += 1;
                continue;
            }
            "--kernel-nodes" => kernel_nodes = val(i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 2;
    }
    if let Some(cs) = chaos_seed {
        transports.push(TransportKind::Chaos { seed: cs });
    }
    let out_path = out_path.unwrap_or_else(|| format!("BENCH_PR{pr}.json"));

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        let doc = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("{path}: not valid JSON: {e}");
            std::process::exit(1);
        });
        let problems = validate_baseline(&doc);
        if problems.is_empty() {
            println!("{path}: baseline schema OK");
            return;
        }
        for p in &problems {
            eprintln!("{path}: {p}");
        }
        std::process::exit(1);
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let single_cpu_host = host_cpus == 1;
    if single_cpu_host {
        eprintln!(
            "WARNING: host has 1 CPU — multi-thread wall speedup ≈ 1.0 is expected \
             here and is NOT a scaling regression (JSON carries single_cpu_host: true)"
        );
    }

    let seed = 42u64;
    eprintln!("generating road-like network: {nodes} nodes (seed {seed})");
    let net = road_like(&RoadGenConfig {
        nodes,
        seed,
        ..Default::default()
    });

    let uses_tcp = transports
        .iter()
        .any(|t| matches!(t, TransportKind::Tcp { .. }));
    let mut cfg = BuildConfig::default();
    if uses_tcp {
        // Round coalescing only engages on linear-scan stores (the one
        // backend whose answer is a pure function of the request), so the
        // tcp baseline serves real oblivious sweeps, not cost-only stubs.
        cfg.pir_mode = PirMode::LinearScan;
    }
    let pairs = workload_pairs(&net, queries, 0x5eed).unwrap_or_else(|e| {
        eprintln!("workload: {e}");
        std::process::exit(1);
    });

    let mut runs = Vec::new();
    let mut builds = Vec::new();
    let mut best_speedup: Option<(f64, SchemeKind)> = None;
    let mut swap_section: Option<Json> = None;
    let mut recovery_section: Option<Json> = None;
    for &scheme in &schemes {
        eprintln!("building {} database ...", scheme.name());
        let t0 = Instant::now();
        let db = Arc::new(Database::build(&net, scheme, &cfg).unwrap_or_else(|e| {
            eprintln!("{} build failed: {e}", scheme.name());
            std::process::exit(1);
        }));
        let build_wall_s = t0.elapsed().as_secs_f64();
        let stage = db.stats().stage_s;
        eprintln!(
            "built {} in {build_wall_s:.1}s: {} regions, {:.1} MB \
             (partition {:.1}s, borders {:.1}s, precompute {:.1}s, files {:.1}s, plan {:.1}s)",
            scheme.name(),
            db.stats().regions,
            db.db_bytes() as f64 / 1e6,
            stage.partition_s,
            stage.borders_s,
            stage.precompute_s,
            stage.files_s,
            stage.plan_s,
        );
        // PR 9: optionally round-trip the built database through the
        // durable snapshot path and serve it back from the disk-backed,
        // checksum-verified drivers. The first disk reopen is also the
        // committed cold-start recovery measurement.
        let mut backend_dbs: Vec<(&'static str, Arc<Database>)> = Vec::new();
        let mut snap_path: Option<std::path::PathBuf> = None;
        for &storage in &storages {
            if storage == "mem" {
                backend_dbs.push(("mem", Arc::clone(&db)));
                continue;
            }
            // Persist once per scheme; disk and mmap serve the same snapshot
            // back through their respective drivers.
            let (path, persist_wall_s) = match &snap_path {
                Some(p) => (p.clone(), None),
                None => {
                    let dir = std::env::temp_dir()
                        .join(format!("privpath-bench-snap-{}", std::process::id()));
                    std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
                        eprintln!("cannot create snapshot dir {}: {e}", dir.display());
                        std::process::exit(1);
                    });
                    let path = dir.join(format!("{}.snap", scheme.name()));
                    let t0 = Instant::now();
                    db.persist(&path).unwrap_or_else(|e| {
                        eprintln!("{} persist failed: {e}", scheme.name());
                        std::process::exit(1);
                    });
                    let wall = t0.elapsed().as_secs_f64();
                    snap_path = Some(path.clone());
                    (path, Some(wall))
                }
            };
            let backend = if storage == "disk" {
                StorageBackend::Disk
            } else {
                StorageBackend::Mmap
            };
            let t0 = Instant::now();
            let snap_db = Database::open_snapshot(&path, backend).unwrap_or_else(|e| {
                eprintln!("{} snapshot reopen ({storage}) failed: {e}", scheme.name());
                std::process::exit(1);
            });
            let recover_wall_s = t0.elapsed().as_secs_f64();
            let snapshot_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            eprintln!(
                "{}: snapshot {:.1} MB, persist {} ms, cold-start open ({storage}) {:.0} ms",
                scheme.name(),
                snapshot_bytes as f64 / 1e6,
                persist_wall_s.map_or("-".into(), |s| format!("{:.0}", s * 1e3)),
                recover_wall_s * 1e3,
            );
            if recovery_section.is_none() {
                recovery_section = Some(obj([
                    ("scheme", Json::Str(scheme.name().to_string())),
                    (
                        "persist_wall_s",
                        Json::Num(persist_wall_s.unwrap_or_default()),
                    ),
                    ("recover_wall_s", Json::Num(recover_wall_s)),
                    ("snapshot_bytes", Json::Num(snapshot_bytes as f64)),
                ]));
            }
            backend_dbs.push((storage, Arc::new(snap_db)));
        }
        let mut scheme_speedup: Option<f64> = None;
        let mut single_qps_of = [0.0f64; 2]; // [inproc, wire]
        for (bi, (storage, sdb)) in backend_dbs.iter().enumerate() {
            for (ti, &transport) in transports.iter().enumerate() {
                let mut single_qps = 0.0f64;
                for t in [1usize, threads] {
                    let mut r = run_shared_workload_with(sdb, &net, &pairs, t, 0xfeed, transport)
                        .unwrap_or_else(|e| {
                            eprintln!(
                                "{} workload failed on {t} threads ({}, {storage}): {e}",
                                scheme.name(),
                                transport.name()
                            );
                            std::process::exit(1);
                        });
                    r.storage = storage;
                    eprintln!(
                        "{} {} [{storage}] x{}: {:.1} q/s wall, p50 {:.2} ms, p95 {:.2} ms \
                         ({} queries{})",
                        r.kind.name(),
                        transport.name(),
                        r.threads,
                        r.throughput_qps,
                        r.p50_query_s * 1e3,
                        r.p95_query_s * 1e3,
                        r.queries,
                        match transport {
                            TransportKind::Chaos { .. } => {
                                format!(", {} retransmits", r.retransmits)
                            }
                            TransportKind::Tcp { coalesce } => {
                                format!(", coalesce {}", if coalesce { "on" } else { "off" })
                            }
                            _ => String::new(),
                        }
                    );
                    if t == 1 {
                        single_qps = r.throughput_qps;
                    } else if r.threads > 1 && single_qps > 0.0 && ti == 0 && bi == 0 {
                        // The runner clamps threads to the pair count; a
                        // clamped-to-1 "multi" run is the same configuration
                        // again, not a speedup. The headline speedup comes
                        // from the first requested transport and storage.
                        scheme_speedup = Some(r.throughput_qps / single_qps);
                    }
                    runs.push(run_to_json(&r));
                    if t == 1 && threads == 1 {
                        break; // only one configuration requested
                    }
                }
                if bi == 0 {
                    match transport {
                        TransportKind::InProc => single_qps_of[0] = single_qps,
                        TransportKind::Wire => single_qps_of[1] = single_qps,
                        // no inproc-vs-wire overhead headline for these
                        TransportKind::Chaos { .. } | TransportKind::Tcp { .. } => {}
                    }
                }
            }
        }
        let mut build_entry = vec![
            ("scheme", Json::Str(scheme.name().to_string())),
            ("build_wall_s", Json::Num(build_wall_s)),
            ("db_bytes", Json::Num(db.db_bytes() as f64)),
            ("build_breakdown_ms", stage_breakdown_to_json(&stage)),
        ];
        if single_qps_of[0] > 0.0 && single_qps_of[1] > 0.0 {
            // >1 means the wire boundary costs throughput (it should, a
            // little: frames are encoded, copied and decoded per round).
            let overhead = single_qps_of[0] / single_qps_of[1];
            eprintln!(
                "{}: wire overhead x{overhead:.3} (inproc {:.1} q/s vs wire {:.1} q/s, 1 thread)",
                scheme.name(),
                single_qps_of[0],
                single_qps_of[1]
            );
            build_entry.push(("wire_overhead", Json::Num(overhead)));
        }
        if let Some(s) = scheme_speedup {
            build_entry.push(("speedup", Json::Num(s)));
            if best_speedup.is_none_or(|(b, _)| s > b) {
                best_speedup = Some((s, scheme));
            }
        }
        builds.push(obj(build_entry));
        if swap && swap_section.is_none() {
            eprintln!(
                "measuring generation hot swap on {} (rebuild from reweighted net) ...",
                scheme.name()
            );
            let net2 = net.reweighted(0xA11CE);
            let r = run_swap_workload(&db, &net, &net2, &cfg, &pairs, 0x5eed).unwrap_or_else(|e| {
                eprintln!("{} swap workload failed: {e}", scheme.name());
                std::process::exit(1);
            });
            eprintln!(
                "{} swap: {:.1} q/s during rebuild ({} queries), rebuild {:.1}s, \
                 cutover {:.1} ms, generation {} -> {}",
                scheme.name(),
                r.serve_qps_during_rebuild,
                r.queries_during_rebuild,
                r.rebuild_wall_s,
                r.cutover_latency_s * 1e3,
                r.generation_before,
                r.generation_after,
            );
            swap_section = Some(swap_to_json(&r));
        }
    }
    // Top-level `speedup` is the best per-scheme multi/single ratio (named in
    // `speedup_scheme`); per-scheme ratios live in `builds[]`. With no
    // distinct multi-thread configuration anywhere it is 1.0x by definition.
    let (speedup, speedup_scheme) = match best_speedup {
        Some((s, k)) => (s, Some(k)),
        None => (1.0, None),
    };

    let mut members = vec![
        ("pr", Json::Num(f64::from(pr))),
        ("host_cpus", Json::Num(host_cpus as f64)),
        ("single_cpu_host", Json::Bool(single_cpu_host)),
        (
            "network",
            obj([
                ("generator", Json::Str("road_like".into())),
                ("nodes", Json::Num(net.num_nodes() as f64)),
                ("arcs", Json::Num(net.num_arcs() as f64)),
                ("seed", Json::Num(seed as f64)),
            ]),
        ),
        ("builds", Json::Arr(builds)),
        ("runs", Json::Arr(runs)),
        ("speedup", Json::Num(speedup)),
        (
            "speedup_scheme",
            speedup_scheme.map_or(Json::Null, |k| Json::Str(k.name().to_string())),
        ),
    ];
    if build_profile {
        eprintln!("measuring pruned vs full precompute kernel ({kernel_nodes} nodes) ...");
        members.push(("precompute_kernel", kernel_measure(kernel_nodes, seed)));
    }
    eprintln!("measuring lane-scan kernel vs PR 3 copy path per storage driver ...");
    members.push(("scan_kernel", scan_kernel_measure()));
    if let Some(sj) = swap_section {
        members.push(("swap", sj));
    }
    if let Some(rj) = recovery_section {
        members.push(("recovery", rj));
    }
    let doc = obj(members);
    let problems = validate_baseline(&doc);
    assert!(
        problems.is_empty(),
        "generated baseline fails own schema: {problems:?}"
    );
    std::fs::write(&out_path, doc.render()).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    if single_cpu_host {
        println!(
            "wrote {out_path} (speedup x{speedup:.2} at {threads} threads — \
             single-CPU host, ≈1.0 expected)"
        );
    } else {
        println!("wrote {out_path} (speedup x{speedup:.2} at {threads} threads)");
    }
}
