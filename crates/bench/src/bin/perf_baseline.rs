//! Produces (or validates) the committed `BENCH_PR<N>.json` perf baseline:
//! shared databases for every requested scheme, a fixed query workload,
//! single-thread vs multi-thread session throughput, tail latencies, and the
//! per-stage breakdown — one `runs[]` entry per (scheme, thread-count).
//!
//! ```text
//! perf_baseline [--nodes N] [--queries Q] [--threads T]
//!               [--scheme all|CI|PI|HY|PI*|LM|AF|OBF] [--pr N] [--out FILE]
//! perf_baseline --check FILE
//! ```
//!
//! Measurement caveat: multi-thread wall speedup is only meaningful on a
//! multi-core host. On a 1-CPU container (`host_cpus == 1` in the emitted
//! JSON, flagged by `single_cpu_host: true`) a speedup of ≈ 1.0 is the
//! *expected* outcome, not a scaling regression — re-measure on a multi-core
//! machine before drawing scaling conclusions.

use privpath_bench::perf::{obj, run_to_json, validate_baseline, Json};
use privpath_bench::runner::{run_shared_workload, workload_pairs};
use privpath_core::config::BuildConfig;
use privpath_core::engine::{Database, SchemeKind};
use privpath_graph::gen::{road_like, RoadGenConfig};
use std::sync::Arc;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: perf_baseline [--nodes N] [--queries Q] [--threads T] \
         [--scheme all|CI|PI|HY|PI*|LM|AF|OBF] [--pr N] [--out FILE]\n       \
         perf_baseline --check FILE"
    );
    std::process::exit(2);
}

fn schemes_by_name(name: &str) -> Option<Vec<SchemeKind>> {
    if name.eq_ignore_ascii_case("all") {
        return Some(SchemeKind::ALL.to_vec());
    }
    SchemeKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .map(|k| vec![k])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut nodes = 10_000usize;
    let mut queries = 256usize;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 16);
    let mut schemes = SchemeKind::ALL.to_vec();
    let mut pr = 3u32;
    let mut out_path: Option<String> = None;
    let mut check: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let val = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--nodes" => nodes = val(i).parse().unwrap_or_else(|_| usage()),
            "--queries" => queries = val(i).parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val(i).parse().unwrap_or_else(|_| usage()),
            "--scheme" => schemes = schemes_by_name(&val(i)).unwrap_or_else(|| usage()),
            "--pr" => pr = val(i).parse().unwrap_or_else(|_| usage()),
            "--out" => out_path = Some(val(i)),
            "--check" => check = Some(val(i)),
            _ => usage(),
        }
        i += 2;
    }
    let out_path = out_path.unwrap_or_else(|| format!("BENCH_PR{pr}.json"));

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        let doc = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("{path}: not valid JSON: {e}");
            std::process::exit(1);
        });
        let problems = validate_baseline(&doc);
        if problems.is_empty() {
            println!("{path}: baseline schema OK");
            return;
        }
        for p in &problems {
            eprintln!("{path}: {p}");
        }
        std::process::exit(1);
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let single_cpu_host = host_cpus == 1;
    if single_cpu_host {
        eprintln!(
            "WARNING: host has 1 CPU — multi-thread wall speedup ≈ 1.0 is expected \
             here and is NOT a scaling regression (JSON carries single_cpu_host: true)"
        );
    }

    let seed = 42u64;
    eprintln!("generating road-like network: {nodes} nodes (seed {seed})");
    let net = road_like(&RoadGenConfig {
        nodes,
        seed,
        ..Default::default()
    });

    let cfg = BuildConfig::default();
    let pairs = workload_pairs(&net, queries, 0x5eed).unwrap_or_else(|e| {
        eprintln!("workload: {e}");
        std::process::exit(1);
    });

    let mut runs = Vec::new();
    let mut builds = Vec::new();
    let mut best_speedup: Option<(f64, SchemeKind)> = None;
    for &scheme in &schemes {
        eprintln!("building {} database ...", scheme.name());
        let t0 = Instant::now();
        let db = Arc::new(Database::build(&net, scheme, &cfg).unwrap_or_else(|e| {
            eprintln!("{} build failed: {e}", scheme.name());
            std::process::exit(1);
        }));
        let build_wall_s = t0.elapsed().as_secs_f64();
        eprintln!(
            "built {} in {build_wall_s:.1}s: {} regions, {:.1} MB",
            scheme.name(),
            db.stats().regions,
            db.db_bytes() as f64 / 1e6
        );
        let mut single_qps = 0.0f64;
        let mut scheme_speedup: Option<f64> = None;
        for t in [1usize, threads] {
            let r = run_shared_workload(&db, &net, &pairs, t, 0xfeed).unwrap_or_else(|e| {
                eprintln!("{} workload failed on {t} threads: {e}", scheme.name());
                std::process::exit(1);
            });
            eprintln!(
                "{} x{}: {:.1} q/s wall, p50 {:.2} ms, p95 {:.2} ms ({} queries)",
                r.kind.name(),
                r.threads,
                r.throughput_qps,
                r.p50_query_s * 1e3,
                r.p95_query_s * 1e3,
                r.queries
            );
            if t == 1 {
                single_qps = r.throughput_qps;
            } else if r.threads > 1 && single_qps > 0.0 {
                // The runner clamps threads to the pair count; a clamped-to-1
                // "multi" run is the same configuration again, not a speedup.
                scheme_speedup = Some(r.throughput_qps / single_qps);
            }
            runs.push(run_to_json(&r));
            if t == 1 && threads == 1 {
                break; // only one configuration requested
            }
        }
        let mut build_entry = vec![
            ("scheme", Json::Str(scheme.name().to_string())),
            ("build_wall_s", Json::Num(build_wall_s)),
            ("db_bytes", Json::Num(db.db_bytes() as f64)),
        ];
        if let Some(s) = scheme_speedup {
            build_entry.push(("speedup", Json::Num(s)));
            if best_speedup.is_none_or(|(b, _)| s > b) {
                best_speedup = Some((s, scheme));
            }
        }
        builds.push(obj(build_entry));
    }
    // Top-level `speedup` is the best per-scheme multi/single ratio (named in
    // `speedup_scheme`); per-scheme ratios live in `builds[]`. With no
    // distinct multi-thread configuration anywhere it is 1.0x by definition.
    let (speedup, speedup_scheme) = match best_speedup {
        Some((s, k)) => (s, Some(k)),
        None => (1.0, None),
    };

    let doc = obj([
        ("pr", Json::Num(f64::from(pr))),
        ("host_cpus", Json::Num(host_cpus as f64)),
        ("single_cpu_host", Json::Bool(single_cpu_host)),
        (
            "network",
            obj([
                ("generator", Json::Str("road_like".into())),
                ("nodes", Json::Num(net.num_nodes() as f64)),
                ("arcs", Json::Num(net.num_arcs() as f64)),
                ("seed", Json::Num(seed as f64)),
            ]),
        ),
        ("builds", Json::Arr(builds)),
        ("runs", Json::Arr(runs)),
        ("speedup", Json::Num(speedup)),
        (
            "speedup_scheme",
            speedup_scheme.map_or(Json::Null, |k| Json::Str(k.name().to_string())),
        ),
    ]);
    let problems = validate_baseline(&doc);
    assert!(
        problems.is_empty(),
        "generated baseline fails own schema: {problems:?}"
    );
    std::fs::write(&out_path, doc.render()).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    if single_cpu_host {
        println!(
            "wrote {out_path} (speedup x{speedup:.2} at {threads} threads — \
             single-CPU host, ≈1.0 expected)"
        );
    } else {
        println!("wrote {out_path} (speedup x{speedup:.2} at {threads} threads)");
    }
}
