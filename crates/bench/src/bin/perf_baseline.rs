//! Produces (or validates) the committed `BENCH_PR<N>.json` perf baseline:
//! one shared database, a fixed query workload, single-thread vs
//! multi-thread session throughput, tail latencies, per-stage breakdown.
//!
//! ```text
//! perf_baseline [--nodes N] [--queries Q] [--threads T] [--scheme CI|PI|HY|PI*|LM|AF]
//!               [--pr N] [--out FILE]
//! perf_baseline --check FILE
//! ```

use privpath_bench::perf::{obj, run_to_json, validate_baseline, Json};
use privpath_bench::runner::{run_shared_workload, workload_pairs};
use privpath_core::config::BuildConfig;
use privpath_core::engine::{Database, SchemeKind};
use privpath_graph::gen::{road_like, RoadGenConfig};
use std::sync::Arc;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: perf_baseline [--nodes N] [--queries Q] [--threads T] [--scheme S] \
         [--pr N] [--out FILE]\n       perf_baseline --check FILE"
    );
    std::process::exit(2);
}

fn scheme_by_name(name: &str) -> Option<SchemeKind> {
    [
        SchemeKind::Ci,
        SchemeKind::Pi,
        SchemeKind::Hy,
        SchemeKind::PiStar,
        SchemeKind::Lm,
        SchemeKind::Af,
    ]
    .into_iter()
    .find(|k| k.name().eq_ignore_ascii_case(name))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut nodes = 10_000usize;
    let mut queries = 256usize;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 16);
    let mut scheme = SchemeKind::Ci;
    let mut pr = 1u32;
    let mut out_path = String::from("BENCH_PR1.json");
    let mut check: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let val = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--nodes" => nodes = val(i).parse().unwrap_or_else(|_| usage()),
            "--queries" => queries = val(i).parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val(i).parse().unwrap_or_else(|_| usage()),
            "--scheme" => scheme = scheme_by_name(&val(i)).unwrap_or_else(|| usage()),
            "--pr" => pr = val(i).parse().unwrap_or_else(|_| usage()),
            "--out" => out_path = val(i),
            "--check" => check = Some(val(i)),
            _ => usage(),
        }
        i += 2;
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        let doc = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("{path}: not valid JSON: {e}");
            std::process::exit(1);
        });
        let problems = validate_baseline(&doc);
        if problems.is_empty() {
            println!("{path}: baseline schema OK");
            return;
        }
        for p in &problems {
            eprintln!("{path}: {p}");
        }
        std::process::exit(1);
    }

    let seed = 42u64;
    eprintln!("generating road-like network: {nodes} nodes (seed {seed})");
    let net = road_like(&RoadGenConfig {
        nodes,
        seed,
        ..Default::default()
    });

    let cfg = BuildConfig::default();
    eprintln!("building {} database ...", scheme.name());
    let t0 = Instant::now();
    let db = Arc::new(Database::build(&net, scheme, &cfg).unwrap_or_else(|e| {
        eprintln!("build failed: {e}");
        std::process::exit(1);
    }));
    let build_wall_s = t0.elapsed().as_secs_f64();
    eprintln!(
        "built in {build_wall_s:.1}s: {} regions, {} borders, {:.1} MB",
        db.stats().regions,
        db.stats().borders,
        db.db_bytes() as f64 / 1e6
    );

    let pairs = workload_pairs(&net, queries, 0x5eed).unwrap_or_else(|e| {
        eprintln!("workload: {e}");
        std::process::exit(1);
    });

    let mut runs = Vec::new();
    let mut single_qps = 0.0f64;
    let mut multi_qps = None;
    for t in [1usize, threads] {
        let r = run_shared_workload(&db, &net, &pairs, t, 0xfeed).unwrap_or_else(|e| {
            eprintln!("workload failed on {t} threads: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "{} x{}: {:.1} q/s wall, p50 {:.2} ms, p95 {:.2} ms ({} queries)",
            r.kind.name(),
            r.threads,
            r.throughput_qps,
            r.p50_query_s * 1e3,
            r.p95_query_s * 1e3,
            r.queries
        );
        if t == 1 {
            single_qps = r.throughput_qps;
        } else if r.threads > 1 {
            // The runner clamps threads to the pair count; a clamped-to-1
            // "multi" run is the same configuration again, not a speedup.
            multi_qps = Some(r.throughput_qps);
        }
        runs.push(run_to_json(&r));
        if t == 1 && threads == 1 {
            break; // only one configuration requested
        }
    }
    // No distinct multi-thread configuration ran: by definition 1.0x.
    let speedup = match multi_qps {
        Some(m) if single_qps > 0.0 => m / single_qps,
        _ => 1.0,
    };

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = obj([
        ("pr", Json::Num(f64::from(pr))),
        ("host_cpus", Json::Num(host_cpus as f64)),
        (
            "network",
            obj([
                ("generator", Json::Str("road_like".into())),
                ("nodes", Json::Num(net.num_nodes() as f64)),
                ("arcs", Json::Num(net.num_arcs() as f64)),
                ("seed", Json::Num(seed as f64)),
            ]),
        ),
        ("scheme", Json::Str(scheme.name().to_string())),
        ("build_wall_s", Json::Num(build_wall_s)),
        ("db_bytes", Json::Num(db.db_bytes() as f64)),
        ("runs", Json::Arr(runs)),
        ("speedup", Json::Num(speedup)),
    ]);
    let problems = validate_baseline(&doc);
    assert!(
        problems.is_empty(),
        "generated baseline fails own schema: {problems:?}"
    );
    std::fs::write(&out_path, doc.render()).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path} (speedup x{speedup:.2} at {threads} threads)");
}
