//! Machine-readable perf baselines: a dependency-free JSON writer/parser and
//! the schema of the committed `BENCH_PR<N>.json` files.
//!
//! Every PR that touches the hot path appends a baseline file so the repo
//! carries its own perf trajectory: network shape, scheme, single-thread vs
//! multi-thread throughput over one shared database, tail latencies, and the
//! per-stage simulated cost breakdown.

use crate::runner::SharedWorkloadResult;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (enough of JSON for perf baselines: no `\u` escapes
/// beyond pass-through, numbers as `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (sorted keys — deterministic output).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array value, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

/// Convenience: builds a [`Json::Obj`] from `(key, value)` pairs.
pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                members.insert(key, parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, "\"")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escaped = bytes.get(*pos).ok_or("unterminated escape")?;
                out.push(match escaped {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b'r' => '\r',
                    b't' => '\t',
                    b'u' => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        char::from_u32(code).ok_or("bad \\u code point")?
                    }
                    other => return Err(format!("bad escape `\\{}`", *other as char)),
                });
                *pos += 1;
            }
            Some(_) => {
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

/// The five offline build stages, in pipeline order — the keys of a
/// `build_breakdown_ms` object and the row order of the README table.
pub const BUILD_STAGES: [&str; 5] = ["partition", "borders", "precompute", "files", "plan"];

/// Serializes a per-stage build breakdown (seconds in, milliseconds out —
/// the committed baselines record `build_breakdown_ms`).
pub fn stage_breakdown_to_json(b: &privpath_core::schemes::index_scheme::StageBreakdown) -> Json {
    obj([
        ("partition", Json::Num(b.partition_s * 1e3)),
        ("borders", Json::Num(b.borders_s * 1e3)),
        ("precompute", Json::Num(b.precompute_s * 1e3)),
        ("files", Json::Num(b.files_s * 1e3)),
        ("plan", Json::Num(b.plan_s * 1e3)),
    ])
}

/// Serializes one workload run for the baseline's `runs` array. Chaos runs
/// additionally record the fault-plan seed (`chaos_seed`) so the run
/// reproduces; retry overhead is in `retransmits` for every transport
/// (0 on a perfect link). TCP runs record `coalesced` — whether the front
/// merged concurrent linear-scan rounds into shared sweeps — so coalesced
/// and uncoalesced throughput stay distinguishable in the committed file.
pub fn run_to_json(r: &SharedWorkloadResult) -> Json {
    let mut doc = obj([
        ("scheme", Json::Str(r.kind.name().to_string())),
        ("transport", Json::Str(r.transport.name().to_string())),
        ("threads", Json::Num(r.threads as f64)),
        ("queries", Json::Num(r.queries as f64)),
        ("wall_s", Json::Num(r.wall_s)),
        ("throughput_qps", Json::Num(r.throughput_qps)),
        ("p50_query_s", Json::Num(r.p50_query_s)),
        ("p95_query_s", Json::Num(r.p95_query_s)),
        ("violations", Json::Num(r.violations as f64)),
        (
            "stages_avg_s",
            obj([
                ("pir", Json::Num(r.avg.pir.total_s())),
                ("comm", Json::Num(r.avg.comm_s)),
                ("server", Json::Num(r.avg.server_s)),
                ("client", Json::Num(r.avg.client_s)),
            ]),
        ),
        ("avg_response_s", Json::Num(r.avg.response_time_s())),
        ("avg_fetches", Json::Num(r.avg.total_fetches() as f64)),
        ("retransmits", Json::Num(r.retransmits as f64)),
        ("generation", Json::Num(r.generation as f64)),
        ("storage", Json::Str(r.storage.to_string())),
    ]);
    if let crate::runner::TransportKind::Chaos { seed } = r.transport {
        if let Json::Obj(m) = &mut doc {
            m.insert("chaos_seed".into(), Json::Num(seed as f64));
        }
    }
    if let crate::runner::TransportKind::Tcp { coalesce } = r.transport {
        if let Json::Obj(m) = &mut doc {
            m.insert("coalesced".into(), Json::Bool(coalesce));
        }
    }
    doc
}

/// Serializes a serve-during-rebuild measurement for the baseline's `swap`
/// section (PR 8): throughput of the pinned generation while the background
/// rebuild ran, and the publish-to-first-answer cutover latency.
pub fn swap_to_json(r: &crate::runner::SwapWorkloadResult) -> Json {
    obj([
        ("scheme", Json::Str(r.kind.name().to_string())),
        (
            "queries_during_rebuild",
            Json::Num(r.queries_during_rebuild as f64),
        ),
        ("rebuild_wall_s", Json::Num(r.rebuild_wall_s)),
        (
            "serve_qps_during_rebuild",
            Json::Num(r.serve_qps_during_rebuild),
        ),
        ("cutover_latency_s", Json::Num(r.cutover_latency_s)),
        ("generation_before", Json::Num(r.generation_before as f64)),
        ("generation_after", Json::Num(r.generation_after as f64)),
        ("violations", Json::Num(r.violations as f64)),
    ])
}

/// Validates the schema of a perf-baseline document, returning a list of
/// human-readable problems (empty = valid).
///
/// Since PR 3 a baseline must also carry the host-parallelism provenance:
/// `host_cpus` (number) and the `single_cpu_host` warning flag (boolean).
/// The flag exists because the perf trajectory started on a 1-CPU container,
/// where a multi-thread wall speedup of ≈ 1.0 is the expected reading, not a
/// regression — the JSON says so itself rather than relying on a ROADMAP
/// footnote. A `builds` array (per-scheme build cost, optionally a
/// per-scheme `speedup`), when present, is checked per entry. Multi-scheme
/// documents set the top-level `speedup` to the *best* per-scheme ratio and
/// name the winner in `speedup_scheme` — unlike PR 1's single-scheme files,
/// where `speedup` is that scheme's own ratio.
///
/// Since PR 8 every run must say which database generation it served
/// (`generation`, a number — 1 for single-database workloads). Baselines
/// committed before PR 8 predate the hot-swap subsystem, so the requirement
/// is gated on `pr >= 8`. A `swap` section (the serve-during-rebuild
/// measurement of `perf_baseline --swap`), when present, is checked for its
/// full key set regardless of `pr`.
///
/// Since PR 9 every run must also say which storage driver it served from
/// (`storage`, `"mem"`, `"disk"` or — since PR 10 — `"mmap"`), gated on
/// `pr >= 9` the same way; an unknown `storage` value is rejected at any
/// `pr`. A `recovery` section (the cold-start measurement of
/// `perf_baseline --storage disk|both`), when present, is checked for its
/// full key set regardless of `pr`.
///
/// Since PR 10 a baseline must additionally carry the vectorized-scan
/// evidence: at least one run served from the `mmap` driver, and a
/// `scan_kernel` section (the lane kernel vs the PR 3 sorted-cursor copy
/// path, per backend) whose `backends[]` cover `mem`, `disk` and `mmap`
/// with numeric `pr3_scan_ms` / `lanes_scan_ms` / `ratio`, plus the
/// headline `disk_serving_ratio`. A `scan_kernel` section on an older
/// `pr` is validated structurally the same way.
pub fn validate_baseline(doc: &Json) -> Vec<String> {
    let mut problems = Vec::new();
    let runs_need_generation = doc
        .get("pr")
        .and_then(Json::as_f64)
        .is_some_and(|p| p >= 8.0);
    let runs_need_storage = doc
        .get("pr")
        .and_then(Json::as_f64)
        .is_some_and(|p| p >= 9.0);
    let needs_scan_kernel = doc
        .get("pr")
        .and_then(Json::as_f64)
        .is_some_and(|p| p >= 10.0);
    let mut need_num = |v: Option<&Json>, what: &str| {
        if v.and_then(Json::as_f64).is_none() {
            problems.push(format!("missing or non-numeric `{what}`"));
        }
    };
    need_num(doc.get("pr"), "pr");
    need_num(doc.get("host_cpus"), "host_cpus");
    match (
        doc.get("single_cpu_host").and_then(Json::as_bool),
        doc.get("host_cpus").and_then(Json::as_f64),
    ) {
        (None, _) => problems.push("missing or non-boolean `single_cpu_host`".into()),
        (Some(flag), Some(cpus)) if flag != (cpus == 1.0) => problems.push(format!(
            "`single_cpu_host` is {flag} but `host_cpus` is {cpus}"
        )),
        _ => {}
    }
    if let Some(builds) = doc.get("builds") {
        match builds.as_arr() {
            Some(entries) => {
                for (i, b) in entries.iter().enumerate() {
                    if b.get("scheme").and_then(Json::as_str).is_none() {
                        problems.push(format!("builds[{i}]: missing `scheme`"));
                    }
                    for key in ["build_wall_s", "db_bytes"] {
                        if b.get(key).and_then(Json::as_f64).is_none() {
                            problems.push(format!("builds[{i}]: missing or non-numeric `{key}`"));
                        }
                    }
                    // Per-stage breakdowns (PR 4's `--build-profile`) are
                    // optional, but when present every stage must be there.
                    if let Some(bd) = b.get("build_breakdown_ms") {
                        for key in BUILD_STAGES {
                            if bd.get(key).and_then(Json::as_f64).is_none() {
                                problems.push(format!(
                                    "builds[{i}]: `build_breakdown_ms` missing or \
                                     non-numeric `{key}`"
                                ));
                            }
                        }
                    }
                }
            }
            None => problems.push("`builds` is not an array".into()),
        }
    }
    // Optional pre-computation kernel measurement (PR 4): the pruned new
    // kernel vs its unpruned run and vs the retained PR 3 path; `ratio` is
    // the PR 3 / pruned headline.
    if let Some(kernel) = doc.get("precompute_kernel") {
        for key in [
            "nodes",
            "borders",
            "pruned_ms",
            "full_ms",
            "pr3_ms",
            "ratio",
        ] {
            if kernel.get(key).and_then(Json::as_f64).is_none() {
                problems.push(format!(
                    "`precompute_kernel`: missing or non-numeric `{key}`"
                ));
            }
        }
    }
    match doc.get("network") {
        Some(net) => {
            for key in ["nodes", "arcs", "seed"] {
                if net.get(key).and_then(Json::as_f64).is_none() {
                    problems.push(format!("missing or non-numeric `network.{key}`"));
                }
            }
            if net.get("generator").and_then(Json::as_str).is_none() {
                problems.push("missing `network.generator`".into());
            }
        }
        None => problems.push("missing `network`".into()),
    }
    if let Some(swap) = doc.get("swap") {
        if swap.get("scheme").and_then(Json::as_str).is_none() {
            problems.push("`swap`: missing `scheme`".into());
        }
        for key in [
            "queries_during_rebuild",
            "rebuild_wall_s",
            "serve_qps_during_rebuild",
            "cutover_latency_s",
            "generation_before",
            "generation_after",
        ] {
            if swap.get(key).and_then(Json::as_f64).is_none() {
                problems.push(format!("`swap`: missing or non-numeric `{key}`"));
            }
        }
    }
    // The vectorized-scan measurement (PR 10): per-backend lane kernel vs
    // the PR 3 copy path, required on `pr >= 10`, structurally checked
    // whenever present.
    match doc.get("scan_kernel") {
        Some(kernel) => {
            for key in ["pages", "page_size", "round", "disk_serving_ratio"] {
                if kernel.get(key).and_then(Json::as_f64).is_none() {
                    problems.push(format!("`scan_kernel`: missing or non-numeric `{key}`"));
                }
            }
            let backends = kernel.get("backends").and_then(Json::as_arr);
            match backends {
                Some(entries) => {
                    for want in ["mem", "disk", "mmap"] {
                        let found = entries
                            .iter()
                            .find(|b| b.get("storage").and_then(Json::as_str) == Some(want));
                        match found {
                            Some(b) => {
                                for key in ["pr3_scan_ms", "lanes_scan_ms", "ratio"] {
                                    if b.get(key).and_then(Json::as_f64).is_none() {
                                        problems.push(format!(
                                            "`scan_kernel`: backend `{want}` missing or \
                                             non-numeric `{key}`"
                                        ));
                                    }
                                }
                            }
                            None => problems.push(format!(
                                "`scan_kernel`: missing `backends[]` entry for `{want}`"
                            )),
                        }
                    }
                }
                None => problems.push("`scan_kernel`: missing `backends` array".into()),
            }
        }
        None if needs_scan_kernel => {
            problems.push("missing `scan_kernel` (required since PR 10)".into());
        }
        None => {}
    }
    if let Some(recovery) = doc.get("recovery") {
        if recovery.get("scheme").and_then(Json::as_str).is_none() {
            problems.push("`recovery`: missing `scheme`".into());
        }
        for key in ["persist_wall_s", "recover_wall_s", "snapshot_bytes"] {
            if recovery.get(key).and_then(Json::as_f64).is_none() {
                problems.push(format!("`recovery`: missing or non-numeric `{key}`"));
            }
        }
    }
    let runs = match doc.get("runs").and_then(Json::as_arr) {
        Some(runs) if !runs.is_empty() => runs,
        _ => {
            problems.push("missing or empty `runs`".into());
            return problems;
        }
    };
    if needs_scan_kernel
        && !runs
            .iter()
            .any(|r| r.get("storage").and_then(Json::as_str) == Some("mmap"))
    {
        problems.push("no run served from the `mmap` driver (required since PR 10)".into());
    }
    for (i, run) in runs.iter().enumerate() {
        if run.get("scheme").and_then(Json::as_str).is_none() {
            problems.push(format!("runs[{i}]: missing `scheme`"));
        }
        // `transport` arrived with the wire boundary (PR 5), gained the
        // chaos value with fault injection (PR 6) and the tcp value with
        // network-real serving (PR 7); older committed baselines predate
        // it, so it is optional — but when present it must name a known
        // transport, a chaos run must record its retry overhead, and a tcp
        // run must say whether round coalescing was on.
        if let Some(t) = run.get("transport") {
            match t.as_str() {
                Some("inproc") | Some("wire") => {}
                Some("chaos") => {
                    for key in ["retransmits", "chaos_seed"] {
                        if run.get(key).and_then(Json::as_f64).is_none() {
                            problems.push(format!(
                                "runs[{i}]: chaos transport requires numeric `{key}`"
                            ));
                        }
                    }
                }
                Some("tcp") => {
                    if run.get("coalesced").and_then(Json::as_bool).is_none() {
                        problems.push(format!(
                            "runs[{i}]: tcp transport requires boolean `coalesced`"
                        ));
                    }
                }
                _ => problems.push(format!(
                    "runs[{i}]: `transport` must be \"inproc\", \"wire\", \"chaos\" or \"tcp\""
                )),
            }
        }
        for key in [
            "threads",
            "queries",
            "wall_s",
            "throughput_qps",
            "p50_query_s",
            "p95_query_s",
        ] {
            if run.get(key).and_then(Json::as_f64).is_none() {
                problems.push(format!("runs[{i}]: missing or non-numeric `{key}`"));
            }
        }
        if runs_need_generation && run.get("generation").and_then(Json::as_f64).is_none() {
            problems.push(format!(
                "runs[{i}]: missing or non-numeric `generation` (required since PR 8)"
            ));
        }
        match run.get("storage").map(Json::as_str) {
            Some(Some("mem")) | Some(Some("disk")) | Some(Some("mmap")) => {}
            Some(_) => problems.push(format!(
                "runs[{i}]: `storage` must be \"mem\", \"disk\" or \"mmap\""
            )),
            None if runs_need_storage => problems.push(format!(
                "runs[{i}]: missing `storage` (required since PR 9)"
            )),
            None => {}
        }
        let stages = run.get("stages_avg_s");
        for key in ["pir", "comm", "server", "client"] {
            if stages
                .and_then(|s| s.get(key))
                .and_then(Json::as_f64)
                .is_none()
            {
                problems.push(format!("runs[{i}]: missing `stages_avg_s.{key}`"));
            }
        }
    }
    if doc.get("speedup").and_then(Json::as_f64).is_none() {
        problems.push("missing or non-numeric `speedup`".into());
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let doc = obj([
            ("pr", Json::Num(1.0)),
            ("name", Json::Str("he said \"hi\"\n".into())),
            (
                "xs",
                Json::Arr(vec![Json::Num(1.5), Json::Bool(true), Json::Null]),
            ),
            ("empty", Json::Arr(vec![])),
            ("nested", obj([("k", Json::Num(-3.0))])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render().trim(), "42");
        assert_eq!(Json::Num(1.25).render().trim(), "1.25");
    }

    #[test]
    fn validator_flags_missing_fields() {
        let doc = obj([("pr", Json::Num(1.0))]);
        let problems = validate_baseline(&doc);
        assert!(problems.iter().any(|p| p.contains("network")));
        assert!(problems.iter().any(|p| p.contains("runs")));
        assert!(problems.iter().any(|p| p.contains("host_cpus")));
        assert!(problems.iter().any(|p| p.contains("single_cpu_host")));
    }

    #[test]
    fn validator_requires_consistent_cpu_warning_flag() {
        // single_cpu_host must agree with host_cpus
        let doc = obj([
            ("pr", Json::Num(3.0)),
            ("host_cpus", Json::Num(1.0)),
            ("single_cpu_host", Json::Bool(false)),
        ]);
        let problems = validate_baseline(&doc);
        assert!(
            problems
                .iter()
                .any(|p| p.contains("single_cpu_host") && p.contains("host_cpus")),
            "{problems:?}"
        );
    }

    #[test]
    fn validator_checks_builds_entries() {
        let doc = obj([
            ("pr", Json::Num(3.0)),
            ("host_cpus", Json::Num(4.0)),
            ("single_cpu_host", Json::Bool(false)),
            (
                "builds",
                Json::Arr(vec![obj([("scheme", Json::Str("CI".into()))])]),
            ),
        ]);
        let problems = validate_baseline(&doc);
        assert!(
            problems.iter().any(|p| p.contains("builds[0]")),
            "{problems:?}"
        );
    }

    #[test]
    fn validator_checks_stage_breakdown_and_kernel_measure() {
        let doc = obj([
            ("pr", Json::Num(4.0)),
            ("host_cpus", Json::Num(1.0)),
            ("single_cpu_host", Json::Bool(true)),
            (
                "builds",
                Json::Arr(vec![obj([
                    ("scheme", Json::Str("CI".into())),
                    ("build_wall_s", Json::Num(1.0)),
                    ("db_bytes", Json::Num(1024.0)),
                    // incomplete breakdown: every stage must be present
                    ("build_breakdown_ms", obj([("partition", Json::Num(3.0))])),
                ])]),
            ),
            // incomplete kernel measurement
            ("precompute_kernel", obj([("nodes", Json::Num(2000.0))])),
        ]);
        let problems = validate_baseline(&doc);
        for stage in ["borders", "precompute", "files", "plan"] {
            assert!(
                problems
                    .iter()
                    .any(|p| p.contains("build_breakdown_ms") && p.contains(stage)),
                "stage `{stage}` not flagged: {problems:?}"
            );
        }
        assert!(
            problems
                .iter()
                .any(|p| p.contains("precompute_kernel") && p.contains("ratio")),
            "{problems:?}"
        );
    }

    #[test]
    fn validator_checks_chaos_runs() {
        let chaos_run = obj([
            ("scheme", Json::Str("CI".into())),
            ("transport", Json::Str("chaos".into())),
            ("threads", Json::Num(1.0)),
            ("queries", Json::Num(4.0)),
            ("wall_s", Json::Num(0.5)),
            ("throughput_qps", Json::Num(8.0)),
            ("p50_query_s", Json::Num(0.05)),
            ("p95_query_s", Json::Num(0.09)),
            (
                "stages_avg_s",
                obj([
                    ("pir", Json::Num(1.0)),
                    ("comm", Json::Num(1.0)),
                    ("server", Json::Num(0.0)),
                    ("client", Json::Num(0.1)),
                ]),
            ),
            // missing `retransmits` and `chaos_seed`
        ]);
        let doc = obj([
            ("pr", Json::Num(6.0)),
            ("host_cpus", Json::Num(4.0)),
            ("single_cpu_host", Json::Bool(false)),
            (
                "network",
                obj([
                    ("nodes", Json::Num(100.0)),
                    ("arcs", Json::Num(400.0)),
                    ("seed", Json::Num(7.0)),
                    ("generator", Json::Str("road_like".into())),
                ]),
            ),
            ("runs", Json::Arr(vec![chaos_run])),
            ("speedup", Json::Num(1.0)),
        ]);
        let problems = validate_baseline(&doc);
        assert!(
            problems.iter().any(|p| p.contains("retransmits")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("chaos_seed")),
            "{problems:?}"
        );
        // an unknown transport is still rejected
        let bad = obj([("transport", Json::Str("carrier-pigeon".into()))]);
        let doc2 = obj([("runs", Json::Arr(vec![bad]))]);
        assert!(validate_baseline(&doc2)
            .iter()
            .any(|p| p.contains("transport")));
    }

    #[test]
    fn validator_checks_tcp_runs() {
        // a tcp run without the `coalesced` flag is flagged...
        let bare = obj([("transport", Json::Str("tcp".into()))]);
        let doc = obj([("runs", Json::Arr(vec![bare]))]);
        assert!(validate_baseline(&doc)
            .iter()
            .any(|p| p.contains("coalesced")));
        // ...and with it, no tcp-specific problem remains
        let ok = obj([
            ("transport", Json::Str("tcp".into())),
            ("coalesced", Json::Bool(true)),
        ]);
        let doc = obj([("runs", Json::Arr(vec![ok]))]);
        assert!(!validate_baseline(&doc)
            .iter()
            .any(|p| p.contains("coalesced") || p.contains("transport")));
    }

    #[test]
    fn validator_requires_generation_tags_since_pr8() {
        let run = obj([
            ("scheme", Json::Str("CI".into())),
            ("threads", Json::Num(1.0)),
            ("queries", Json::Num(4.0)),
            ("wall_s", Json::Num(0.5)),
            ("throughput_qps", Json::Num(8.0)),
            ("p50_query_s", Json::Num(0.05)),
            ("p95_query_s", Json::Num(0.09)),
            (
                "stages_avg_s",
                obj([
                    ("pir", Json::Num(1.0)),
                    ("comm", Json::Num(1.0)),
                    ("server", Json::Num(0.0)),
                    ("client", Json::Num(0.1)),
                ]),
            ),
            // no `generation` tag
        ]);
        let doc_of = |pr: f64, run: Json| {
            obj([
                ("pr", Json::Num(pr)),
                ("host_cpus", Json::Num(1.0)),
                ("single_cpu_host", Json::Bool(true)),
                (
                    "network",
                    obj([
                        ("nodes", Json::Num(100.0)),
                        ("arcs", Json::Num(400.0)),
                        ("seed", Json::Num(7.0)),
                        ("generator", Json::Str("road_like".into())),
                    ]),
                ),
                ("runs", Json::Arr(vec![run])),
                ("speedup", Json::Num(1.0)),
            ])
        };
        // a PR 8 document without generation tags is rejected ...
        let problems = validate_baseline(&doc_of(8.0, run.clone()));
        assert!(
            problems.iter().any(|p| p.contains("generation")),
            "{problems:?}"
        );
        // ... a pre-PR 8 baseline is grandfathered in ...
        let problems = validate_baseline(&doc_of(7.0, run.clone()));
        assert!(
            !problems.iter().any(|p| p.contains("generation")),
            "{problems:?}"
        );
        // ... and tagging the run satisfies the requirement
        let mut tagged = run;
        if let Json::Obj(m) = &mut tagged {
            m.insert("generation".into(), Json::Num(1.0));
        }
        assert_eq!(
            validate_baseline(&doc_of(8.0, tagged)),
            Vec::<String>::new()
        );
    }

    #[test]
    fn validator_requires_storage_tags_since_pr9() {
        let run = obj([
            ("scheme", Json::Str("CI".into())),
            ("threads", Json::Num(1.0)),
            ("queries", Json::Num(4.0)),
            ("wall_s", Json::Num(0.5)),
            ("throughput_qps", Json::Num(8.0)),
            ("p50_query_s", Json::Num(0.05)),
            ("p95_query_s", Json::Num(0.09)),
            ("generation", Json::Num(1.0)),
            (
                "stages_avg_s",
                obj([
                    ("pir", Json::Num(1.0)),
                    ("comm", Json::Num(1.0)),
                    ("server", Json::Num(0.0)),
                    ("client", Json::Num(0.1)),
                ]),
            ),
            // no `storage` tag
        ]);
        let doc_of = |pr: f64, run: Json| {
            obj([
                ("pr", Json::Num(pr)),
                ("host_cpus", Json::Num(1.0)),
                ("single_cpu_host", Json::Bool(true)),
                (
                    "network",
                    obj([
                        ("nodes", Json::Num(100.0)),
                        ("arcs", Json::Num(400.0)),
                        ("seed", Json::Num(7.0)),
                        ("generator", Json::Str("road_like".into())),
                    ]),
                ),
                ("runs", Json::Arr(vec![run])),
                ("speedup", Json::Num(1.0)),
            ])
        };
        // a PR 9 document without storage tags is rejected ...
        let problems = validate_baseline(&doc_of(9.0, run.clone()));
        assert!(
            problems.iter().any(|p| p.contains("storage")),
            "{problems:?}"
        );
        // ... a pre-PR 9 baseline is grandfathered in ...
        let problems = validate_baseline(&doc_of(8.0, run.clone()));
        assert!(
            !problems.iter().any(|p| p.contains("storage")),
            "{problems:?}"
        );
        // ... an unknown driver is rejected at any pr ...
        let mut bad = run.clone();
        if let Json::Obj(m) = &mut bad {
            m.insert("storage".into(), Json::Str("tape".into()));
        }
        let problems = validate_baseline(&doc_of(8.0, bad));
        assert!(
            problems.iter().any(|p| p.contains("storage")),
            "{problems:?}"
        );
        // ... and a proper tag satisfies the requirement
        let mut tagged = run;
        if let Json::Obj(m) = &mut tagged {
            m.insert("storage".into(), Json::Str("disk".into()));
        }
        assert_eq!(
            validate_baseline(&doc_of(9.0, tagged)),
            Vec::<String>::new()
        );
    }

    #[test]
    fn validator_requires_mmap_and_scan_kernel_since_pr10() {
        let run_on = |storage: &str| {
            obj([
                ("scheme", Json::Str("CI".into())),
                ("threads", Json::Num(1.0)),
                ("queries", Json::Num(4.0)),
                ("wall_s", Json::Num(0.5)),
                ("throughput_qps", Json::Num(8.0)),
                ("p50_query_s", Json::Num(0.05)),
                ("p95_query_s", Json::Num(0.09)),
                ("generation", Json::Num(1.0)),
                ("storage", Json::Str(storage.into())),
                (
                    "stages_avg_s",
                    obj([
                        ("pir", Json::Num(1.0)),
                        ("comm", Json::Num(1.0)),
                        ("server", Json::Num(0.0)),
                        ("client", Json::Num(0.1)),
                    ]),
                ),
            ])
        };
        let backend = |storage: &str| {
            obj([
                ("storage", Json::Str(storage.into())),
                ("pr3_scan_ms", Json::Num(0.8)),
                ("lanes_scan_ms", Json::Num(0.2)),
                ("ratio", Json::Num(4.0)),
            ])
        };
        let scan_kernel = obj([
            ("pages", Json::Num(1024.0)),
            ("page_size", Json::Num(4096.0)),
            ("round", Json::Num(8.0)),
            ("disk_serving_ratio", Json::Num(4.0)),
            (
                "backends",
                Json::Arr(vec![backend("mem"), backend("disk"), backend("mmap")]),
            ),
        ]);
        let doc_of = |pr: f64, runs: Vec<Json>, kernel: Option<Json>| {
            let mut members = vec![
                ("pr", Json::Num(pr)),
                ("host_cpus", Json::Num(1.0)),
                ("single_cpu_host", Json::Bool(true)),
                (
                    "network",
                    obj([
                        ("nodes", Json::Num(100.0)),
                        ("arcs", Json::Num(400.0)),
                        ("seed", Json::Num(7.0)),
                        ("generator", Json::Str("road_like".into())),
                    ]),
                ),
                ("runs", Json::Arr(runs)),
                ("speedup", Json::Num(1.0)),
            ];
            if let Some(k) = kernel {
                members.push(("scan_kernel", k));
            }
            obj(members)
        };

        // a PR 10 document with neither an mmap run nor a scan_kernel
        // section is rejected on both counts ...
        let problems = validate_baseline(&doc_of(10.0, vec![run_on("disk")], None));
        assert!(problems.iter().any(|p| p.contains("mmap")), "{problems:?}");
        assert!(
            problems.iter().any(|p| p.contains("scan_kernel")),
            "{problems:?}"
        );
        // ... a PR 9 baseline is grandfathered in ...
        let problems = validate_baseline(&doc_of(9.0, vec![run_on("disk")], None));
        assert!(
            !problems
                .iter()
                .any(|p| p.contains("mmap") || p.contains("scan_kernel")),
            "{problems:?}"
        );
        // ... a scan_kernel section missing a backend is flagged at any pr ...
        let partial = obj([
            ("pages", Json::Num(1024.0)),
            ("page_size", Json::Num(4096.0)),
            ("round", Json::Num(8.0)),
            ("disk_serving_ratio", Json::Num(4.0)),
            ("backends", Json::Arr(vec![backend("mem"), backend("disk")])),
        ]);
        let problems = validate_baseline(&doc_of(9.0, vec![run_on("disk")], Some(partial)));
        assert!(
            problems
                .iter()
                .any(|p| p.contains("scan_kernel") && p.contains("mmap")),
            "{problems:?}"
        );
        // ... and the full PR 10 evidence validates clean, with the mmap
        // storage tag accepted as vocabulary.
        assert_eq!(
            validate_baseline(&doc_of(
                10.0,
                vec![run_on("mem"), run_on("disk"), run_on("mmap")],
                Some(scan_kernel)
            )),
            Vec::<String>::new()
        );
    }

    #[test]
    fn validator_checks_recovery_section() {
        let doc = obj([(
            "recovery",
            obj([("scheme", Json::Str("CI".into()))]), // everything else missing
        )]);
        let problems = validate_baseline(&doc);
        for key in ["persist_wall_s", "recover_wall_s", "snapshot_bytes"] {
            assert!(
                problems
                    .iter()
                    .any(|p| p.contains("recovery") && p.contains(key)),
                "`{key}` not flagged: {problems:?}"
            );
        }
    }

    #[test]
    fn validator_checks_swap_section() {
        let doc = obj([(
            "swap",
            obj([("scheme", Json::Str("CI".into()))]), // everything else missing
        )]);
        let problems = validate_baseline(&doc);
        for key in [
            "queries_during_rebuild",
            "rebuild_wall_s",
            "serve_qps_during_rebuild",
            "cutover_latency_s",
            "generation_before",
            "generation_after",
        ] {
            assert!(
                problems
                    .iter()
                    .any(|p| p.contains("swap") && p.contains(key)),
                "`{key}` not flagged: {problems:?}"
            );
        }
    }

    #[test]
    fn stage_breakdown_serializes_all_stages_in_ms() {
        let b = privpath_core::schemes::index_scheme::StageBreakdown {
            partition_s: 0.001,
            borders_s: 0.002,
            precompute_s: 0.5,
            files_s: 0.25,
            plan_s: 0.125,
        };
        let json = stage_breakdown_to_json(&b);
        for key in BUILD_STAGES {
            assert!(json.get(key).and_then(Json::as_f64).is_some(), "{key}");
        }
        assert!((json.get("precompute").unwrap().as_f64().unwrap() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn validator_accepts_complete_doc() {
        let run = obj([
            ("scheme", Json::Str("CI".into())),
            ("threads", Json::Num(1.0)),
            ("queries", Json::Num(8.0)),
            ("wall_s", Json::Num(0.5)),
            ("throughput_qps", Json::Num(16.0)),
            ("p50_query_s", Json::Num(0.05)),
            ("p95_query_s", Json::Num(0.09)),
            (
                "stages_avg_s",
                obj([
                    ("pir", Json::Num(1.0)),
                    ("comm", Json::Num(1.0)),
                    ("server", Json::Num(0.0)),
                    ("client", Json::Num(0.1)),
                ]),
            ),
        ]);
        let doc = obj([
            ("pr", Json::Num(1.0)),
            ("host_cpus", Json::Num(8.0)),
            ("single_cpu_host", Json::Bool(false)),
            (
                "network",
                obj([
                    ("nodes", Json::Num(100.0)),
                    ("arcs", Json::Num(400.0)),
                    ("seed", Json::Num(7.0)),
                    ("generator", Json::Str("road_like".into())),
                ]),
            ),
            (
                "builds",
                Json::Arr(vec![obj([
                    ("scheme", Json::Str("CI".into())),
                    ("build_wall_s", Json::Num(1.5)),
                    ("db_bytes", Json::Num(65536.0)),
                ])]),
            ),
            ("runs", Json::Arr(vec![run])),
            ("speedup", Json::Num(2.5)),
        ]);
        assert_eq!(validate_baseline(&doc), Vec::<String>::new());
    }
}
