//! Workload execution: builds a scheme, runs a query workload, and averages
//! the per-query meters — the paper's methodology ("The average response
//! time of a method is measured by running a workload of 1,000 shortest path
//! queries", §7.1).

use privpath_core::config::BuildConfig;
use privpath_core::engine::{Engine, SchemeKind};
use privpath_core::schemes::index_scheme::BuildStats;
use privpath_core::Result;
use privpath_graph::network::RoadNetwork;
use privpath_pir::Meter;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Aggregated outcome of a workload run.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// The scheme that ran.
    pub kind: SchemeKind,
    /// Per-query average meter.
    pub avg: Meter,
    /// Queries executed.
    pub queries: usize,
    /// Database size in bytes.
    pub db_bytes: u64,
    /// Build statistics.
    pub stats: BuildStats,
    /// Build wall time (pre-computation + file formation), seconds.
    pub build_wall_s: f64,
    /// Plan violations observed (should be 0).
    pub violations: usize,
}

impl WorkloadResult {
    /// Average response time in seconds.
    pub fn response_s(&self) -> f64 {
        self.avg.response_time_s()
    }
}

/// Random query node pairs (uniform, seeded, s ≠ t).
pub fn workload_pairs(net: &RoadNetwork, count: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = net.num_nodes() as u32;
    (0..count)
        .map(|_| loop {
            let s = rng.gen_range(0..n);
            let t = rng.gen_range(0..n);
            if s != t {
                return (s, t);
            }
        })
        .collect()
}

/// Builds `kind` over `net` and runs `queries` random queries, returning the
/// averaged meters.
pub fn run_workload(
    net: &RoadNetwork,
    kind: SchemeKind,
    cfg: &BuildConfig,
    queries: usize,
    seed: u64,
) -> Result<WorkloadResult> {
    let t0 = std::time::Instant::now();
    let mut engine = Engine::build(net, kind, cfg)?;
    let build_wall_s = t0.elapsed().as_secs_f64();

    let mut total = Meter::new();
    let mut violations = 0usize;
    let pairs = workload_pairs(net, queries, seed);
    for (s, t) in &pairs {
        let out = engine.query_nodes(net, *s, *t)?;
        total.add(&out.meter);
        violations += usize::from(out.plan_violation);
    }
    Ok(WorkloadResult {
        kind,
        avg: total.scale_down(queries.max(1) as u64),
        queries,
        db_bytes: engine.db_bytes(),
        stats: engine.stats().clone(),
        build_wall_s,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use privpath_graph::gen::{road_like, RoadGenConfig};

    #[test]
    fn workload_runs_and_averages() {
        let net = road_like(&RoadGenConfig { nodes: 300, seed: 5, ..Default::default() });
        let mut cfg = BuildConfig::default();
        cfg.spec.page_size = 512;
        let r = run_workload(&net, SchemeKind::Ci, &cfg, 5, 9).unwrap();
        assert_eq!(r.queries, 5);
        assert!(r.response_s() > 0.0);
        assert!(r.db_bytes > 0);
        assert_eq!(r.violations, 0);
        assert!(r.build_wall_s > 0.0);
    }

    #[test]
    fn pairs_are_distinct_and_seeded() {
        let net = road_like(&RoadGenConfig { nodes: 100, seed: 6, ..Default::default() });
        let a = workload_pairs(&net, 50, 1);
        let b = workload_pairs(&net, 50, 1);
        let c = workload_pairs(&net, 50, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|(s, t)| s != t));
    }
}
