//! Workload execution: builds a scheme, runs a query workload, and averages
//! the per-query meters — the paper's methodology ("The average response
//! time of a method is measured by running a workload of 1,000 shortest path
//! queries", §7.1).
//!
//! Two drivers are provided:
//!
//! * [`run_workload`] — the classic sequential driver: build an engine, run
//!   the workload through its single session.
//! * [`run_shared_workload`] — the concurrent driver: N threads, each with
//!   its own [`QuerySession`], hammer one `Arc`-shared [`Database`]. This is
//!   the "many clients, one LBS" shape of the paper's Figure 1, and the
//!   workhorse behind the committed `BENCH_PR1.json` perf baseline.

use privpath_core::config::BuildConfig;
use privpath_core::engine::{Database, Engine, SchemeKind};
use privpath_core::error::CoreError;
use privpath_core::schemes::index_scheme::BuildStats;
use privpath_core::{DbRegistry, Result};
use privpath_graph::network::RoadNetwork;
use privpath_pir::{FaultPlan, FrontConfig, Meter, RetryPolicy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Aggregated outcome of a workload run.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// The scheme that ran.
    pub kind: SchemeKind,
    /// Per-query average meter.
    pub avg: Meter,
    /// Queries executed.
    pub queries: usize,
    /// Database size in bytes.
    pub db_bytes: u64,
    /// Build statistics.
    pub stats: BuildStats,
    /// Build wall time (pre-computation + file formation), seconds.
    pub build_wall_s: f64,
    /// Plan violations observed (should be 0).
    pub violations: usize,
}

impl WorkloadResult {
    /// Average response time in seconds.
    pub fn response_s(&self) -> f64 {
        self.avg.response_time_s()
    }
}

/// Random query node pairs (uniform, seeded, `s ≠ t`). Errors on networks
/// with fewer than two nodes, where no such pair exists.
pub fn workload_pairs(net: &RoadNetwork, count: usize, seed: u64) -> Result<Vec<(u32, u32)>> {
    let n = net.num_nodes() as u32;
    if n < 2 {
        return Err(CoreError::Query(format!(
            "workload needs a network with >= 2 nodes to draw s != t pairs, got {n}"
        )));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    Ok((0..count)
        .map(|_| loop {
            let s = rng.gen_range(0..n);
            let t = rng.gen_range(0..n);
            if s != t {
                return (s, t);
            }
        })
        .collect())
}

/// Builds `kind` over `net` and runs `queries` random queries sequentially,
/// returning the averaged meters.
pub fn run_workload(
    net: &RoadNetwork,
    kind: SchemeKind,
    cfg: &BuildConfig,
    queries: usize,
    seed: u64,
) -> Result<WorkloadResult> {
    let t0 = Instant::now();
    let mut engine = Engine::build(net, kind, cfg)?;
    let build_wall_s = t0.elapsed().as_secs_f64();

    let mut total = Meter::new();
    let mut violations = 0usize;
    let pairs = workload_pairs(net, queries, seed)?;
    for (s, t) in &pairs {
        let out = engine.query_nodes(net, *s, *t)?;
        total.add(&out.meter);
        violations += usize::from(out.plan_violation);
    }
    Ok(WorkloadResult {
        kind,
        avg: total.scale_down(queries.max(1) as u64),
        queries,
        db_bytes: engine.db_bytes(),
        stats: engine.stats().clone(),
        build_wall_s,
        violations,
    })
}

/// Which transport a shared workload's sessions used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Direct calls into the shared database (the zero-cost reference path).
    InProc,
    /// Frames over byte channels into a `ServerFront` loop thread — the
    /// real client/server boundary, measured to quantify its overhead.
    Wire,
    /// The wire transport behind a seeded lossy
    /// [`privpath_pir::ChaosLink`] with a resilient retry policy —
    /// measures the retry overhead of serving through faults. Simulated
    /// meters must equal the clean `Wire` run bit-for-bit; only wall
    /// times and [`SharedWorkloadResult::retransmits`] may differ.
    Chaos {
        /// Fault-plan seed (each worker derives its own stream from it).
        seed: u64,
    },
    /// Frames over real loopback TCP sockets into a
    /// [`privpath_pir::TcpFront`] accept loop — the network-real serving
    /// path. Simulated meters must equal the in-process run bit-for-bit;
    /// only wall times differ.
    Tcp {
        /// Enable cross-session round coalescing on the front (a short
        /// [`privpath_pir::FrontConfig::coalesce_window`]), so concurrent
        /// linear-scan rounds share one sweep. Off measures the same front
        /// serving every round individually.
        coalesce: bool,
    },
}

impl TransportKind {
    /// Name as recorded in the perf-baseline JSON.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::InProc => "inproc",
            TransportKind::Wire => "wire",
            TransportKind::Chaos { .. } => "chaos",
            TransportKind::Tcp { .. } => "tcp",
        }
    }
}

/// Outcome of a concurrent shared-database workload.
#[derive(Debug, Clone)]
pub struct SharedWorkloadResult {
    /// The scheme that ran.
    pub kind: SchemeKind,
    /// Transport the sessions drove through.
    pub transport: TransportKind,
    /// Worker threads used (each with its own session).
    pub threads: usize,
    /// Queries executed across all threads.
    pub queries: usize,
    /// Whole-workload wall time, seconds (excludes the build).
    pub wall_s: f64,
    /// Real throughput: `queries / wall_s`.
    pub throughput_qps: f64,
    /// Median per-query client wall time, seconds.
    pub p50_query_s: f64,
    /// 95th-percentile per-query client wall time, seconds.
    pub p95_query_s: f64,
    /// Per-query average simulated meter (PIR / comm / server / client).
    pub avg: Meter,
    /// Plan violations observed (should be 0).
    pub violations: usize,
    /// Transport retransmissions across all sessions — 0 on a perfect
    /// link; under [`TransportKind::Chaos`] the recovery work the retry
    /// policies spent. Kept out of the meter (retries depend on the link,
    /// not the query).
    pub retransmits: u64,
    /// Database generation the sessions served from (PR 8). Plain
    /// single-database workloads serve generation 1; the swap driver
    /// ([`run_swap_workload`]) reports its generations separately.
    pub generation: u64,
    /// Storage driver the database's pages were served from (PR 9):
    /// `"mem"` for memory-resident files (a freshly built database or a
    /// `StorageBackend::Mem` snapshot), `"disk"` for a disk-backed
    /// `StorageBackend::Disk` snapshot read through the checksum layer.
    /// [`run_shared_workload_with`] cannot see which driver the database
    /// carries, so it defaults to `"mem"`; `perf_baseline --storage`
    /// overrides the tag on its disk-backed runs.
    pub storage: &'static str,
}

/// Runs `pairs` against one shared [`Database`] from `threads` concurrent
/// [`privpath_core::engine::QuerySession`]s (pairs are dealt round-robin)
/// over the in-process transport. Per-thread RNG streams derive from
/// `seed`, so results are deterministic in everything but wall-clock
/// measurements.
pub fn run_shared_workload(
    db: &Arc<Database>,
    net: &RoadNetwork,
    pairs: &[(u32, u32)],
    threads: usize,
    seed: u64,
) -> Result<SharedWorkloadResult> {
    run_shared_workload_with(db, net, pairs, threads, seed, TransportKind::InProc)
}

/// [`run_shared_workload`] with an explicit transport. `Wire` stands up one
/// [`privpath_pir::ServerFront`] for the database and connects every worker
/// session through its own `WireChannel` — N clients, one server loop —
/// then shuts the front down after the workload; that is the configuration
/// `perf_baseline --transport wire` measures against the in-process path.
/// `Tcp` fronts the same loop with a loopback accept loop and connects every
/// worker over its own real socket (`perf_baseline --transport tcp`), with
/// cross-session round coalescing on or off per the variant's flag.
pub fn run_shared_workload_with(
    db: &Arc<Database>,
    net: &RoadNetwork,
    pairs: &[(u32, u32)],
    threads: usize,
    seed: u64,
    transport: TransportKind,
) -> Result<SharedWorkloadResult> {
    let threads = threads.max(1).min(pairs.len().max(1));
    struct ThreadOutcome {
        total: Meter,
        wall_times: Vec<f64>,
        violations: usize,
        retransmits: u64,
    }
    let front = match transport {
        TransportKind::InProc | TransportKind::Tcp { .. } => None,
        TransportKind::Wire | TransportKind::Chaos { .. } => Some(db.serve_wire()),
    };
    let tcp = match transport {
        TransportKind::Tcp { coalesce } => Some(db.serve_tcp_with(FrontConfig {
            coalesce_window: coalesce.then(|| Duration::from_millis(2)),
            coalesce_max_batch: 64,
            ..FrontConfig::default()
        })?),
        _ => None,
    };
    let t0 = Instant::now();
    let outcomes: Vec<Result<ThreadOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|k| {
                let db = Arc::clone(db);
                let front = front.as_ref();
                let tcp = tcp.as_ref();
                scope.spawn(move || -> Result<ThreadOutcome> {
                    let thread_seed = seed ^ (k as u64 + 1).wrapping_mul(0x9e37_79b9);
                    let mut session = match (front, tcp, transport) {
                        (None, Some(tcp), _) => db.tcp_session_with_seed(tcp, thread_seed)?,
                        (None, None, _) => db.session_with_seed(thread_seed),
                        (Some(front), _, TransportKind::Chaos { seed: chaos_seed }) => db
                            .chaos_wire_session_with_seed(
                                front,
                                thread_seed,
                                FaultPlan::lossy(chaos_seed ^ (k as u64).wrapping_mul(0xD1B5)),
                                RetryPolicy::resilient(),
                            )?,
                        (Some(front), _, _) => db.wire_session_with_seed(front, thread_seed)?,
                    };
                    let mut out = ThreadOutcome {
                        total: Meter::new(),
                        wall_times: Vec::new(),
                        violations: 0,
                        retransmits: 0,
                    };
                    for (s, t) in pairs.iter().skip(k).step_by(threads) {
                        let q0 = Instant::now();
                        let q = session.query_nodes(net, *s, *t)?;
                        out.wall_times.push(q0.elapsed().as_secs_f64());
                        out.total.add(&q.meter);
                        out.violations += usize::from(q.plan_violation);
                    }
                    out.retransmits = session.transport_retries();
                    session.close()?;
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("workload thread panicked"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    if let Some(front) = front {
        front.shutdown();
    }
    if let Some(tcp) = tcp {
        tcp.shutdown();
    }

    let mut total = Meter::new();
    let mut wall_times: Vec<f64> = Vec::with_capacity(pairs.len());
    let mut violations = 0usize;
    let mut retransmits = 0u64;
    for outcome in outcomes {
        let outcome = outcome?;
        total.add(&outcome.total);
        wall_times.extend(outcome.wall_times);
        violations += outcome.violations;
        retransmits += outcome.retransmits;
    }
    wall_times.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
    let pct = |p: f64| -> f64 {
        if wall_times.is_empty() {
            return 0.0;
        }
        let idx = ((wall_times.len() as f64 * p).floor() as usize).min(wall_times.len() - 1);
        wall_times[idx]
    };
    let queries = wall_times.len();
    Ok(SharedWorkloadResult {
        kind: db.kind(),
        transport,
        threads,
        queries,
        wall_s,
        throughput_qps: if wall_s > 0.0 {
            queries as f64 / wall_s
        } else {
            0.0
        },
        p50_query_s: pct(0.50),
        p95_query_s: pct(0.95),
        avg: total.scale_down(queries.max(1) as u64),
        violations,
        retransmits,
        generation: 1,
        storage: "mem",
    })
}

/// Outcome of a serve-during-rebuild measurement ([`run_swap_workload`]):
/// the PR 8 hot-swap subsystem under a live query load.
#[derive(Debug, Clone)]
pub struct SwapWorkloadResult {
    /// The scheme that ran.
    pub kind: SchemeKind,
    /// Queries the pinned generation-1 session completed while the
    /// background rebuild was running.
    pub queries_during_rebuild: usize,
    /// Wall time of the background rebuild (build + publish), seconds.
    pub rebuild_wall_s: f64,
    /// Serve throughput *during* the rebuild:
    /// `queries_during_rebuild / rebuild_wall_s`.
    pub serve_qps_during_rebuild: f64,
    /// Wall time from the publish landing to the first query answered by a
    /// session on the new generation, seconds — the client-visible cutover.
    pub cutover_latency_s: f64,
    /// Generation served before the swap (always 1 here).
    pub generation_before: u64,
    /// Generation published by the rebuild (2 on success).
    pub generation_after: u64,
    /// Plan violations observed across both generations (should be 0).
    pub violations: usize,
}

/// Measures the generation-swap subsystem under load: a [`DbRegistry`]
/// serves `db` over a wire front while a background worker rebuilds from
/// `net2` (the reweighted network); one pinned session queries generation 1
/// continuously until the rebuild publishes, then a fresh session opens on
/// generation 2 and answers against the new weights. Throughput during the
/// rebuild and the publish-to-first-answer cutover latency are the
/// committed numbers (`BENCH_PR8.json`, `swap` section).
pub fn run_swap_workload(
    db: &Arc<Database>,
    net: &RoadNetwork,
    net2: &RoadNetwork,
    cfg: &BuildConfig,
    pairs: &[(u32, u32)],
    seed: u64,
) -> Result<SwapWorkloadResult> {
    if pairs.is_empty() {
        return Err(CoreError::Query(
            "swap workload needs a non-empty pair set".into(),
        ));
    }
    let registry = DbRegistry::new(Arc::clone(db));
    let front = registry.serve_wire();
    let mut pinned = registry.wire_session_with_seed(&front, seed)?;
    let mut violations = 0usize;

    let kind = db.kind();
    let rebuild_net = net2.clone();
    let rebuild_cfg = cfg.clone();
    let t0 = Instant::now();
    let handle = registry.rebuild_in_background(
        move || Database::build(&rebuild_net, kind, &rebuild_cfg),
        RetryPolicy {
            max_attempts: 2,
            attempt_timeout: None,
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(8),
            deadline: Some(Duration::from_secs(600)),
        },
    );
    // Serve generation 1 for as long as the rebuild runs (at least one
    // query, so the measurement always exercises serve-during-rebuild).
    let mut queries_during_rebuild = 0usize;
    for &(s, t) in pairs.iter().cycle() {
        if queries_during_rebuild > 0 && handle.is_finished() {
            break;
        }
        let out = pinned.query_nodes(net, s, t)?;
        violations += usize::from(out.plan_violation);
        queries_during_rebuild += 1;
    }
    let generation_after = handle.wait()?;
    let rebuild_wall_s = t0.elapsed().as_secs_f64();

    // Client-visible cutover: publish has landed; how long until a fresh
    // session answers from the new generation?
    let t1 = Instant::now();
    let mut fresh = registry.wire_session_with_seed(&front, seed ^ 0xF00D)?;
    let out = fresh.query_nodes(net2, pairs[0].0, pairs[0].1)?;
    violations += usize::from(out.plan_violation);
    let cutover_latency_s = t1.elapsed().as_secs_f64();

    // The pinned session still drains on generation 1 after the cutover.
    let out = pinned.query_nodes(net, pairs[0].0, pairs[0].1)?;
    violations += usize::from(out.plan_violation);
    pinned.close()?;
    fresh.close()?;
    front.shutdown();

    Ok(SwapWorkloadResult {
        kind,
        queries_during_rebuild,
        rebuild_wall_s,
        serve_qps_during_rebuild: if rebuild_wall_s > 0.0 {
            queries_during_rebuild as f64 / rebuild_wall_s
        } else {
            0.0
        },
        cutover_latency_s,
        generation_before: 1,
        generation_after,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use privpath_graph::gen::{road_like, RoadGenConfig};

    #[test]
    fn workload_runs_and_averages() {
        let net = road_like(&RoadGenConfig {
            nodes: 300,
            seed: 5,
            ..Default::default()
        });
        let mut cfg = BuildConfig::default();
        cfg.spec.page_size = 512;
        let r = run_workload(&net, SchemeKind::Ci, &cfg, 5, 9).unwrap();
        assert_eq!(r.queries, 5);
        assert!(r.response_s() > 0.0);
        assert!(r.db_bytes > 0);
        assert_eq!(r.violations, 0);
        assert!(r.build_wall_s > 0.0);
    }

    #[test]
    fn pairs_are_distinct_and_seeded() {
        let net = road_like(&RoadGenConfig {
            nodes: 100,
            seed: 6,
            ..Default::default()
        });
        let a = workload_pairs(&net, 50, 1).unwrap();
        let b = workload_pairs(&net, 50, 1).unwrap();
        let c = workload_pairs(&net, 50, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|(s, t)| s != t));
    }

    #[test]
    fn single_node_network_is_an_error_not_a_hang() {
        use privpath_graph::network::NetworkBuilder;
        use privpath_graph::types::Point;
        let mut b = NetworkBuilder::new();
        b.add_node(Point::new(0, 0));
        let net = b.build();
        let err = workload_pairs(&net, 3, 1).unwrap_err();
        assert!(err.to_string().contains(">= 2 nodes"), "got: {err}");
    }

    #[test]
    fn wire_workload_matches_inproc_costs() {
        let net = road_like(&RoadGenConfig {
            nodes: 300,
            seed: 11,
            ..Default::default()
        });
        let mut cfg = BuildConfig::default();
        cfg.spec.page_size = 512;
        let db = Arc::new(Database::build(&net, SchemeKind::Ci, &cfg).unwrap());
        let pairs = workload_pairs(&net, 10, 5).unwrap();
        let inproc =
            run_shared_workload_with(&db, &net, &pairs, 3, 21, TransportKind::InProc).unwrap();
        let wire = run_shared_workload_with(&db, &net, &pairs, 3, 21, TransportKind::Wire).unwrap();
        assert_eq!(inproc.queries, wire.queries);
        assert_eq!(inproc.violations, 0);
        assert_eq!(wire.violations, 0);
        assert_eq!(wire.transport, TransportKind::Wire);
        // identical simulated traffic — only wall times may differ
        assert_eq!(inproc.avg.total_fetches(), wire.avg.total_fetches());
        assert_eq!(inproc.avg.rounds, wire.avg.rounds);
        assert_eq!(inproc.avg.exchanges, wire.avg.exchanges);
        assert_eq!(inproc.avg.bytes_transferred, wire.avg.bytes_transferred);
    }

    #[test]
    fn tcp_workload_matches_inproc_costs() {
        use privpath_pir::PirMode;
        let net = road_like(&RoadGenConfig {
            nodes: 200,
            seed: 17,
            ..Default::default()
        });
        let mut cfg = BuildConfig::default();
        cfg.spec.page_size = 512;
        // linear-scan stores: the one mode whose rounds are coalescable
        cfg.pir_mode = PirMode::LinearScan;
        let db = Arc::new(Database::build(&net, SchemeKind::Ci, &cfg).unwrap());
        let pairs = workload_pairs(&net, 6, 5).unwrap();
        let inproc =
            run_shared_workload_with(&db, &net, &pairs, 3, 21, TransportKind::InProc).unwrap();
        for coalesce in [false, true] {
            let tcp =
                run_shared_workload_with(&db, &net, &pairs, 3, 21, TransportKind::Tcp { coalesce })
                    .unwrap();
            assert_eq!(tcp.transport.name(), "tcp");
            assert_eq!(inproc.queries, tcp.queries);
            assert_eq!(tcp.violations, 0);
            assert_eq!(tcp.retransmits, 0);
            // the socket (and any sweep sharing) must not perturb the
            // simulated accounting
            assert_eq!(inproc.avg.total_fetches(), tcp.avg.total_fetches());
            assert_eq!(inproc.avg.rounds, tcp.avg.rounds);
            assert_eq!(inproc.avg.exchanges, tcp.avg.exchanges);
            assert_eq!(inproc.avg.bytes_transferred, tcp.avg.bytes_transferred);
        }
    }

    #[test]
    fn chaos_workload_matches_wire_costs() {
        let net = road_like(&RoadGenConfig {
            nodes: 200,
            seed: 13,
            ..Default::default()
        });
        let mut cfg = BuildConfig::default();
        cfg.spec.page_size = 512;
        let db = Arc::new(Database::build(&net, SchemeKind::Ci, &cfg).unwrap());
        let pairs = workload_pairs(&net, 4, 5).unwrap();
        let wire = run_shared_workload_with(&db, &net, &pairs, 2, 21, TransportKind::Wire).unwrap();
        let chaos = run_shared_workload_with(
            &db,
            &net,
            &pairs,
            2,
            21,
            TransportKind::Chaos { seed: 0xFA11 },
        )
        .unwrap();
        assert_eq!(chaos.transport.name(), "chaos");
        assert_eq!(wire.retransmits, 0);
        // link faults must not perturb the simulated accounting; client_s
        // is measured wall time, the one meter component runs never share
        let mut w = wire.avg.clone();
        let mut c = chaos.avg.clone();
        w.client_s = 0.0;
        c.client_s = 0.0;
        assert_eq!(w, c);
        assert_eq!(chaos.violations, 0);
    }

    #[test]
    fn swap_workload_measures_rebuild_and_cutover() {
        let net = road_like(&RoadGenConfig {
            nodes: 150,
            seed: 23,
            ..Default::default()
        });
        let net2 = net.reweighted(0xCAFE);
        let mut cfg = BuildConfig::default();
        cfg.spec.page_size = 512;
        cfg.plan_sample = 0;
        let db = Arc::new(Database::build(&net, SchemeKind::Ci, &cfg).unwrap());
        let pairs = workload_pairs(&net, 8, 3).unwrap();
        let r = run_swap_workload(&db, &net, &net2, &cfg, &pairs, 0x5eed).unwrap();
        assert_eq!(r.kind, SchemeKind::Ci);
        assert!(r.queries_during_rebuild >= 1, "{r:?}");
        assert!(r.rebuild_wall_s > 0.0);
        assert!(r.serve_qps_during_rebuild > 0.0);
        assert!(r.cutover_latency_s >= 0.0);
        assert_eq!(r.generation_before, 1);
        assert_eq!(r.generation_after, 2);
        assert_eq!(r.violations, 0);
    }

    #[test]
    fn shared_workload_matches_sequential_costs() {
        let net = road_like(&RoadGenConfig {
            nodes: 300,
            seed: 7,
            ..Default::default()
        });
        let mut cfg = BuildConfig::default();
        cfg.spec.page_size = 512;
        let db = Arc::new(Database::build(&net, SchemeKind::Ci, &cfg).unwrap());
        let pairs = workload_pairs(&net, 12, 3).unwrap();
        let seq = run_shared_workload(&db, &net, &pairs, 1, 17).unwrap();
        let par = run_shared_workload(&db, &net, &pairs, 4, 17).unwrap();
        assert_eq!(seq.queries, 12);
        assert_eq!(par.queries, 12);
        assert_eq!(par.threads, 4);
        assert_eq!(seq.violations, 0);
        assert_eq!(par.violations, 0);
        // The fixed plan makes the simulated page traffic identical no
        // matter how the workload is scheduled across sessions.
        assert_eq!(seq.avg.total_fetches(), par.avg.total_fetches());
        assert_eq!(seq.avg.rounds, par.avg.rounds);
        assert!(par.throughput_qps > 0.0);
        assert!(par.p50_query_s <= par.p95_query_s);
    }
}
