//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§7) on synthetic stand-ins of the six road networks.
//!
//! Run via:
//!
//! ```text
//! cargo run --release -p privpath-bench --bin experiments -- <id> [--scale F] [--queries N]
//! ```
//!
//! where `<id>` is one of `table1 table2 fig5 table3 fig6 fig7 fig8 fig9
//! fig10 fig11 fig12` or `all`. Results print as aligned text tables (with
//! the paper's reference values where applicable) and are also written as
//! CSV under `results/`.

pub mod experiments;
pub mod perf;
pub mod report;
pub mod runner;
pub mod scales;

pub use report::Table;
pub use runner::{
    run_shared_workload, run_shared_workload_with, run_workload, workload_pairs,
    SharedWorkloadResult, TransportKind, WorkloadResult,
};
