//! Text-table and CSV reporting for the experiment harness.

use std::io::Write;
use std::path::PathBuf;

/// A simple aligned text table that can also be dumped as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout and writes `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        if let Err(e) = self.write_csv(name) {
            eprintln!("warning: could not write CSV for {name}: {e}");
        }
    }

    fn write_csv(&self, name: &str) -> std::io::Result<()> {
        let dir = PathBuf::from("results");
        std::fs::create_dir_all(&dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{name}.csv")))?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') {
                        format!("\"{c}\"")
                    } else {
                        c.clone()
                    }
                })
                .collect();
            writeln!(f, "{}", escaped.join(","))?;
        }
        Ok(())
    }
}

/// Seconds with adaptive precision.
pub fn secs(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Megabytes with one decimal.
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "22".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("333"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(secs(123.4), "123");
        assert_eq!(secs(12.34), "12.3");
        assert_eq!(secs(0.1234), "0.123");
        assert_eq!(mb(1_500_000), "1.50");
    }
}
