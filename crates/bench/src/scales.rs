//! Default network scales for the experiment harness.
//!
//! The paper's largest networks (136k–176k nodes) make pre-computation a
//! long batch job at full scale; the harness defaults to scaled stand-ins of
//! ≈[`TARGET_NODES`] nodes so the complete suite runs on a development
//! machine. The `--scale` flag multiplies these defaults; the total scale is
//! clamped to (0, 1], so small networks (already below the target) cannot be
//! inflated past their paper size.
//!
//! **Paper-scale runs** use the named full-scale preset instead of a magic
//! multiplier: `--scale full` (or `paper`) pins every network to its exact
//! Table 1 size. With numeric factors the multiplier needed to reach full
//! scale differs per network (≈11× for North America, 1× for Oldenburg) —
//! the preset removes the guesswork. EXPERIMENTS.md records the scales used
//! for the committed runs.

use privpath_graph::gen::PaperNetwork;

/// Default node-count target for scaled networks.
pub const TARGET_NODES: f64 = 16_000.0;

/// The `--scale full` sentinel: run every network at its exact paper size
/// (an effective scale of 1.0 regardless of the per-network default).
pub const FULL_SCALE: f64 = f64::INFINITY;

/// Default scale for `net` (1.0 for networks already below the target).
pub fn default_scale(net: PaperNetwork) -> f64 {
    (TARGET_NODES / net.nodes() as f64).min(1.0)
}

/// Applies the user factor on top of the default, clamped to (0, 1].
/// The [`FULL_SCALE`] sentinel short-circuits to exactly 1.0.
pub fn effective_scale(net: PaperNetwork, user_factor: f64) -> f64 {
    if user_factor == FULL_SCALE {
        return 1.0;
    }
    (default_scale(net) * user_factor).clamp(1e-3, 1.0)
}

/// Parses a `--scale` argument: `full` / `paper` name the full-scale preset,
/// anything else must be a positive factor.
pub fn parse_scale_arg(arg: &str) -> Option<f64> {
    if arg.eq_ignore_ascii_case("full") || arg.eq_ignore_ascii_case("paper") {
        return Some(FULL_SCALE);
    }
    arg.parse::<f64>()
        .ok()
        .filter(|&f| f > 0.0 && f.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use privpath_graph::gen::ALL_PAPER_NETWORKS;

    #[test]
    fn small_networks_run_full_scale() {
        assert_eq!(default_scale(PaperNetwork::Oldenburg), 1.0);
        assert!(default_scale(PaperNetwork::NorthAmerica) < 0.12);
    }

    #[test]
    fn user_factor_multiplies() {
        let base = default_scale(PaperNetwork::Argentina);
        assert!((effective_scale(PaperNetwork::Argentina, 0.5) - base * 0.5).abs() < 1e-12);
        assert_eq!(effective_scale(PaperNetwork::Oldenburg, 4.0), 1.0);
    }

    #[test]
    fn full_scale_preset_reaches_paper_size_everywhere() {
        for net in ALL_PAPER_NETWORKS {
            assert_eq!(
                effective_scale(net, FULL_SCALE),
                1.0,
                "{} not at paper scale under the preset",
                net.name()
            );
        }
    }

    #[test]
    fn scale_arg_parsing() {
        assert_eq!(parse_scale_arg("full"), Some(FULL_SCALE));
        assert_eq!(parse_scale_arg("PAPER"), Some(FULL_SCALE));
        assert_eq!(parse_scale_arg("0.25"), Some(0.25));
        assert_eq!(parse_scale_arg("3"), Some(3.0));
        assert_eq!(parse_scale_arg("0"), None);
        assert_eq!(parse_scale_arg("-1"), None);
        assert_eq!(parse_scale_arg("inf"), None);
        assert_eq!(parse_scale_arg("bogus"), None);
    }
}
