//! Default network scales for the experiment harness.
//!
//! The paper's largest networks (136k–176k nodes) make pre-computation a
//! multi-hour batch job at full scale; the harness defaults to scaled
//! stand-ins of ≈`TARGET_NODES` nodes so the complete suite runs on a
//! development machine. The `--scale` flag multiplies these defaults (capped
//! at 1.0); EXPERIMENTS.md records the scales used for the committed runs.

use privpath_graph::gen::PaperNetwork;

/// Default node-count target for scaled networks.
pub const TARGET_NODES: f64 = 16_000.0;

/// Default scale for `net` (1.0 for networks already below the target).
pub fn default_scale(net: PaperNetwork) -> f64 {
    (TARGET_NODES / net.nodes() as f64).min(1.0)
}

/// Applies the user factor on top of the default, clamped to (0, 1].
pub fn effective_scale(net: PaperNetwork, user_factor: f64) -> f64 {
    (default_scale(net) * user_factor).clamp(1e-3, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_networks_run_full_scale() {
        assert_eq!(default_scale(PaperNetwork::Oldenburg), 1.0);
        assert!(default_scale(PaperNetwork::NorthAmerica) < 0.12);
    }

    #[test]
    fn user_factor_multiplies() {
        let base = default_scale(PaperNetwork::Argentina);
        assert!((effective_scale(PaperNetwork::Argentina, 0.5) - base * 0.5).abs() < 1e-12);
        assert_eq!(effective_scale(PaperNetwork::Oldenburg, 4.0), 1.0);
    }
}
