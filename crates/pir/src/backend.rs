//! Functional oblivious page stores.
//!
//! The cost model (used by the large-scale experiments) charges simulated
//! time without doing oblivious work; these backends complement it by
//! actually *being* oblivious, so the test suite can verify the property the
//! security argument delegates to [36]: the physical access sequence reveals
//! nothing about the logical one.

use crate::prp::Prp;
use crate::scan::{self, ScanArena};
use crate::Result;
use privpath_storage::{MemFile, PageBuf, PagedFile, StorageError};
use std::collections::HashMap;
use std::sync::Arc;

/// Default cap on physical-log entries (1 Mi slots = 4 MiB): generous for
/// every audit in the test suite, bounded for long-lived serving sessions.
pub const DEFAULT_LOG_CAP: usize = 1 << 20;

/// Typed marker that a [`PhysicalLog`] hit its cap: `dropped` reads were
/// observed but not recorded. The audit surface stays truthful — a truncated
/// log announces itself instead of silently looking like a short session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogOverflow {
    /// The cap the log was bounded to.
    pub cap: usize,
    /// Physical reads observed after the cap was reached.
    pub dropped: u64,
}

/// Bounded append-only record of physical slot reads. Stores record one
/// entry per physical page the host observes; once `cap` entries exist,
/// further reads are counted, not stored, and surface as a typed
/// [`LogOverflow`] — so a store serving forever holds at most
/// `cap * 4` bytes of audit state.
#[derive(Debug, Clone)]
pub struct PhysicalLog {
    entries: Vec<u32>,
    cap: usize,
    dropped: u64,
}

impl PhysicalLog {
    /// Log bounded to `cap` recorded entries.
    pub fn bounded(cap: usize) -> Self {
        PhysicalLog {
            entries: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Records one physical read (or counts it once the cap is hit).
    #[inline]
    pub fn record(&mut self, slot: u32) {
        if self.entries.len() < self.cap {
            self.entries.push(slot);
        } else {
            self.dropped += 1;
        }
    }

    /// Recorded entries, oldest first.
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }

    /// The overflow marker, present iff reads were dropped.
    pub fn overflow(&self) -> Option<LogOverflow> {
        (self.dropped > 0).then_some(LogOverflow {
            cap: self.cap,
            dropped: self.dropped,
        })
    }
}

impl Default for PhysicalLog {
    fn default() -> Self {
        PhysicalLog::bounded(DEFAULT_LOG_CAP)
    }
}

/// A store of `num_pages` logical pages that can be fetched obliviously.
///
/// `physical_log` exposes what the *host* (the adversary in the paper's
/// model) observes: the sequence of physical slot reads. Obliviousness means
/// this sequence's distribution is independent of the logical fetch sequence.
pub trait ObliviousStore: Send {
    /// Logical pages stored.
    fn num_pages(&self) -> u32;
    /// Obliviously fetches logical page `page`.
    fn fetch(&mut self, page: u32) -> Result<PageBuf>;
    /// Obliviously fetches a whole round's pages at once: `out[i]` receives
    /// logical page `pages[i]`. Semantically equivalent to `pages.len()`
    /// sequential [`ObliviousStore::fetch`] calls in issue order (same
    /// returned contents, same cache/epoch evolution) — the batch is where
    /// stores amortize their per-fetch overheads: the linear-scan store
    /// collects all requested pages in **one** pass over the file instead of
    /// one pass per page, and the shuffled store performs one epoch check
    /// per run of fetches instead of one per fetch.
    ///
    /// The default implementation is the sequential loop, which is always
    /// correct.
    ///
    /// # Panics
    /// Implementations may panic if `out.len() != pages.len()` or if the
    /// buffers in `out` are not page-sized.
    fn fetch_batch(&mut self, pages: &[u32], out: &mut [PageBuf]) -> Result<()> {
        assert_eq!(pages.len(), out.len(), "batch output length mismatch");
        for (slot, &page) in out.iter_mut().zip(pages) {
            *slot = self.fetch(page)?;
        }
        Ok(())
    }
    /// Physical slot reads the host has observed so far (possibly truncated
    /// at the store's log cap — see [`ObliviousStore::log_overflow`]).
    fn physical_log(&self) -> &[u32];
    /// Present iff the physical log hit its cap and dropped entries; `None`
    /// means [`ObliviousStore::physical_log`] is the complete record.
    fn log_overflow(&self) -> Option<LogOverflow> {
        None
    }
}

/// Trivial information-theoretic PIR: every fetch scans the whole file.
///
/// This is the classic `O(N)`-per-query scheme the paper dismisses as
/// impractical for sizable databases (§2.2) — kept as the obliviousness
/// ground truth for tests and as an ablation point.
pub struct LinearScanStore {
    file: Arc<dyn PagedFile>,
    /// Run buffer + dummy sink for the streamed lane-select kernel, reused
    /// across rounds so steady-state serving allocates nothing.
    arena: ScanArena,
    /// Scratch page for the PR 3 reference path
    /// ([`LinearScanStore::fetch_batch_reference`]).
    scratch: PageBuf,
    log: PhysicalLog,
}

impl LinearScanStore {
    /// Wraps an in-memory file.
    pub fn new(file: MemFile) -> Self {
        Self::from_driver(Arc::new(file))
    }

    /// Wraps any page driver — in-memory, disk- or mmap-backed. The scan
    /// sweeps the driver front to back, so obliviousness (a full `0..N`
    /// physical pass per round) is driver-invariant by construction.
    pub fn from_driver(file: Arc<dyn PagedFile>) -> Self {
        let page_size = file.page_size();
        LinearScanStore {
            file,
            arena: ScanArena::new(page_size),
            scratch: PageBuf::zeroed(page_size),
            log: PhysicalLog::default(),
        }
    }

    /// Bounds the physical log to `cap` recorded entries (the default is
    /// [`DEFAULT_LOG_CAP`]); reads past the cap surface as
    /// [`ObliviousStore::log_overflow`].
    pub fn with_log_cap(mut self, cap: usize) -> Self {
        self.log = PhysicalLog::bounded(cap);
        self
    }

    /// Validates that every requested page exists, so a bad request fails
    /// the round before any I/O (and before any log entries).
    fn check_requests(&self, pages: &[u32]) -> Result<()> {
        let n = self.file.num_pages();
        if let Some(&bad) = pages.iter().find(|&&p| p >= n) {
            return Err(StorageError::PageOutOfRange {
                page: bad,
                pages: n,
            }
            .into());
        }
        Ok(())
    }

    /// The PR 3 sorted-cursor copy path, kept verbatim as the reference the
    /// lane kernel is differentially tested and benchmarked against: one
    /// `read_page_into` driver call per page, a branchy copy on match.
    /// Observably identical to [`ObliviousStore::fetch_batch`] — same
    /// answers, same `0..N` physical log per round.
    pub fn fetch_batch_reference(&mut self, pages: &[u32], out: &mut [PageBuf]) -> Result<()> {
        assert_eq!(pages.len(), out.len(), "batch output length mismatch");
        self.check_requests(pages)?;
        if pages.is_empty() {
            return Ok(());
        }
        let mut wanted: Vec<(u32, usize)> = pages.iter().copied().zip(0..).collect();
        wanted.sort_unstable();
        let mut w = 0usize;
        for p in 0..self.file.num_pages() {
            self.log.record(p);
            self.file.read_page_into(p, &mut self.scratch)?;
            while w < wanted.len() && wanted[w].0 == p {
                out[wanted[w].1]
                    .as_mut_slice()
                    .copy_from_slice(self.scratch.as_slice());
                w += 1;
            }
        }
        Ok(())
    }
}

impl ObliviousStore for LinearScanStore {
    fn num_pages(&self) -> u32 {
        self.file.num_pages()
    }

    fn fetch(&mut self, page: u32) -> Result<PageBuf> {
        self.check_requests(&[page])?;
        // The single fetch is the k = 1 batch: same streamed scan, same
        // full `0..N` log, and the store scratch is reused instead of the
        // old path's fresh allocation per scanned page.
        let mut out = [PageBuf::zeroed(self.file.page_size())];
        let LinearScanStore {
            file, arena, log, ..
        } = self;
        scan::scan_resolve(&**file, &[(page, 0)], &mut out, arena, |p| log.record(p))?;
        let [buf] = out;
        Ok(buf)
    }

    /// One pass over the whole file serves the entire round: `k` batched
    /// fetches cost `N` page reads instead of the sequential path's `k·N`.
    /// The host still observes a full scan (obliviousness is untouched — the
    /// physical sequence is `0..N` regardless of the requested pages), it
    /// just observes *one* scan per round rather than one per page. The pass
    /// itself is the streamed lane-select kernel of [`crate::scan`]: runs of
    /// pages per driver call, constant branchless work per page.
    fn fetch_batch(&mut self, pages: &[u32], out: &mut [PageBuf]) -> Result<()> {
        assert_eq!(pages.len(), out.len(), "batch output length mismatch");
        self.check_requests(pages)?;
        if pages.is_empty() {
            return Ok(());
        }
        // requested pages sorted so the single scan can satisfy them in order
        let mut wanted: Vec<(u32, usize)> = pages.iter().copied().zip(0..).collect();
        wanted.sort_unstable();
        let LinearScanStore {
            file, arena, log, ..
        } = self;
        scan::scan_resolve(&**file, &wanted, out, arena, |p| log.record(p))
    }

    fn physical_log(&self) -> &[u32] {
        self.log.entries()
    }

    fn log_overflow(&self) -> Option<LogOverflow> {
        self.log.overflow()
    }
}

/// Square-root-ORAM-style shuffled store — a faithful miniature of the
/// hierarchy-of-shuffles idea behind Usable PIR [36].
///
/// Layout: `N` real pages plus `m = ⌈√N⌉` dummies, permuted by a fresh keyed
/// PRP each epoch. A fetch reads exactly one physical slot: the PRP image of
/// the logical page on a miss, or the next unread *dummy* slot on a cache
/// hit, so repeated requests for the same page are indistinguishable from
/// distinct ones. After `m` fetches the store reshuffles under a new key
/// (the real protocol does this with an oblivious merge sort whose amortized
/// cost is what the cost model charges).
pub struct ShuffledStore {
    plain: Arc<dyn PagedFile>,
    shuffled: Vec<PageBuf>,
    prp: Prp,
    cache: HashMap<u32, PageBuf>,
    epoch_len: u32,
    dummy_ptr: u32,
    fetches_this_epoch: u32,
    epoch: u64,
    seed: u64,
    log: PhysicalLog,
    reshuffles: u64,
}

impl ShuffledStore {
    /// Builds the shuffled layout for an in-memory `file` with RNG seed
    /// `seed`.
    pub fn new(file: MemFile, seed: u64) -> Self {
        Self::from_driver(Arc::new(file), seed).expect("in-memory pages cannot fail to read")
    }

    /// Builds the shuffled layout over any page driver. The initial shuffle
    /// reads every plain page, so a failing driver surfaces here as a typed
    /// error instead of a panic.
    pub fn from_driver(file: Arc<dyn PagedFile>, seed: u64) -> Result<Self> {
        let n = file.num_pages();
        let epoch_len = ((n as f64).sqrt().ceil() as u32).max(1);
        let mut store = ShuffledStore {
            plain: file,
            shuffled: Vec::new(),
            prp: Prp::new(1, 0),
            cache: HashMap::new(),
            epoch_len,
            dummy_ptr: 0,
            fetches_this_epoch: 0,
            epoch: 0,
            seed,
            log: PhysicalLog::default(),
            reshuffles: 0,
        };
        store.reshuffle()?;
        Ok(store)
    }

    /// Bounds the physical log to `cap` recorded entries, like
    /// [`LinearScanStore::with_log_cap`].
    pub fn with_log_cap(mut self, cap: usize) -> Self {
        self.log = PhysicalLog::bounded(cap);
        self
    }

    /// Epoch length (`⌈√N⌉`): fetches between reshuffles.
    pub fn epoch_len(&self) -> u32 {
        self.epoch_len
    }

    /// Number of reshuffles performed so far (first layout included).
    pub fn reshuffles(&self) -> u64 {
        self.reshuffles
    }

    fn total_slots(&self) -> u32 {
        self.plain.num_pages() + self.epoch_len
    }

    /// All-or-nothing: the new layout is built fully (every plain page read
    /// through the driver) before any store state changes, so a mid-shuffle
    /// read failure leaves the current epoch intact and retryable.
    fn reshuffle(&mut self) -> Result<()> {
        let epoch = self.epoch + 1;
        let total = self.total_slots();
        let prp = Prp::new(u64::from(total), self.seed.wrapping_add(epoch));
        let page_size = self.plain.page_size();
        let mut slots = vec![PageBuf::zeroed(page_size); total as usize];
        for logical in 0..self.plain.num_pages() {
            let slot = prp.apply(u64::from(logical)) as usize;
            slots[slot] = self.plain.read_page(logical)?;
        }
        // dummy slots (logical N..N+m) stay zeroed — in the real protocol
        // they are encrypted and indistinguishable from real pages.
        self.epoch = epoch;
        self.reshuffles += 1;
        self.prp = prp;
        self.shuffled = slots;
        self.cache.clear();
        self.dummy_ptr = 0;
        self.fetches_this_epoch = 0;
        Ok(())
    }

    fn read_slot(&mut self, slot: u32) -> PageBuf {
        self.log.record(slot);
        self.shuffled[slot as usize].clone()
    }

    /// One oblivious fetch, *without* the bounds check and epoch bookkeeping
    /// (the callers own those — [`ObliviousStore::fetch`] per fetch, the
    /// batch path once per epoch-sized run).
    fn fetch_one(&mut self, page: u32) -> PageBuf {
        let n = self.plain.num_pages();
        if let Some(hit) = self.cache.get(&page).cloned() {
            // Cache hit: read (and discard) the next unread dummy so the host
            // still sees exactly one fresh slot access.
            let dummy_logical = u64::from(n) + u64::from(self.dummy_ptr);
            self.dummy_ptr += 1;
            let slot = self.prp.apply(dummy_logical) as u32;
            let _ = self.read_slot(slot);
            hit
        } else {
            let slot = self.prp.apply(u64::from(page)) as u32;
            let buf = self.read_slot(slot);
            self.cache.insert(page, buf.clone());
            buf
        }
    }
}

impl ObliviousStore for ShuffledStore {
    fn num_pages(&self) -> u32 {
        self.plain.num_pages()
    }

    fn fetch(&mut self, page: u32) -> Result<PageBuf> {
        let n = self.plain.num_pages();
        if page >= n {
            return Err(StorageError::PageOutOfRange { page, pages: n }.into());
        }
        let result = self.fetch_one(page);
        self.fetches_this_epoch += 1;
        if self.fetches_this_epoch >= self.epoch_len {
            self.reshuffle()?;
        }
        Ok(result)
    }

    /// A batch advances the store exactly as the same fetches issued one by
    /// one would (same cache evolution, same dummy consumption, reshuffles at
    /// the same points), but the epoch boundary is checked once per
    /// epoch-sized run instead of once per fetch.
    fn fetch_batch(&mut self, pages: &[u32], out: &mut [PageBuf]) -> Result<()> {
        assert_eq!(pages.len(), out.len(), "batch output length mismatch");
        let n = self.plain.num_pages();
        if let Some(&bad) = pages.iter().find(|&&p| p >= n) {
            return Err(StorageError::PageOutOfRange {
                page: bad,
                pages: n,
            }
            .into());
        }
        let mut i = 0usize;
        while i < pages.len() {
            let left_in_epoch = (self.epoch_len - self.fetches_this_epoch) as usize;
            let run = left_in_epoch.min(pages.len() - i);
            for k in i..i + run {
                out[k] = self.fetch_one(pages[k]);
            }
            self.fetches_this_epoch += run as u32;
            i += run;
            if self.fetches_this_epoch >= self.epoch_len {
                self.reshuffle()?;
            }
        }
        Ok(())
    }

    fn physical_log(&self) -> &[u32] {
        self.log.entries()
    }

    fn log_overflow(&self) -> Option<LogOverflow> {
        self.log.overflow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privpath_storage::DEFAULT_PAGE_SIZE;

    fn make_file(pages: u32) -> MemFile {
        let mut f = MemFile::empty(DEFAULT_PAGE_SIZE);
        for p in 0..pages {
            let mut page = PageBuf::zeroed(DEFAULT_PAGE_SIZE);
            page.as_mut_slice()[..4].copy_from_slice(&p.to_le_bytes());
            f.push_page(page);
        }
        f
    }

    fn page_tag(p: &PageBuf) -> u32 {
        u32::from_le_bytes(p.as_slice()[..4].try_into().unwrap())
    }

    #[test]
    fn linear_scan_returns_right_page_and_scans_everything() {
        let mut s = LinearScanStore::new(make_file(10));
        let p = s.fetch(7).unwrap();
        assert_eq!(page_tag(&p), 7);
        assert_eq!(s.physical_log().len(), 10);
        let p = s.fetch(0).unwrap();
        assert_eq!(page_tag(&p), 0);
        assert_eq!(s.physical_log().len(), 20);
        assert!(s.fetch(10).is_err());
    }

    #[test]
    fn linear_scan_log_is_query_independent() {
        let mut a = LinearScanStore::new(make_file(6));
        let mut b = LinearScanStore::new(make_file(6));
        a.fetch(0).unwrap();
        a.fetch(0).unwrap();
        b.fetch(5).unwrap();
        b.fetch(3).unwrap();
        assert_eq!(a.physical_log(), b.physical_log());
    }

    #[test]
    fn linear_scan_batch_is_one_pass() {
        let mut batched = LinearScanStore::new(make_file(10));
        let mut sequential = LinearScanStore::new(make_file(10));
        let pages = [7u32, 0, 7, 9];
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); pages.len()];
        batched.fetch_batch(&pages, &mut out).unwrap();
        for (&p, buf) in pages.iter().zip(&out) {
            assert_eq!(page_tag(buf), p);
            assert_eq!(buf, &sequential.fetch(p).unwrap());
        }
        // the whole round cost one scan (N reads), not one scan per page
        assert_eq!(batched.physical_log().len(), 10);
        assert_eq!(sequential.physical_log().len(), 4 * 10);
        assert_eq!(batched.physical_log(), &(0..10).collect::<Vec<_>>()[..]);
        // out-of-range request fails the whole batch without a partial scan
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE)];
        assert!(batched.fetch_batch(&[10], &mut out).is_err());
        assert_eq!(batched.physical_log().len(), 10);
    }

    #[test]
    fn shuffled_batch_matches_sequential_state_evolution() {
        // Batches split arbitrarily across epoch boundaries must leave the
        // store in exactly the state the same fetches issued one by one do.
        let requests: Vec<u32> = (0..40u32).map(|i| (i * 13 + 2) % 16).collect();
        let mut sequential = ShuffledStore::new(make_file(16), 7);
        let seq_pages: Vec<PageBuf> = requests
            .iter()
            .map(|&p| sequential.fetch(p).unwrap())
            .collect();
        for split in [1usize, 3, 4, 7, 40] {
            let mut batched = ShuffledStore::new(make_file(16), 7);
            let mut got = Vec::new();
            for chunk in requests.chunks(split) {
                let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); chunk.len()];
                batched.fetch_batch(chunk, &mut out).unwrap();
                got.extend(out);
            }
            assert_eq!(got, seq_pages, "contents differ at split {split}");
            assert_eq!(
                batched.physical_log(),
                sequential.physical_log(),
                "physical access sequence differs at split {split}"
            );
            assert_eq!(batched.reshuffles(), sequential.reshuffles());
        }
    }

    #[test]
    fn default_batch_impl_is_the_sequential_loop() {
        // A store that only implements `fetch` still serves batches.
        struct Minimal(LinearScanStore);
        impl ObliviousStore for Minimal {
            fn num_pages(&self) -> u32 {
                self.0.num_pages()
            }
            fn fetch(&mut self, page: u32) -> Result<PageBuf> {
                self.0.fetch(page)
            }
            fn physical_log(&self) -> &[u32] {
                self.0.physical_log()
            }
        }
        let mut s = Minimal(LinearScanStore::new(make_file(6)));
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 2];
        s.fetch_batch(&[5, 1], &mut out).unwrap();
        assert_eq!(page_tag(&out[0]), 5);
        assert_eq!(page_tag(&out[1]), 1);
        assert_eq!(s.physical_log().len(), 12, "two sequential scans");
    }

    #[test]
    fn lane_kernel_matches_pr3_reference_path() {
        // The streamed lane-select batch and the PR 3 sorted-cursor copy
        // path must be bit-identical in answers AND in log evolution, round
        // after round on the same store.
        let mut kernel = LinearScanStore::new(make_file(70));
        let mut reference = LinearScanStore::new(make_file(70));
        for round in 0..6u32 {
            let pages: Vec<u32> = (0..5).map(|i| (round * 17 + i * 13) % 70).collect();
            let mut a = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); pages.len()];
            let mut b = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); pages.len()];
            kernel.fetch_batch(&pages, &mut a).unwrap();
            reference.fetch_batch_reference(&pages, &mut b).unwrap();
            assert_eq!(a, b, "round {round}");
            assert_eq!(kernel.physical_log(), reference.physical_log());
        }
        assert!(kernel.log_overflow().is_none());
    }

    #[test]
    fn fetch_reuses_scratch_and_stays_a_full_scan() {
        // Satellite: the single fetch used to allocate a fresh page buffer
        // for every scanned page; it is now the k = 1 batch. Same full-scan
        // log, same answer.
        let mut s = LinearScanStore::new(make_file(12));
        let p = s.fetch(11).unwrap();
        assert_eq!(page_tag(&p), 11);
        assert_eq!(s.physical_log(), &(0..12).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn physical_log_caps_with_typed_overflow() {
        let mut s = LinearScanStore::new(make_file(10)).with_log_cap(25);
        s.fetch(3).unwrap(); // 10 entries
        s.fetch(4).unwrap(); // 20 entries
        assert!(s.log_overflow().is_none());
        s.fetch(5).unwrap(); // hits the cap at 25, drops 5
        assert_eq!(s.physical_log().len(), 25);
        let ovf = s.log_overflow().expect("cap was hit");
        assert_eq!(
            ovf,
            LogOverflow {
                cap: 25,
                dropped: 5
            }
        );
        // the recorded prefix is still the honest scan prefix
        assert_eq!(&s.physical_log()[20..], &[0, 1, 2, 3, 4]);
        // answers are unaffected by the log bound
        assert_eq!(page_tag(&s.fetch(7).unwrap()), 7);
        assert_eq!(s.log_overflow().unwrap().dropped, 15);

        let mut sh = ShuffledStore::new(make_file(16), 3).with_log_cap(2);
        for i in 0..8 {
            sh.fetch(i % 16).unwrap();
        }
        assert_eq!(sh.physical_log().len(), 2);
        assert_eq!(
            sh.log_overflow().unwrap(),
            LogOverflow { cap: 2, dropped: 6 }
        );
    }

    #[test]
    fn shuffled_store_returns_correct_pages() {
        let mut s = ShuffledStore::new(make_file(50), 99);
        for q in [3u32, 17, 3, 49, 0, 17, 17, 25] {
            let p = s.fetch(q).unwrap();
            assert_eq!(page_tag(&p), q, "wrong content for logical page {q}");
        }
        assert!(s.fetch(50).is_err());
    }

    #[test]
    fn shuffled_store_one_physical_read_per_fetch() {
        let mut s = ShuffledStore::new(make_file(30), 5);
        for q in [1u32, 1, 1, 1, 2] {
            s.fetch(q).unwrap();
        }
        assert_eq!(s.physical_log().len(), 5);
    }

    #[test]
    fn physical_reads_are_distinct_within_epoch() {
        let mut s = ShuffledStore::new(make_file(100), 31);
        let epoch = s.epoch_len() as usize;
        // hammer a single hot page — worst case for naive schemes
        for _ in 0..epoch {
            s.fetch(42).unwrap();
        }
        let log = &s.physical_log()[..epoch];
        let distinct: std::collections::HashSet<_> = log.iter().collect();
        assert_eq!(
            distinct.len(),
            epoch,
            "repeat physical slot within an epoch leaks"
        );
    }

    #[test]
    fn reshuffle_happens_every_epoch() {
        let mut s = ShuffledStore::new(make_file(16), 7);
        let epoch = s.epoch_len(); // 4
        assert_eq!(s.reshuffles(), 1);
        for i in 0..(3 * epoch) {
            s.fetch(i % 16).unwrap();
        }
        assert_eq!(s.reshuffles(), 4);
        // content still correct after reshuffles
        for q in 0..16 {
            assert_eq!(page_tag(&s.fetch(q).unwrap()), q);
        }
    }

    #[test]
    fn hot_and_cold_workloads_have_same_log_length() {
        let mut hot = ShuffledStore::new(make_file(64), 1);
        let mut cold = ShuffledStore::new(make_file(64), 1);
        for i in 0..32u32 {
            hot.fetch(7).unwrap();
            cold.fetch(i).unwrap();
        }
        assert_eq!(hot.physical_log().len(), cold.physical_log().len());
        // both logs consist of distinct slots within each epoch
        let epoch = hot.epoch_len() as usize;
        for log in [hot.physical_log(), cold.physical_log()] {
            for chunk in log.chunks(epoch) {
                let distinct: std::collections::HashSet<_> = chunk.iter().collect();
                assert_eq!(distinct.len(), chunk.len());
            }
        }
    }

    #[test]
    fn single_page_file() {
        let mut s = ShuffledStore::new(make_file(1), 3);
        for _ in 0..5 {
            assert_eq!(page_tag(&s.fetch(0).unwrap()), 0);
        }
    }
}
