//! The client/server trust boundary as a type.
//!
//! The paper's protocol is client/server: the client issues PIR rounds over
//! a network link and the server must learn nothing beyond the fixed plan
//! from what crosses the wire. [`Transport`] reifies that boundary — a
//! [`crate::PirSession`] performs **all** of its accounting (meter, trace,
//! rounds) on the client side of the trait and asks the transport only to
//! *serve*:
//!
//! * [`InProc`] — the zero-cost reference path: requests go straight into
//!   the shared [`PirServer`] by reference, exactly as every caller did
//!   before the boundary existed. One heap-free virtual call per round.
//! * [`crate::wire::WireChannel`] — the real boundary: every request is
//!   serialized into a versioned binary frame, crosses a byte channel into
//!   the server loop thread (see [`crate::wire::ServerFront`]), and the
//!   response frames carry the pages back.
//!
//! Both transports expose the same public metadata (the [`SystemSpec`] and
//! per-file page counts — everything in them is published to every client
//! anyway), so the client computes bit-identical simulated costs no matter
//! which side of a wire the pages come from. The differential suite in
//! `tests/leakage.rs` holds wire and in-process execution observably equal
//! for every scheme.

use crate::server::{FileId, PirServer};
use crate::spec::SystemSpec;
use crate::Result;
use privpath_storage::PageBuf;

/// Something that can hand out a [`PirServer`] to serve from. Implemented
/// for `PirServer` itself, references, and `Arc`s — and by the core crate
/// for its built `Database`, so a server front can own the whole artifact.
pub trait ServeHost {
    /// The PIR server hosting the database files.
    fn pir_server(&self) -> &PirServer;
}

impl ServeHost for PirServer {
    fn pir_server(&self) -> &PirServer {
        self
    }
}

impl<T: ServeHost + ?Sized> ServeHost for &T {
    fn pir_server(&self) -> &PirServer {
        (**self).pir_server()
    }
}

impl<T: ServeHost + ?Sized> ServeHost for std::sync::Arc<T> {
    fn pir_server(&self) -> &PirServer {
        (**self).pir_server()
    }
}

/// A provider of the *current* database generation for a hot-swappable
/// server front ([`crate::wire::ServerFront::spawn_swappable`]).
///
/// Implementors own an atomically-swappable `(generation id, host)` pair:
/// ids start at 1 and only ever grow, and a published generation's host is
/// immutable (swapping means publishing a *new* pair, never mutating the
/// old one — sessions pinned to an old generation keep serving from it
/// until they drain). The core crate's `DbRegistry` is the production
/// implementor: it runs background rebuilds and publishes the result here.
pub trait GenerationSource: Send + Sync {
    /// The current generation: its id and the host serving it. Called by
    /// the front loop at client connect and at each `SessionOpen` on a
    /// channel with no open session — it must be cheap (a lock and two
    /// clones, not a rebuild).
    fn current_generation(&self) -> (u64, std::sync::Arc<dyn ServeHost + Send + Sync>);
}

/// The degenerate single-generation source wrapping a static host: always
/// generation 1. This is what [`crate::wire::ServerFront::spawn`] serves
/// from, so legacy callers get hot-swap-shaped plumbing at zero cost.
pub struct StaticSource<H: ServeHost + Send + Sync + 'static>(std::sync::Arc<H>);

impl<H: ServeHost + Send + Sync + 'static> StaticSource<H> {
    /// Wraps `host` as a never-swapping generation-1 source.
    pub fn new(host: H) -> Self {
        StaticSource(std::sync::Arc::new(host))
    }
}

impl<H: ServeHost + Send + Sync + 'static> GenerationSource for StaticSource<H> {
    fn current_generation(&self) -> (u64, std::sync::Arc<dyn ServeHost + Send + Sync>) {
        let host: std::sync::Arc<dyn ServeHost + Send + Sync> = self.0.clone();
        (1, host)
    }
}

/// One client's link to the server. All methods are client-side verbs; the
/// transport never does accounting — that stays in the
/// [`crate::PirSession`] on the near side of the boundary.
pub trait Transport {
    /// The server's published [`SystemSpec`] (Table 2 constants). Public by
    /// construction; the client prices every fetch from it.
    fn spec(&self) -> &SystemSpec;

    /// Page count of file `f` — public metadata (it is in every client's
    /// header) the cost model needs.
    fn file_pages(&self, f: FileId) -> Result<u32>;

    /// Announces a new query (the per-query "connection establishment" whose
    /// RTT the meter charges at round 1). On the wire this is an explicit
    /// `QueryOpen` frame, so the server can delimit and count queries
    /// per session; in-process it is a no-op.
    fn begin_query(&mut self) -> Result<()>;

    /// Serves one request/response exchange of protocol round `round`: all
    /// of `requests` in one pass, `out[i]` receiving the page of
    /// `requests[i]`. A round executed in stages (e.g. the HY continuation
    /// walk) calls this several times with the same `round` number — each
    /// call is one wire exchange. An empty request list still crosses the
    /// wire (it is how a fetch-free round is observed by the server).
    fn serve_round(
        &mut self,
        round: u32,
        requests: &[(FileId, u32)],
        out: &mut [PageBuf],
    ) -> Result<()>;

    /// Downloads file `f` in full (the header, which every client fetches
    /// whole — no PIR involved).
    fn download(&mut self, f: FileId) -> Result<Vec<u8>>;

    /// Closes the link (sends the close frame on a wire; no-op in-process).
    fn close(&mut self) -> Result<()>;

    /// Retransmissions this transport has performed so far. A perfect link
    /// never retries; resilient transports ([`crate::wire::WireChannel`]
    /// under a [`crate::wire::RetryPolicy`], [`crate::chaos::ChaosHost`])
    /// report their recovery work here. Deliberately **not** part of the
    /// [`crate::Meter`]: retry counts depend on the link, not the query, and
    /// the meter must stay bit-identical across clean and lossy links.
    fn retries(&self) -> u64 {
        0
    }
}

/// The in-process transport: direct calls into a shared [`PirServer`].
///
/// `H` is anything that can reach the server — `&PirServer`, an
/// `Arc<PirServer>`, or (via the core crate's `ServeHost` impl) an
/// `Arc<Database>`. The only state besides the host is the same-file run
/// scratch, kept so steady-state rounds stay allocation-free.
pub struct InProc<H: ServeHost> {
    host: H,
    run_pages: Vec<u32>,
}

impl<H: ServeHost> InProc<H> {
    /// A transport serving directly from `host`.
    pub fn new(host: H) -> Self {
        InProc {
            host,
            run_pages: Vec::new(),
        }
    }
}

impl<H: ServeHost> Transport for InProc<H> {
    fn spec(&self) -> &SystemSpec {
        self.host.pir_server().spec()
    }

    fn file_pages(&self, f: FileId) -> Result<u32> {
        self.host.pir_server().file_pages(f)
    }

    fn begin_query(&mut self) -> Result<()> {
        Ok(())
    }

    fn serve_round(
        &mut self,
        _round: u32,
        requests: &[(FileId, u32)],
        out: &mut [PageBuf],
    ) -> Result<()> {
        self.host
            .pir_server()
            .serve_requests(requests, &mut self.run_pages, out)
    }

    fn download(&mut self, f: FileId) -> Result<Vec<u8>> {
        self.host.pir_server().read_full(f)
    }

    fn close(&mut self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::PirMode;
    use privpath_storage::DEFAULT_PAGE_SIZE;

    fn server() -> PirServer {
        let mut f = privpath_storage::MemFile::empty(DEFAULT_PAGE_SIZE);
        for p in 0..8u32 {
            let mut page = PageBuf::zeroed(DEFAULT_PAGE_SIZE);
            page.as_mut_slice()[..4].copy_from_slice(&p.to_le_bytes());
            f.push_page(page);
        }
        let mut srv = PirServer::new(SystemSpec::default());
        srv.add_file("Fd", f, PirMode::CostOnly).unwrap();
        srv
    }

    #[test]
    fn inproc_serves_rounds_and_downloads() {
        let srv = server();
        let mut link = InProc::new(&srv);
        assert_eq!(link.file_pages(FileId(0)).unwrap(), 8);
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 2];
        link.serve_round(2, &[(FileId(0), 3), (FileId(0), 5)], &mut out)
            .unwrap();
        assert_eq!(
            u32::from_le_bytes(out[0].as_slice()[..4].try_into().unwrap()),
            3
        );
        assert_eq!(
            u32::from_le_bytes(out[1].as_slice()[..4].try_into().unwrap()),
            5
        );
        let bytes = link.download(FileId(0)).unwrap();
        assert_eq!(bytes.len(), 8 * DEFAULT_PAGE_SIZE);
        link.begin_query().unwrap();
        link.close().unwrap();
    }

    #[test]
    fn inproc_works_through_arc_hosts() {
        let srv = std::sync::Arc::new(server());
        let mut link = InProc::new(std::sync::Arc::clone(&srv));
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE)];
        link.serve_round(1, &[(FileId(0), 7)], &mut out).unwrap();
        assert_eq!(
            u32::from_le_bytes(out[0].as_slice()[..4].try_into().unwrap()),
            7
        );
    }
}
