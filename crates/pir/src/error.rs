//! PIR-layer errors.

use std::fmt;

/// Errors raised by the PIR substrate.
#[derive(Debug)]
pub enum PirError {
    /// The file exceeds what the SCP's memory can support
    /// (`N > (mem_pages / c)²`, §3.2).
    FileTooLarge {
        /// Pages in the offending file.
        pages: u64,
        /// Maximum supported page count.
        max_pages: u64,
    },
    /// Unknown file id.
    UnknownFile(u16),
    /// Underlying storage failure.
    Storage(privpath_storage::StorageError),
    /// Wire-transport failure: a malformed / unsupported frame, a protocol
    /// violation reported by the server, or a severed channel.
    Transport(String),
}

impl fmt::Display for PirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PirError::FileTooLarge { pages, max_pages } => write!(
                f,
                "file of {pages} pages exceeds PIR limit of {max_pages} pages (SCP memory bound)"
            ),
            PirError::UnknownFile(id) => write!(f, "unknown PIR file id {id}"),
            PirError::Storage(e) => write!(f, "storage error: {e}"),
            PirError::Transport(msg) => write!(f, "transport error: {msg}"),
        }
    }
}

impl std::error::Error for PirError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PirError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<privpath_storage::StorageError> for PirError {
    fn from(e: privpath_storage::StorageError) -> Self {
        PirError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = PirError::FileTooLarge {
            pages: 10,
            max_pages: 5,
        };
        assert!(e.to_string().contains("10 pages"));
        assert!(PirError::UnknownFile(3).to_string().contains('3'));
    }

    #[test]
    fn storage_conversion() {
        let s = privpath_storage::StorageError::PageOutOfRange { page: 1, pages: 1 };
        let e: PirError = s.into();
        assert!(matches!(e, PirError::Storage(_)));
    }
}
