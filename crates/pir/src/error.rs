//! PIR-layer errors.

use std::fmt;

/// Errors raised by the PIR substrate.
///
/// The wire layer splits failures into two classes: **retryable** link
/// faults ([`PirError::Timeout`], [`PirError::LinkDown`],
/// [`PirError::CorruptFrame`], and server-reported transient serve
/// failures) that a [`crate::wire::RetryPolicy`] may re-issue, and
/// **fatal** faults (protocol violations, severed channels, poisoned
/// state) that no retry can fix. [`PirError::is_retryable`] is the
/// classifier; when a retry budget runs out the last retryable error is
/// wrapped in [`PirError::Exhausted`] so callers can distinguish "the
/// link never recovered" from "the protocol was violated".
#[derive(Debug)]
pub enum PirError {
    /// The file exceeds what the SCP's memory can support
    /// (`N > (mem_pages / c)²`, §3.2).
    FileTooLarge {
        /// Pages in the offending file.
        pages: u64,
        /// Maximum supported page count.
        max_pages: u64,
    },
    /// Unknown file id.
    UnknownFile(u16),
    /// Underlying storage failure.
    Storage(privpath_storage::StorageError),
    /// Wire-transport failure: a malformed / unsupported frame, a protocol
    /// violation reported by the server, or a severed channel. Fatal.
    Transport(String),
    /// No response arrived within the attempt timeout. Retryable — the
    /// request (or its response) was lost in flight.
    Timeout(String),
    /// The link refused to carry the frame (an outage window, a dead
    /// interface). Retryable — distinct from a severed channel, which is
    /// [`PirError::Transport`] and fatal.
    LinkDown(String),
    /// A frame arrived but failed its CRC / structural validation.
    /// Retryable — re-issuing the request makes the server re-serve its
    /// cached reply bytes.
    CorruptFrame(String),
    /// The server reported a *transient* storage failure (an interrupted
    /// disk read) while serving the request. Retryable — the server did not
    /// cache the failure as this sequence number's reply, so a retransmit
    /// re-executes the serve against the (possibly recovered) disk.
    TransientIo(String),
    /// Server-side state (an oblivious store lock) was poisoned by an
    /// earlier panic; the file can no longer be served. Fatal for this
    /// file, but the server loop and other files stay live.
    Poisoned(String),
    /// A retry budget ran out. Wraps the last retryable error observed;
    /// fatal (the caller's policy already spent every allowed attempt).
    Exhausted {
        /// Attempts performed (including the first).
        attempts: u32,
        /// The final retryable failure.
        last: Box<PirError>,
    },
    /// The server swapped database generations between the client's last
    /// session and this handshake: the client expected to reconnect to
    /// generation `held` but the server now serves `current`. Retryable in
    /// the hot-swap sense — the request itself was served correctly, the
    /// client just has to refresh its expectation (re-plan against the new
    /// generation) and open a fresh session. Never produced inside the
    /// attempt loop, so classifying it retryable cannot spin a
    /// [`crate::wire::RetryPolicy`].
    StaleGeneration {
        /// The generation id the client was pinned to.
        held: u64,
        /// The generation id the server is now publishing.
        current: u64,
    },
}

impl PirError {
    /// True if re-issuing the failed request may succeed: the failure was a
    /// transient link fault, not a protocol violation or severed channel.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            PirError::Timeout(_)
                | PirError::LinkDown(_)
                | PirError::CorruptFrame(_)
                | PirError::TransientIo(_)
                | PirError::StaleGeneration { .. }
        )
    }

    /// True when this failure is a transient storage fault — the serve may
    /// be re-executed against the same store and plausibly succeed. The
    /// server front uses this to decide between the retryable
    /// `ERR_SERVE_TRANSIENT` wire code (serve not cached, retransmit
    /// re-executes) and the fatal `ERR_SERVE`.
    pub fn is_transient_storage(&self) -> bool {
        matches!(self, PirError::Storage(se) if se.is_transient())
    }

    /// True if this failure is a spent retry budget (the typed outcome a
    /// resilient client reports after its policy gives up).
    pub fn is_retry_exhausted(&self) -> bool {
        matches!(self, PirError::Exhausted { .. })
    }
}

impl fmt::Display for PirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PirError::FileTooLarge { pages, max_pages } => write!(
                f,
                "file of {pages} pages exceeds PIR limit of {max_pages} pages (SCP memory bound)"
            ),
            PirError::UnknownFile(id) => write!(f, "unknown PIR file id {id}"),
            PirError::Storage(e) => write!(f, "storage error: {e}"),
            PirError::Transport(msg) => write!(f, "transport error: {msg}"),
            PirError::Timeout(msg) => write!(f, "timeout: {msg}"),
            PirError::LinkDown(msg) => write!(f, "link down: {msg}"),
            PirError::CorruptFrame(msg) => write!(f, "corrupt frame: {msg}"),
            PirError::TransientIo(msg) => write!(f, "transient i/o: {msg}"),
            PirError::Poisoned(msg) => write!(f, "poisoned server state: {msg}"),
            PirError::Exhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
            PirError::StaleGeneration { held, current } => write!(
                f,
                "stale generation: client pinned to generation {held} but server now serves {current}"
            ),
        }
    }
}

impl std::error::Error for PirError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PirError::Storage(e) => Some(e),
            PirError::Exhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<privpath_storage::StorageError> for PirError {
    fn from(e: privpath_storage::StorageError) -> Self {
        PirError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = PirError::FileTooLarge {
            pages: 10,
            max_pages: 5,
        };
        assert!(e.to_string().contains("10 pages"));
        assert!(PirError::UnknownFile(3).to_string().contains('3'));
    }

    #[test]
    fn retryable_taxonomy() {
        assert!(PirError::Timeout("t".into()).is_retryable());
        assert!(PirError::LinkDown("d".into()).is_retryable());
        assert!(PirError::CorruptFrame("c".into()).is_retryable());
        assert!(PirError::TransientIo("i".into()).is_retryable());
        assert!(!PirError::Transport("x".into()).is_retryable());
        // storage transience classifier
        let transient = PirError::Storage(privpath_storage::StorageError::Io(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "flaky",
        )));
        assert!(transient.is_transient_storage());
        assert!(
            !transient.is_retryable(),
            "server-side only — the client retries via ERR_SERVE_TRANSIENT"
        );
        let fatal = PirError::Storage(privpath_storage::StorageError::PageCorrupt {
            file: "Fd".into(),
            page: 1,
            expected: 1,
            actual: 2,
        });
        assert!(!fatal.is_transient_storage());
        assert!(!PirError::Poisoned("p".into()).is_retryable());
        let e = PirError::Exhausted {
            attempts: 3,
            last: Box::new(PirError::Timeout("t".into())),
        };
        assert!(!e.is_retryable());
        assert!(e.is_retry_exhausted());
        assert!(e.to_string().contains("3 attempts"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn stale_generation_is_retryable_and_names_both_generations() {
        let e = PirError::StaleGeneration {
            held: 2,
            current: 5,
        };
        assert!(e.is_retryable());
        assert!(!e.is_retry_exhausted());
        let msg = e.to_string();
        assert!(msg.contains("generation 2"));
        assert!(msg.contains('5'));
    }

    #[test]
    fn storage_conversion() {
        let s = privpath_storage::StorageError::PageOutOfRange { page: 1, pages: 1 };
        let e: PirError = s.into();
        assert!(matches!(e, PirError::Storage(_)));
    }
}
