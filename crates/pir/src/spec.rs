//! System specification — the constants of Table 2 plus the PIR protocol's
//! structural limits (§3.2).

/// Hardware / link constants driving the simulated costs. Defaults are the
/// paper's Table 2 values (Seagate 7200rpm disk, IBM 4764 SCP, 3G client
/// link).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// Disk page size in bytes (Table 2: 4 KByte).
    pub page_size: usize,
    /// Disk seek time in seconds (Table 2: 11 ms).
    pub disk_seek_s: f64,
    /// Disk sequential read/write rate in bytes/s (Table 2: 125 MByte/s).
    pub disk_rate_bps: f64,
    /// SCP read/write rate in bytes/s (Table 2: 80 MByte/s).
    pub scp_io_rate_bps: f64,
    /// SCP encryption/decryption rate in bytes/s (Table 2: 10 MByte/s).
    pub crypto_rate_bps: f64,
    /// Client link round-trip time in seconds (Table 2: 700 ms).
    pub comm_rtt_s: f64,
    /// Client link bandwidth in bytes/s (Table 2: 384 kbit/s = 48 KByte/s).
    pub comm_rate_bps: f64,
    /// SCP RAM in bytes (IBM 4764: 32 MByte).
    pub scp_memory_bytes: u64,
    /// The protocol of [36] needs at least `c·√N` pages of SCP memory for an
    /// N-page file; `c` is "a parameter with a typical value of 10" (§3.2).
    pub scp_mem_factor: f64,
    /// Fixed page-operations per retrieval (session/request overhead) in the
    /// cost model — calibration constant (DESIGN.md §2).
    pub pir_fixed_ops: f64,
    /// Page-operations per `log2(N)²` in the cost model — calibrated so a
    /// 1 GB file costs ≈1 s per retrieval, the paper's IBM 4764 anchor.
    pub pir_ops_per_log2sq: f64,
}

impl Default for SystemSpec {
    fn default() -> Self {
        SystemSpec {
            page_size: 4096,
            disk_seek_s: 0.011,
            disk_rate_bps: 125.0e6,
            scp_io_rate_bps: 80.0e6,
            crypto_rate_bps: 10.0e6,
            comm_rtt_s: 0.700,
            comm_rate_bps: 48.0 * 1024.0,
            scp_memory_bytes: 32 << 20,
            scp_mem_factor: 10.0,
            pir_fixed_ops: 200.0,
            pir_ops_per_log2sq: 2.75,
        }
    }
}

impl SystemSpec {
    /// Maximum number of pages per file the PIR interface supports: the SCP
    /// holds `c·√N` pages, so `N ≤ (mem_pages / c)²`. With the Table 2
    /// defaults this is ≈670 k pages ≈ 2.6 GB, matching the paper's "may
    /// support files up to 2.5 GByte".
    pub fn max_file_pages(&self) -> u64 {
        let mem_pages = self.scp_memory_bytes as f64 / self.page_size as f64;
        let root = mem_pages / self.scp_mem_factor;
        (root * root).floor() as u64
    }

    /// Maximum file size in bytes under [`SystemSpec::max_file_pages`].
    pub fn max_file_bytes(&self) -> u64 {
        self.max_file_pages() * self.page_size as u64
    }

    /// Seconds to push `bytes` through the client link (excluding RTT).
    pub fn transfer_s(&self, bytes: u64) -> f64 {
        bytes as f64 / self.comm_rate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let s = SystemSpec::default();
        assert_eq!(s.page_size, 4096);
        assert_eq!(s.disk_seek_s, 0.011);
        assert_eq!(s.comm_rate_bps, 49152.0);
        assert_eq!(s.scp_memory_bytes, 33_554_432);
    }

    #[test]
    fn file_limit_matches_paper_claim() {
        let s = SystemSpec::default();
        // (8192 / 10)^2 = 671088.64 -> 671088 pages ≈ 2.56 GB
        assert_eq!(s.max_file_pages(), 671_088);
        let gb = s.max_file_bytes() as f64 / (1u64 << 30) as f64;
        assert!((2.4..2.7).contains(&gb), "limit {gb} GB should be ~2.5 GB");
    }

    #[test]
    fn transfer_time() {
        let s = SystemSpec::default();
        // one page over 48 KB/s ≈ 83 ms
        let t = s.transfer_s(4096);
        assert!((t - 0.0833).abs() < 0.001, "got {t}");
    }

    #[test]
    fn smaller_scp_means_smaller_files() {
        let s = SystemSpec {
            scp_memory_bytes: 16 << 20,
            ..Default::default()
        };
        assert!(s.max_file_pages() < SystemSpec::default().max_file_pages());
    }
}
