//! Keyed pseudo-random permutation over `[0, domain)`.
//!
//! The shuffled oblivious store needs a permutation the SCP can evaluate
//! point-wise without materializing it. We use a 4-round balanced Feistel
//! network over the smallest even bit-width covering the domain, with
//! cycle-walking to stay inside `[0, domain)`. The round function is a
//! splitmix64-style mix — *not* cryptographically strong, which is fine for a
//! simulation whose security argument delegates to [36] (DESIGN.md §2).

/// A keyed permutation over `0..domain`.
#[derive(Debug, Clone)]
pub struct Prp {
    domain: u64,
    half_bits: u32,
    keys: [u64; 4],
}

fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Prp {
    /// Creates a permutation over `0..domain` keyed by `key`.
    ///
    /// # Panics
    /// Panics if `domain == 0`.
    pub fn new(domain: u64, key: u64) -> Prp {
        assert!(domain > 0, "PRP domain must be nonempty");
        // smallest even bit-width 2h with 2^(2h) >= domain
        let bits = 64 - (domain - 1).max(1).leading_zeros();
        let half_bits = bits.div_ceil(2).max(1);
        let keys = [
            mix(key ^ 0xa076_1d64_78bd_642f),
            mix(key ^ 0xe703_7ed1_a0b4_28db),
            mix(key ^ 0x8ebc_6af0_9c88_c6e3),
            mix(key ^ 0x5899_65cc_7537_4cc3),
        ];
        Prp {
            domain,
            half_bits,
            keys,
        }
    }

    fn feistel(&self, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut left = x >> self.half_bits;
        let mut right = x & mask;
        for &k in &self.keys {
            let f = mix(right ^ k) & mask;
            let new_left = right;
            right = left ^ f;
            left = new_left;
        }
        (left << self.half_bits) | right
    }

    /// Maps `x` to its permuted position (cycle-walking until the image lands
    /// inside the domain).
    ///
    /// # Panics
    /// Panics if `x >= domain`.
    pub fn apply(&self, x: u64) -> u64 {
        assert!(
            x < self.domain,
            "PRP input {x} outside domain {}",
            self.domain
        );
        let mut y = self.feistel(x);
        while y >= self.domain {
            y = self.feistel(y);
        }
        y
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn is_a_permutation() {
        for domain in [1u64, 2, 7, 64, 100, 1000] {
            let prp = Prp::new(domain, 0xdead_beef);
            let mut seen = vec![false; domain as usize];
            for x in 0..domain {
                let y = prp.apply(x);
                assert!(y < domain);
                assert!(!seen[y as usize], "collision at {y} (domain {domain})");
                seen[y as usize] = true;
            }
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = Prp::new(1000, 1);
        let b = Prp::new(1000, 2);
        let same = (0..1000).filter(|&x| a.apply(x) == b.apply(x)).count();
        assert!(same < 50, "{same} fixed pairs between independent keys");
    }

    #[test]
    fn deterministic() {
        let a = Prp::new(512, 99);
        let b = Prp::new(512, 99);
        for x in 0..512 {
            assert_eq!(a.apply(x), b.apply(x));
        }
    }

    #[test]
    fn spreads_sequential_inputs() {
        // Consecutive inputs should not map to consecutive outputs.
        let prp = Prp::new(4096, 7);
        let mut adjacent = 0;
        for x in 0..4095u64 {
            if prp.apply(x).abs_diff(prp.apply(x + 1)) == 1 {
                adjacent += 1;
            }
        }
        assert!(adjacent < 40, "{adjacent} adjacent mappings");
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn rejects_out_of_domain() {
        Prp::new(10, 0).apply(10);
    }

    proptest! {
        #[test]
        fn permutation_property(domain in 1u64..5000, key in any::<u64>()) {
            let prp = Prp::new(domain, key);
            let mut seen = std::collections::HashSet::new();
            // spot-check a sample; full check for small domains
            let step = (domain / 64).max(1);
            for x in (0..domain).step_by(step as usize) {
                let y = prp.apply(x);
                prop_assert!(y < domain);
                prop_assert!(seen.insert(y));
            }
        }
    }
}
