//! The PIR retrieval cost model.
//!
//! [36] retrieves a page with amortized `O(log² N)` computation, where `N` is
//! the number of pages in the accessed file; "a real implementation on IBM
//! 4764 takes around one second to retrieve a page from a Gigabyte file"
//! (§3.2). We model a retrieval as
//!
//! ```text
//! ops(N) = pir_fixed_ops + pir_ops_per_log2sq · log2(N)²
//! ```
//!
//! amortized page operations, where each operation pushes one page through
//! the disk (transfer), the SCP I/O bus (read + write), and the SCP crypto
//! engine (decrypt + re-encrypt) at the Table 2 rates — the crypto engine's
//! 10 MB/s dominates, which is why SCP heat dissipation bounds the whole
//! system (§3.2). The two calibration constants are fixed so the 1 GB anchor
//! holds; the resulting component split reproduces Table 3 closely (see
//! EXPERIMENTS.md).

use crate::spec::SystemSpec;

/// Cost of one (or several) PIR page retrievals, split by subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// Disk transfer time (s).
    pub disk_s: f64,
    /// SCP I/O time (s).
    pub scp_io_s: f64,
    /// SCP encryption/decryption time (s).
    pub crypto_s: f64,
}

impl CostBreakdown {
    /// Total seconds.
    pub fn total_s(&self) -> f64 {
        self.disk_s + self.scp_io_s + self.crypto_s
    }

    /// Component-wise accumulation.
    pub fn add(&mut self, other: CostBreakdown) {
        self.disk_s += other.disk_s;
        self.scp_io_s += other.scp_io_s;
        self.crypto_s += other.crypto_s;
    }
}

/// Amortized page-operations per retrieval from an `n_pages` file.
pub fn ops_per_retrieval(spec: &SystemSpec, n_pages: u32) -> f64 {
    let n = f64::from(n_pages.max(2));
    let lg = n.log2();
    spec.pir_fixed_ops + spec.pir_ops_per_log2sq * lg * lg
}

/// Cost of a single PIR retrieval from an `n_pages` file.
///
/// The cost depends only on `(spec, n_pages)`, so batched round execution
/// computes it once per file and accumulates it once per page of the batch —
/// the identical floating-point addition sequence as per-fetch execution,
/// which is what keeps batched and unbatched meters bit-for-bit equal.
pub fn retrieval_cost(spec: &SystemSpec, n_pages: u32) -> CostBreakdown {
    let ops = ops_per_retrieval(spec, n_pages);
    let page = spec.page_size as f64;
    CostBreakdown {
        // one transfer per op; seeks amortize away in the (mostly
        // sequential) reorganization passes
        disk_s: ops * (page / spec.disk_rate_bps),
        // page crosses the SCP bus twice (read + write back)
        scp_io_s: ops * (2.0 * page / spec.scp_io_rate_bps),
        // decrypt + re-encrypt
        crypto_s: ops * (2.0 * page / spec.crypto_rate_bps),
    }
}

/// Cost of a plain (non-private) page read — used by the OBF baseline and by
/// "unsecured" reference measurements: one seek plus one transfer.
pub fn plain_read_cost(spec: &SystemSpec, pages: u64) -> f64 {
    spec.disk_seek_s + pages as f64 * spec.page_size as f64 / spec.disk_rate_bps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_second_per_page_on_a_gigabyte_file() {
        // 1 GB / 4 KB = 262,144 pages — the paper's anchor (§3.2).
        let spec = SystemSpec::default();
        let t = retrieval_cost(&spec, 262_144).total_s();
        assert!(
            (0.9..1.15).contains(&t),
            "1 GB retrieval should be ~1 s, got {t:.3}"
        );
    }

    #[test]
    fn crypto_dominates() {
        let spec = SystemSpec::default();
        let c = retrieval_cost(&spec, 100_000);
        assert!(c.crypto_s > c.scp_io_s);
        assert!(c.crypto_s > c.disk_s);
        assert!(c.crypto_s / c.total_s() > 0.5);
    }

    #[test]
    fn cost_grows_polylogarithmically() {
        let spec = SystemSpec::default();
        let small = retrieval_cost(&spec, 1_000).total_s();
        let big = retrieval_cost(&spec, 1_000_000).total_s();
        assert!(big > small);
        // 1000x pages should be well under 1000x cost (polylog, not linear)
        assert!(big / small < 10.0, "ratio {:.2}", big / small);
    }

    #[test]
    fn tiny_files_still_cost_the_fixed_overhead() {
        let spec = SystemSpec::default();
        let t = retrieval_cost(&spec, 1).total_s();
        let fixed = spec.pir_fixed_ops
            * (spec.page_size as f64 / spec.disk_rate_bps
                + 2.0 * spec.page_size as f64 / spec.scp_io_rate_bps
                + 2.0 * spec.page_size as f64 / spec.crypto_rate_bps);
        assert!(t >= fixed);
    }

    #[test]
    fn breakdown_accumulates() {
        let spec = SystemSpec::default();
        let mut acc = CostBreakdown::default();
        let one = retrieval_cost(&spec, 4096);
        acc.add(one);
        acc.add(one);
        assert!((acc.total_s() - 2.0 * one.total_s()).abs() < 1e-12);
    }

    #[test]
    fn plain_read_is_much_cheaper() {
        let spec = SystemSpec::default();
        assert!(plain_read_cost(&spec, 1) < 0.05);
        assert!(plain_read_cost(&spec, 1) * 20.0 < retrieval_cost(&spec, 262_144).total_s());
    }
}
