//! Network-real serving: the wire protocol's frames over loopback TCP.
//!
//! [`TcpFront`] puts a [`std::net::TcpListener`] accept loop in front of a
//! [`ServerFront`]: every accepted connection gets a reader thread (length-
//! prefix framing off the socket, frames forwarded into the server loop)
//! and a writer thread (replies pumped back onto the socket), so the server
//! loop itself never blocks on a slow peer. [`TcpLink`] is the client half:
//! a [`FrameLink`] over a persistent connection, so the whole
//! retry/timeout/idempotent-replay machinery of [`WireChannel`] — and any
//! [`crate::chaos::ChaosLink`] fault injector — composes over a real socket
//! unchanged.
//!
//! Framing on the socket is an outer `u32 len` transport prefix around
//! each frame's bytes. The prefix looks redundant — a well-formed frame
//! already leads with its own length — but the [`FrameLink`] contract is
//! *message*-oriented, and fault injectors layered above the link
//! ([`crate::chaos::ChaosLink`]) legitimately hand it truncated or mangled
//! messages. Because the delimiter is written by the link itself, a
//! mangled message arrives intact as one mangled message, gets a typed
//! error frame, and is retried — instead of desyncing the byte stream and
//! killing the connection for good. A recv that times out mid-message
//! keeps the partial prefix buffered ([`TcpLink::pending`]) so the stream
//! never desyncs; an outer length that cannot be real (desync or hostile
//! peer) still kills the connection rather than risking an unbounded
//! allocation.
//!
//! Shutdown is a drain, not an abort: stop accepting, flush the server
//! loop's queued frames ([`ServerFront::shutdown`]), let each writer drain
//! the replies still buffered for its connection, then close the sockets —
//! live clients get their in-flight responses and observe a clean
//! disconnect on their *next* request.

use super::{
    FrameLink, FrontConfig, RetryPolicy, ServerFront, SessionStats, ToServer, WireChannel,
};
use crate::chaos::{ChaosLink, FaultPlan};
use crate::error::PirError;
use crate::transport::ServeHost;
use crate::Result;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hard cap on one frame read off a socket. Generous — a full-database
/// download fits — but bounded, so a desynced or hostile length prefix
/// cannot demand an unbounded allocation.
const MAX_TCP_FRAME_BYTES: usize = 1 << 30;

fn io_err(e: std::io::Error) -> PirError {
    PirError::Transport(format!("tcp: {e}"))
}

// ---------------------------------------------------------------- server

/// One bridged connection's handles, kept for the shutdown join.
struct Conn {
    stream: TcpStream,
    reader: JoinHandle<()>,
    writer: JoinHandle<()>,
}

/// A loopback TCP front end over a [`ServerFront`]: accept loop plus
/// per-connection reader/writer threads. See the module docs.
pub struct TcpFront {
    front: Option<Arc<ServerFront>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<Vec<Conn>>>,
}

impl TcpFront {
    /// Binds a listener on an ephemeral loopback port and spawns the server
    /// loop over `host` with default config.
    pub fn spawn<H: ServeHost + Send + Sync + 'static>(host: H) -> Result<TcpFront> {
        Self::spawn_with(host, FrontConfig::default())
    }

    /// Binds and spawns with explicit front-end knobs (coalescing window,
    /// chunked responses, idle eviction).
    pub fn spawn_with<H: ServeHost + Send + Sync + 'static>(
        host: H,
        cfg: FrontConfig,
    ) -> Result<TcpFront> {
        Self::over(ServerFront::spawn_with(host, cfg))
    }

    /// Binds and spawns over a hot-swappable
    /// [`crate::transport::GenerationSource`]: sessions opened after the
    /// source publishes a new generation serve from it, while open sessions
    /// drain on their pinned one
    /// (see [`ServerFront::spawn_swappable`]).
    pub fn spawn_swappable(
        source: Arc<dyn crate::transport::GenerationSource>,
        cfg: FrontConfig,
    ) -> Result<TcpFront> {
        Self::over(ServerFront::spawn_swappable(source, cfg))
    }

    /// Puts a TCP accept loop in front of an already-spawned [`ServerFront`].
    pub fn over(front: ServerFront) -> Result<TcpFront> {
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(io_err)?;
        let addr = listener.local_addr().map_err(io_err)?;
        let front = Arc::new(front);
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let front = Arc::clone(&front);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, front, stop))
        };
        Ok(TcpFront {
            front: Some(front),
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fronted [`ServerFront`] (accounting, observable streams).
    pub fn front(&self) -> &ServerFront {
        self.front.as_ref().expect("front present until shutdown")
    }

    /// Connects a new client over TCP and performs the session handshake.
    /// No retries ([`RetryPolicy::none`]).
    pub fn connect(&self) -> Result<WireChannel> {
        self.connect_with(RetryPolicy::none())
    }

    /// Connects with an explicit retry policy.
    pub fn connect_with(&self, policy: RetryPolicy) -> Result<WireChannel> {
        WireChannel::handshake(Box::new(TcpLink::connect(self.addr)?), policy)
    }

    /// Connects while holding a generation expectation: a handshake whose
    /// accept carries a different generation id fails with the typed
    /// retryable [`PirError::StaleGeneration`] (see
    /// [`super::ServerFront::connect_expecting`]).
    pub fn connect_expecting(&self, policy: RetryPolicy, expected: u64) -> Result<WireChannel> {
        WireChannel::handshake_expecting(
            Box::new(TcpLink::connect(self.addr)?),
            policy,
            Some(expected),
        )
    }

    /// Connects through a [`ChaosLink`] fault injector layered over the
    /// real socket: faults are injected client-side, above TCP, so the
    /// retry machinery is exercised end-to-end over the network path.
    pub fn connect_chaos(&self, plan: FaultPlan, policy: RetryPolicy) -> Result<WireChannel> {
        let link = ChaosLink::new(TcpLink::connect(self.addr)?, plan);
        WireChannel::handshake(Box::new(link), policy)
    }

    /// Snapshot of the per-session accounting table.
    pub fn session_stats(&self) -> BTreeMap<u64, SessionStats> {
        self.front().session_stats()
    }

    /// The recorded observable frame stream of one session.
    pub fn observed_stream(&self, session: u64) -> Option<Vec<u8>> {
        self.front().observed_stream(session)
    }

    /// Graceful drain: stop accepting, serve every frame already queued,
    /// flush each connection's buffered replies, close the sockets, and
    /// return the final session table. Live clients observe a clean
    /// disconnect on their next request instead of a hang.
    pub fn shutdown(mut self) -> BTreeMap<u64, SessionStats> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> BTreeMap<u64, SessionStats> {
        self.stop.store(true, Ordering::SeqCst);
        // wake the blocking accept with a throwaway connection
        let _ = TcpStream::connect(self.addr);
        let conns = self
            .accept
            .take()
            .map(|h| h.join().unwrap_or_default())
            .unwrap_or_default();
        let stats = match self.front.take() {
            Some(front) => match Arc::try_unwrap(front) {
                Ok(front) => front.shutdown(),
                // unreachable once the accept thread (the only other owner)
                // has been joined, but never panic in a shutdown path
                Err(front) => front.session_stats(),
            },
            None => BTreeMap::new(),
        };
        // The front's loop has exited, dropping every response sender: each
        // writer drains what was still buffered, flushes, and shuts its
        // socket down, which EOFs the matching reader.
        for c in conns {
            let _ = c.writer.join();
            let _ = c.stream.shutdown(Shutdown::Both);
            let _ = c.reader.join();
        }
        stats
    }
}

impl Drop for TcpFront {
    fn drop(&mut self) {
        if self.front.is_some() || self.accept.is_some() {
            let _ = self.shutdown_inner();
        }
    }
}

fn accept_loop(listener: TcpListener, front: Arc<ServerFront>, stop: Arc<AtomicBool>) -> Vec<Conn> {
    let mut conns = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => break,
        };
        if stop.load(Ordering::SeqCst) {
            break; // the shutdown wake-up (or a raced late client)
        }
        if let Ok(conn) = bridge(stream, &front) {
            conns.push(conn);
        }
    }
    conns
}

/// Registers the connection as one front client and spawns its two pump
/// threads. The raw channel halves are used directly (not a
/// [`super::ChannelLink`]) because the two directions live on different
/// threads and disconnect notification belongs to the reader: it alone
/// knows when the peer really went away.
fn bridge(stream: TcpStream, front: &ServerFront) -> Result<Conn> {
    let (to_server, client, resp_rx) = front.raw_parts()?;
    let _ = stream.set_nodelay(true);
    let read_half = stream.try_clone().map_err(io_err)?;
    let write_half = stream.try_clone().map_err(io_err)?;
    let reader = std::thread::spawn(move || reader_loop(read_half, to_server, client));
    let writer = std::thread::spawn(move || writer_loop(write_half, resp_rx));
    Ok(Conn {
        stream,
        reader,
        writer,
    })
}

fn reader_loop(mut stream: TcpStream, to_server: mpsc::Sender<ToServer>, client: u64) {
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            break; // EOF or socket error: the peer is gone
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_TCP_FRAME_BYTES {
            break; // not a possible message: the stream is desynced, drop it
        }
        // Forward whatever arrived — even a short or empty message. The
        // server loop owns malformed-frame policy (a typed error frame),
        // so a chaos-truncated request is answered and retried instead of
        // silently costing the whole connection.
        let mut frame = vec![0u8; len];
        if stream.read_exact(&mut frame).is_err() {
            break;
        }
        if to_server
            .send(ToServer::Frame {
                client,
                bytes: frame,
            })
            .is_err()
        {
            break; // server loop gone
        }
    }
    let _ = to_server.send(ToServer::Disconnect { client });
    let _ = stream.shutdown(Shutdown::Read);
}

fn writer_loop(mut stream: TcpStream, resp: mpsc::Receiver<Vec<u8>>) {
    // recv() keeps returning replies buffered in the channel even after the
    // sender side drops, so a graceful server shutdown flushes everything
    // still in flight before the socket closes.
    while let Ok(frame) = resp.recv() {
        let prefix = (frame.len() as u32).to_le_bytes();
        if stream.write_all(&prefix).is_err()
            || stream.write_all(&frame).is_err()
            || stream.flush().is_err()
        {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

// ---------------------------------------------------------------- client

/// The client half: a [`FrameLink`] over one persistent TCP connection.
pub struct TcpLink {
    stream: TcpStream,
    /// Bytes read off the socket that do not yet form a complete frame. A
    /// recv that times out mid-frame keeps the prefix here, so the next
    /// recv resumes exactly where the stream left off instead of desyncing.
    pending: Vec<u8>,
}

impl TcpLink {
    /// Connects to a [`TcpFront`]'s listener.
    pub fn connect(addr: SocketAddr) -> Result<TcpLink> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| PirError::Transport(format!("tcp connect to {addr} failed: {e}")))?;
        let _ = stream.set_nodelay(true);
        Ok(TcpLink {
            stream,
            pending: Vec::new(),
        })
    }
}

impl FrameLink for TcpLink {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        let prefix = (frame.len() as u32).to_le_bytes();
        self.stream
            .write_all(&prefix)
            .and_then(|()| self.stream.write_all(frame))
            .and_then(|()| self.stream.flush())
            .map_err(|e| PirError::Transport(format!("server disconnected: {e}")))
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Result<Vec<u8>> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            if self.pending.len() >= 4 {
                let len =
                    u32::from_le_bytes(self.pending[..4].try_into().expect("4 bytes")) as usize;
                if len > MAX_TCP_FRAME_BYTES {
                    return Err(PirError::Transport(format!(
                        "impossible message length {len} on tcp link: stream desynced"
                    )));
                }
                if self.pending.len() >= 4 + len {
                    let frame = self.pending[4..4 + len].to_vec();
                    self.pending.drain(..4 + len);
                    return Ok(frame);
                }
            }
            let per_read = match deadline {
                None => None,
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        return Err(PirError::Timeout("tcp recv timed out".into()));
                    }
                    Some(dl - now) // strictly positive: set_read_timeout rejects zero
                }
            };
            self.stream.set_read_timeout(per_read).map_err(io_err)?;
            let mut buf = [0u8; 16 * 1024];
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(PirError::Transport("server disconnected".into())),
                Ok(n) => self.pending.extend_from_slice(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(PirError::Timeout("tcp recv timed out".into()));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(PirError::Transport(format!("server disconnected: {e}")));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{split_frame, K_ERROR};
    use super::*;
    use crate::server::{FileId, PirMode, PirServer};
    use crate::spec::SystemSpec;
    use crate::transport::Transport;
    use privpath_storage::{MemFile, PageBuf, DEFAULT_PAGE_SIZE};

    fn file(pages: u32) -> MemFile {
        let mut f = MemFile::empty(DEFAULT_PAGE_SIZE);
        for p in 0..pages {
            let mut page = PageBuf::zeroed(DEFAULT_PAGE_SIZE);
            page.as_mut_slice()[..4].copy_from_slice(&p.to_le_bytes());
            f.push_page(page);
        }
        f
    }

    fn server() -> Arc<PirServer> {
        let mut srv = PirServer::new(SystemSpec::default());
        srv.add_file("Fh", file(2), PirMode::CostOnly).unwrap();
        srv.add_file("Fd", file(16), PirMode::LinearScan).unwrap();
        Arc::new(srv)
    }

    #[test]
    fn tcp_channel_serves_rounds_downloads_and_closes() {
        let front = TcpFront::spawn(server()).unwrap();
        let mut chan = front.connect().unwrap();
        assert_eq!(chan.file_pages(FileId(1)).unwrap(), 16);
        chan.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 3];
        chan.serve_round(
            2,
            &[(FileId(1), 4), (FileId(1), 0), (FileId(1), 15)],
            &mut out,
        )
        .unwrap();
        for (buf, want) in out.iter().zip([4u32, 0, 15]) {
            assert_eq!(
                u32::from_le_bytes(buf.as_slice()[..4].try_into().unwrap()),
                want
            );
        }
        let header = chan.download(FileId(0)).unwrap();
        assert_eq!(header.len(), 2 * DEFAULT_PAGE_SIZE);
        chan.close().unwrap();
        let stats = front.shutdown();
        let s = stats.get(&chan.session_id()).expect("session recorded");
        assert_eq!(s.queries, 1);
        assert_eq!(s.fetches, 3);
        assert_eq!(s.downloads, 1);
        assert!(s.closed);
    }

    #[test]
    fn chunked_replies_reassemble_over_tcp() {
        // chunk size far below one page: every response crosses many chunks
        let front = TcpFront::spawn_with(
            server(),
            FrontConfig {
                chunk_bytes: Some(512),
                ..FrontConfig::default()
            },
        )
        .unwrap();
        let mut chan = front.connect().unwrap();
        chan.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 2];
        chan.serve_round(2, &[(FileId(1), 7), (FileId(1), 11)], &mut out)
            .unwrap();
        for (buf, want) in out.iter().zip([7u32, 11]) {
            assert_eq!(
                u32::from_le_bytes(buf.as_slice()[..4].try_into().unwrap()),
                want
            );
        }
        let header = chan.download(FileId(0)).unwrap();
        assert_eq!(header.len(), 2 * DEFAULT_PAGE_SIZE);
        chan.close().unwrap();
        front.shutdown();
    }

    #[test]
    fn shutdown_drains_live_connections_then_disconnects() {
        let front = TcpFront::spawn(server()).unwrap();
        let mut chan = front.connect().unwrap();
        chan.begin_query().unwrap();
        let stats = front.shutdown();
        assert!(stats.get(&chan.session_id()).unwrap().closed);
        // the socket is gone: the next request fails cleanly, no hang
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 1];
        let err = chan
            .serve_round(2, &[(FileId(1), 0)], &mut out)
            .unwrap_err();
        assert!(err.to_string().contains("disconnected"), "{err}");
    }

    #[test]
    fn desynced_length_prefix_drops_the_connection() {
        let front = TcpFront::spawn(server()).unwrap();
        // a raw peer writing an outer length no message can have: the
        // reader drops the connection instead of allocating for it
        let mut raw = TcpStream::connect(front.addr()).unwrap();
        raw.write_all(&0xFFFF_FFF0u32.to_le_bytes()).unwrap();
        raw.flush().unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(raw.read(&mut buf).unwrap_or(0), 0, "expected EOF");
        // the front still serves fresh connections
        let mut chan = front.connect().unwrap();
        chan.begin_query().unwrap();
        front.shutdown();
    }

    #[test]
    fn truncated_message_gets_an_error_frame_not_a_dead_stream() {
        // what ChaosLink's send-side truncation produces over TCP: a short
        // message under a correct outer prefix. The connection must survive
        // it with a typed error frame, and the next well-formed request on
        // the same socket must still be served.
        let front = TcpFront::spawn(server()).unwrap();
        let mut raw = TcpLink::connect(front.addr()).unwrap();
        raw.send(&[0x10, 0x00]).unwrap(); // 2-byte stump of a frame
        let reply = raw.recv(Some(Duration::from_secs(5))).unwrap();
        let f = split_frame(&reply).unwrap();
        assert_eq!(f.kind, K_ERROR);
        // the same socket still serves a full session afterwards
        let mut chan = WireChannel::handshake(Box::new(raw), RetryPolicy::none()).unwrap();
        chan.begin_query().unwrap();
        front.shutdown();
    }

    #[test]
    fn garbage_inside_a_valid_length_prefix_gets_a_typed_error() {
        let front = TcpFront::spawn(server()).unwrap();
        let mut raw = TcpLink::connect(front.addr()).unwrap();
        // plausible length, garbage payload: forwarded to the server loop,
        // answered with an ERR frame rather than dropped
        let mut junk = vec![0u8; 4 + 32];
        junk[..4].copy_from_slice(&32u32.to_le_bytes());
        junk[4..].iter_mut().for_each(|b| *b = 0xAB);
        raw.send(&junk).unwrap();
        let reply = raw.recv(Some(Duration::from_secs(5))).unwrap();
        let f = split_frame(&reply).unwrap();
        assert_eq!(f.kind, K_ERROR);
        front.shutdown();
    }
}
