//! The vectorized linear-scan kernel.
//!
//! Every round of the trivial-PIR store costs one full pass over the file —
//! the dominant server cost in the paper's model. This module makes that
//! pass run at the storage medium's bandwidth:
//!
//! * the file is streamed in multi-page **runs** through a reusable arena
//!   ([`PagedFile::read_run_into`]), so a disk-backed scan issues one
//!   positioned syscall per [`RUN_PAGES`] pages instead of one per page;
//! * drivers that expose their bytes zero-copy ([`PagedFile::contiguous`]:
//!   flat in-memory files, mappings) skip the arena entirely;
//! * each page is resolved with a branchless masked select over `u64` lanes
//!   ([`lane_select`]): **constant work per page regardless of match** — a
//!   non-matching page is OR-accumulated under an all-zeros mask into the
//!   arena's dummy sink, a matching one under an all-ones mask into its
//!   output slot. The inner loop is plain slice arithmetic over 8-byte
//!   words, which the compiler auto-vectorizes.
//!
//! Obliviousness is untouched: the physical sequence the host observes is
//! `0 .. N` in order, for every driver and every request set, exactly as the
//! PR 3 sorted-cursor path produced (the leakage suite pins this
//! differentially). Only the per-page resolution got cheaper and the driver
//! call granularity coarser.

use privpath_storage::{PageBuf, PagedFile};

use crate::Result;

/// Pages per streamed run: 64 pages × 4 KiB = 256 KiB per driver call,
/// large enough to amortize a syscall to noise, small enough to stay
/// cache-resident while the lane kernel resolves it.
pub const RUN_PAGES: usize = 64;

/// Reusable scratch for the streaming scan: the run buffer (grown on first
/// use, absent entirely for zero-copy drivers) and the dummy sink
/// non-matching pages are masked into so per-page work stays constant.
pub struct ScanArena {
    run: Vec<u8>,
    dummy: Vec<u8>,
}

impl ScanArena {
    /// Arena for files of `page_size`-byte pages.
    pub fn new(page_size: usize) -> Self {
        ScanArena {
            run: Vec::new(),
            dummy: vec![0u8; page_size],
        }
    }
}

/// OR-accumulates `src & mask` into `acc`, 8 bytes per lane, `mask` being
/// all-ones or all-zeros. The scan calls this once per page with `acc`
/// pointing at either the page's output slot (match) or the dummy sink
/// (no match), so the work per page is independent of the request set.
///
/// The mask is laundered through [`std::hint::black_box`] before the loop:
/// `resolve_page` picks `acc` with a branch on the same predicate the mask
/// is derived from, so without the fence the optimizer specializes the
/// no-match arm to `mask = 0`, folds `acc |= src & 0` to nothing, and
/// deletes the loads — a compiled scan whose per-page work (and timing)
/// depends on the request set. The fence keeps the work constant per page.
///
/// On x86-64 the word loop is dispatched to an AVX2 build when the CPU has
/// it (the portable baseline is SSE2-only, which leaves the scan compute
/// bound below the memory bandwidth memcpy reaches); everywhere else the
/// plain invariant-scalar-mask word loop auto-vectorizes as the target
/// allows.
///
/// # Panics
/// Debug-asserts `src.len() == acc.len()`.
#[inline]
pub fn lane_select(src: &[u8], mask: u64, acc: &mut [u8]) {
    debug_assert_eq!(src.len(), acc.len(), "lane kernel buffers must match");
    let mask = std::hint::black_box(mask);
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the `avx2` requirement of `lane_words_avx2` was just
            // verified at runtime; the function is otherwise safe code.
            unsafe { lane_words_avx2(src, mask, acc) };
            return;
        }
    }
    lane_words(src, mask, acc);
}

/// The portable lane loop: OR-accumulate 8-byte words under the mask, then
/// the byte tail. `#[inline(always)]` so the AVX2 wrapper recompiles this
/// exact body with wider instructions instead of duplicating it.
#[inline(always)]
fn lane_words(src: &[u8], mask: u64, acc: &mut [u8]) {
    let mut s = src.chunks_exact(8);
    let mut a = acc.chunks_exact_mut(8);
    for (sc, ac) in (&mut s).zip(&mut a) {
        let w = u64::from_le_bytes(sc.try_into().unwrap());
        let v = u64::from_le_bytes((&*ac).try_into().unwrap());
        ac.copy_from_slice(&(v | (w & mask)).to_le_bytes());
    }
    let mb = (mask & 0xFF) as u8;
    for (sb, ab) in s.remainder().iter().zip(a.into_remainder()) {
        *ab |= sb & mb;
    }
}

/// The AVX2 lane loop: 32-byte `vpand`/`vpor` blocks with the broadcast
/// mask, tail delegated to [`lane_words`]. Separate from the dispatch so
/// the whole-page loop is compiled once with the feature enabled.
///
/// # Safety
/// Callers must have verified the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lane_words_avx2(src: &[u8], mask: u64, acc: &mut [u8]) {
    use std::arch::x86_64::{
        __m256i, _mm256_and_si256, _mm256_loadu_si256, _mm256_or_si256, _mm256_set1_epi64x,
        _mm256_storeu_si256,
    };
    let blocks = src.len().min(acc.len()) / 32;
    let m = _mm256_set1_epi64x(mask as i64);
    let sp = src.as_ptr();
    let ap = acc.as_mut_ptr();
    for i in 0..blocks {
        // SAFETY (enclosing fn): `i * 32 + 32 <= blocks * 32 <= len` of both
        // slices, and `loadu`/`storeu` carry no alignment requirement.
        let s = _mm256_loadu_si256(sp.add(i * 32) as *const __m256i);
        let a = _mm256_loadu_si256(ap.add(i * 32) as *mut __m256i as *const __m256i);
        let r = _mm256_or_si256(a, _mm256_and_si256(s, m));
        _mm256_storeu_si256(ap.add(i * 32) as *mut __m256i, r);
    }
    lane_words(&src[blocks * 32..], mask, &mut acc[blocks * 32..]);
}

/// One full streamed pass over `file`, resolving `wanted` — `(page,
/// out-slot)` pairs **sorted by page** — into `out`. `on_page` fires once
/// per scanned page in scan order (the store's physical log). Requested
/// pages must be in range (callers bounds-check before the scan so a bad
/// request costs no I/O and logs nothing).
pub fn scan_resolve(
    file: &dyn PagedFile,
    wanted: &[(u32, usize)],
    out: &mut [PageBuf],
    arena: &mut ScanArena,
    mut on_page: impl FnMut(u32),
) -> Result<()> {
    let n = file.num_pages();
    let ps = file.page_size();
    debug_assert!(wanted.windows(2).all(|w| w[0].0 <= w[1].0));
    // The kernel OR-accumulates, so output slots start from zero.
    for &(_, slot) in wanted {
        out[slot].as_mut_slice().fill(0);
    }
    let mut w = 0usize;
    if let Some(all) = file.contiguous() {
        debug_assert_eq!(all.len(), n as usize * ps);
        for p in 0..n {
            let page = &all[p as usize * ps..(p as usize + 1) * ps];
            w = resolve_page(page, p, wanted, w, out, &mut arena.dummy);
            on_page(p);
        }
    } else {
        if arena.run.len() < RUN_PAGES * ps {
            arena.run.resize(RUN_PAGES * ps, 0);
        }
        let mut first = 0u32;
        while first < n {
            let run = RUN_PAGES.min((n - first) as usize);
            let buf = &mut arena.run[..run * ps];
            file.read_run_into(first, buf)?;
            for (i, page) in buf.chunks_exact(ps).enumerate() {
                let p = first + i as u32;
                w = resolve_page(page, p, wanted, w, out, &mut arena.dummy);
                on_page(p);
            }
            first += run as u32;
        }
    }
    debug_assert_eq!(w, wanted.len(), "in-range sorted requests all resolve");
    Ok(())
}

/// Resolves one scanned page against the sorted request cursor `w`:
/// exactly one [`lane_select`] pass (into the wanted slot or the dummy
/// sink), then slot-to-slot copies for duplicate requests of the same page.
/// Returns the advanced cursor.
#[inline]
fn resolve_page(
    page: &[u8],
    p: u32,
    wanted: &[(u32, usize)],
    mut w: usize,
    out: &mut [PageBuf],
    dummy: &mut [u8],
) -> usize {
    let next = wanted.get(w).map_or(u32::MAX, |&(pg, _)| pg);
    let hit = next == p;
    let mask = (hit as u64).wrapping_neg();
    let acc: &mut [u8] = if hit {
        out[wanted[w].1].as_mut_slice()
    } else {
        &mut dummy[..]
    };
    lane_select(page, mask, acc);
    w += hit as usize;
    while w < wanted.len() && wanted[w].0 == p {
        // Duplicate request: stage the already-resolved slot through the
        // dummy buffer (output slots can't be borrowed twice).
        let src = wanted[w - 1].1;
        let dst = wanted[w].1;
        if src != dst {
            dummy.copy_from_slice(out[src].as_slice());
            out[dst].as_mut_slice().copy_from_slice(dummy);
        }
        w += 1;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use privpath_storage::{DiskFile, MemFile};

    #[test]
    fn lane_select_masks_and_accumulates() {
        let src = [0xFFu8; 20];
        let mut acc = [0u8; 20];
        lane_select(&src, 0, &mut acc);
        assert_eq!(acc, [0u8; 20], "zero mask contributes nothing");
        let src: Vec<u8> = (0..20).collect();
        lane_select(&src, u64::MAX, &mut acc);
        assert_eq!(&acc[..], &src[..], "ones mask ORs the page in");
        // accumulation is an OR, so re-selecting is idempotent
        lane_select(&src, u64::MAX, &mut acc);
        assert_eq!(&acc[..], &src[..]);
    }

    #[test]
    fn scan_resolves_against_zero_copy_and_streamed_drivers() {
        // page size deliberately not a multiple of 8 to hit the lane tail
        let ps = 28usize;
        let pages = 2 * RUN_PAGES as u32 + 7; // crosses run boundaries + partial last run
        let bytes: Vec<u8> = (0..pages as usize * ps)
            .map(|i| (i * 31 % 251) as u8)
            .collect();
        let mem = MemFile::from_bytes(&bytes, ps);

        let dir = std::env::temp_dir().join(format!("privpath-scan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.bin");
        mem.persist(&path).unwrap();
        let disk = DiskFile::open(&path, ps).unwrap();
        assert!(mem.contiguous().is_some() && disk.contiguous().is_none());

        let reqs = [0u32, 5, 5, RUN_PAGES as u32, pages - 1, 5];
        let mut wanted: Vec<(u32, usize)> = reqs.iter().copied().zip(0..).collect();
        wanted.sort_unstable();

        let drivers: [&dyn PagedFile; 2] = [&mem, &disk];
        for f in drivers {
            let mut arena = ScanArena::new(ps);
            let mut out = vec![PageBuf::zeroed(ps); reqs.len()];
            let mut log = Vec::new();
            scan_resolve(f, &wanted, &mut out, &mut arena, |p| log.push(p)).unwrap();
            for (i, &r) in reqs.iter().enumerate() {
                assert_eq!(out[i].as_slice(), mem.page(r).unwrap(), "request {i}");
            }
            assert_eq!(log, (0..pages).collect::<Vec<_>>(), "full in-order pass");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_request_set_still_scans_everything() {
        let ps = 16usize;
        let mem = MemFile::from_bytes(&vec![7u8; 5 * ps], ps);
        let mut arena = ScanArena::new(ps);
        let mut log = Vec::new();
        scan_resolve(&mem, &[], &mut [], &mut arena, |p| log.push(p)).unwrap();
        assert_eq!(log, vec![0, 1, 2, 3, 4]);
    }
}
