//! The wire protocol: a versioned, length-prefixed binary frame codec and a
//! multi-client server front end serving frames from a loop thread.
//!
//! # Frame layout
//!
//! Every frame is self-delimiting and versioned (all integers little-endian,
//! hand-rolled through the same [`ByteWriter`]/[`ByteReader`] codecs as the
//! on-disk file formats):
//!
//! ```text
//! [ u32 len ][ u16 magic = 0x5057 "PW" ][ u8 version = 1 ][ u8 kind ][ payload ... ]
//! ```
//!
//! `len` counts every byte after the length field itself. The frame kinds:
//!
//! | kind | frame              | dir | payload                                        |
//! |------|--------------------|-----|------------------------------------------------|
//! | 1    | `SessionOpen`      | c→s | —                                              |
//! | 2    | `SessionAccept`    | s→c | `u64 session`, [`ServerInfo`]                  |
//! | 3    | `QueryOpen`        | c→s | `u64 session`                                  |
//! | 4    | `Ack`              | s→c | —                                              |
//! | 5    | `RoundRequest`     | c→s | `u64 session`, `u32 round`, `u32 k`, k × (`u16 file`, `u32 page`) |
//! | 6    | `RoundResponse`    | s→c | `u32 k`, `u32 page_size`, k × page bytes       |
//! | 7    | `DownloadRequest`  | c→s | `u64 session`, `u16 file`                      |
//! | 8    | `DownloadResponse` | s→c | `u32 n`, n bytes                               |
//! | 9    | `SessionClose`     | c→s | `u64 session`                                  |
//! | 10   | `Error`            | s→c | `u16 code`, `u32 n`, n message bytes           |
//!
//! # Versioning rules
//!
//! The version byte covers the whole frame set: any change to a payload
//! layout, a new frame kind, or a semantic change to an existing kind bumps
//! [`WIRE_VERSION`]. A server receiving a frame with an unknown version (or
//! bad magic) replies [`ERR_VERSION`]/[`ERR_MALFORMED`] and serves nothing —
//! there is no negotiation, by design: client and server ship from one
//! workspace, so a mismatch is a deployment bug to surface, not paper over.
//!
//! # The adversary's view of the wire
//!
//! In the real protocol the page index inside a PIR request is hidden by the
//! PIR encoding itself; this simulation carries it in plaintext because the
//! server must actually serve the page. The *observable* projection of a
//! frame — what a curious server legitimately sees — is therefore the frame
//! bytes with the session id and every page index masked to zero (file ids,
//! fetch counts, round numbers and frame kinds remain). The server loop
//! records exactly this projection per session; Theorem 1 at the wire level
//! says those recorded streams are byte-identical across sessions and
//! queries, which `tests/leakage.rs` enforces.

use crate::error::PirError;
use crate::server::FileId;
use crate::spec::SystemSpec;
use crate::transport::{ServeHost, Transport};
use crate::Result;
use privpath_storage::{ByteReader, ByteWriter, PageBuf};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Frame magic: "PW" little-endian.
pub const WIRE_MAGIC: u16 = 0x5057;
/// Current protocol version. Bump on any frame-layout or semantic change.
pub const WIRE_VERSION: u8 = 1;

const K_SESSION_OPEN: u8 = 1;
const K_SESSION_ACCEPT: u8 = 2;
const K_QUERY_OPEN: u8 = 3;
const K_ACK: u8 = 4;
const K_ROUND_REQ: u8 = 5;
const K_ROUND_RESP: u8 = 6;
const K_DOWNLOAD_REQ: u8 = 7;
const K_DOWNLOAD_RESP: u8 = 8;
const K_SESSION_CLOSE: u8 = 9;
const K_ERROR: u8 = 10;

/// Error frame codes.
pub const ERR_VERSION: u16 = 1;
/// Malformed frame (bad magic, truncated payload, unknown kind).
pub const ERR_MALFORMED: u16 = 2;
/// Frame names a session the server does not have open for this client.
pub const ERR_SESSION: u16 = 3;
/// Round number went backwards or skipped ahead.
pub const ERR_ROUND_ORDER: u16 = 4;
/// Serving failed (unknown file, storage error).
pub const ERR_SERVE: u16 = 5;

/// What the server publishes to every client at session accept: the Table 2
/// system constants and the file table (name + page count per file). All of
/// it is public by construction — the client prices its fetches from the
/// spec and the header already names every file — so shipping it at open
/// leaks nothing and lets the client compute bit-identical simulated costs
/// on either side of the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerInfo {
    /// The server's system spec.
    pub spec: SystemSpec,
    /// Per-file metadata, indexed by `FileId.0`.
    pub files: Vec<FileInfo>,
}

/// One served file's public metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct FileInfo {
    /// Diagnostic name ("Fh", "Fl", "Fi", "Fd", "Fi|Fd").
    pub name: String,
    /// Page count.
    pub pages: u32,
}

impl ServerInfo {
    /// Snapshot of a server's public metadata.
    pub fn of(server: &crate::server::PirServer) -> ServerInfo {
        let files = (0..server.num_files() as u16)
            .map(|i| FileInfo {
                name: server
                    .file_name(FileId(i))
                    .expect("file exists")
                    .to_string(),
                pages: server.file_pages(FileId(i)).expect("file exists"),
            })
            .collect();
        ServerInfo {
            spec: server.spec().clone(),
            files,
        }
    }

    fn serialize(&self, w: &mut ByteWriter) {
        let s = &self.spec;
        w.u64(s.page_size as u64);
        w.f64(s.disk_seek_s);
        w.f64(s.disk_rate_bps);
        w.f64(s.scp_io_rate_bps);
        w.f64(s.crypto_rate_bps);
        w.f64(s.comm_rtt_s);
        w.f64(s.comm_rate_bps);
        w.u64(s.scp_memory_bytes);
        w.f64(s.scp_mem_factor);
        w.f64(s.pir_fixed_ops);
        w.f64(s.pir_ops_per_log2sq);
        w.u16(self.files.len() as u16);
        for f in &self.files {
            w.len_bytes(f.name.as_bytes());
            w.u32(f.pages);
        }
    }

    fn deserialize(r: &mut ByteReader<'_>) -> Result<ServerInfo> {
        let spec = SystemSpec {
            page_size: r.u64()? as usize,
            disk_seek_s: r.f64()?,
            disk_rate_bps: r.f64()?,
            scp_io_rate_bps: r.f64()?,
            crypto_rate_bps: r.f64()?,
            comm_rtt_s: r.f64()?,
            comm_rate_bps: r.f64()?,
            scp_memory_bytes: r.u64()?,
            scp_mem_factor: r.f64()?,
            pir_fixed_ops: r.f64()?,
            pir_ops_per_log2sq: r.f64()?,
        };
        let n = r.u16()? as usize;
        let mut files = Vec::with_capacity(n);
        for _ in 0..n {
            let name = String::from_utf8_lossy(r.len_bytes()?).into_owned();
            let pages = r.u32()?;
            files.push(FileInfo { name, pages });
        }
        Ok(ServerInfo { spec, files })
    }
}

// ---------------------------------------------------------------- encoding

fn begin_frame(kind: u8) -> ByteWriter {
    let mut w = ByteWriter::new();
    w.u32(0); // length placeholder
    w.u16(WIRE_MAGIC);
    w.u8(WIRE_VERSION);
    w.u8(kind);
    w
}

fn finish_frame(mut w: ByteWriter) -> Vec<u8> {
    let len = (w.len() - 4) as u32;
    w.patch_u32(0, len);
    w.into_vec()
}

fn encode_session_open() -> Vec<u8> {
    finish_frame(begin_frame(K_SESSION_OPEN))
}

fn encode_session_accept(session: u64, info: &ServerInfo) -> Vec<u8> {
    let mut w = begin_frame(K_SESSION_ACCEPT);
    w.u64(session);
    info.serialize(&mut w);
    finish_frame(w)
}

fn encode_query_open(session: u64) -> Vec<u8> {
    let mut w = begin_frame(K_QUERY_OPEN);
    w.u64(session);
    finish_frame(w)
}

fn encode_ack() -> Vec<u8> {
    finish_frame(begin_frame(K_ACK))
}

/// Encodes a round request. `mask_pages` replaces every page index with 0 —
/// the observable projection the server records (the PIR encoding hides the
/// page index from a real server; see the module docs).
fn encode_round_request(
    session: u64,
    round: u32,
    fetches: &[(FileId, u32)],
    mask_pages: bool,
) -> Vec<u8> {
    let mut w = begin_frame(K_ROUND_REQ);
    w.u64(session);
    w.u32(round);
    w.u32(fetches.len() as u32);
    for &(f, page) in fetches {
        w.u16(f.0);
        w.u32(if mask_pages { 0 } else { page });
    }
    finish_frame(w)
}

fn encode_round_response(pages: &[PageBuf], page_size: usize) -> Vec<u8> {
    let mut w = begin_frame(K_ROUND_RESP);
    w.u32(pages.len() as u32);
    w.u32(page_size as u32);
    for p in pages {
        w.bytes(p.as_slice());
    }
    finish_frame(w)
}

fn encode_download_request(session: u64, file: FileId) -> Vec<u8> {
    let mut w = begin_frame(K_DOWNLOAD_REQ);
    w.u64(session);
    w.u16(file.0);
    finish_frame(w)
}

fn encode_download_response(bytes: &[u8]) -> Vec<u8> {
    let mut w = begin_frame(K_DOWNLOAD_RESP);
    w.len_bytes(bytes);
    finish_frame(w)
}

fn encode_session_close(session: u64) -> Vec<u8> {
    let mut w = begin_frame(K_SESSION_CLOSE);
    w.u64(session);
    finish_frame(w)
}

fn encode_error(code: u16, message: &str) -> Vec<u8> {
    let mut w = begin_frame(K_ERROR);
    w.u16(code);
    w.len_bytes(message.as_bytes());
    finish_frame(w)
}

// ---------------------------------------------------------------- decoding

fn transport_err<T>(msg: impl Into<String>) -> Result<T> {
    Err(PirError::Transport(msg.into()))
}

/// Splits one frame off `bytes`: validates length, magic and version, and
/// returns `(kind, payload, rest)`.
fn split_frame(bytes: &[u8]) -> Result<(u8, &[u8], &[u8])> {
    if bytes.len() < 8 {
        return transport_err("truncated frame header");
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    if bytes.len() < 4 + len || len < 4 {
        return transport_err(format!(
            "frame length {len} does not fit buffer of {}",
            bytes.len()
        ));
    }
    let magic = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if magic != WIRE_MAGIC {
        return transport_err(format!("bad frame magic {magic:#06x}"));
    }
    let version = bytes[6];
    if version != WIRE_VERSION {
        return Err(PirError::Transport(format!(
            "unsupported wire version {version} (supported: {WIRE_VERSION})"
        )));
    }
    let kind = bytes[7];
    Ok((kind, &bytes[8..4 + len], &bytes[4 + len..]))
}

// ------------------------------------------------------- observable stream

/// One adversary-observable wire event, parsed back from a recorded
/// (masked) frame stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObservedEvent {
    /// A client opened a session.
    SessionOpen,
    /// A client announced a new query (the round-1 connection exchange).
    QueryOpen,
    /// One round exchange: the round number and the *files* fetched, in
    /// order. Page indices are not part of the view (masked to zero in the
    /// recorded stream) — that is the PIR guarantee.
    Round {
        /// Protocol round this exchange belongs to (several exchanges may
        /// share a round — sub-round batches).
        round: u32,
        /// File of each fetch, in issue order.
        fetches: Vec<FileId>,
    },
    /// A full-file download (the header).
    Download(FileId),
    /// The client closed the session.
    SessionClose,
}

/// Parses a recorded observable stream (concatenated masked frames) back
/// into events, for audits.
pub fn parse_observed(mut stream: &[u8]) -> Result<Vec<ObservedEvent>> {
    let mut events = Vec::new();
    while !stream.is_empty() {
        let (kind, payload, rest) = split_frame(stream)?;
        stream = rest;
        let mut r = ByteReader::new(payload);
        let event = match kind {
            K_SESSION_OPEN => ObservedEvent::SessionOpen,
            K_QUERY_OPEN => ObservedEvent::QueryOpen,
            K_ROUND_REQ => {
                let _session = r.u64().map_err(PirError::from)?;
                let round = r.u32().map_err(PirError::from)?;
                let k = r.u32().map_err(PirError::from)? as usize;
                let mut fetches = Vec::with_capacity(k);
                for _ in 0..k {
                    let f = r.u16().map_err(PirError::from)?;
                    let _page = r.u32().map_err(PirError::from)?;
                    fetches.push(FileId(f));
                }
                ObservedEvent::Round { round, fetches }
            }
            K_DOWNLOAD_REQ => {
                let _session = r.u64().map_err(PirError::from)?;
                ObservedEvent::Download(FileId(r.u16().map_err(PirError::from)?))
            }
            K_SESSION_CLOSE => ObservedEvent::SessionClose,
            k => return transport_err(format!("unexpected kind {k} in observed stream")),
        };
        events.push(event);
    }
    Ok(events)
}

// ------------------------------------------------------------ server front

/// Per-session accounting the server keeps on its side of the wire (the
/// client keeps its own meter; the two views must agree, and tests check
/// they do).
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// Queries observed (QueryOpen frames).
    pub queries: u64,
    /// Protocol rounds served (round-number advances; the query-open counts
    /// as round 1).
    pub rounds: u64,
    /// PIR page fetches served.
    pub fetches: u64,
    /// Full-file downloads served.
    pub downloads: u64,
    /// Frame bytes received from the client.
    pub bytes_in: u64,
    /// Frame bytes sent back to the client.
    pub bytes_out: u64,
    /// True once the session closed (explicitly or at shutdown).
    pub closed: bool,
    /// The recorded observable projection of every client→server frame, in
    /// order (see the module docs for what is masked). Bounded by
    /// [`OBSERVED_CAP_BYTES`] so long-running fronts don't grow without
    /// limit; `observed_truncated` reports when the cap was hit (recording
    /// stops at a frame boundary, the counters above keep counting).
    pub observed: Vec<u8>,
    /// True if `observed` stopped recording at the cap.
    pub observed_truncated: bool,
}

/// Per-session cap on the recorded observable stream (the leakage audits
/// read a few kilobytes; this only exists to bound server memory on
/// long-running fronts).
pub const OBSERVED_CAP_BYTES: usize = 16 << 20;

impl SessionStats {
    fn record_observed(&mut self, masked: &[u8]) {
        if self.observed_truncated || self.observed.len() + masked.len() > OBSERVED_CAP_BYTES {
            self.observed_truncated = true;
            return;
        }
        self.observed.extend_from_slice(masked);
    }
}

#[derive(Default)]
struct FrontShared {
    sessions: BTreeMap<u64, SessionStats>,
}

enum ToServer {
    Connect {
        client: u64,
        resp: mpsc::Sender<Vec<u8>>,
    },
    Frame {
        client: u64,
        bytes: Vec<u8>,
    },
    Disconnect {
        client: u64,
    },
    Shutdown,
}

/// The multi-client server front end: one loop thread owns the database
/// host and serves every connected [`WireChannel`], multiplexing frames
/// over byte channels. Sessions are tracked in a per-client session table
/// with server-side accounting; [`ServerFront::shutdown`] stops the loop
/// gracefully (open sessions are marked closed and their clients observe a
/// severed channel on their next request).
pub struct ServerFront {
    to_server: mpsc::Sender<ToServer>,
    shared: Arc<Mutex<FrontShared>>,
    next_client: AtomicU64,
    handle: Option<JoinHandle<()>>,
}

impl ServerFront {
    /// Spawns the server loop over `host` (anything that can reach a
    /// [`crate::PirServer`] — the core crate's `Database` implements
    /// [`ServeHost`], so a whole built database can be fronted).
    pub fn spawn<H: ServeHost + Send + 'static>(host: H) -> ServerFront {
        let (tx, rx) = mpsc::channel();
        let shared = Arc::new(Mutex::new(FrontShared::default()));
        let loop_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || server_loop(host, rx, loop_shared));
        ServerFront {
            to_server: tx,
            shared,
            next_client: AtomicU64::new(1),
            handle: Some(handle),
        }
    }

    /// Connects a new client: registers its response channel and performs
    /// the `SessionOpen`/`SessionAccept` handshake.
    pub fn connect(&self) -> Result<WireChannel> {
        let client = self.next_client.fetch_add(1, Ordering::Relaxed);
        let (resp_tx, resp_rx) = mpsc::channel();
        self.to_server
            .send(ToServer::Connect {
                client,
                resp: resp_tx,
            })
            .map_err(|_| PirError::Transport("server front is shut down".into()))?;
        let mut chan = WireChannel {
            to_server: self.to_server.clone(),
            resp: resp_rx,
            client,
            session: 0,
            info: None,
        };
        let reply = chan.request(encode_session_open())?;
        let (kind, payload, _) = split_frame(&reply)?;
        if kind != K_SESSION_ACCEPT {
            return decode_unexpected(kind, payload, "SessionAccept");
        }
        let mut r = ByteReader::new(payload);
        chan.session = r.u64().map_err(PirError::from)?;
        chan.info = Some(ServerInfo::deserialize(&mut r)?);
        Ok(chan)
    }

    /// Snapshot of the per-session accounting table, keyed by session id.
    pub fn session_stats(&self) -> BTreeMap<u64, SessionStats> {
        self.shared.lock().expect("front shared").sessions.clone()
    }

    /// The recorded observable frame stream of one session (None if the
    /// session id was never opened).
    pub fn observed_stream(&self, session: u64) -> Option<Vec<u8>> {
        self.shared
            .lock()
            .expect("front shared")
            .sessions
            .get(&session)
            .map(|s| s.observed.clone())
    }

    /// Stops the loop thread gracefully and returns the final session
    /// table. Sessions still open are marked closed; their clients get a
    /// transport error on their next request instead of a hang.
    pub fn shutdown(mut self) -> BTreeMap<u64, SessionStats> {
        let _ = self.to_server.send(ToServer::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.shared.lock().expect("front shared").sessions.clone()
    }
}

impl Drop for ServerFront {
    fn drop(&mut self) {
        let _ = self.to_server.send(ToServer::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn decode_unexpected<T>(kind: u8, payload: &[u8], wanted: &str) -> Result<T> {
    if kind == K_ERROR {
        let mut r = ByteReader::new(payload);
        let code = r.u16().map_err(PirError::from)?;
        let msg = String::from_utf8_lossy(r.len_bytes().map_err(PirError::from)?).into_owned();
        return transport_err(format!("server error {code}: {msg}"));
    }
    transport_err(format!("expected {wanted}, got frame kind {kind}"))
}

struct ClientState {
    resp: mpsc::Sender<Vec<u8>>,
    session: Option<u64>,
    last_round: u32,
}

fn server_loop<H: ServeHost>(
    host: H,
    rx: mpsc::Receiver<ToServer>,
    shared: Arc<Mutex<FrontShared>>,
) {
    let server = host.pir_server();
    let page_size = server.spec().page_size;
    let info = ServerInfo::of(server);
    let mut clients: BTreeMap<u64, ClientState> = BTreeMap::new();
    let mut next_session: u64 = 1;
    // serving scratch, reused across every client and frame
    let mut reqs: Vec<(FileId, u32)> = Vec::new();
    let mut run_pages: Vec<u32> = Vec::new();
    let mut arena: Vec<PageBuf> = Vec::new();

    for msg in rx {
        match msg {
            ToServer::Connect { client, resp } => {
                clients.insert(
                    client,
                    ClientState {
                        resp,
                        session: None,
                        last_round: 0,
                    },
                );
            }
            ToServer::Disconnect { client } => {
                if let Some(state) = clients.remove(&client) {
                    if let Some(sid) = state.session {
                        if let Some(stats) =
                            shared.lock().expect("front shared").sessions.get_mut(&sid)
                        {
                            stats.closed = true;
                        }
                    }
                }
            }
            ToServer::Shutdown => break,
            ToServer::Frame { client, bytes } => {
                let Some(state) = clients.get_mut(&client) else {
                    continue; // unknown client: nowhere to reply
                };
                let session_before = state.session;
                let reply = handle_frame(
                    server,
                    &info,
                    &shared,
                    state,
                    &mut next_session,
                    &bytes,
                    page_size,
                    &mut reqs,
                    &mut run_pages,
                    &mut arena,
                );
                // attribute bytes to the frame's session: the one open
                // before the frame (covers SessionClose, which clears it)
                // or the one it just opened (SessionOpen)
                if let Some(sid) = session_before.or(state.session) {
                    let mut lock = shared.lock().expect("front shared");
                    if let Some(stats) = lock.sessions.get_mut(&sid) {
                        stats.bytes_in += bytes.len() as u64;
                        stats.bytes_out += reply.len() as u64;
                    }
                }
                if state.resp.send(reply).is_err() {
                    clients.remove(&client);
                }
            }
        }
    }
    // graceful shutdown: mark every open session closed
    let mut lock = shared.lock().expect("front shared");
    for state in clients.values() {
        if let Some(sid) = state.session {
            if let Some(stats) = lock.sessions.get_mut(&sid) {
                stats.closed = true;
            }
        }
    }
}

/// Serves one client frame and produces the reply frame. Never panics on
/// malformed input — every failure becomes an `Error` frame.
#[allow(clippy::too_many_arguments)]
fn handle_frame(
    server: &crate::server::PirServer,
    info: &ServerInfo,
    shared: &Arc<Mutex<FrontShared>>,
    state: &mut ClientState,
    next_session: &mut u64,
    bytes: &[u8],
    page_size: usize,
    reqs: &mut Vec<(FileId, u32)>,
    run_pages: &mut Vec<u32>,
    arena: &mut Vec<PageBuf>,
) -> Vec<u8> {
    let (kind, payload, rest) = match split_frame(bytes) {
        Ok(parts) => parts,
        Err(e) => {
            // classify structurally, not by message text: a frame whose
            // magic is right but whose version byte is unknown is a
            // version mismatch; everything else is malformed
            let version_mismatch = bytes.len() >= 7
                && bytes[4..6] == WIRE_MAGIC.to_le_bytes()
                && bytes[6] != WIRE_VERSION;
            let code = if version_mismatch {
                ERR_VERSION
            } else {
                ERR_MALFORMED
            };
            return encode_error(code, &format!("{e}"));
        }
    };
    if !rest.is_empty() {
        return encode_error(ERR_MALFORMED, "trailing bytes after frame");
    }
    let mut r = ByteReader::new(payload);
    // helper: append a masked observation to the session's recorded stream
    let observe = |shared: &Arc<Mutex<FrontShared>>, sid: u64, masked: Vec<u8>| {
        if let Some(stats) = shared.lock().expect("front shared").sessions.get_mut(&sid) {
            stats.record_observed(&masked);
        }
    };
    match kind {
        K_SESSION_OPEN => {
            if state.session.is_some() {
                return encode_error(ERR_SESSION, "session already open on this channel");
            }
            let sid = *next_session;
            *next_session += 1;
            state.session = Some(sid);
            state.last_round = 0;
            {
                let mut lock = shared.lock().expect("front shared");
                let stats = lock.sessions.entry(sid).or_default();
                stats.record_observed(&encode_session_open());
            }
            encode_session_accept(sid, info)
        }
        K_QUERY_OPEN => {
            let Ok(sid) = r.u64() else {
                return encode_error(ERR_MALFORMED, "truncated QueryOpen");
            };
            if state.session != Some(sid) {
                return encode_error(ERR_SESSION, "QueryOpen for a session not open here");
            }
            // Round 1 is the query-open exchange itself.
            state.last_round = 1;
            {
                let mut lock = shared.lock().expect("front shared");
                if let Some(stats) = lock.sessions.get_mut(&sid) {
                    stats.queries += 1;
                    stats.rounds += 1;
                    stats.record_observed(&encode_query_open(0));
                }
            }
            encode_ack()
        }
        K_ROUND_REQ => {
            let (sid, round, k) = match (r.u64(), r.u32(), r.u32()) {
                (Ok(s), Ok(ro), Ok(k)) => (s, ro, k as usize),
                _ => return encode_error(ERR_MALFORMED, "truncated RoundRequest"),
            };
            if state.session != Some(sid) {
                return encode_error(ERR_SESSION, "RoundRequest for a session not open here");
            }
            reqs.clear();
            for _ in 0..k {
                match (r.u16(), r.u32()) {
                    (Ok(f), Ok(p)) => reqs.push((FileId(f), p)),
                    _ => return encode_error(ERR_MALFORMED, "truncated fetch list"),
                }
            }
            // A round either continues (same number — a sub-round exchange,
            // e.g. the HY continuation walk) or advances by exactly one.
            if round != state.last_round && round != state.last_round + 1 {
                return encode_error(
                    ERR_ROUND_ORDER,
                    &format!("round {round} after round {}", state.last_round),
                );
            }
            let new_round = round == state.last_round + 1;
            state.last_round = round;
            observe(shared, sid, encode_round_request(0, round, reqs, true));
            while arena.len() < reqs.len() {
                arena.push(PageBuf::zeroed(page_size));
            }
            for buf in arena.iter_mut().take(reqs.len()) {
                if buf.len() != page_size {
                    *buf = PageBuf::zeroed(page_size);
                }
            }
            if let Err(e) = server.serve_requests(reqs, run_pages, &mut arena[..reqs.len()]) {
                return encode_error(ERR_SERVE, &format!("{e}"));
            }
            {
                let mut lock = shared.lock().expect("front shared");
                if let Some(stats) = lock.sessions.get_mut(&sid) {
                    stats.fetches += reqs.len() as u64;
                    if new_round {
                        stats.rounds += 1;
                    }
                }
            }
            encode_round_response(&arena[..reqs.len()], page_size)
        }
        K_DOWNLOAD_REQ => {
            let (sid, file) = match (r.u64(), r.u16()) {
                (Ok(s), Ok(f)) => (s, FileId(f)),
                _ => return encode_error(ERR_MALFORMED, "truncated DownloadRequest"),
            };
            if state.session != Some(sid) {
                return encode_error(ERR_SESSION, "DownloadRequest for a session not open here");
            }
            observe(shared, sid, encode_download_request(0, file));
            let bytes = match server.read_full(file) {
                Ok(b) => b,
                Err(e) => return encode_error(ERR_SERVE, &format!("{e}")),
            };
            {
                let mut lock = shared.lock().expect("front shared");
                if let Some(stats) = lock.sessions.get_mut(&sid) {
                    stats.downloads += 1;
                }
            }
            encode_download_response(&bytes)
        }
        K_SESSION_CLOSE => {
            let Ok(sid) = r.u64() else {
                return encode_error(ERR_MALFORMED, "truncated SessionClose");
            };
            if state.session != Some(sid) {
                return encode_error(ERR_SESSION, "SessionClose for a session not open here");
            }
            state.session = None;
            {
                let mut lock = shared.lock().expect("front shared");
                if let Some(stats) = lock.sessions.get_mut(&sid) {
                    stats.closed = true;
                    stats.record_observed(&encode_session_close(0));
                }
            }
            encode_ack()
        }
        k => encode_error(ERR_MALFORMED, &format!("unknown frame kind {k}")),
    }
}

// ------------------------------------------------------------ wire channel

/// One client's end of the wire: a [`Transport`] whose every operation is a
/// frame exchange with the [`ServerFront`] loop thread.
pub struct WireChannel {
    to_server: mpsc::Sender<ToServer>,
    resp: mpsc::Receiver<Vec<u8>>,
    client: u64,
    session: u64,
    info: Option<ServerInfo>,
}

impl WireChannel {
    /// The session id the server assigned at accept.
    pub fn session_id(&self) -> u64 {
        self.session
    }

    fn request(&mut self, frame: Vec<u8>) -> Result<Vec<u8>> {
        self.to_server
            .send(ToServer::Frame {
                client: self.client,
                bytes: frame,
            })
            .map_err(|_| PirError::Transport("server disconnected".into()))?;
        self.resp
            .recv()
            .map_err(|_| PirError::Transport("server disconnected".into()))
    }

    fn info(&self) -> &ServerInfo {
        self.info.as_ref().expect("handshake completed at connect")
    }

    /// Sends `frame`, expecting an `Ack`.
    fn request_ack(&mut self, frame: Vec<u8>) -> Result<()> {
        let reply = self.request(frame)?;
        let (kind, payload, _) = split_frame(&reply)?;
        if kind != K_ACK {
            return decode_unexpected(kind, payload, "Ack");
        }
        Ok(())
    }
}

impl Drop for WireChannel {
    fn drop(&mut self) {
        let _ = self.to_server.send(ToServer::Disconnect {
            client: self.client,
        });
    }
}

impl Transport for WireChannel {
    fn spec(&self) -> &SystemSpec {
        &self.info().spec
    }

    fn file_pages(&self, f: FileId) -> Result<u32> {
        self.info()
            .files
            .get(f.0 as usize)
            .map(|fi| fi.pages)
            .ok_or(PirError::UnknownFile(f.0))
    }

    fn begin_query(&mut self) -> Result<()> {
        let frame = encode_query_open(self.session);
        self.request_ack(frame)
    }

    fn serve_round(
        &mut self,
        round: u32,
        requests: &[(FileId, u32)],
        out: &mut [PageBuf],
    ) -> Result<()> {
        debug_assert_eq!(requests.len(), out.len());
        let frame = encode_round_request(self.session, round, requests, false);
        let reply = self.request(frame)?;
        let (kind, payload, _) = split_frame(&reply)?;
        if kind != K_ROUND_RESP {
            return decode_unexpected(kind, payload, "RoundResponse");
        }
        let mut r = ByteReader::new(payload);
        let k = r.u32().map_err(PirError::from)? as usize;
        let page_size = r.u32().map_err(PirError::from)? as usize;
        if k != out.len() {
            return transport_err(format!("expected {} pages, got {k}", out.len()));
        }
        for buf in out.iter_mut() {
            let bytes = r.bytes(page_size).map_err(PirError::from)?;
            if buf.len() != page_size {
                *buf = PageBuf::zeroed(page_size);
            }
            buf.as_mut_slice().copy_from_slice(bytes);
        }
        Ok(())
    }

    fn download(&mut self, f: FileId) -> Result<Vec<u8>> {
        let frame = encode_download_request(self.session, f);
        let reply = self.request(frame)?;
        let (kind, payload, _) = split_frame(&reply)?;
        if kind != K_DOWNLOAD_RESP {
            return decode_unexpected(kind, payload, "DownloadResponse");
        }
        let mut r = ByteReader::new(payload);
        Ok(r.len_bytes().map_err(PirError::from)?.to_vec())
    }

    fn close(&mut self) -> Result<()> {
        let frame = encode_session_close(self.session);
        self.request_ack(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{PirMode, PirServer};
    use crate::PirSession;
    use privpath_storage::{MemFile, DEFAULT_PAGE_SIZE};
    use std::sync::Arc;

    fn file(pages: u32) -> MemFile {
        let mut f = MemFile::empty(DEFAULT_PAGE_SIZE);
        for p in 0..pages {
            let mut page = PageBuf::zeroed(DEFAULT_PAGE_SIZE);
            page.as_mut_slice()[..4].copy_from_slice(&p.to_le_bytes());
            f.push_page(page);
        }
        f
    }

    fn server() -> Arc<PirServer> {
        let mut srv = PirServer::new(SystemSpec::default());
        srv.add_file("Fh", file(2), PirMode::CostOnly).unwrap();
        srv.add_file("Fd", file(16), PirMode::LinearScan).unwrap();
        Arc::new(srv)
    }

    #[test]
    fn server_info_round_trips() {
        let srv = server();
        let info = ServerInfo::of(&srv);
        let mut w = ByteWriter::new();
        info.serialize(&mut w);
        let buf = w.into_vec();
        let back = ServerInfo::deserialize(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(back, info);
        assert_eq!(back.files.len(), 2);
        assert_eq!(back.files[1].pages, 16);
        assert_eq!(back.files[0].name, "Fh");
    }

    #[test]
    fn frames_round_trip_and_reject_bad_versions() {
        let frame = encode_round_request(7, 3, &[(FileId(1), 9), (FileId(1), 2)], false);
        let (kind, payload, rest) = split_frame(&frame).unwrap();
        assert_eq!(kind, K_ROUND_REQ);
        assert!(rest.is_empty());
        let mut r = ByteReader::new(payload);
        assert_eq!(r.u64().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 3);
        assert_eq!(r.u32().unwrap(), 2);

        let mut bad = frame.clone();
        bad[6] = WIRE_VERSION + 1;
        let err = split_frame(&bad).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");

        let mut bad_magic = frame;
        bad_magic[4] = 0;
        assert!(split_frame(&bad_magic).is_err());
    }

    #[test]
    fn wire_channel_serves_rounds_downloads_and_closes() {
        let front = ServerFront::spawn(server());
        let mut chan = front.connect().unwrap();
        assert_eq!(chan.file_pages(FileId(1)).unwrap(), 16);
        assert_eq!(chan.spec().page_size, DEFAULT_PAGE_SIZE);

        chan.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 3];
        chan.serve_round(
            2,
            &[(FileId(1), 4), (FileId(1), 0), (FileId(1), 15)],
            &mut out,
        )
        .unwrap();
        for (buf, want) in out.iter().zip([4u32, 0, 15]) {
            assert_eq!(
                u32::from_le_bytes(buf.as_slice()[..4].try_into().unwrap()),
                want
            );
        }
        let header = chan.download(FileId(0)).unwrap();
        assert_eq!(header.len(), 2 * DEFAULT_PAGE_SIZE);
        chan.close().unwrap();

        let stats = front.shutdown();
        let s = stats.get(&chan.session_id()).expect("session recorded");
        assert_eq!(s.queries, 1);
        assert_eq!(s.fetches, 3);
        assert_eq!(s.downloads, 1);
        assert_eq!(s.rounds, 2); // query open (round 1) + round 2
        assert!(s.closed);
        assert!(s.bytes_in > 0 && s.bytes_out > 0);
    }

    #[test]
    fn observed_stream_masks_pages_but_keeps_structure() {
        let front = ServerFront::spawn(server());
        let mut chan = front.connect().unwrap();
        chan.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 2];
        chan.serve_round(2, &[(FileId(1), 7), (FileId(1), 3)], &mut out)
            .unwrap();
        let stream = front.observed_stream(chan.session_id()).unwrap();
        let events = parse_observed(&stream).unwrap();
        assert_eq!(events[0], ObservedEvent::SessionOpen);
        assert_eq!(events[1], ObservedEvent::QueryOpen);
        assert_eq!(
            events[2],
            ObservedEvent::Round {
                round: 2,
                fetches: vec![FileId(1), FileId(1)],
            }
        );
        // the raw stream must not contain the page indices anywhere: two
        // sessions fetching different pages record identical bytes
        let mut chan2 = front.connect().unwrap();
        chan2.begin_query().unwrap();
        chan2
            .serve_round(2, &[(FileId(1), 12), (FileId(1), 1)], &mut out)
            .unwrap();
        let stream2 = front.observed_stream(chan2.session_id()).unwrap();
        assert_eq!(stream, stream2, "observed streams must be page-blind");
    }

    #[test]
    fn round_order_violations_are_rejected() {
        let front = ServerFront::spawn(server());
        let mut chan = front.connect().unwrap();
        chan.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 1];
        // skipping ahead (round 4 after round 1) is a protocol violation
        let err = chan
            .serve_round(4, &[(FileId(1), 0)], &mut out)
            .unwrap_err();
        assert!(err.to_string().contains("round"), "{err}");
        // round 2 is fine, and a repeat of round 2 is a sub-round exchange
        chan.serve_round(2, &[(FileId(1), 0)], &mut out).unwrap();
        chan.serve_round(2, &[(FileId(1), 1)], &mut out).unwrap();
    }

    #[test]
    fn wire_session_accounting_matches_client_meter() {
        let srv = server();
        let front = ServerFront::spawn(Arc::clone(&srv));
        let mut chan = front.connect().unwrap();
        let mut sess = PirSession::new();
        sess.begin_round(&mut chan).unwrap();
        let _hdr = sess.download_full(&mut chan, FileId(0)).unwrap();
        sess.run_round(&mut chan, &[(FileId(1), 5), (FileId(1), 9)])
            .unwrap();
        let sid = chan.session_id();
        let stats = front.shutdown();
        let s = stats.get(&sid).unwrap();
        assert_eq!(s.fetches, sess.meter.total_fetches());
        assert_eq!(s.rounds, u64::from(sess.meter.rounds));
        assert_eq!(s.queries, 1);
        assert_eq!(s.downloads, 1);
    }

    #[test]
    fn requests_after_shutdown_error_cleanly() {
        let front = ServerFront::spawn(server());
        let mut chan = front.connect().unwrap();
        chan.begin_query().unwrap();
        drop(front);
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 1];
        let err = chan
            .serve_round(2, &[(FileId(1), 0)], &mut out)
            .unwrap_err();
        assert!(err.to_string().contains("disconnected"), "{err}");
    }
}
