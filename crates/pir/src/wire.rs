//! The wire protocol: a versioned, length-prefixed binary frame codec and a
//! multi-client server front end serving frames from a loop thread.
//!
//! # Frame layout (version 4)
//!
//! Every frame is self-delimiting, versioned and integrity-checked (all
//! integers little-endian, hand-rolled through the same
//! [`ByteWriter`]/[`ByteReader`] codecs as the on-disk file formats):
//!
//! ```text
//! [ u32 len ][ u32 crc ][ u16 magic = 0x5057 "PW" ][ u8 version = 4 ]
//! [ u8 kind ][ u32 seq ][ payload ... ]
//! ```
//!
//! `len` counts every byte after the length field itself; `crc` is the
//! CRC-32 (IEEE) of every byte after the crc field, so any bit flip on the
//! link is detected structurally instead of being served as wrong data.
//! `seq` is a per-channel sequence number: the client stamps every request
//! with the next value (starting at 1 with `SessionOpen`) and every server
//! reply echoes the request's `seq`, so duplicated or late frames are
//! recognized on both sides. The frame kinds:
//!
//! | kind | frame              | dir | payload                                        |
//! |------|--------------------|-----|------------------------------------------------|
//! | 1    | `SessionOpen`      | c→s | —                                              |
//! | 2    | `SessionAccept`    | s→c | `u64 session`, [`ServerInfo`] (leads with the `u64` generation id) |
//! | 3    | `QueryOpen`        | c→s | `u64 session`                                  |
//! | 4    | `Ack`              | s→c | —                                              |
//! | 5    | `RoundRequest`     | c→s | `u64 session`, `u32 round`, `u32 k`, k × (`u16 file`, `u32 page`) |
//! | 6    | `RoundResponse`    | s→c | `u32 k`, `u32 page_size`, k × page bytes       |
//! | 7    | `DownloadRequest`  | c→s | `u64 session`, `u16 file`                      |
//! | 8    | `DownloadResponse` | s→c | `u32 n`, n bytes                               |
//! | 9    | `SessionClose`     | c→s | `u64 session`                                  |
//! | 10   | `Error`            | s→c | `u16 code`, `u32 n`, n message bytes           |
//! | 11   | `Chunk`            | s→c | `u32 index`, `u32 total`, `u32 n`, n bytes     |
//!
//! A `Chunk` frame carries one slice of a large server reply when the front
//! is configured with [`FrontConfig::chunk_bytes`]: the concatenated chunk
//! payloads (in index order, all echoing the request's `seq`) reassemble
//! into one complete inner frame — a full `RoundResponse` or
//! `DownloadResponse` with its own header and crc — so each chunk is
//! integrity-checked on the link by the outer crc and the whole reply is
//! checked once more by the inner one. Chunking bounds the peak bytes the
//! transport must buffer per reply; it never applies to client→server
//! frames, so the adversary-observable stream is unaffected.
//!
//! # Retransmission and idempotent replay
//!
//! The server keeps, per channel, the last accepted `seq` and the reply
//! bytes it produced for it. A request whose `seq` equals the last accepted
//! one is a retransmission (the response — or the request itself — was lost
//! in flight): the server re-sends the **cached reply verbatim**, touching
//! no store, so a shuffled store's epoch state never re-advances and the
//! page list re-served is bit-identical. A fresh request must carry exactly
//! `last + 1`; anything else is [`ERR_SEQ`]. The client side drives this
//! with a [`RetryPolicy`]: capped exponential backoff over a pluggable
//! [`FrameLink`] byte channel, resending the *same* frame bytes, so a
//! retransmission is indistinguishable (by content) from the original.
//!
//! # Versioning rules
//!
//! The version byte covers the whole frame set: any change to a payload
//! layout, a new frame kind, or a semantic change to an existing kind bumps
//! [`WIRE_VERSION`]. Version 2 added the crc and seq header fields plus the
//! replay semantics above; version 3 added the `Chunk` frame kind (chunked
//! response streaming); version 4 prefixed [`ServerInfo`] with the database
//! generation id (hot-swap staleness detection — see
//! [`crate::transport::GenerationSource`]). A server receiving a frame with an unknown
//! version (or bad magic) replies [`ERR_VERSION`]/[`ERR_MALFORMED`] and
//! serves nothing — there is no negotiation, by design: client and server
//! ship from one workspace, so a mismatch is a deployment bug to surface,
//! not paper over. A frame whose crc does not match is classified as
//! malformed (link corruption), never as a version mismatch — only a frame
//! with a *valid* crc and an unknown version byte earns [`ERR_VERSION`].
//!
//! # Generations and hot swap
//!
//! A front serves from a [`crate::transport::GenerationSource`]: a provider
//! of the *current* `(generation id, host)` pair. Static hosts are a
//! degenerate source that always answers generation 1, so the legacy
//! [`ServerFront::spawn`] path pays nothing. Each channel is **pinned** to
//! the generation current at its `SessionOpen`: every round, download and
//! replay of that session is served from the pinned host, so a mid-workload
//! swap never mixes generations inside one session (and a shuffled store's
//! epoch walk stays consistent — each generation owns its own stores). A
//! `SessionOpen` on a channel with no open session re-resolves the source,
//! which is the entire cutover: new sessions land on the new generation
//! while old sessions drain on the old one. The `SessionAccept` payload
//! leads with the generation id, so a client that held an expectation from
//! an earlier session detects staleness as a typed
//! [`PirError::StaleGeneration`] ([`WireChannel::handshake_expecting`])
//! instead of silently re-planning against changed data.
//!
//! # The adversary's view of the wire
//!
//! In the real protocol the page index inside a PIR request is hidden by the
//! PIR encoding itself; this simulation carries it in plaintext because the
//! server must actually serve the page. The *observable* projection of a
//! frame — what a curious server legitimately sees — is therefore the frame
//! bytes with the session id and every page index masked to zero (file ids,
//! fetch counts, round numbers, sequence numbers and frame kinds remain).
//! The server loop records exactly this projection per session — including
//! retransmissions, which the adversary also sees. Theorem 1 at the wire
//! level says the *logical* streams (deduplicated by `seq`, with every
//! retransmitted frame verified bit-identical to its original) are
//! byte-identical across sessions and queries, which `tests/leakage.rs`
//! enforces; retransmission is leakage-safe precisely because a resend
//! carries no new bytes and its timing depends only on the link, not the
//! query.

pub mod tcp;

use crate::error::PirError;
use crate::server::FileId;
use crate::spec::SystemSpec;
use crate::transport::{GenerationSource, ServeHost, StaticSource, Transport};
use crate::Result;
use privpath_storage::{crc32, ByteReader, ByteWriter, PageBuf};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Frame magic: "PW" little-endian.
pub const WIRE_MAGIC: u16 = 0x5057;
/// Current protocol version. Bump on any frame-layout or semantic change.
/// v2: per-frame CRC-32 + sequence numbers with idempotent server replay.
/// v3: `Chunk` frames — large server replies streamed as crc'd slices.
/// v4: `ServerInfo` leads with the database generation id (hot swap).
pub const WIRE_VERSION: u8 = 4;

/// Full header size: len + crc + magic + version + kind + seq.
const HEADER_BYTES: usize = 16;
/// Sentinel `seq` in an `Error` reply to a frame whose own seq could not be
/// parsed. Clients treat errors carrying it as applying to their current
/// outstanding request. Never generated as a request seq.
pub const SEQ_UNPARSED: u32 = u32::MAX;
/// Upper bound on a client→server frame the server will process. Request
/// frames are small (a round request is 6 bytes per fetch); anything larger
/// is garbage and is rejected before allocation-heavy parsing.
const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Advances a sequence number, skipping the two reserved values: 0 (the
/// pre-handshake state) and [`SEQ_UNPARSED`] (the error sentinel). Both
/// sides must agree on this walk — the client stamps requests with it and
/// the server computes the expected fresh seq with it — otherwise a channel
/// that wraps past `u32::MAX` desyncs: the client's `u32::MAX` request would
/// be indistinguishable from an unparseable-frame error echo, and the
/// `wrapping_add(1)` successor 0 is likewise reserved.
fn advance_seq(seq: u32) -> u32 {
    let mut next = seq.wrapping_add(1);
    while next == 0 || next == SEQ_UNPARSED {
        next = next.wrapping_add(1);
    }
    next
}

const K_SESSION_OPEN: u8 = 1;
const K_SESSION_ACCEPT: u8 = 2;
const K_QUERY_OPEN: u8 = 3;
const K_ACK: u8 = 4;
const K_ROUND_REQ: u8 = 5;
const K_ROUND_RESP: u8 = 6;
const K_DOWNLOAD_REQ: u8 = 7;
const K_DOWNLOAD_RESP: u8 = 8;
const K_SESSION_CLOSE: u8 = 9;
const K_ERROR: u8 = 10;
const K_CHUNK: u8 = 11;

/// Error frame codes.
pub const ERR_VERSION: u16 = 1;
/// Malformed frame (bad magic, crc mismatch, truncated payload, unknown
/// kind). The one *retryable* server error: the client sent a well-formed
/// frame, so malformed-at-server means the link corrupted it in flight.
pub const ERR_MALFORMED: u16 = 2;
/// Frame names a session the server does not have open for this client.
pub const ERR_SESSION: u16 = 3;
/// Round number went backwards or skipped ahead.
pub const ERR_ROUND_ORDER: u16 = 4;
/// Serving failed (unknown file, storage error, poisoned store).
pub const ERR_SERVE: u16 = 5;
/// Sequence number is neither the last accepted one (a retransmission) nor
/// the next fresh one.
pub const ERR_SEQ: u16 = 6;
/// The session's handler panicked; the server tore the session down and
/// stayed live for everyone else.
pub const ERR_INTERNAL: u16 = 7;
/// Serving failed with a *transient* storage fault (an interrupted disk
/// read). Retryable: the server deliberately did **not** cache this reply
/// as the request's sequence number, so the client's retransmission of the
/// same frame bytes re-executes the serve instead of replaying the failure.
pub const ERR_SERVE_TRANSIENT: u16 = 8;

/// What the server publishes to every client at session accept: the Table 2
/// system constants and the file table (name + page count per file). All of
/// it is public by construction — the client prices its fetches from the
/// spec and the header already names every file — so shipping it at open
/// leaks nothing and lets the client compute bit-identical simulated costs
/// on either side of the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerInfo {
    /// The database generation this server is serving (1 for a static host;
    /// a hot-swappable front stamps the generation current at session
    /// accept). Clients compare it against a held expectation to detect a
    /// swap ([`PirError::StaleGeneration`]).
    pub generation: u64,
    /// The server's system spec.
    pub spec: SystemSpec,
    /// Per-file metadata, indexed by `FileId.0`.
    pub files: Vec<FileInfo>,
}

/// One served file's public metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct FileInfo {
    /// Diagnostic name ("Fh", "Fl", "Fi", "Fd", "Fi|Fd").
    pub name: String,
    /// Page count.
    pub pages: u32,
}

impl ServerInfo {
    /// Snapshot of a server's public metadata, as generation 1 (the static
    /// single-generation case).
    pub fn of(server: &crate::server::PirServer) -> ServerInfo {
        Self::of_generation(server, 1)
    }

    /// Snapshot of a server's public metadata, stamped with an explicit
    /// generation id (hot-swappable fronts stamp each generation's entry).
    pub fn of_generation(server: &crate::server::PirServer, generation: u64) -> ServerInfo {
        let files = (0..server.num_files() as u16)
            .map(|i| FileInfo {
                name: server
                    .file_name(FileId(i))
                    .expect("file exists")
                    .to_string(),
                pages: server.file_pages(FileId(i)).expect("file exists"),
            })
            .collect();
        ServerInfo {
            generation,
            spec: server.spec().clone(),
            files,
        }
    }

    fn serialize(&self, w: &mut ByteWriter) {
        w.u64(self.generation);
        let s = &self.spec;
        w.u64(s.page_size as u64);
        w.f64(s.disk_seek_s);
        w.f64(s.disk_rate_bps);
        w.f64(s.scp_io_rate_bps);
        w.f64(s.crypto_rate_bps);
        w.f64(s.comm_rtt_s);
        w.f64(s.comm_rate_bps);
        w.u64(s.scp_memory_bytes);
        w.f64(s.scp_mem_factor);
        w.f64(s.pir_fixed_ops);
        w.f64(s.pir_ops_per_log2sq);
        w.u16(self.files.len() as u16);
        for f in &self.files {
            w.len_bytes(f.name.as_bytes());
            w.u32(f.pages);
        }
    }

    fn deserialize(r: &mut ByteReader<'_>) -> Result<ServerInfo> {
        let generation = r.u64()?;
        let spec = SystemSpec {
            page_size: r.u64()? as usize,
            disk_seek_s: r.f64()?,
            disk_rate_bps: r.f64()?,
            scp_io_rate_bps: r.f64()?,
            crypto_rate_bps: r.f64()?,
            comm_rtt_s: r.f64()?,
            comm_rate_bps: r.f64()?,
            scp_memory_bytes: r.u64()?,
            scp_mem_factor: r.f64()?,
            pir_fixed_ops: r.f64()?,
            pir_ops_per_log2sq: r.f64()?,
        };
        let n = r.u16()? as usize;
        let mut files = Vec::with_capacity(n);
        for _ in 0..n {
            let name = String::from_utf8_lossy(r.len_bytes()?).into_owned();
            let pages = r.u32()?;
            files.push(FileInfo { name, pages });
        }
        Ok(ServerInfo {
            generation,
            spec,
            files,
        })
    }
}

// ---------------------------------------------------------------- encoding

fn begin_frame(kind: u8, seq: u32) -> ByteWriter {
    let mut w = ByteWriter::new();
    w.u32(0); // length placeholder
    w.u32(0); // crc placeholder
    w.u16(WIRE_MAGIC);
    w.u8(WIRE_VERSION);
    w.u8(kind);
    w.u32(seq);
    w
}

fn finish_frame(mut w: ByteWriter) -> Vec<u8> {
    let len = (w.len() - 4) as u32;
    w.patch_u32(0, len);
    let crc = crc32(&w.as_slice()[8..]);
    w.patch_u32(4, crc);
    w.into_vec()
}

fn encode_session_open(seq: u32) -> Vec<u8> {
    finish_frame(begin_frame(K_SESSION_OPEN, seq))
}

fn encode_session_accept(seq: u32, session: u64, info: &ServerInfo) -> Vec<u8> {
    let mut w = begin_frame(K_SESSION_ACCEPT, seq);
    w.u64(session);
    info.serialize(&mut w);
    finish_frame(w)
}

fn encode_query_open(seq: u32, session: u64) -> Vec<u8> {
    let mut w = begin_frame(K_QUERY_OPEN, seq);
    w.u64(session);
    finish_frame(w)
}

fn encode_ack(seq: u32) -> Vec<u8> {
    finish_frame(begin_frame(K_ACK, seq))
}

/// Encodes a round request. `mask_pages` replaces every page index with 0 —
/// the observable projection the server records (the PIR encoding hides the
/// page index from a real server; see the module docs).
fn encode_round_request(
    seq: u32,
    session: u64,
    round: u32,
    fetches: &[(FileId, u32)],
    mask_pages: bool,
) -> Vec<u8> {
    let mut w = begin_frame(K_ROUND_REQ, seq);
    w.u64(session);
    w.u32(round);
    w.u32(fetches.len() as u32);
    for &(f, page) in fetches {
        w.u16(f.0);
        w.u32(if mask_pages { 0 } else { page });
    }
    finish_frame(w)
}

fn encode_round_response(seq: u32, pages: &[PageBuf], page_size: usize) -> Vec<u8> {
    let mut w = begin_frame(K_ROUND_RESP, seq);
    w.u32(pages.len() as u32);
    w.u32(page_size as u32);
    for p in pages {
        w.bytes(p.as_slice());
    }
    finish_frame(w)
}

fn encode_download_request(seq: u32, session: u64, file: FileId) -> Vec<u8> {
    let mut w = begin_frame(K_DOWNLOAD_REQ, seq);
    w.u64(session);
    w.u16(file.0);
    finish_frame(w)
}

fn encode_download_response(seq: u32, bytes: &[u8]) -> Vec<u8> {
    let mut w = begin_frame(K_DOWNLOAD_RESP, seq);
    w.len_bytes(bytes);
    finish_frame(w)
}

fn encode_session_close(seq: u32, session: u64) -> Vec<u8> {
    let mut w = begin_frame(K_SESSION_CLOSE, seq);
    w.u64(session);
    finish_frame(w)
}

fn encode_error(seq: u32, code: u16, message: &str) -> Vec<u8> {
    let mut w = begin_frame(K_ERROR, seq);
    w.u16(code);
    w.len_bytes(message.as_bytes());
    finish_frame(w)
}

/// Splits one server reply into the frames actually put on the link: the
/// reply itself when it fits `chunk_bytes` (or chunking is off), else a run
/// of `Chunk` frames whose concatenated payload slices reassemble into the
/// complete reply frame. Deterministic, so a retransmitted reply re-chunks
/// into bit-identical frames.
fn chunk_reply(reply: Vec<u8>, chunk_bytes: Option<usize>) -> Vec<Vec<u8>> {
    let cap = match chunk_bytes {
        Some(cap) if cap > 0 && reply.len() > cap => cap,
        _ => return vec![reply],
    };
    let seq = u32::from_le_bytes([reply[12], reply[13], reply[14], reply[15]]);
    let total = reply.len().div_ceil(cap) as u32;
    reply
        .chunks(cap)
        .enumerate()
        .map(|(i, part)| {
            let mut w = begin_frame(K_CHUNK, seq);
            w.u32(i as u32);
            w.u32(total);
            w.len_bytes(part);
            finish_frame(w)
        })
        .collect()
}

// ---------------------------------------------------------------- decoding

fn transport_err<T>(msg: impl Into<String>) -> Result<T> {
    Err(PirError::Transport(msg.into()))
}

fn corrupt_err<T>(msg: impl Into<String>) -> Result<T> {
    Err(PirError::CorruptFrame(msg.into()))
}

/// One frame parsed off a byte stream.
#[derive(Debug)]
pub struct Frame<'a> {
    /// Frame kind byte.
    pub kind: u8,
    /// Sequence number (request seq, or the echoed seq in a reply).
    pub seq: u32,
    /// Payload after the header.
    pub payload: &'a [u8],
    /// Bytes after this frame (for concatenated streams).
    pub rest: &'a [u8],
}

/// Splits one frame off `bytes`: validates length, crc, magic and version,
/// and returns the parsed [`Frame`]. Structural failures (truncation, crc
/// mismatch, bad magic) are [`PirError::CorruptFrame`] — retryable, because
/// re-requesting makes the peer resend intact bytes — while a *valid* frame
/// claiming an unknown version is a fatal [`PirError::Transport`]
/// deployment error. Never panics, whatever the input.
pub fn split_frame(bytes: &[u8]) -> Result<Frame<'_>> {
    if bytes.len() < HEADER_BYTES {
        return corrupt_err("truncated frame header");
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if len < HEADER_BYTES - 4 || bytes.len() - 4 < len {
        return corrupt_err(format!(
            "frame length {len} does not fit buffer of {}",
            bytes.len()
        ));
    }
    let crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if crc32(&bytes[8..4 + len]) != crc {
        return corrupt_err("frame crc mismatch");
    }
    let magic = u16::from_le_bytes([bytes[8], bytes[9]]);
    if magic != WIRE_MAGIC {
        return corrupt_err(format!("bad frame magic {magic:#06x}"));
    }
    let version = bytes[10];
    if version != WIRE_VERSION {
        return Err(PirError::Transport(format!(
            "unsupported wire version {version} (supported: {WIRE_VERSION})"
        )));
    }
    let kind = bytes[11];
    let seq = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    Ok(Frame {
        kind,
        seq,
        payload: &bytes[HEADER_BYTES..4 + len],
        rest: &bytes[4 + len..],
    })
}

/// True if `bytes` is best explained as a well-formed frame from a
/// different protocol version (a deployment bug), as opposed to link
/// corruption: either a pre-v2 layout (magic at offset 4) or a v2-layout
/// frame whose crc *validates* but whose version byte is unknown. A crc
/// mismatch always classifies as corruption, so a bit flip on the version
/// byte stays retryable.
fn looks_like_version_mismatch(bytes: &[u8]) -> bool {
    if bytes.len() >= HEADER_BYTES && bytes[8..10] == WIRE_MAGIC.to_le_bytes() {
        if bytes[10] == WIRE_VERSION {
            return false;
        }
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        let crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        return len >= HEADER_BYTES - 4
            && bytes.len() - 4 >= len
            && crc32(&bytes[8..4 + len]) == crc;
    }
    // pre-v2 layout: [len][magic][version][kind]
    bytes.len() >= 7 && bytes[4..6] == WIRE_MAGIC.to_le_bytes() && bytes[6] != WIRE_VERSION
}

// ------------------------------------------------------- observable stream

/// One adversary-observable wire event, parsed back from a recorded
/// (masked) frame stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObservedEvent {
    /// A client opened a session.
    SessionOpen,
    /// A client announced a new query (the round-1 connection exchange).
    QueryOpen,
    /// One round exchange: the round number and the *files* fetched, in
    /// order. Page indices are not part of the view (masked to zero in the
    /// recorded stream) — that is the PIR guarantee.
    Round {
        /// Protocol round this exchange belongs to (several exchanges may
        /// share a round — sub-round batches).
        round: u32,
        /// File of each fetch, in issue order.
        fetches: Vec<FileId>,
    },
    /// A full-file download (the header).
    Download(FileId),
    /// The client closed the session.
    SessionClose,
}

fn decode_observed_event(kind: u8, payload: &[u8]) -> Result<ObservedEvent> {
    let mut r = ByteReader::new(payload);
    Ok(match kind {
        K_SESSION_OPEN => ObservedEvent::SessionOpen,
        K_QUERY_OPEN => ObservedEvent::QueryOpen,
        K_ROUND_REQ => {
            let _session = r.u64().map_err(PirError::from)?;
            let round = r.u32().map_err(PirError::from)?;
            let k = r.u32().map_err(PirError::from)? as usize;
            let mut fetches = Vec::with_capacity(k.min(payload.len() / 6 + 1));
            for _ in 0..k {
                let f = r.u16().map_err(PirError::from)?;
                let _page = r.u32().map_err(PirError::from)?;
                fetches.push(FileId(f));
            }
            ObservedEvent::Round { round, fetches }
        }
        K_DOWNLOAD_REQ => {
            let _session = r.u64().map_err(PirError::from)?;
            ObservedEvent::Download(FileId(r.u16().map_err(PirError::from)?))
        }
        K_SESSION_CLOSE => ObservedEvent::SessionClose,
        k => return transport_err(format!("unexpected kind {k} in observed stream")),
    })
}

/// Parses a recorded observable stream (concatenated masked frames) back
/// into the **logical** event sequence for audits: retransmissions — frames
/// carrying the same `seq` as their predecessor — are deduplicated after
/// verifying they are *bit-identical* to the original (a "retransmission"
/// that differs would be new information flowing to the server, i.e. a
/// leak, and is reported as an error). Sequence numbers may skip forward
/// (rejected frames are not recorded) but never move backwards.
pub fn parse_observed(mut stream: &[u8]) -> Result<Vec<ObservedEvent>> {
    let mut events = Vec::new();
    let mut last: Option<(u32, Vec<u8>)> = None;
    while !stream.is_empty() {
        let f = split_frame(stream)?;
        let frame_bytes = &stream[..stream.len() - f.rest.len()];
        let rest = f.rest;
        if let Some((last_seq, last_bytes)) = &last {
            if f.seq == *last_seq {
                if frame_bytes != last_bytes.as_slice() {
                    return transport_err(format!(
                        "retransmission of seq {} differs from the original frame (leak)",
                        f.seq
                    ));
                }
                stream = rest;
                continue;
            }
            if f.seq < *last_seq {
                return transport_err(format!(
                    "observed seq went backwards: {} after {last_seq}",
                    f.seq
                ));
            }
        }
        let event = decode_observed_event(f.kind, f.payload)?;
        last = Some((f.seq, frame_bytes.to_vec()));
        events.push(event);
        stream = rest;
    }
    Ok(events)
}

/// Parses a recorded observable stream *without* deduplication: one
/// `(seq, event)` per recorded frame, retransmissions included. Used by
/// tests asserting on raw retransmission structure.
pub fn parse_observed_raw(mut stream: &[u8]) -> Result<Vec<(u32, ObservedEvent)>> {
    let mut events = Vec::new();
    while !stream.is_empty() {
        let f = split_frame(stream)?;
        events.push((f.seq, decode_observed_event(f.kind, f.payload)?));
        stream = f.rest;
    }
    Ok(events)
}

// ------------------------------------------------------------ server front

/// Per-session accounting the server keeps on its side of the wire (the
/// client keeps its own meter; the two views must agree, and tests check
/// they do).
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// Queries observed (QueryOpen frames).
    pub queries: u64,
    /// Protocol rounds served (round-number advances; the query-open counts
    /// as round 1).
    pub rounds: u64,
    /// PIR page fetches served.
    pub fetches: u64,
    /// Full-file downloads served.
    pub downloads: u64,
    /// Frame bytes received from the client.
    pub bytes_in: u64,
    /// Frame bytes sent back to the client.
    pub bytes_out: u64,
    /// Retransmitted requests answered from the reply cache (no store
    /// access, no epoch advance).
    pub retransmits: u64,
    /// Rounds of this session that were served from a sweep shared with at
    /// least one *other* session's round (see
    /// [`FrontConfig::coalesce_window`]). Purely server-side accounting:
    /// the reply and the observable stream are unaffected.
    pub coalesced_rounds: u64,
    /// Frames that failed structural validation (crc mismatch, truncation).
    pub malformed: u64,
    /// Handler panics absorbed on this session (each one tears the session
    /// down; the loop survives).
    pub panics: u64,
    /// True once the session closed (explicitly or at shutdown).
    pub closed: bool,
    /// True if the front evicted the session for idling past the
    /// [`FrontConfig::idle_timeout`] deadline.
    pub evicted: bool,
    /// The recorded observable projection of every client→server frame, in
    /// order — retransmissions included, since the adversary sees those too
    /// (see the module docs for what is masked). Bounded by
    /// [`OBSERVED_CAP_BYTES`] so long-running fronts don't grow without
    /// limit; `observed_truncated` reports when the cap was hit (recording
    /// stops at a frame boundary, the counters above keep counting).
    pub observed: Vec<u8>,
    /// True if `observed` stopped recording at the cap.
    pub observed_truncated: bool,
}

/// Per-session cap on the recorded observable stream (the leakage audits
/// read a few kilobytes; this only exists to bound server memory on
/// long-running fronts).
pub const OBSERVED_CAP_BYTES: usize = 16 << 20;

impl SessionStats {
    fn record_observed(&mut self, masked: &[u8]) {
        if self.observed_truncated || self.observed.len() + masked.len() > OBSERVED_CAP_BYTES {
            self.observed_truncated = true;
            return;
        }
        self.observed.extend_from_slice(masked);
    }
}

#[derive(Default)]
struct FrontShared {
    sessions: BTreeMap<u64, SessionStats>,
}

/// Poison-recovering lock: a panicking session handler must not take the
/// accounting table (and with it the whole front) down, so a poisoned
/// mutex's data is recovered and used as-is — the table holds only
/// monotonic counters and append-only streams, all valid at any
/// interleaving point.
fn lock_shared(shared: &Mutex<FrontShared>) -> MutexGuard<'_, FrontShared> {
    shared
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

pub(crate) enum ToServer {
    Connect {
        client: u64,
        resp: mpsc::Sender<Vec<u8>>,
    },
    Frame {
        client: u64,
        bytes: Vec<u8>,
    },
    Disconnect {
        client: u64,
    },
    Shutdown,
}

/// Degradation and throughput knobs for a [`ServerFront`].
#[derive(Debug, Clone, Default)]
pub struct FrontConfig {
    /// Evict sessions that have not sent a frame for this long: the session
    /// is marked closed + evicted and the client observes a severed channel
    /// on its next request. `None` (the default) disables eviction.
    pub idle_timeout: Option<Duration>,
    /// Hold a coalescable round request (every fetch targets a
    /// linear-scan-served file) for up to this long, merging concurrently
    /// pending rounds from *other* sessions into one batched sweep before
    /// serving them all. `None` (the default) serves every round
    /// immediately — the exact legacy behavior. The paper charges the
    /// server one linear scan per round, so a shared sweep divides the scan
    /// cost across every client in the batch; replies are demultiplexed per
    /// session and each client's observable stream and reply bytes are
    /// bit-identical to a solo run (see the leakage differential in
    /// `tests/leakage.rs`).
    pub coalesce_window: Option<Duration>,
    /// Flush a pending coalesced batch as soon as it holds this many page
    /// fetches, without waiting out the window. `0` means no fetch-count
    /// bound (the window alone flushes).
    pub coalesce_max_batch: usize,
    /// Stream server replies larger than this as [`K_CHUNK`]-framed slices
    /// (each with its own crc), bounding the peak bytes a transport buffers
    /// per reply. `None` (the default) sends every reply as one frame.
    pub chunk_bytes: Option<usize>,
}

/// The multi-client server front end: one loop thread owns the database
/// host and serves every connected [`WireChannel`], multiplexing frames
/// over byte channels. Sessions are tracked in a per-client session table
/// with server-side accounting.
///
/// The loop degrades gracefully rather than dying: a panicking handler
/// tears down only the offending session (the panic is caught, the client
/// gets [`ERR_INTERNAL`], everyone else keeps being served), poisoned locks
/// are recovered instead of cascading, idle sessions can be evicted on a
/// deadline ([`FrontConfig::idle_timeout`]), and
/// [`ServerFront::shutdown`] drains every frame already queued before the
/// loop exits, so in-flight rounds complete.
pub struct ServerFront {
    to_server: mpsc::Sender<ToServer>,
    shared: Arc<Mutex<FrontShared>>,
    next_client: AtomicU64,
    handle: Option<JoinHandle<()>>,
}

impl ServerFront {
    /// Spawns the server loop over `host` (anything that can reach a
    /// [`crate::PirServer`] — the core crate's `Database` implements
    /// [`ServeHost`], so a whole built database can be fronted).
    pub fn spawn<H: ServeHost + Send + Sync + 'static>(host: H) -> ServerFront {
        Self::spawn_with(host, FrontConfig::default())
    }

    /// Spawns the server loop with explicit degradation knobs. The host is
    /// wrapped as a never-swapping generation-1 [`StaticSource`].
    pub fn spawn_with<H: ServeHost + Send + Sync + 'static>(
        host: H,
        cfg: FrontConfig,
    ) -> ServerFront {
        Self::spawn_swappable(Arc::new(StaticSource::new(host)), cfg)
    }

    /// Spawns the server loop over a hot-swappable [`GenerationSource`]:
    /// each session is pinned to the generation current at its
    /// `SessionOpen` and drains on it; sessions opened after the source
    /// publishes a new generation serve from the new one. See the module
    /// docs ("Generations and hot swap").
    pub fn spawn_swappable(source: Arc<dyn GenerationSource>, cfg: FrontConfig) -> ServerFront {
        let (tx, rx) = mpsc::channel();
        let shared = Arc::new(Mutex::new(FrontShared::default()));
        let loop_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || server_loop(source, rx, loop_shared, cfg));
        ServerFront {
            to_server: tx,
            shared,
            next_client: AtomicU64::new(1),
            handle: Some(handle),
        }
    }

    /// Registers a new client with the loop and returns its raw frame link
    /// (no handshake performed). Chaos wrappers interpose here, between the
    /// link and the [`WireChannel`] built by [`WireChannel::handshake`].
    pub fn raw_link(&self) -> Result<ChannelLink> {
        let (to_server, client, resp) = self.raw_parts()?;
        Ok(ChannelLink {
            to_server,
            resp,
            client,
        })
    }

    /// Registers a new client and returns the raw channel halves, for
    /// transports (the TCP bridge) that pump the two directions from
    /// separate threads and manage disconnect notification themselves —
    /// unlike [`ChannelLink`], whose `Drop` sends the disconnect.
    pub(crate) fn raw_parts(
        &self,
    ) -> Result<(mpsc::Sender<ToServer>, u64, mpsc::Receiver<Vec<u8>>)> {
        let client = self.next_client.fetch_add(1, Ordering::Relaxed);
        let (resp_tx, resp_rx) = mpsc::channel();
        self.to_server
            .send(ToServer::Connect {
                client,
                resp: resp_tx,
            })
            .map_err(|_| PirError::Transport("server front is shut down".into()))?;
        Ok((self.to_server.clone(), client, resp_rx))
    }

    /// Connects a new client: registers its response channel and performs
    /// the `SessionOpen`/`SessionAccept` handshake. No retries — the legacy
    /// perfect-link behavior ([`RetryPolicy::none`]).
    pub fn connect(&self) -> Result<WireChannel> {
        self.connect_with(RetryPolicy::none())
    }

    /// Connects with an explicit retry policy (applies to the handshake and
    /// every subsequent request on the channel).
    pub fn connect_with(&self, policy: RetryPolicy) -> Result<WireChannel> {
        WireChannel::handshake(Box::new(self.raw_link()?), policy)
    }

    /// Connects while holding a generation expectation: if the server's
    /// accept carries a different generation id than `expected`, the
    /// handshake fails with the typed retryable
    /// [`PirError::StaleGeneration`] — the caller refreshes its expectation
    /// (re-plans against the new generation) and reconnects.
    pub fn connect_expecting(&self, policy: RetryPolicy, expected: u64) -> Result<WireChannel> {
        WireChannel::handshake_expecting(Box::new(self.raw_link()?), policy, Some(expected))
    }

    /// Snapshot of the per-session accounting table, keyed by session id.
    pub fn session_stats(&self) -> BTreeMap<u64, SessionStats> {
        lock_shared(&self.shared).sessions.clone()
    }

    /// The recorded observable frame stream of one session (None if the
    /// session id was never opened).
    pub fn observed_stream(&self, session: u64) -> Option<Vec<u8>> {
        lock_shared(&self.shared)
            .sessions
            .get(&session)
            .map(|s| s.observed.clone())
    }

    /// Stops the loop thread gracefully and returns the final session
    /// table. Frames already queued when the shutdown lands are drained and
    /// served first (in-flight rounds complete); sessions still open are
    /// then marked closed and their clients get a transport error on their
    /// next request instead of a hang.
    pub fn shutdown(mut self) -> BTreeMap<u64, SessionStats> {
        let _ = self.to_server.send(ToServer::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        lock_shared(&self.shared).sessions.clone()
    }
}

impl Drop for ServerFront {
    fn drop(&mut self) {
        let _ = self.to_server.send(ToServer::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn decode_unexpected<T>(kind: u8, payload: &[u8], wanted: &str) -> Result<T> {
    if kind == K_ERROR {
        return Err(decode_error_frame(payload));
    }
    transport_err(format!("expected {wanted}, got frame kind {kind}"))
}

/// Decodes an `Error` frame payload into the typed error it stands for:
/// [`ERR_MALFORMED`] means the link corrupted our well-formed request
/// (retryable [`PirError::CorruptFrame`]); [`ERR_SERVE_TRANSIENT`] means a
/// transient storage fault the server did not cache (retryable
/// [`PirError::TransientIo`] — the retransmission re-executes the serve);
/// every other code is a fatal [`PirError::Transport`].
fn decode_error_frame(payload: &[u8]) -> PirError {
    let mut r = ByteReader::new(payload);
    let Ok(code) = r.u16() else {
        return PirError::CorruptFrame("truncated error frame".into());
    };
    let msg = r
        .len_bytes()
        .map(|b| String::from_utf8_lossy(b).into_owned())
        .unwrap_or_default();
    match code {
        ERR_MALFORMED => PirError::CorruptFrame(format!("server error {code}: {msg}")),
        ERR_SERVE_TRANSIENT => PirError::TransientIo(format!("server error {code}: {msg}")),
        _ => PirError::Transport(format!("server error {code}: {msg}")),
    }
}

/// One resolved generation as the loop serves it: the id, the host pinned
/// alive for as long as any session still drains on it, and the metadata
/// derived from it once (not per frame). Sessions hold an `Arc<GenEntry>`,
/// so an old generation's stores stay allocated exactly until the last
/// pinned session is gone.
struct GenEntry {
    id: u64,
    host: Arc<dyn ServeHost + Send + Sync>,
    info: ServerInfo,
    page_size: usize,
}

impl GenEntry {
    fn new(id: u64, host: Arc<dyn ServeHost + Send + Sync>) -> GenEntry {
        let (info, page_size) = {
            let server = host.pir_server();
            (
                ServerInfo::of_generation(server, id),
                server.spec().page_size,
            )
        };
        GenEntry {
            id,
            host,
            info,
            page_size,
        }
    }

    fn resolve(source: &dyn GenerationSource) -> Arc<GenEntry> {
        let (id, host) = source.current_generation();
        Arc::new(GenEntry::new(id, host))
    }

    fn server(&self) -> &crate::server::PirServer {
        self.host.pir_server()
    }
}

struct ClientState {
    resp: mpsc::Sender<Vec<u8>>,
    session: Option<u64>,
    /// The generation this channel is pinned to: resolved at connect and
    /// re-resolved at each `SessionOpen` on a channel with no open session,
    /// never mid-session — a swap must not mix generations inside one
    /// session.
    gen: Arc<GenEntry>,
    last_round: u32,
    /// Sequence of the last accepted request (0 = none yet) and the exact
    /// reply bytes produced for it — the replay cache answering
    /// retransmissions without touching any store.
    last_seq: u32,
    last_reply: Vec<u8>,
    /// The masked observation recorded for the last accepted request, if it
    /// was recorded, so a retransmission is observed again (the adversary
    /// sees it) on the right session's stream.
    last_observed: Option<(u64, Vec<u8>)>,
    /// When the client last sent a frame (idle-eviction clock).
    last_active: Instant,
}

fn server_loop(
    source: Arc<dyn GenerationSource>,
    rx: mpsc::Receiver<ToServer>,
    shared: Arc<Mutex<FrontShared>>,
    cfg: FrontConfig,
) {
    let mut latest = GenEntry::resolve(&*source);
    let mut clients: BTreeMap<u64, ClientState> = BTreeMap::new();
    let mut next_session: u64 = 1;
    // serving scratch, reused across every client and frame
    let mut reqs: Vec<(FileId, u32)> = Vec::new();
    let mut run_pages: Vec<u32> = Vec::new();
    let mut arena: Vec<PageBuf> = Vec::new();
    // rounds parked in the coalesce window, flushed as one batched sweep
    let mut pending: Vec<PendingRound> = Vec::new();
    let mut flush_at: Option<Instant> = None;
    let max_batch = match cfg.coalesce_max_batch {
        0 => usize::MAX,
        n => n,
    };

    // Eviction needs the loop to wake even when no frames arrive — and it
    // must also run while frames *do* arrive (a busy neighbour must not
    // keep an idle session alive), so the deadline is rechecked between
    // frames too, rate-limited to one sweep per tick.
    let tick = cfg
        .idle_timeout
        .map(|t| (t / 4).clamp(Duration::from_millis(5), Duration::from_millis(250)));
    let mut last_sweep = Instant::now();

    let mut draining = false;
    loop {
        if let Some(tick) = tick {
            if !draining && last_sweep.elapsed() >= tick {
                // A round parked by a client that is about to be evicted
                // (or whose channel already vanished) must not stall its
                // co-parked neighbours until window expiry: flush the batch
                // first, mirroring the flush-on-disconnect path, then
                // evict. The idle owner still gets its reply if its channel
                // is alive — eviction severs the channel, not the frames
                // already owed to it.
                if let Some(deadline) = cfg.idle_timeout {
                    let now = Instant::now();
                    let stalling = pending.iter().any(|p| {
                        clients
                            .get(&p.client)
                            .is_none_or(|s| now.duration_since(s.last_active) >= deadline)
                    });
                    if stalling {
                        flush_pending(
                            &shared,
                            &mut clients,
                            &mut pending,
                            &mut run_pages,
                            &mut arena,
                            cfg.chunk_bytes,
                        );
                        flush_at = None;
                    }
                }
                evict_idle(&mut clients, &shared, cfg.idle_timeout);
                last_sweep = Instant::now();
            }
        }
        let msg = if draining {
            // Shutdown received: serve everything already queued, then stop.
            match rx.try_recv() {
                Ok(m) => m,
                Err(_) => break,
            }
        } else {
            // Sleep until the next frame, capped by the eviction tick and
            // by the coalesce-window deadline when a batch is parked.
            let wait = match (tick, flush_at) {
                (None, None) => None,
                (Some(t), None) => Some(t),
                (t, Some(at)) => {
                    let until = at.saturating_duration_since(Instant::now());
                    Some(t.map_or(until, |t| t.min(until)))
                }
            };
            match wait {
                None => match rx.recv() {
                    Ok(m) => m,
                    Err(_) => break,
                },
                Some(w) => match rx.recv_timeout(w) {
                    Ok(m) => m,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if flush_at.is_some_and(|at| Instant::now() >= at) {
                            flush_pending(
                                &shared,
                                &mut clients,
                                &mut pending,
                                &mut run_pages,
                                &mut arena,
                                cfg.chunk_bytes,
                            );
                            flush_at = None;
                        }
                        continue;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                },
            }
        };
        match msg {
            ToServer::Connect { client, resp } => {
                clients.insert(
                    client,
                    ClientState {
                        resp,
                        session: None,
                        gen: Arc::clone(&latest),
                        last_round: 0,
                        last_seq: 0,
                        last_reply: Vec::new(),
                        last_observed: None,
                        last_active: Instant::now(),
                    },
                );
            }
            ToServer::Disconnect { client } => {
                if pending.iter().any(|p| p.client == client) {
                    // serve the parked batch before the participant goes
                    // away, so neighbours' rounds are unaffected
                    flush_pending(
                        &shared,
                        &mut clients,
                        &mut pending,
                        &mut run_pages,
                        &mut arena,
                        cfg.chunk_bytes,
                    );
                    flush_at = None;
                }
                if let Some(state) = clients.remove(&client) {
                    if let Some(sid) = state.session {
                        if let Some(stats) = lock_shared(&shared).sessions.get_mut(&sid) {
                            stats.closed = true;
                        }
                    }
                }
            }
            ToServer::Shutdown => {
                flush_pending(
                    &shared,
                    &mut clients,
                    &mut pending,
                    &mut run_pages,
                    &mut arena,
                    cfg.chunk_bytes,
                );
                flush_at = None;
                draining = true;
            }
            ToServer::Frame { client, bytes } => {
                if let Some(idx) = pending.iter().position(|p| p.client == client) {
                    if pending[idx].bytes == bytes {
                        // Retransmission of the parked request (the client's
                        // attempt window elapsed inside the coalesce
                        // window): the flush will answer it; resending now
                        // would serve the round twice.
                        let sid = pending[idx].sid;
                        if let Some(stats) = lock_shared(&shared).sessions.get_mut(&sid) {
                            stats.retransmits += 1;
                        }
                        if let Some(state) = clients.get_mut(&client) {
                            state.last_active = Instant::now();
                        }
                        continue;
                    }
                    // Any other frame from a client with a parked round
                    // would reorder its channel: serve the batch first.
                    flush_pending(
                        &shared,
                        &mut clients,
                        &mut pending,
                        &mut run_pages,
                        &mut arena,
                        cfg.chunk_bytes,
                    );
                    flush_at = None;
                }
                // The cutover point: a SessionOpen on a channel with no open
                // session re-resolves the source and re-pins the channel, so
                // sessions opened after a swap serve the new generation.
                // The open-session guard keeps a *retransmitted* SessionOpen
                // from re-pinning a live session; the unvalidated kind-byte
                // peek is only a hint — worst case a malformed frame
                // re-pins a sessionless channel, which changes nothing.
                if bytes.len() >= HEADER_BYTES && bytes[11] == K_SESSION_OPEN {
                    if let Some(state) = clients.get_mut(&client) {
                        if state.session.is_none() {
                            let (cur_id, cur_host) = source.current_generation();
                            if cur_id != latest.id {
                                latest = Arc::new(GenEntry::new(cur_id, cur_host));
                            }
                            state.gen = Arc::clone(&latest);
                        }
                    }
                }
                if cfg.coalesce_window.is_some() && !draining {
                    let Some(state) = clients.get_mut(&client) else {
                        continue; // unknown client: nowhere to reply
                    };
                    state.last_active = Instant::now();
                    let gen = Arc::clone(&state.gen);
                    // A batch never spans generations: a parked sweep from
                    // an older generation flushes before a newer-generation
                    // round may park (swaps are rare; the lost batching
                    // window is one flush).
                    if pending.first().is_some_and(|p| p.gen.id != gen.id) {
                        flush_pending(
                            &shared,
                            &mut clients,
                            &mut pending,
                            &mut run_pages,
                            &mut arena,
                            cfg.chunk_bytes,
                        );
                        flush_at = None;
                    }
                    let Some(state) = clients.get_mut(&client) else {
                        continue; // the flush found this client's channel dead
                    };
                    if let Some(p) = try_defer_round(&gen, state, client, &bytes) {
                        pending.push(p);
                        if flush_at.is_none() {
                            flush_at =
                                Some(Instant::now() + cfg.coalesce_window.unwrap_or_default());
                        }
                        if pending.iter().map(|p| p.reqs.len()).sum::<usize>() >= max_batch {
                            flush_pending(
                                &shared,
                                &mut clients,
                                &mut pending,
                                &mut run_pages,
                                &mut arena,
                                cfg.chunk_bytes,
                            );
                            flush_at = None;
                        }
                        continue;
                    }
                }
                let Some(state) = clients.get_mut(&client) else {
                    continue; // unknown client: nowhere to reply
                };
                state.last_active = Instant::now();
                let session_before = state.session;
                let gen = Arc::clone(&state.gen);
                // A panicking handler (a buggy or sabotaged store) must not
                // kill the loop: catch it, tear down this session only, and
                // keep serving everyone else. The scratch vectors are safe
                // to reuse — every handler clears them before use.
                let reply = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_frame(
                        &gen,
                        &shared,
                        state,
                        &mut next_session,
                        &bytes,
                        &mut reqs,
                        &mut run_pages,
                        &mut arena,
                    )
                }));
                match reply {
                    Ok(reply) => {
                        let frames = chunk_reply(reply, cfg.chunk_bytes);
                        let out_len: usize = frames.iter().map(|f| f.len()).sum();
                        // attribute bytes to the frame's session: the one
                        // open before the frame (covers SessionClose, which
                        // clears it) or the one it just opened (SessionOpen)
                        if let Some(sid) = session_before.or(state.session) {
                            let mut lock = lock_shared(&shared);
                            if let Some(stats) = lock.sessions.get_mut(&sid) {
                                stats.bytes_in += bytes.len() as u64;
                                stats.bytes_out += out_len as u64;
                            }
                        }
                        let mut dead = false;
                        for f in frames {
                            if state.resp.send(f).is_err() {
                                dead = true;
                                break;
                            }
                        }
                        if dead {
                            clients.remove(&client);
                        }
                    }
                    Err(_) => {
                        if let Some(sid) = session_before.or(state.session) {
                            let mut lock = lock_shared(&shared);
                            if let Some(stats) = lock.sessions.get_mut(&sid) {
                                stats.panics += 1;
                                stats.closed = true;
                            }
                        }
                        let _ = state.resp.send(encode_error(
                            SEQ_UNPARSED,
                            ERR_INTERNAL,
                            "handler panicked; session torn down",
                        ));
                        clients.remove(&client);
                    }
                }
            }
        }
    }
    // a batch can still be parked if every sender vanished mid-window
    flush_pending(
        &shared,
        &mut clients,
        &mut pending,
        &mut run_pages,
        &mut arena,
        cfg.chunk_bytes,
    );
    // graceful shutdown: mark every open session closed
    let mut lock = lock_shared(&shared);
    for state in clients.values() {
        if let Some(sid) = state.session {
            if let Some(stats) = lock.sessions.get_mut(&sid) {
                stats.closed = true;
            }
        }
    }
}

/// One round request parked in the coalesce window, with everything the
/// flush needs to mirror the immediate path exactly: the observation is
/// recorded, the stats advance and the replay cache updates at flush time,
/// in arrival order, so a coalesced session's stream and counters are
/// bit-identical to a solo run's.
struct PendingRound {
    client: u64,
    sid: u64,
    seq: u32,
    /// The generation the owning session is pinned to. Every round in one
    /// batch shares it (the loop flushes before parking across a swap), so
    /// the flush serves from exactly one generation's stores.
    gen: Arc<GenEntry>,
    /// Original frame bytes (retransmit detection + `bytes_in` accounting).
    bytes: Vec<u8>,
    /// Whether the round number advanced (counts toward `rounds`).
    new_round: bool,
    /// The parsed fetch list, pre-validated against the file table.
    reqs: Vec<(FileId, u32)>,
    /// The masked observation, recorded at flush.
    masked: Vec<u8>,
}

/// Decides whether a frame can join the coalesce batch: it must be a fresh,
/// well-formed `RoundRequest` for this channel's open session, in round
/// order, whose every fetch is an in-range page of a linear-scan-served
/// file. Anything else — retransmissions, protocol errors, stateful stores
/// (a shuffled store's epoch must advance per-client, in order), pages out
/// of range (one client's bad fetch must never fail a neighbour's batch) —
/// returns `None` and takes the immediate path, which produces the
/// authoritative reply. On success the round-order cursor advances; every
/// other side effect happens at flush.
fn try_defer_round(
    gen: &Arc<GenEntry>,
    state: &mut ClientState,
    client: u64,
    bytes: &[u8],
) -> Option<PendingRound> {
    let server = gen.server();
    if bytes.len() > MAX_REQUEST_BYTES {
        return None;
    }
    let frame = split_frame(bytes).ok()?;
    if frame.kind != K_ROUND_REQ || !frame.rest.is_empty() {
        return None;
    }
    let seq = frame.seq;
    if seq == 0 || seq == SEQ_UNPARSED || seq != advance_seq(state.last_seq) {
        return None;
    }
    let mut r = ByteReader::new(frame.payload);
    let (sid, round, k) = match (r.u64(), r.u32(), r.u32()) {
        (Ok(s), Ok(ro), Ok(k)) => (s, ro, k as usize),
        _ => return None,
    };
    if state.session != Some(sid) {
        return None;
    }
    let mut reqs = Vec::with_capacity(k.min(bytes.len() / 6 + 1));
    for _ in 0..k {
        match (r.u16(), r.u32()) {
            (Ok(f), Ok(p)) => reqs.push((FileId(f), p)),
            _ => return None,
        }
    }
    if reqs.is_empty() {
        return None;
    }
    if round != state.last_round && round != state.last_round + 1 {
        return None;
    }
    for &(f, page) in &reqs {
        if !server.file_coalescable(f) || page >= server.file_pages(f).ok()? {
            return None;
        }
    }
    let new_round = round == state.last_round + 1;
    state.last_round = round;
    let masked = encode_round_request(seq, 0, round, &reqs, true);
    Some(PendingRound {
        client,
        sid,
        seq,
        gen: Arc::clone(gen),
        bytes: bytes.to_vec(),
        new_round,
        reqs,
        masked,
    })
}

/// Serves a parked batch as one merged sweep and demultiplexes the replies.
/// The flat fetch list is stably grouped by file, so the batched serve path
/// folds every same-file request — across sessions — into a single store
/// `fetch_batch` (for a linear-scan store: one pass over the file). Each
/// participant is then settled in arrival order exactly as the immediate
/// path would have: observation recorded, stats advanced, replay cache
/// updated, reply (chunked if configured) sent.
fn flush_pending(
    shared: &Arc<Mutex<FrontShared>>,
    clients: &mut BTreeMap<u64, ClientState>,
    pending: &mut Vec<PendingRound>,
    run_pages: &mut Vec<u32>,
    arena: &mut Vec<PageBuf>,
    chunk_bytes: Option<usize>,
) {
    if pending.is_empty() {
        return;
    }
    let batch: Vec<PendingRound> = std::mem::take(pending);
    // single-generation invariant: the park path flushes before admitting a
    // round from a different generation, so batch[0] speaks for all
    let gen = Arc::clone(&batch[0].gen);
    let server = gen.server();
    let page_size = gen.page_size;
    // provenance-tagged flat fetch list: (file, page, entry, slot)
    let mut flat: Vec<(FileId, u32, usize, usize)> = Vec::new();
    for (e, p) in batch.iter().enumerate() {
        for (s, &(f, page)) in p.reqs.iter().enumerate() {
            flat.push((f, page, e, s));
        }
    }
    // stable by file: same-file requests become one run, per-entry fetch
    // order within a file is preserved
    flat.sort_by_key(|&(f, _, _, _)| f.0);
    let merged: Vec<(FileId, u32)> = flat.iter().map(|&(f, p, _, _)| (f, p)).collect();
    let mut slot_of: Vec<Vec<usize>> = batch.iter().map(|p| vec![0usize; p.reqs.len()]).collect();
    for (pos, &(_, _, e, s)) in flat.iter().enumerate() {
        slot_of[e][s] = pos;
    }
    while arena.len() < merged.len() {
        arena.push(PageBuf::zeroed(page_size));
    }
    for buf in arena.iter_mut().take(merged.len()) {
        if buf.len() != page_size {
            *buf = PageBuf::zeroed(page_size);
        }
    }
    let served = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        server.serve_requests(&merged, run_pages, &mut arena[..merged.len()])
    }));
    let Ok(result) = served else {
        // a panicking store tears down every participating session — the
        // same degradation the immediate path applies to one
        for p in &batch {
            if let Some(stats) = lock_shared(shared).sessions.get_mut(&p.sid) {
                stats.panics += 1;
                stats.closed = true;
            }
            if let Some(state) = clients.get(&p.client) {
                let _ = state.resp.send(encode_error(
                    SEQ_UNPARSED,
                    ERR_INTERNAL,
                    "handler panicked; session torn down",
                ));
            }
            clients.remove(&p.client);
        }
        return;
    };
    // pre-validation makes per-entry serve errors impossible, so any error
    // here is store-global (poisoning, a disk fault) and every participant
    // sees it. A *transient* storage fault is answered with the retryable
    // ERR_SERVE_TRANSIENT and deliberately NOT cached: the round cursor is
    // rolled back so each participant's retransmission re-enters the serve
    // path (park or immediate) and re-executes against the recovered disk.
    let transient = matches!(&result, Err(e) if e.is_transient_storage());
    let shared_sweep = {
        let mut sids: Vec<u64> = batch.iter().map(|p| p.sid).collect();
        sids.sort_unstable();
        sids.dedup();
        sids.len() > 1
    };
    for (e, p) in batch.iter().enumerate() {
        let reply = match &result {
            Ok(()) => {
                let pages: Vec<PageBuf> =
                    slot_of[e].iter().map(|&pos| arena[pos].clone()).collect();
                encode_round_response(p.seq, &pages, page_size)
            }
            Err(err) => {
                let code = if transient {
                    ERR_SERVE_TRANSIENT
                } else {
                    ERR_SERVE
                };
                encode_error(p.seq, code, &format!("{err}"))
            }
        };
        let frames = chunk_reply(reply.clone(), chunk_bytes);
        let out_len: usize = frames.iter().map(|f| f.len()).sum();
        {
            let mut lock = lock_shared(shared);
            if let Some(stats) = lock.sessions.get_mut(&p.sid) {
                stats.record_observed(&p.masked);
                stats.bytes_in += p.bytes.len() as u64;
                stats.bytes_out += out_len as u64;
                if result.is_ok() {
                    stats.fetches += p.reqs.len() as u64;
                    if p.new_round {
                        stats.rounds += 1;
                    }
                    if shared_sweep {
                        stats.coalesced_rounds += 1;
                    }
                }
            }
        }
        if let Some(state) = clients.get_mut(&p.client) {
            if transient {
                // not cached: the retransmit must re-execute, not replay the
                // failure. Roll the round cursor back to where the park
                // advanced it from so the retry passes the round-order check.
                if p.new_round {
                    state.last_round -= 1;
                }
            } else {
                state.last_seq = p.seq;
                state.last_reply = reply;
                state.last_observed = Some((p.sid, p.masked.clone()));
            }
            let mut dead = false;
            for f in frames {
                if state.resp.send(f).is_err() {
                    dead = true;
                    break;
                }
            }
            if dead {
                clients.remove(&p.client);
            }
        }
    }
}

/// Drops clients idle past the deadline: their sessions are marked closed +
/// evicted and their response senders are dropped, so the client observes a
/// severed channel on its next request.
fn evict_idle(
    clients: &mut BTreeMap<u64, ClientState>,
    shared: &Mutex<FrontShared>,
    idle_timeout: Option<Duration>,
) {
    let Some(deadline) = idle_timeout else { return };
    let now = Instant::now();
    clients.retain(|_, state| {
        if now.duration_since(state.last_active) < deadline {
            return true;
        }
        if let Some(sid) = state.session {
            if let Some(stats) = lock_shared(shared).sessions.get_mut(&sid) {
                stats.closed = true;
                stats.evicted = true;
            }
        }
        false
    });
}

/// Serves one client frame and produces the reply frame. Never panics on
/// malformed input — every failure becomes an `Error` frame. Duplicate
/// sequence numbers are answered from the per-client reply cache without
/// touching any store (idempotent replay).
#[allow(clippy::too_many_arguments)]
fn handle_frame(
    gen: &GenEntry,
    shared: &Arc<Mutex<FrontShared>>,
    state: &mut ClientState,
    next_session: &mut u64,
    bytes: &[u8],
    reqs: &mut Vec<(FileId, u32)>,
    run_pages: &mut Vec<u32>,
    arena: &mut Vec<PageBuf>,
) -> Vec<u8> {
    let frame = match split_frame(bytes) {
        Ok(f) => f,
        Err(e) => {
            let code = if looks_like_version_mismatch(bytes) {
                ERR_VERSION
            } else {
                ERR_MALFORMED
            };
            if let Some(sid) = state.session {
                if let Some(stats) = lock_shared(shared).sessions.get_mut(&sid) {
                    stats.malformed += 1;
                }
            }
            return encode_error(SEQ_UNPARSED, code, &format!("{e}"));
        }
    };
    if !frame.rest.is_empty() {
        return encode_error(frame.seq, ERR_MALFORMED, "trailing bytes after frame");
    }
    if bytes.len() > MAX_REQUEST_BYTES {
        return encode_error(frame.seq, ERR_MALFORMED, "oversized request frame");
    }
    let seq = frame.seq;
    if seq == 0 || seq == SEQ_UNPARSED {
        return encode_error(seq, ERR_SEQ, &format!("reserved sequence number {seq}"));
    }
    if seq == state.last_seq {
        // Retransmission: the reply (or the request) was lost in flight.
        // Replay the cached reply bytes verbatim — no store access, no
        // epoch advance — and record the duplicate observation (the
        // adversary saw the resend too).
        if let Some((sid, masked)) = &state.last_observed {
            if let Some(stats) = lock_shared(shared).sessions.get_mut(sid) {
                stats.retransmits += 1;
                let masked = masked.clone();
                stats.record_observed(&masked);
            }
        } else if let Some(sid) = state.session {
            if let Some(stats) = lock_shared(shared).sessions.get_mut(&sid) {
                stats.retransmits += 1;
            }
        }
        return state.last_reply.clone();
    }
    if seq != advance_seq(state.last_seq) {
        // Not the cached request and not the next fresh one: the channel
        // lost sync (or a stale duplicate outlived its window). Fatal —
        // do not advance the cache. The expected successor skips the
        // reserved values, so a channel that wraps past `u32::MAX` stays
        // in sync with a client advancing by the same rule.
        return encode_error(
            seq,
            ERR_SEQ,
            &format!("sequence {seq} after {}", state.last_seq),
        );
    }
    state.last_observed = None;
    let mut cache_reply = true;
    let reply = serve_fresh(
        gen,
        shared,
        state,
        next_session,
        frame.kind,
        seq,
        frame.payload,
        reqs,
        run_pages,
        arena,
        &mut cache_reply,
    );
    if cache_reply {
        state.last_seq = seq;
        state.last_reply = reply.clone();
    }
    reply
}

/// The fresh-request body of [`handle_frame`]: every path through here is
/// reached exactly once per accepted sequence number — except a transient
/// storage fault, which clears `cache_reply` so the caller does not install
/// the error as the sequence's reply and the client's retransmission
/// re-executes the serve.
#[allow(clippy::too_many_arguments)]
fn serve_fresh(
    gen: &GenEntry,
    shared: &Arc<Mutex<FrontShared>>,
    state: &mut ClientState,
    next_session: &mut u64,
    kind: u8,
    seq: u32,
    payload: &[u8],
    reqs: &mut Vec<(FileId, u32)>,
    run_pages: &mut Vec<u32>,
    arena: &mut Vec<PageBuf>,
    cache_reply: &mut bool,
) -> Vec<u8> {
    let server = gen.server();
    let info = &gen.info;
    let page_size = gen.page_size;
    let mut r = ByteReader::new(payload);
    match kind {
        K_SESSION_OPEN => {
            if state.session.is_some() {
                return encode_error(seq, ERR_SESSION, "session already open on this channel");
            }
            let sid = *next_session;
            *next_session += 1;
            state.session = Some(sid);
            state.last_round = 0;
            let masked = encode_session_open(seq);
            {
                let mut lock = lock_shared(shared);
                let stats = lock.sessions.entry(sid).or_default();
                stats.record_observed(&masked);
            }
            state.last_observed = Some((sid, masked));
            encode_session_accept(seq, sid, info)
        }
        K_QUERY_OPEN => {
            let Ok(sid) = r.u64() else {
                return encode_error(seq, ERR_MALFORMED, "truncated QueryOpen");
            };
            if state.session != Some(sid) {
                return encode_error(seq, ERR_SESSION, "QueryOpen for a session not open here");
            }
            // Round 1 is the query-open exchange itself.
            state.last_round = 1;
            let masked = encode_query_open(seq, 0);
            {
                let mut lock = lock_shared(shared);
                if let Some(stats) = lock.sessions.get_mut(&sid) {
                    stats.queries += 1;
                    stats.rounds += 1;
                    stats.record_observed(&masked);
                }
            }
            state.last_observed = Some((sid, masked));
            encode_ack(seq)
        }
        K_ROUND_REQ => {
            let (sid, round, k) = match (r.u64(), r.u32(), r.u32()) {
                (Ok(s), Ok(ro), Ok(k)) => (s, ro, k as usize),
                _ => return encode_error(seq, ERR_MALFORMED, "truncated RoundRequest"),
            };
            if state.session != Some(sid) {
                return encode_error(seq, ERR_SESSION, "RoundRequest for a session not open here");
            }
            reqs.clear();
            for _ in 0..k {
                match (r.u16(), r.u32()) {
                    (Ok(f), Ok(p)) => reqs.push((FileId(f), p)),
                    _ => return encode_error(seq, ERR_MALFORMED, "truncated fetch list"),
                }
            }
            // A round either continues (same number — a sub-round exchange,
            // e.g. the HY continuation walk) or advances by exactly one.
            if round != state.last_round && round != state.last_round + 1 {
                return encode_error(
                    seq,
                    ERR_ROUND_ORDER,
                    &format!("round {round} after round {}", state.last_round),
                );
            }
            let new_round = round == state.last_round + 1;
            let prev_round = state.last_round;
            state.last_round = round;
            let masked = encode_round_request(seq, 0, round, reqs, true);
            if let Some(stats) = lock_shared(shared).sessions.get_mut(&sid) {
                stats.record_observed(&masked);
            }
            state.last_observed = Some((sid, masked));
            while arena.len() < reqs.len() {
                arena.push(PageBuf::zeroed(page_size));
            }
            for buf in arena.iter_mut().take(reqs.len()) {
                if buf.len() != page_size {
                    *buf = PageBuf::zeroed(page_size);
                }
            }
            if let Err(e) = server.serve_requests(reqs, run_pages, &mut arena[..reqs.len()]) {
                if e.is_transient_storage() {
                    // Retryable: un-advance the round cursor and leave the
                    // replay cache untouched so the retransmit re-serves.
                    state.last_round = prev_round;
                    *cache_reply = false;
                    return encode_error(seq, ERR_SERVE_TRANSIENT, &format!("{e}"));
                }
                return encode_error(seq, ERR_SERVE, &format!("{e}"));
            }
            {
                let mut lock = lock_shared(shared);
                if let Some(stats) = lock.sessions.get_mut(&sid) {
                    stats.fetches += reqs.len() as u64;
                    if new_round {
                        stats.rounds += 1;
                    }
                }
            }
            encode_round_response(seq, &arena[..reqs.len()], page_size)
        }
        K_DOWNLOAD_REQ => {
            let (sid, file) = match (r.u64(), r.u16()) {
                (Ok(s), Ok(f)) => (s, FileId(f)),
                _ => return encode_error(seq, ERR_MALFORMED, "truncated DownloadRequest"),
            };
            if state.session != Some(sid) {
                return encode_error(
                    seq,
                    ERR_SESSION,
                    "DownloadRequest for a session not open here",
                );
            }
            let masked = encode_download_request(seq, 0, file);
            if let Some(stats) = lock_shared(shared).sessions.get_mut(&sid) {
                stats.record_observed(&masked);
            }
            state.last_observed = Some((sid, masked));
            let bytes = match server.read_full(file) {
                Ok(b) => b,
                Err(e) => {
                    if e.is_transient_storage() {
                        *cache_reply = false;
                        return encode_error(seq, ERR_SERVE_TRANSIENT, &format!("{e}"));
                    }
                    return encode_error(seq, ERR_SERVE, &format!("{e}"));
                }
            };
            {
                let mut lock = lock_shared(shared);
                if let Some(stats) = lock.sessions.get_mut(&sid) {
                    stats.downloads += 1;
                }
            }
            encode_download_response(seq, &bytes)
        }
        K_SESSION_CLOSE => {
            let Ok(sid) = r.u64() else {
                return encode_error(seq, ERR_MALFORMED, "truncated SessionClose");
            };
            if state.session != Some(sid) {
                return encode_error(seq, ERR_SESSION, "SessionClose for a session not open here");
            }
            state.session = None;
            let masked = encode_session_close(seq, 0);
            {
                let mut lock = lock_shared(shared);
                if let Some(stats) = lock.sessions.get_mut(&sid) {
                    stats.closed = true;
                    stats.record_observed(&masked);
                }
            }
            state.last_observed = Some((sid, masked));
            encode_ack(seq)
        }
        k => encode_error(seq, ERR_MALFORMED, &format!("unknown frame kind {k}")),
    }
}

// -------------------------------------------------------------- frame link

/// A byte channel that carries whole frames between a client and a server
/// front. The production implementation is [`ChannelLink`]; chaos testing
/// wraps any link in a fault injector ([`crate::chaos::ChaosLink`]).
pub trait FrameLink: Send {
    /// Sends one frame. A retryable error ([`PirError::LinkDown`]) means
    /// the link refused the frame but may recover; a fatal error means the
    /// peer is gone.
    fn send(&mut self, frame: &[u8]) -> Result<()>;

    /// Receives one frame, waiting at most `timeout` (forever if `None`).
    /// [`PirError::Timeout`] if the window elapses; a fatal error if the
    /// peer is gone.
    fn recv(&mut self, timeout: Option<Duration>) -> Result<Vec<u8>>;
}

/// The in-process production link: an mpsc pair into the [`ServerFront`]
/// loop thread. Dropping it disconnects the client from the loop.
pub struct ChannelLink {
    to_server: mpsc::Sender<ToServer>,
    resp: mpsc::Receiver<Vec<u8>>,
    client: u64,
}

impl FrameLink for ChannelLink {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        self.to_server
            .send(ToServer::Frame {
                client: self.client,
                bytes: frame.to_vec(),
            })
            .map_err(|_| PirError::Transport("server disconnected".into()))
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Result<Vec<u8>> {
        match timeout {
            None => self
                .resp
                .recv()
                .map_err(|_| PirError::Transport("server disconnected".into())),
            Some(t) => match self.resp.recv_timeout(t) {
                Ok(r) => Ok(r),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    Err(PirError::Timeout(format!("no response within {t:?}")))
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    Err(PirError::Transport("server disconnected".into()))
                }
            },
        }
    }
}

impl Drop for ChannelLink {
    fn drop(&mut self) {
        let _ = self.to_server.send(ToServer::Disconnect {
            client: self.client,
        });
    }
}

// ------------------------------------------------------------ retry policy

/// How a [`WireChannel`] recovers from retryable link faults: up to
/// `max_attempts` sends of the *same* frame bytes, waiting `attempt_timeout`
/// for each response, sleeping a capped exponential backoff between
/// attempts, all bounded by an optional total `deadline`.
///
/// The default ([`RetryPolicy::none`]) is one attempt with an unbounded
/// wait — exactly the pre-retry perfect-link behavior, so existing callers
/// pay nothing.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Minimum 1.
    pub max_attempts: u32,
    /// Per-attempt response window; `None` waits forever (only sensible
    /// with `max_attempts == 1`).
    pub attempt_timeout: Option<Duration>,
    /// Backoff before the second attempt; doubles each retry.
    pub backoff: Duration,
    /// Cap on the doubling backoff.
    pub backoff_cap: Duration,
    /// Total budget across all attempts and backoffs.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// One attempt, unbounded wait: the legacy perfect-link behavior.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            attempt_timeout: None,
            backoff: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            deadline: None,
        }
    }

    /// A policy tuned for the in-process chaos links used in tests: short
    /// attempt windows, millisecond backoffs, a generous overall deadline.
    /// Real network deployments would scale these to their RTT.
    pub fn resilient() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 16,
            attempt_timeout: Some(Duration::from_millis(40)),
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(16),
            deadline: Some(Duration::from_secs(30)),
        }
    }
}

// ------------------------------------------------------------ wire channel

enum AttemptOutcome {
    Reply(Vec<u8>),
    Retry(PirError),
}

enum ChunkStep {
    /// Chunk absorbed (or ignored as stale); keep waiting for more frames.
    Wait,
    /// All chunks seen: the reassembled inner reply frame.
    Done(Vec<u8>),
    /// Structurally broken chunk; fail the attempt so the request is
    /// retransmitted and the server re-chunks its cached reply.
    Bad(PirError),
}

/// Folds one structurally-valid `Chunk` frame into the per-attempt
/// reassembly buffer. Chunks echoing a stale seq are ignored. Inconsistent
/// indexing (a gap, or a total that changed mid-stream) drops the partial
/// buffer: a retransmitted reply restarts cleanly at index 0.
fn absorb_chunk(
    frame: &[u8],
    want_seq: u32,
    buf: &mut Vec<u8>,
    next: &mut u32,
    total: &mut u32,
) -> ChunkStep {
    let f = split_frame(frame).expect("caller validated the frame");
    if f.seq != want_seq {
        return ChunkStep::Wait; // stale chunk from an earlier exchange
    }
    if !f.rest.is_empty() {
        return ChunkStep::Bad(PirError::CorruptFrame(
            "trailing bytes after chunk frame".into(),
        ));
    }
    let mut r = ByteReader::new(f.payload);
    let ((Ok(index), Ok(t)), Ok(part)) = ((r.u32(), r.u32()), r.len_bytes()) else {
        return ChunkStep::Bad(PirError::CorruptFrame("truncated chunk frame".into()));
    };
    if index == 0 {
        buf.clear();
        *next = 0;
        *total = t;
    }
    if t == 0 || index != *next || t != *total {
        buf.clear();
        *next = 0;
        *total = 0;
        return ChunkStep::Wait;
    }
    buf.extend_from_slice(part);
    *next += 1;
    if *next < *total {
        return ChunkStep::Wait;
    }
    ChunkStep::Done(std::mem::take(buf))
}

/// One client's end of the wire: a [`Transport`] whose every operation is a
/// frame exchange with the [`ServerFront`] loop thread over a pluggable
/// [`FrameLink`], recovered per its [`RetryPolicy`].
pub struct WireChannel {
    link: Box<dyn FrameLink>,
    session: u64,
    info: Option<ServerInfo>,
    /// Sequence of the last request issued (0 before the handshake).
    seq: u32,
    policy: RetryPolicy,
    /// Retransmissions performed over the channel's lifetime.
    retries: u64,
}

impl WireChannel {
    /// Performs the `SessionOpen`/`SessionAccept` handshake over `link` and
    /// returns the connected channel. The policy governs the handshake too.
    pub fn handshake(link: Box<dyn FrameLink>, policy: RetryPolicy) -> Result<WireChannel> {
        Self::handshake_expecting(link, policy, None)
    }

    /// [`WireChannel::handshake`] with an optional generation expectation:
    /// when `expected` is `Some(held)` and the server's accept carries a
    /// different generation id, the handshake fails with the typed
    /// retryable [`PirError::StaleGeneration`]. The exchange itself
    /// completed — staleness is judged on the *accepted* reply, never
    /// inside the retry loop — so the caller can refresh its expectation
    /// and reconnect without any protocol cleanup.
    pub fn handshake_expecting(
        link: Box<dyn FrameLink>,
        policy: RetryPolicy,
        expected: Option<u64>,
    ) -> Result<WireChannel> {
        let mut chan = WireChannel {
            link,
            session: 0,
            info: None,
            seq: 0,
            policy,
            retries: 0,
        };
        let seq = chan.next_seq();
        let reply = chan.exchange(encode_session_open(seq))?;
        let f = split_frame(&reply)?;
        if f.kind != K_SESSION_ACCEPT {
            return decode_unexpected(f.kind, f.payload, "SessionAccept");
        }
        let mut r = ByteReader::new(f.payload);
        chan.session = r.u64().map_err(PirError::from)?;
        chan.info = Some(ServerInfo::deserialize(&mut r)?);
        if let Some(held) = expected {
            let current = chan.generation();
            if current != held {
                return Err(PirError::StaleGeneration { held, current });
            }
        }
        Ok(chan)
    }

    /// The session id the server assigned at accept.
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// The database generation the server stamped on this channel's accept.
    /// Sessions are pinned: this never changes over the channel's lifetime,
    /// whatever the server swaps to afterwards.
    pub fn generation(&self) -> u64 {
        self.info().generation
    }

    /// Replaces the retry policy (applies to subsequent requests).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Retransmissions performed so far on this channel.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn next_seq(&mut self) -> u32 {
        self.seq = advance_seq(self.seq);
        self.seq
    }

    /// One logical request/response exchange, retried per the policy. The
    /// retransmitted bytes are always identical to the original frame — the
    /// server dedups by `seq` and replays its cached reply.
    fn exchange(&mut self, frame: Vec<u8>) -> Result<Vec<u8>> {
        let attempts = self.policy.max_attempts.max(1);
        let deadline = self.policy.deadline.map(|d| Instant::now() + d);
        let mut backoff = self.policy.backoff;
        let mut last_err: Option<PirError> = None;
        let mut attempts_done = 0u32;
        for attempt in 1..=attempts {
            if attempt > 1 {
                self.retries += 1;
                if let Some(dl) = deadline {
                    let now = Instant::now();
                    if now >= dl {
                        break;
                    }
                    std::thread::sleep(backoff.min(dl - now));
                } else {
                    std::thread::sleep(backoff);
                }
                backoff = (backoff * 2).min(self.policy.backoff_cap.max(self.policy.backoff));
            }
            attempts_done = attempt;
            match self.attempt_once(&frame, deadline)? {
                AttemptOutcome::Reply(reply) => return Ok(reply),
                AttemptOutcome::Retry(e) => last_err = Some(e),
            }
        }
        let last = last_err
            .unwrap_or_else(|| PirError::Timeout("deadline exceeded before first attempt".into()));
        if attempts == 1 {
            // Single-attempt policies surface the raw failure.
            return Err(last);
        }
        Err(PirError::Exhausted {
            attempts: attempts_done,
            last: Box::new(last),
        })
    }

    /// One send + matching-response wait. Stale frames (a `seq` that is not
    /// the current request's) are duplicates from an earlier exchange and
    /// are discarded without consuming the attempt.
    fn attempt_once(&mut self, frame: &[u8], deadline: Option<Instant>) -> Result<AttemptOutcome> {
        match self.link.send(frame) {
            Ok(()) => {}
            Err(e) if e.is_retryable() => return Ok(AttemptOutcome::Retry(e)),
            Err(e) => return Err(e),
        }
        let attempt_deadline = match (self.policy.attempt_timeout, deadline) {
            (None, None) => None,
            (Some(t), None) => Some(Instant::now() + t),
            (None, Some(d)) => Some(d),
            (Some(t), Some(d)) => Some((Instant::now() + t).min(d)),
        };
        // Chunk reassembly state, scoped to this attempt: a retried request
        // makes the server re-chunk its cached reply from index 0, so a
        // partial reassembly never survives into the next attempt.
        let mut chunk_buf: Vec<u8> = Vec::new();
        let mut chunk_next: u32 = 0;
        let mut chunk_total: u32 = 0;
        loop {
            let timeout = match attempt_deadline {
                None => None,
                Some(ad) => {
                    let now = Instant::now();
                    if now >= ad {
                        // An already-expired deadline must fail the attempt,
                        // not turn into a zero-duration recv that a link
                        // could satisfy instantly forever (or, for a real
                        // socket, an invalid zero read-timeout).
                        return Ok(AttemptOutcome::Retry(PirError::Timeout(
                            "attempt deadline expired before recv".into(),
                        )));
                    }
                    Some(ad - now)
                }
            };
            let raw = match self.link.recv(timeout) {
                Ok(r) => r,
                Err(e) if e.is_retryable() => return Ok(AttemptOutcome::Retry(e)),
                Err(e) => return Err(e),
            };
            let first_kind = match split_frame(&raw) {
                Ok(f) => f.kind,
                Err(e) if e.is_retryable() => {
                    // A corrupted response: re-request and the server will
                    // replay its cached reply bytes.
                    return Ok(AttemptOutcome::Retry(e));
                }
                Err(e) => return Err(e),
            };
            let reply = if first_kind == K_CHUNK {
                match absorb_chunk(
                    &raw,
                    self.seq,
                    &mut chunk_buf,
                    &mut chunk_next,
                    &mut chunk_total,
                ) {
                    ChunkStep::Wait => continue,
                    ChunkStep::Bad(e) => return Ok(AttemptOutcome::Retry(e)),
                    ChunkStep::Done(inner) => inner,
                }
            } else {
                raw
            };
            let (kind, seq, trailing) = match split_frame(&reply) {
                Ok(f) => (f.kind, f.seq, !f.rest.is_empty()),
                Err(e) if e.is_retryable() => return Ok(AttemptOutcome::Retry(e)),
                Err(e) => return Err(e),
            };
            if trailing {
                return Ok(AttemptOutcome::Retry(PirError::CorruptFrame(
                    "trailing bytes after response frame".into(),
                )));
            }
            if kind == K_ERROR && (seq == self.seq || seq == SEQ_UNPARSED) {
                let f = split_frame(&reply).expect("validated above");
                let e = decode_error_frame(f.payload);
                return if e.is_retryable() {
                    Ok(AttemptOutcome::Retry(e))
                } else {
                    Err(e)
                };
            }
            if kind != K_ERROR && seq == self.seq {
                return Ok(AttemptOutcome::Reply(reply));
            }
            // stale duplicate from an earlier exchange: discard, keep waiting
        }
    }

    /// Sends raw bytes (no seq stamping, no retries) and returns the raw
    /// reply. Robustness tests use this to feed the server arbitrary
    /// garbage; it deliberately bypasses every client-side protection.
    #[doc(hidden)]
    pub fn raw_exchange(&mut self, frame: &[u8]) -> Result<Vec<u8>> {
        self.link.send(frame)?;
        self.link.recv(None)
    }

    fn info(&self) -> &ServerInfo {
        self.info.as_ref().expect("handshake completed at connect")
    }

    /// Sends `frame`, expecting an `Ack`.
    fn request_ack(&mut self, frame: Vec<u8>) -> Result<()> {
        let reply = self.exchange(frame)?;
        let f = split_frame(&reply)?;
        if f.kind != K_ACK {
            return decode_unexpected(f.kind, f.payload, "Ack");
        }
        Ok(())
    }
}

impl Transport for WireChannel {
    fn spec(&self) -> &SystemSpec {
        &self.info().spec
    }

    fn file_pages(&self, f: FileId) -> Result<u32> {
        self.info()
            .files
            .get(f.0 as usize)
            .map(|fi| fi.pages)
            .ok_or(PirError::UnknownFile(f.0))
    }

    fn begin_query(&mut self) -> Result<()> {
        let seq = self.next_seq();
        let frame = encode_query_open(seq, self.session);
        self.request_ack(frame)
    }

    fn serve_round(
        &mut self,
        round: u32,
        requests: &[(FileId, u32)],
        out: &mut [PageBuf],
    ) -> Result<()> {
        debug_assert_eq!(requests.len(), out.len());
        let seq = self.next_seq();
        let frame = encode_round_request(seq, self.session, round, requests, false);
        let reply = self.exchange(frame)?;
        let f = split_frame(&reply)?;
        if f.kind != K_ROUND_RESP {
            return decode_unexpected(f.kind, f.payload, "RoundResponse");
        }
        let mut r = ByteReader::new(f.payload);
        let k = r.u32().map_err(PirError::from)? as usize;
        let page_size = r.u32().map_err(PirError::from)? as usize;
        if k != out.len() {
            return transport_err(format!("expected {} pages, got {k}", out.len()));
        }
        for buf in out.iter_mut() {
            let bytes = r.bytes(page_size).map_err(PirError::from)?;
            if buf.len() != page_size {
                *buf = PageBuf::zeroed(page_size);
            }
            buf.as_mut_slice().copy_from_slice(bytes);
        }
        Ok(())
    }

    fn download(&mut self, f: FileId) -> Result<Vec<u8>> {
        let seq = self.next_seq();
        let frame = encode_download_request(seq, self.session, f);
        let reply = self.exchange(frame)?;
        let fr = split_frame(&reply)?;
        if fr.kind != K_DOWNLOAD_RESP {
            return decode_unexpected(fr.kind, fr.payload, "DownloadResponse");
        }
        let mut r = ByteReader::new(fr.payload);
        Ok(r.len_bytes().map_err(PirError::from)?.to_vec())
    }

    fn close(&mut self) -> Result<()> {
        let seq = self.next_seq();
        let frame = encode_session_close(seq, self.session);
        self.request_ack(frame)
    }

    fn retries(&self) -> u64 {
        self.retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{PirMode, PirServer};
    use crate::PirSession;
    use privpath_storage::{MemFile, DEFAULT_PAGE_SIZE};
    use std::sync::Arc;

    fn file(pages: u32) -> MemFile {
        let mut f = MemFile::empty(DEFAULT_PAGE_SIZE);
        for p in 0..pages {
            let mut page = PageBuf::zeroed(DEFAULT_PAGE_SIZE);
            page.as_mut_slice()[..4].copy_from_slice(&p.to_le_bytes());
            f.push_page(page);
        }
        f
    }

    fn server() -> Arc<PirServer> {
        let mut srv = PirServer::new(SystemSpec::default());
        srv.add_file("Fh", file(2), PirMode::CostOnly).unwrap();
        srv.add_file("Fd", file(16), PirMode::LinearScan).unwrap();
        Arc::new(srv)
    }

    #[test]
    fn server_info_round_trips() {
        let srv = server();
        let info = ServerInfo::of(&srv);
        assert_eq!(
            info.generation, 1,
            "ServerInfo::of is the static generation"
        );
        let mut w = ByteWriter::new();
        info.serialize(&mut w);
        let buf = w.into_vec();
        let back = ServerInfo::deserialize(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(back, info);
        assert_eq!(back.generation, 1);
        assert_eq!(back.files.len(), 2);
        assert_eq!(back.files[1].pages, 16);
        assert_eq!(back.files[0].name, "Fh");

        let stamped = ServerInfo::of_generation(&srv, 42);
        let mut w = ByteWriter::new();
        stamped.serialize(&mut w);
        let buf = w.into_vec();
        let back = ServerInfo::deserialize(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(back.generation, 42);
        assert_eq!(back.files, stamped.files);
    }

    #[test]
    fn frames_round_trip_and_reject_bad_versions() {
        let frame = encode_round_request(11, 7, 3, &[(FileId(1), 9), (FileId(1), 2)], false);
        let f = split_frame(&frame).unwrap();
        assert_eq!(f.kind, K_ROUND_REQ);
        assert_eq!(f.seq, 11);
        assert!(f.rest.is_empty());
        let mut r = ByteReader::new(f.payload);
        assert_eq!(r.u64().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 3);
        assert_eq!(r.u32().unwrap(), 2);

        // a frame legitimately claiming another version (crc re-patched)
        let mut bad = frame.clone();
        bad[10] = WIRE_VERSION + 1;
        let crc = crc32(&bad[8..]);
        bad[4..8].copy_from_slice(&crc.to_le_bytes());
        let err = split_frame(&bad).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        assert!(!err.is_retryable(), "version mismatch is fatal");
        assert!(looks_like_version_mismatch(&bad));

        // corruption (crc now wrong) is retryable, never a version error
        let mut flipped = frame.clone();
        flipped[10] ^= 0x40;
        let err = split_frame(&flipped).unwrap_err();
        assert!(err.to_string().contains("crc"), "{err}");
        assert!(err.is_retryable());
        assert!(!looks_like_version_mismatch(&flipped));

        let mut bad_magic = frame;
        bad_magic[8] = 0;
        assert!(split_frame(&bad_magic).is_err());
    }

    #[test]
    fn split_frame_never_panics_on_truncation() {
        let frame = encode_round_request(1, 7, 2, &[(FileId(1), 9)], false);
        for n in 0..frame.len() {
            let err = split_frame(&frame[..n]).unwrap_err();
            assert!(err.is_retryable(), "truncated at {n}: {err}");
        }
        assert!(split_frame(&frame).is_ok());
    }

    #[test]
    fn wire_channel_serves_rounds_downloads_and_closes() {
        let front = ServerFront::spawn(server());
        let mut chan = front.connect().unwrap();
        assert_eq!(chan.file_pages(FileId(1)).unwrap(), 16);
        assert_eq!(chan.spec().page_size, DEFAULT_PAGE_SIZE);

        chan.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 3];
        chan.serve_round(
            2,
            &[(FileId(1), 4), (FileId(1), 0), (FileId(1), 15)],
            &mut out,
        )
        .unwrap();
        for (buf, want) in out.iter().zip([4u32, 0, 15]) {
            assert_eq!(
                u32::from_le_bytes(buf.as_slice()[..4].try_into().unwrap()),
                want
            );
        }
        let header = chan.download(FileId(0)).unwrap();
        assert_eq!(header.len(), 2 * DEFAULT_PAGE_SIZE);
        chan.close().unwrap();

        let stats = front.shutdown();
        let s = stats.get(&chan.session_id()).expect("session recorded");
        assert_eq!(s.queries, 1);
        assert_eq!(s.fetches, 3);
        assert_eq!(s.downloads, 1);
        assert_eq!(s.rounds, 2); // query open (round 1) + round 2
        assert_eq!(s.retransmits, 0);
        assert!(s.closed);
        assert!(s.bytes_in > 0 && s.bytes_out > 0);
    }

    /// A driver whose first `failures` reads fail with a transient
    /// (`Interrupted`) I/O error, then serve cleanly — the deterministic
    /// analog of a disk hiccup.
    struct FlakyReads {
        inner: MemFile,
        failures: std::sync::atomic::AtomicU32,
    }

    impl privpath_storage::PagedFile for FlakyReads {
        fn num_pages(&self) -> u32 {
            self.inner.num_pages()
        }
        fn page_size(&self) -> usize {
            self.inner.page_size()
        }
        fn read_page(&self, page: u32) -> privpath_storage::Result<PageBuf> {
            use std::sync::atomic::Ordering;
            let drew = self
                .failures
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok();
            if drew {
                return Err(privpath_storage::StorageError::Io(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    format!("flaky read of page {page}"),
                )));
            }
            self.inner.read_page(page)
        }
    }

    #[test]
    fn transient_serve_error_is_retried_not_cached() {
        // Fd's driver fails its first read; the sweep errors, the front
        // answers ERR_SERVE_TRANSIENT without caching it, and the client's
        // retransmission re-executes the serve successfully.
        let mut srv = PirServer::new(SystemSpec::default());
        srv.add_file("Fh", file(2), PirMode::CostOnly).unwrap();
        srv.add_file_with_driver(
            "Fd",
            Arc::new(FlakyReads {
                inner: file(16),
                failures: std::sync::atomic::AtomicU32::new(1),
            }),
            PirMode::LinearScan,
        )
        .unwrap();
        let front = ServerFront::spawn(Arc::new(srv));
        let mut chan = front.connect_with(RetryPolicy::resilient()).unwrap();
        chan.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 2];
        chan.serve_round(2, &[(FileId(1), 5), (FileId(1), 9)], &mut out)
            .unwrap();
        for (buf, want) in out.iter().zip([5u32, 9]) {
            assert_eq!(
                u32::from_le_bytes(buf.as_slice()[..4].try_into().unwrap()),
                want
            );
        }
        // A later round proves the round cursor rolled back cleanly.
        chan.serve_round(3, &[(FileId(1), 0)], &mut out[..1])
            .unwrap();
        chan.close().unwrap();
        let stats = front.shutdown();
        let s = stats.get(&chan.session_id()).expect("session recorded");
        // fetches counted once per *successful* serve — the failed attempt
        // contributed nothing; and the retry was a fresh serve, not a
        // replay-cache hit.
        assert_eq!(s.fetches, 3);
        assert_eq!(s.rounds, 3);
        assert_eq!(s.retransmits, 0, "retry re-executed, did not replay");
        assert!(s.closed);
    }

    #[test]
    fn transient_serve_error_without_retries_is_typed_and_retryable() {
        let mut srv = PirServer::new(SystemSpec::default());
        srv.add_file("Fh", file(2), PirMode::CostOnly).unwrap();
        srv.add_file_with_driver(
            "Fd",
            Arc::new(FlakyReads {
                inner: file(8),
                failures: std::sync::atomic::AtomicU32::new(1),
            }),
            PirMode::LinearScan,
        )
        .unwrap();
        let front = ServerFront::spawn(Arc::new(srv));
        let mut chan = front.connect().unwrap(); // RetryPolicy::none()
        chan.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 1];
        let err = chan
            .serve_round(2, &[(FileId(1), 3)], &mut out)
            .unwrap_err();
        assert!(
            matches!(err, PirError::TransientIo(_)),
            "expected TransientIo, got {err}"
        );
        assert!(err.is_retryable());
        front.shutdown();
    }

    #[test]
    fn observed_stream_masks_pages_but_keeps_structure() {
        let front = ServerFront::spawn(server());
        let mut chan = front.connect().unwrap();
        chan.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 2];
        chan.serve_round(2, &[(FileId(1), 7), (FileId(1), 3)], &mut out)
            .unwrap();
        let stream = front.observed_stream(chan.session_id()).unwrap();
        let events = parse_observed(&stream).unwrap();
        assert_eq!(events[0], ObservedEvent::SessionOpen);
        assert_eq!(events[1], ObservedEvent::QueryOpen);
        assert_eq!(
            events[2],
            ObservedEvent::Round {
                round: 2,
                fetches: vec![FileId(1), FileId(1)],
            }
        );
        // the raw stream must not contain the page indices anywhere: two
        // sessions fetching different pages record identical bytes
        let mut chan2 = front.connect().unwrap();
        chan2.begin_query().unwrap();
        chan2
            .serve_round(2, &[(FileId(1), 12), (FileId(1), 1)], &mut out)
            .unwrap();
        let stream2 = front.observed_stream(chan2.session_id()).unwrap();
        assert_eq!(stream, stream2, "observed streams must be page-blind");
    }

    #[test]
    fn round_order_violations_are_rejected() {
        let front = ServerFront::spawn(server());
        let mut chan = front.connect().unwrap();
        chan.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 1];
        // skipping ahead (round 4 after round 1) is a protocol violation
        let err = chan
            .serve_round(4, &[(FileId(1), 0)], &mut out)
            .unwrap_err();
        assert!(err.to_string().contains("round"), "{err}");
        assert!(!err.is_retryable());
        // round 2 is fine, and a repeat of round 2 is a sub-round exchange
        chan.serve_round(2, &[(FileId(1), 0)], &mut out).unwrap();
        chan.serve_round(2, &[(FileId(1), 1)], &mut out).unwrap();
    }

    #[test]
    fn wire_session_accounting_matches_client_meter() {
        let srv = server();
        let front = ServerFront::spawn(Arc::clone(&srv));
        let mut chan = front.connect().unwrap();
        let mut sess = PirSession::new();
        sess.begin_round(&mut chan).unwrap();
        let _hdr = sess.download_full(&mut chan, FileId(0)).unwrap();
        sess.run_round(&mut chan, &[(FileId(1), 5), (FileId(1), 9)])
            .unwrap();
        let sid = chan.session_id();
        let stats = front.shutdown();
        let s = stats.get(&sid).unwrap();
        assert_eq!(s.fetches, sess.meter.total_fetches());
        assert_eq!(s.rounds, u64::from(sess.meter.rounds));
        assert_eq!(s.queries, 1);
        assert_eq!(s.downloads, 1);
    }

    #[test]
    fn requests_after_shutdown_error_cleanly() {
        let front = ServerFront::spawn(server());
        let mut chan = front.connect().unwrap();
        chan.begin_query().unwrap();
        drop(front);
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 1];
        let err = chan
            .serve_round(2, &[(FileId(1), 0)], &mut out)
            .unwrap_err();
        assert!(err.to_string().contains("disconnected"), "{err}");
    }

    #[test]
    fn duplicate_requests_replay_cached_reply_without_reserving() {
        // Drive the protocol by hand over a raw link so we can retransmit.
        let srv = server();
        let front = ServerFront::spawn(Arc::clone(&srv));
        let mut link = front.raw_link().unwrap();
        let open = encode_session_open(1);
        link.send(&open).unwrap();
        let accept = link.recv(None).unwrap();
        let f = split_frame(&accept).unwrap();
        assert_eq!(f.kind, K_SESSION_ACCEPT);
        assert_eq!(f.seq, 1);
        let sid = ByteReader::new(f.payload).u64().unwrap();

        let query = encode_query_open(2, sid);
        link.send(&query).unwrap();
        let ack = link.recv(None).unwrap();

        let round = encode_round_request(3, sid, 2, &[(FileId(1), 6)], false);
        link.send(&round).unwrap();
        let resp1 = link.recv(None).unwrap();
        // retransmit: bit-identical reply, no extra fetch served
        link.send(&round).unwrap();
        let resp2 = link.recv(None).unwrap();
        assert_eq!(resp1, resp2, "replay must be bit-identical");
        // a duplicate of an *older* seq is out of window → ERR_SEQ
        link.send(&query).unwrap();
        let stale = link.recv(None).unwrap();
        let f = split_frame(&stale).unwrap();
        assert_eq!(f.kind, K_ERROR);
        let err = decode_error_frame(f.payload);
        assert!(err.to_string().contains("sequence"), "{err}");
        drop(ack);

        let stats = front.shutdown();
        let s = stats.get(&sid).unwrap();
        assert_eq!(s.fetches, 1, "replay must not re-serve the store");
        assert_eq!(s.retransmits, 1);
        // the observed stream logically dedups, raw keeps the duplicate
        let raw = parse_observed_raw(&s.observed).unwrap();
        assert_eq!(raw.len(), 4); // open, query, round, round(retransmit)
        assert_eq!(raw[2].0, raw[3].0, "retransmit shares the seq");
        let logical = parse_observed(&s.observed).unwrap();
        assert_eq!(logical.len(), 3);
    }

    #[test]
    fn malformed_and_oversized_frames_get_typed_errors_not_panics() {
        let front = ServerFront::spawn(server());
        let mut chan = front.connect().unwrap();
        // garbage bytes
        let reply = chan.raw_exchange(&[0xAB; 40]).unwrap();
        let f = split_frame(&reply).unwrap();
        assert_eq!(f.kind, K_ERROR);
        // truncated but valid-prefix frame
        let valid = encode_query_open(99, 1);
        let reply = chan.raw_exchange(&valid[..10]).unwrap();
        let f = split_frame(&reply).unwrap();
        assert_eq!(f.kind, K_ERROR);
        // oversized frame
        let mut w = begin_frame(K_ROUND_REQ, 2);
        w.bytes(&vec![0u8; MAX_REQUEST_BYTES]);
        let reply = chan.raw_exchange(&finish_frame(w)).unwrap();
        let f = split_frame(&reply).unwrap();
        assert_eq!(f.kind, K_ERROR);
        // the channel still serves a fresh client afterwards
        let mut chan2 = front.connect().unwrap();
        chan2.begin_query().unwrap();
    }

    #[test]
    fn shutdown_drains_queued_frames() {
        let srv = server();
        let front = ServerFront::spawn(Arc::clone(&srv));
        let mut link = front.raw_link().unwrap();
        link.send(&encode_session_open(1)).unwrap();
        let accept = link.recv(None).unwrap();
        let sid = ByteReader::new(split_frame(&accept).unwrap().payload)
            .u64()
            .unwrap();
        // Queue a frame and immediately shut down: the mpsc queue preserves
        // send order per thread, so the frame is ahead of the shutdown and
        // must still be served by the drain.
        link.send(&encode_query_open(2, sid)).unwrap();
        let stats = front.shutdown();
        let reply = link.recv(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(split_frame(&reply).unwrap().kind, K_ACK);
        assert_eq!(stats.get(&sid).unwrap().queries, 1);
    }

    #[test]
    fn idle_sessions_are_evicted() {
        let front = ServerFront::spawn_with(
            server(),
            FrontConfig {
                idle_timeout: Some(Duration::from_millis(40)),
                ..FrontConfig::default()
            },
        );
        let mut chan = front.connect().unwrap();
        chan.begin_query().unwrap();
        let sid = chan.session_id();
        std::thread::sleep(Duration::from_millis(250));
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 1];
        let err = chan
            .serve_round(2, &[(FileId(1), 0)], &mut out)
            .unwrap_err();
        assert!(err.to_string().contains("disconnected"), "{err}");
        let stats = front.shutdown();
        let s = stats.get(&sid).unwrap();
        assert!(s.evicted && s.closed);
    }

    #[test]
    fn retry_policy_recovers_from_a_lost_response() {
        // A link that drops the first response of every exchange: the retry
        // path must resend and accept the server's cached replay.
        struct FlakyLink {
            inner: ChannelLink,
            drop_next_recv: bool,
        }
        impl FrameLink for FlakyLink {
            fn send(&mut self, frame: &[u8]) -> Result<()> {
                self.inner.send(frame)
            }
            fn recv(&mut self, timeout: Option<Duration>) -> Result<Vec<u8>> {
                let r = self.inner.recv(timeout)?;
                if self.drop_next_recv {
                    self.drop_next_recv = false;
                    return Err(PirError::Timeout("chaos: response dropped".into()));
                }
                self.drop_next_recv = true;
                Ok(r)
            }
        }
        let front = ServerFront::spawn(server());
        let link = FlakyLink {
            inner: front.raw_link().unwrap(),
            drop_next_recv: true,
        };
        let policy = RetryPolicy {
            max_attempts: 4,
            attempt_timeout: Some(Duration::from_millis(100)),
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            deadline: Some(Duration::from_secs(10)),
        };
        let mut chan = WireChannel::handshake(Box::new(link), policy).unwrap();
        assert!(chan.retries() >= 1);
        chan.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 1];
        chan.serve_round(2, &[(FileId(1), 9)], &mut out).unwrap();
        assert_eq!(
            u32::from_le_bytes(out[0].as_slice()[..4].try_into().unwrap()),
            9
        );
        let sid = chan.session_id();
        drop(chan);
        let stats = front.shutdown();
        let s = stats.get(&sid).unwrap();
        assert!(s.retransmits >= 1, "server must have replayed from cache");
        assert_eq!(s.fetches, 1, "the replay must not re-fetch");
    }

    #[test]
    fn sequence_numbers_survive_wraparound() {
        assert_eq!(advance_seq(5), 6);
        assert_eq!(advance_seq(u32::MAX - 2), u32::MAX - 1);
        // u32::MAX is SEQ_UNPARSED and 0 is the pre-handshake state: the
        // walk skips both, landing on 1
        assert_eq!(advance_seq(u32::MAX - 1), 1);
        assert_eq!(advance_seq(u32::MAX), 1);
        assert_eq!(advance_seq(0), 1);

        // Server side: a channel sitting one step below the sentinel.
        let srv = server();
        let gen = Arc::new(GenEntry::new(
            1,
            srv.clone() as Arc<dyn ServeHost + Send + Sync>,
        ));
        let shared = Arc::new(Mutex::new(FrontShared::default()));
        lock_shared(&shared).sessions.entry(7).or_default();
        let (resp_tx, _resp_rx) = mpsc::channel();
        let mut state = ClientState {
            resp: resp_tx,
            session: Some(7),
            gen: Arc::clone(&gen),
            last_round: 2,
            last_seq: u32::MAX - 1,
            last_reply: Vec::new(),
            last_observed: None,
            last_active: Instant::now(),
        };
        let mut next_session = 8u64;
        let (mut reqs, mut run_pages, mut arena) = (Vec::new(), Vec::new(), Vec::new());
        let mut drive = |state: &mut ClientState, frame: Vec<u8>| {
            handle_frame(
                &gen,
                &shared,
                state,
                &mut next_session,
                &frame,
                &mut reqs,
                &mut run_pages,
                &mut arena,
            )
        };
        // the sentinel itself stays reserved and does not advance the cache
        let reply = drive(
            &mut state,
            encode_round_request(SEQ_UNPARSED, 7, 2, &[(FileId(1), 3)], false),
        );
        assert_eq!(split_frame(&reply).unwrap().kind, K_ERROR);
        assert_eq!(state.last_seq, u32::MAX - 1);
        // ...as does the wrapped-to-zero value
        let reply = drive(
            &mut state,
            encode_round_request(0, 7, 2, &[(FileId(1), 3)], false),
        );
        assert_eq!(split_frame(&reply).unwrap().kind, K_ERROR);
        assert_eq!(state.last_seq, u32::MAX - 1);
        // the successor skipping both reserved values is the fresh request
        let reply = drive(
            &mut state,
            encode_round_request(1, 7, 2, &[(FileId(1), 3)], false),
        );
        let f = split_frame(&reply).unwrap();
        assert_eq!(f.kind, K_ROUND_RESP);
        assert_eq!(f.seq, 1);
        assert_eq!(state.last_seq, 1);

        // Client side: next_seq takes the identical walk, so both ends of a
        // wrapped channel stay in sync.
        struct NullLink;
        impl FrameLink for NullLink {
            fn send(&mut self, _f: &[u8]) -> Result<()> {
                Ok(())
            }
            fn recv(&mut self, _t: Option<Duration>) -> Result<Vec<u8>> {
                Err(PirError::Timeout("never".into()))
            }
        }
        let mut chan = WireChannel {
            link: Box::new(NullLink),
            session: 7,
            info: None,
            seq: u32::MAX - 1,
            policy: RetryPolicy::none(),
            retries: 0,
        };
        assert_eq!(chan.next_seq(), 1);
        assert_eq!(chan.next_seq(), 2);
    }

    #[test]
    fn expired_attempt_deadline_times_out_without_spinning() {
        // A link whose recv is always instantly ready: a zero-duration
        // timeout bug would happily spin on it instead of failing the
        // attempt. The fix means recv is never even called.
        struct CountingLink(Arc<AtomicU64>);
        impl FrameLink for CountingLink {
            fn send(&mut self, _f: &[u8]) -> Result<()> {
                Ok(())
            }
            fn recv(&mut self, _t: Option<Duration>) -> Result<Vec<u8>> {
                self.0.fetch_add(1, Ordering::SeqCst);
                Ok(vec![0u8; 3])
            }
        }
        let recvs = Arc::new(AtomicU64::new(0));
        let mut chan = WireChannel {
            link: Box::new(CountingLink(Arc::clone(&recvs))),
            session: 1,
            info: None,
            seq: 0,
            policy: RetryPolicy {
                max_attempts: 3,
                attempt_timeout: Some(Duration::ZERO),
                backoff: Duration::from_micros(10),
                backoff_cap: Duration::from_micros(10),
                deadline: Some(Duration::from_secs(5)),
            },
            retries: 0,
        };
        let seq = chan.next_seq();
        let err = chan.exchange(encode_query_open(seq, 1)).unwrap_err();
        assert!(err.is_retry_exhausted(), "{err}");
        match err {
            PirError::Exhausted { last, .. } => {
                assert!(matches!(*last, PirError::Timeout(_)), "{last}")
            }
            other => panic!("expected Exhausted, got {other}"),
        }
        assert_eq!(
            recvs.load(Ordering::SeqCst),
            0,
            "an expired deadline must fail before recv, not spin through it"
        );
    }

    fn coalescing_front(window_ms: u64, max_batch: usize) -> ServerFront {
        ServerFront::spawn_with(
            server(),
            FrontConfig {
                coalesce_window: Some(Duration::from_millis(window_ms)),
                coalesce_max_batch: max_batch,
                ..FrontConfig::default()
            },
        )
    }

    #[test]
    fn coalesced_rounds_merge_into_one_sweep_with_correct_replies() {
        // max_batch 2 flushes deterministically on the second parked fetch;
        // the huge window proves the flush came from the batch bound.
        let front = coalescing_front(10_000, 2);
        let mut a = front.raw_link().unwrap();
        let mut b = front.raw_link().unwrap();
        let open = |link: &mut ChannelLink| -> u64 {
            link.send(&encode_session_open(1)).unwrap();
            let accept = link.recv(Some(Duration::from_secs(5))).unwrap();
            let f = split_frame(&accept).unwrap();
            assert_eq!(f.kind, K_SESSION_ACCEPT);
            ByteReader::new(f.payload).u64().unwrap()
        };
        let sid_a = open(&mut a);
        let sid_b = open(&mut b);
        for (link, sid) in [(&mut a, sid_a), (&mut b, sid_b)] {
            link.send(&encode_query_open(2, sid)).unwrap();
            let ack = link.recv(Some(Duration::from_secs(5))).unwrap();
            assert_eq!(split_frame(&ack).unwrap().kind, K_ACK);
        }
        // both rounds target the linear-scan file: the first parks, the
        // second reaches the batch bound and both flush as one sweep
        a.send(&encode_round_request(3, sid_a, 2, &[(FileId(1), 5)], false))
            .unwrap();
        b.send(&encode_round_request(3, sid_b, 2, &[(FileId(1), 9)], false))
            .unwrap();
        let ra = a.recv(Some(Duration::from_secs(5))).unwrap();
        let rb = b.recv(Some(Duration::from_secs(5))).unwrap();
        for (reply, want) in [(&ra, 5u32), (&rb, 9u32)] {
            let f = split_frame(reply).unwrap();
            assert_eq!(f.kind, K_ROUND_RESP);
            assert_eq!(f.seq, 3);
            let mut r = ByteReader::new(f.payload);
            assert_eq!(r.u32().unwrap(), 1);
            let page_size = r.u32().unwrap() as usize;
            let page = r.bytes(page_size).unwrap();
            assert_eq!(u32::from_le_bytes(page[..4].try_into().unwrap()), want);
        }
        drop((a, b));
        let stats = front.shutdown();
        let (sa, sb) = (stats.get(&sid_a).unwrap(), stats.get(&sid_b).unwrap());
        assert_eq!(sa.fetches, 1);
        assert_eq!(sb.fetches, 1);
        assert_eq!(sa.rounds, 2);
        assert_eq!(sa.coalesced_rounds, 1, "served from a shared sweep");
        assert_eq!(sb.coalesced_rounds, 1);
        // the observable stream is exactly what a solo run records
        let events = parse_observed(&sa.observed).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[2],
            ObservedEvent::Round {
                round: 2,
                fetches: vec![FileId(1)],
            }
        );
    }

    #[test]
    fn solo_round_flushes_at_window_expiry() {
        let front = coalescing_front(30, 0);
        let mut chan = front.connect().unwrap();
        chan.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 1];
        let t0 = Instant::now();
        chan.serve_round(2, &[(FileId(1), 6)], &mut out).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(25),
            "a parked round with no batch partner flushes at window expiry"
        );
        assert_eq!(
            u32::from_le_bytes(out[0].as_slice()[..4].try_into().unwrap()),
            6
        );
        let sid = chan.session_id();
        drop(chan);
        let stats = front.shutdown();
        let s = stats.get(&sid).unwrap();
        assert_eq!(s.fetches, 1);
        assert_eq!(s.coalesced_rounds, 0, "a solo flush is not a shared sweep");
    }

    #[test]
    fn non_coalescable_rounds_bypass_the_window() {
        // a window so long a wrongly-deferred round would visibly stall
        let front = coalescing_front(10_000, 0);
        let mut chan = front.connect().unwrap();
        chan.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 2];
        let t0 = Instant::now();
        // Fh is cost-only (no linear-scan store): served immediately
        chan.serve_round(2, &[(FileId(0), 1), (FileId(0), 0)], &mut out)
            .unwrap();
        // a mixed round (any non-coalescable fetch) is immediate too
        chan.serve_round(3, &[(FileId(1), 2), (FileId(0), 1)], &mut out)
            .unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "non-coalescable rounds must not wait out the window"
        );
        let sid = chan.session_id();
        drop(chan);
        let stats = front.shutdown();
        let s = stats.get(&sid).unwrap();
        assert_eq!(s.coalesced_rounds, 0);
        assert_eq!(s.fetches, 4);
    }

    #[test]
    fn retransmit_of_a_parked_round_is_answered_once_by_the_flush() {
        let front = coalescing_front(10_000, 0);
        let mut link = front.raw_link().unwrap();
        link.send(&encode_session_open(1)).unwrap();
        let accept = link.recv(Some(Duration::from_secs(5))).unwrap();
        let sid = ByteReader::new(split_frame(&accept).unwrap().payload)
            .u64()
            .unwrap();
        link.send(&encode_query_open(2, sid)).unwrap();
        let ack = link.recv(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(split_frame(&ack).unwrap().kind, K_ACK);
        let round = encode_round_request(3, sid, 2, &[(FileId(1), 4)], false);
        link.send(&round).unwrap(); // parks in the coalesce window
        link.send(&round).unwrap(); // retransmit while parked: absorbed
                                    // shutdown flushes the parked batch, then drains
        let stats = front.shutdown();
        let reply = link.recv(Some(Duration::from_secs(5))).unwrap();
        let f = split_frame(&reply).unwrap();
        assert_eq!(f.kind, K_ROUND_RESP);
        assert_eq!(f.seq, 3);
        let s = stats.get(&sid).unwrap();
        assert_eq!(s.fetches, 1, "the parked round is served exactly once");
        assert_eq!(s.retransmits, 1);
        // exactly one reply: the duplicate was absorbed, not double-served
        assert!(link.recv(Some(Duration::from_millis(200))).is_err());
    }

    #[test]
    fn chunked_replies_work_over_the_inproc_link() {
        // 100-byte chunks: even the handshake's SessionAccept is chunked
        let front = ServerFront::spawn_with(
            server(),
            FrontConfig {
                chunk_bytes: Some(100),
                ..FrontConfig::default()
            },
        );
        let mut chan = front.connect().unwrap();
        chan.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 1];
        chan.serve_round(2, &[(FileId(1), 13)], &mut out).unwrap();
        assert_eq!(
            u32::from_le_bytes(out[0].as_slice()[..4].try_into().unwrap()),
            13
        );
        chan.close().unwrap();
        front.shutdown();
    }

    #[test]
    fn exhausted_retries_surface_typed_error() {
        struct DeadLink;
        impl FrameLink for DeadLink {
            fn send(&mut self, _frame: &[u8]) -> Result<()> {
                Err(PirError::LinkDown("chaos: permanent outage".into()))
            }
            fn recv(&mut self, _timeout: Option<Duration>) -> Result<Vec<u8>> {
                Err(PirError::Timeout("never".into()))
            }
        }
        let policy = RetryPolicy {
            max_attempts: 3,
            attempt_timeout: Some(Duration::from_millis(5)),
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            deadline: Some(Duration::from_secs(5)),
        };
        let Err(err) = WireChannel::handshake(Box::new(DeadLink), policy) else {
            panic!("handshake over a dead link must fail");
        };
        assert!(err.is_retry_exhausted(), "{err}");
        assert!(!err.is_retryable());
        match err {
            PirError::Exhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(last.is_retryable());
            }
            other => panic!("expected Exhausted, got {other}"),
        }
    }

    /// A server whose linear-scan pages carry `page_index + marker`, so
    /// tests can tell which generation served a fetch.
    fn marked_server(marker: u32) -> Arc<PirServer> {
        let mut f = MemFile::empty(DEFAULT_PAGE_SIZE);
        for p in 0..16u32 {
            let mut page = PageBuf::zeroed(DEFAULT_PAGE_SIZE);
            page.as_mut_slice()[..4].copy_from_slice(&(p + marker).to_le_bytes());
            f.push_page(page);
        }
        let mut srv = PirServer::new(SystemSpec::default());
        srv.add_file("Fh", file(2), PirMode::CostOnly).unwrap();
        srv.add_file("Fd", f, PirMode::LinearScan).unwrap();
        Arc::new(srv)
    }

    fn page_marker(buf: &PageBuf) -> u32 {
        u32::from_le_bytes(buf.as_slice()[..4].try_into().unwrap())
    }

    /// Test double for the core crate's registry: a swappable
    /// `(generation, server)` pair.
    struct SwapSource(Mutex<(u64, Arc<PirServer>)>);

    impl SwapSource {
        fn starting_at(id: u64, srv: Arc<PirServer>) -> Arc<SwapSource> {
            Arc::new(SwapSource(Mutex::new((id, srv))))
        }
        fn publish(&self, id: u64, srv: Arc<PirServer>) {
            *self.0.lock().unwrap() = (id, srv);
        }
    }

    impl GenerationSource for SwapSource {
        fn current_generation(&self) -> (u64, Arc<dyn ServeHost + Send + Sync>) {
            let g = self.0.lock().unwrap();
            (g.0, g.1.clone() as Arc<dyn ServeHost + Send + Sync>)
        }
    }

    #[test]
    fn sessions_pin_their_generation_across_a_swap() {
        let source = SwapSource::starting_at(1, marked_server(0));
        let front = ServerFront::spawn_swappable(
            source.clone() as Arc<dyn GenerationSource>,
            FrontConfig::default(),
        );
        let mut a = front.connect().unwrap();
        assert_eq!(a.generation(), 1);
        a.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 1];
        a.serve_round(2, &[(FileId(1), 3)], &mut out).unwrap();
        assert_eq!(page_marker(&out[0]), 3);

        source.publish(2, marked_server(1000));

        // A is pinned: mid-session rounds keep draining on generation 1
        a.serve_round(2, &[(FileId(1), 4)], &mut out).unwrap();
        assert_eq!(
            page_marker(&out[0]),
            4,
            "a live session must drain on its pinned generation"
        );

        // a fresh session opens on (and reads from) generation 2
        let mut b = front.connect().unwrap();
        assert_eq!(b.generation(), 2);
        b.begin_query().unwrap();
        b.serve_round(2, &[(FileId(1), 4)], &mut out).unwrap();
        assert_eq!(page_marker(&out[0]), 1004);

        // reopening while expecting the drained generation is typed,
        // retryable staleness naming both ids
        let Err(err) = front.connect_expecting(RetryPolicy::none(), 1) else {
            panic!("reopening with a stale expectation must fail");
        };
        assert!(err.is_retryable(), "{err}");
        match err {
            PirError::StaleGeneration { held, current } => {
                assert_eq!(held, 1);
                assert_eq!(current, 2);
            }
            other => panic!("expected StaleGeneration, got {other}"),
        }

        // expecting the current generation succeeds
        let mut c = front.connect_expecting(RetryPolicy::none(), 2).unwrap();
        assert_eq!(c.generation(), 2);
        c.begin_query().unwrap();
        c.serve_round(2, &[(FileId(1), 7)], &mut out).unwrap();
        assert_eq!(page_marker(&out[0]), 1007);

        // the pinned session keeps its generation to the very end
        a.serve_round(2, &[(FileId(1), 9)], &mut out).unwrap();
        assert_eq!(page_marker(&out[0]), 9);
        a.close().unwrap();
        b.close().unwrap();
        c.close().unwrap();
        front.shutdown();
    }

    #[test]
    fn a_parked_batch_never_spans_generations() {
        let source = SwapSource::starting_at(1, marked_server(0));
        let front = ServerFront::spawn_swappable(
            source.clone() as Arc<dyn GenerationSource>,
            FrontConfig {
                coalesce_window: Some(Duration::from_secs(10)),
                ..FrontConfig::default()
            },
        );
        let open = |link: &mut ChannelLink| -> (u64, u64) {
            link.send(&encode_session_open(1)).unwrap();
            let accept = link.recv(Some(Duration::from_secs(5))).unwrap();
            let f = split_frame(&accept).unwrap();
            assert_eq!(f.kind, K_SESSION_ACCEPT);
            let mut r = ByteReader::new(f.payload);
            let sid = r.u64().unwrap();
            let info = ServerInfo::deserialize(&mut r).unwrap();
            (sid, info.generation)
        };
        let mut a = front.raw_link().unwrap();
        let (sid_a, gen_a) = open(&mut a);
        assert_eq!(gen_a, 1);
        a.send(&encode_query_open(2, sid_a)).unwrap();
        assert_eq!(
            split_frame(&a.recv(Some(Duration::from_secs(5))).unwrap())
                .unwrap()
                .kind,
            K_ACK
        );
        // park a generation-1 round in the (huge) coalesce window
        a.send(&encode_round_request(3, sid_a, 2, &[(FileId(1), 5)], false))
            .unwrap();

        source.publish(2, marked_server(1000));

        // B opens after the swap: its SessionOpen re-pins the channel to
        // generation 2, which must flush A's parked generation-1 batch
        // rather than ever co-batching across the swap
        let mut b = front.raw_link().unwrap();
        let (sid_b, gen_b) = open(&mut b);
        assert_eq!(gen_b, 2);
        let ra = a.recv(Some(Duration::from_secs(5))).unwrap();
        let f = split_frame(&ra).unwrap();
        assert_eq!(f.kind, K_ROUND_RESP);
        let mut r = ByteReader::new(f.payload);
        assert_eq!(r.u32().unwrap(), 1);
        let page_size = r.u32().unwrap() as usize;
        let page = r.bytes(page_size).unwrap();
        assert_eq!(
            u32::from_le_bytes(page[..4].try_into().unwrap()),
            5,
            "A's parked round serves from generation 1"
        );

        b.send(&encode_query_open(2, sid_b)).unwrap();
        assert_eq!(
            split_frame(&b.recv(Some(Duration::from_secs(5))).unwrap())
                .unwrap()
                .kind,
            K_ACK
        );
        b.send(&encode_round_request(3, sid_b, 2, &[(FileId(1), 9)], false))
            .unwrap();
        // B's generation-2 round parks solo; shutdown flushes it
        let stats = front.shutdown();
        let rb = b.recv(Some(Duration::from_secs(5))).unwrap();
        let f = split_frame(&rb).unwrap();
        assert_eq!(f.kind, K_ROUND_RESP);
        let mut r = ByteReader::new(f.payload);
        assert_eq!(r.u32().unwrap(), 1);
        let page_size = r.u32().unwrap() as usize;
        let page = r.bytes(page_size).unwrap();
        assert_eq!(
            u32::from_le_bytes(page[..4].try_into().unwrap()),
            1009,
            "B's round serves from generation 2"
        );
        // neither round shared a sweep: the generations were kept apart
        assert_eq!(stats.get(&sid_a).unwrap().coalesced_rounds, 0);
        assert_eq!(stats.get(&sid_b).unwrap().coalesced_rounds, 0);
    }

    #[test]
    fn idle_evicted_owner_does_not_stall_co_parked_rounds() {
        // Regression: a round parked by a client that then goes idle used
        // to sit in the coalescer until window expiry (10 s here), stalling
        // its co-parked neighbour. The eviction tick must flush first.
        let front = ServerFront::spawn_with(
            server(),
            FrontConfig {
                coalesce_window: Some(Duration::from_secs(10)),
                idle_timeout: Some(Duration::from_millis(120)),
                ..FrontConfig::default()
            },
        );
        let open = |link: &mut ChannelLink| -> u64 {
            link.send(&encode_session_open(1)).unwrap();
            let accept = link.recv(Some(Duration::from_secs(5))).unwrap();
            let f = split_frame(&accept).unwrap();
            assert_eq!(f.kind, K_SESSION_ACCEPT);
            ByteReader::new(f.payload).u64().unwrap()
        };
        let mut a = front.raw_link().unwrap();
        let mut b = front.raw_link().unwrap();
        let sid_a = open(&mut a);
        let sid_b = open(&mut b);
        for (link, sid) in [(&mut a, sid_a), (&mut b, sid_b)] {
            link.send(&encode_query_open(2, sid)).unwrap();
            assert_eq!(
                split_frame(&link.recv(Some(Duration::from_secs(5))).unwrap())
                    .unwrap()
                    .kind,
                K_ACK
            );
        }
        let t0 = Instant::now();
        a.send(&encode_round_request(3, sid_a, 2, &[(FileId(1), 2)], false))
            .unwrap();
        b.send(&encode_round_request(
            3,
            sid_b,
            2,
            &[(FileId(1), 11)],
            false,
        ))
        .unwrap();
        // both owners now go silent; the idle sweep must flush the batch
        // (the owed replies still go out) and only then evict
        for (link, want) in [(&mut a, 2u32), (&mut b, 11)] {
            let reply = link.recv(Some(Duration::from_secs(5))).unwrap();
            let f = split_frame(&reply).unwrap();
            assert_eq!(f.kind, K_ROUND_RESP);
            assert_eq!(f.seq, 3);
            let mut r = ByteReader::new(f.payload);
            assert_eq!(r.u32().unwrap(), 1);
            let page_size = r.u32().unwrap() as usize;
            let page = r.bytes(page_size).unwrap();
            assert_eq!(u32::from_le_bytes(page[..4].try_into().unwrap()), want);
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "the idle flush must beat the 10 s coalesce window"
        );
        let stats = front.shutdown();
        assert_eq!(stats.get(&sid_a).unwrap().fetches, 1);
        assert_eq!(stats.get(&sid_b).unwrap().fetches, 1);
    }

    #[test]
    fn degenerate_front_configs_serve_without_hanging() {
        let serve_one = |front: &ServerFront| {
            let mut chan = front.connect().unwrap();
            chan.begin_query().unwrap();
            let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 1];
            let t0 = Instant::now();
            chan.serve_round(2, &[(FileId(1), 13)], &mut out).unwrap();
            assert!(t0.elapsed() < Duration::from_secs(5), "round must not hang");
            assert_eq!(
                u32::from_le_bytes(out[0].as_slice()[..4].try_into().unwrap()),
                13
            );
            chan.close().unwrap();
        };
        // a zero-length coalesce window: parks flush at the already-expired
        // deadline instead of waiting (or hanging)
        let front = ServerFront::spawn_with(
            server(),
            FrontConfig {
                coalesce_window: Some(Duration::ZERO),
                ..FrontConfig::default()
            },
        );
        serve_one(&front);
        front.shutdown();
        // batch bound of one: the first parked fetch is already a full batch
        let front = coalescing_front(10_000, 1);
        serve_one(&front);
        front.shutdown();
        // one-byte chunks (far smaller than any header): every reply is a
        // maximal chunk train and must still reassemble
        let front = ServerFront::spawn_with(
            server(),
            FrontConfig {
                chunk_bytes: Some(1),
                ..FrontConfig::default()
            },
        );
        serve_one(&front);
        front.shutdown();
        // chunk cap zero is the documented "chunking off" degenerate
        let front = ServerFront::spawn_with(
            server(),
            FrontConfig {
                chunk_bytes: Some(0),
                ..FrontConfig::default()
            },
        );
        serve_one(&front);
        front.shutdown();
    }
}
