//! Deterministic fault injection for the transport stack.
//!
//! The wire layer's retry/replay machinery (see [`crate::wire`]) claims the
//! protocol survives a lossy link without changing anything the server
//! observes *logically*. This module supplies the lossy links that claim is
//! tested against, all driven by a seeded, fully deterministic [`FaultPlan`]
//! so a failing chaos run reproduces from its seed:
//!
//! * [`ChaosLink`] — wraps any [`FrameLink`] and injects frame drops,
//!   truncation, bit corruption, delays, duplicated frames, and a scheduled
//!   mid-session outage window, on both directions independently;
//! * [`ChaosHost`] — the [`InProc`](crate::transport::InProc) analog: wraps
//!   a whole [`Transport`] and injects retryable faults *before* the inner
//!   call, recovering with its own bounded backoff, so the inner server
//!   never sees a faulted attempt (no store access, no epoch advance);
//! * [`PanicStore`] — an [`ObliviousStore`] that panics at a scheduled
//!   fetch, for proving the server loop tears down only the offending
//!   session;
//! * [`FaultyDisk`] — a [`PagedFile`] wrapper injecting seeded *disk*
//!   faults (transient read errors, bit flips, torn reads) under a
//!   [`DiskFaultPlan`], for proving disk-backed serving degrades to typed
//!   errors and per-session teardown, never a crash or a wrong answer;
//! * [`connect_chaos`] — convenience: a [`WireChannel`] over a `ChaosLink`
//!   into a [`ServerFront`].
//!
//! Faults are scheduled per *operation* from the plan's per-mille rates via
//! a hand-rolled xorshift64* generator — no external RNG dependency, and
//! independence from `rand` keeps the substrate's dependency surface at
//! just the storage crate.

use crate::backend::ObliviousStore;
use crate::error::PirError;
use crate::server::FileId;
use crate::spec::SystemSpec;
use crate::transport::Transport;
use crate::wire::{FrameLink, RetryPolicy, ServerFront, WireChannel};
use crate::Result;
use privpath_storage::{MemFile, PageBuf, PagedFile};
use std::time::Duration;

/// xorshift64* — tiny, seedable, good enough to schedule faults.
#[derive(Debug, Clone)]
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish draw in `[0, 1000)`.
    fn per_mille(&mut self) -> u64 {
        self.next() % 1000
    }
}

/// A seeded, deterministic fault schedule. Rates are per-mille per
/// operation (a send or a receive); `max_faults` bounds the total number of
/// injected faults so a bounded retry budget always wins eventually and
/// chaos tests terminate.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// RNG seed — the whole schedule derives from it.
    pub seed: u64,
    /// Per-mille chance a frame is silently dropped.
    pub drop_per_mille: u64,
    /// Per-mille chance a frame is truncated mid-byte.
    pub corrupt_per_mille: u64,
    /// Per-mille chance a frame has one bit flipped.
    pub truncate_per_mille: u64,
    /// Per-mille chance a frame is delivered twice.
    pub duplicate_per_mille: u64,
    /// Per-mille chance a frame is delayed by [`FaultPlan::delay`].
    pub delay_per_mille: u64,
    /// The injected delay.
    pub delay: Duration,
    /// Operation index at which a disconnect window opens (`None` = never).
    pub outage_at_op: Option<u64>,
    /// How many operations the outage window swallows.
    pub outage_ops: u32,
    /// Total fault budget: once this many faults have fired, the link
    /// behaves perfectly. Keeps every bounded retry policy sufficient.
    pub max_faults: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (the identity wrapper — handy for
    /// differential baselines through the same code path).
    pub fn clean(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_per_mille: 0,
            corrupt_per_mille: 0,
            truncate_per_mille: 0,
            duplicate_per_mille: 0,
            delay_per_mille: 0,
            delay: Duration::ZERO,
            outage_at_op: None,
            outage_ops: 0,
            max_faults: 0,
        }
    }

    /// A lossy-link profile: ~15% of operations dropped, ~10% corrupted,
    /// ~5% truncated, ~5% duplicated, bounded by a budget of 64 faults.
    pub fn lossy(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_per_mille: 150,
            corrupt_per_mille: 100,
            truncate_per_mille: 50,
            duplicate_per_mille: 50,
            delay_per_mille: 30,
            delay: Duration::from_micros(200),
            outage_at_op: None,
            outage_ops: 0,
            max_faults: 64,
        }
    }

    /// The lossy profile plus one mid-session disconnect window: every
    /// operation in `[at, at + ops)` fails with a link-down error.
    pub fn with_outage(seed: u64, at: u64, ops: u32) -> FaultPlan {
        FaultPlan {
            outage_at_op: Some(at),
            outage_ops: ops,
            ..FaultPlan::lossy(seed)
        }
    }
}

/// One fault decision for an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    Drop,
    Corrupt,
    Truncate,
    Duplicate,
    Delay,
    Outage,
}

/// The plan's runtime state: the RNG, the operation counter and the spent
/// fault budget.
#[derive(Debug, Clone)]
struct FaultState {
    plan: FaultPlan,
    rng: XorShift64,
    ops: u64,
    faults: u64,
}

impl FaultState {
    fn new(plan: FaultPlan) -> Self {
        let rng = XorShift64::new(plan.seed);
        FaultState {
            plan,
            rng,
            ops: 0,
            faults: 0,
        }
    }

    /// Decides the fault (if any) for the next operation. Advances the RNG
    /// deterministically whether or not a fault fires.
    fn roll(&mut self) -> Fault {
        let op = self.ops;
        self.ops += 1;
        let draw = self.rng.per_mille();
        if let Some(at) = self.plan.outage_at_op {
            if op >= at && op < at + u64::from(self.plan.outage_ops) {
                self.faults += 1;
                return Fault::Outage;
            }
        }
        if self.faults >= self.plan.max_faults {
            return Fault::None;
        }
        // One draw decides the fault: each kind owns a contiguous per-mille
        // band, stacked in this order.
        let p = &self.plan;
        let bands = [
            (p.drop_per_mille, Fault::Drop),
            (p.corrupt_per_mille, Fault::Corrupt),
            (p.truncate_per_mille, Fault::Truncate),
            (p.duplicate_per_mille, Fault::Duplicate),
            (p.delay_per_mille, Fault::Delay),
        ];
        let mut edge = 0;
        for (width, fault) in bands {
            edge += width;
            if draw < edge {
                self.faults += 1;
                return fault;
            }
        }
        Fault::None
    }

    /// Position at which to mangle a frame of `len` bytes (past the length
    /// field, so the mangled frame still frames correctly and the damage is
    /// caught by crc, not by a short read).
    fn mangle_at(&mut self, len: usize) -> usize {
        if len <= 4 {
            return 0;
        }
        4 + (self.rng.next() as usize) % (len - 4)
    }
}

/// A fault-injecting [`FrameLink`] wrapper: every send and every receive
/// rolls the [`FaultPlan`] and may drop, truncate, corrupt, duplicate or
/// delay the frame, or fail outright inside an outage window. All faults
/// are *link-shaped*: the wrapped link still only ever sees byte frames, so
/// the client's retry machinery is exercised exactly as a real lossy
/// network would.
pub struct ChaosLink<L: FrameLink> {
    inner: L,
    state: FaultState,
}

impl<L: FrameLink> ChaosLink<L> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: L, plan: FaultPlan) -> Self {
        ChaosLink {
            inner,
            state: FaultState::new(plan),
        }
    }

    /// Faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.state.faults
    }
}

impl<L: FrameLink> FrameLink for ChaosLink<L> {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        match self.state.roll() {
            Fault::None => self.inner.send(frame),
            Fault::Outage => Err(PirError::LinkDown("chaos: outage window".into())),
            Fault::Drop => Ok(()), // swallowed silently; the timeout finds out
            Fault::Truncate => {
                let n = self.state.mangle_at(frame.len());
                self.inner.send(&frame[..n])
            }
            Fault::Corrupt => {
                let mut bytes = frame.to_vec();
                let at = self.state.mangle_at(bytes.len());
                let bit = (self.state.rng.next() % 8) as u8;
                if let Some(b) = bytes.get_mut(at) {
                    *b ^= 1 << bit;
                }
                self.inner.send(&bytes)
            }
            Fault::Duplicate => {
                self.inner.send(frame)?;
                self.inner.send(frame)
            }
            Fault::Delay => {
                std::thread::sleep(self.state.plan.delay);
                self.inner.send(frame)
            }
        }
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Result<Vec<u8>> {
        let frame = self.inner.recv(timeout)?;
        match self.state.roll() {
            Fault::None | Fault::Duplicate => Ok(frame),
            Fault::Outage => Err(PirError::LinkDown("chaos: outage window".into())),
            Fault::Drop => Err(PirError::Timeout("chaos: response dropped".into())),
            Fault::Truncate => {
                let n = self.state.mangle_at(frame.len());
                Ok(frame[..n].to_vec())
            }
            Fault::Corrupt => {
                let mut bytes = frame;
                let at = self.state.mangle_at(bytes.len());
                let bit = (self.state.rng.next() % 8) as u8;
                if let Some(b) = bytes.get_mut(at) {
                    *b ^= 1 << bit;
                }
                Ok(bytes)
            }
            Fault::Delay => {
                std::thread::sleep(self.state.plan.delay);
                Ok(frame)
            }
        }
    }
}

/// Connects to `front` through a [`ChaosLink`] running `plan`, retrying per
/// `policy`. The composition every chaos differential test uses.
pub fn connect_chaos(
    front: &ServerFront,
    plan: FaultPlan,
    policy: RetryPolicy,
) -> Result<WireChannel> {
    let link = ChaosLink::new(front.raw_link()?, plan);
    WireChannel::handshake(Box::new(link), policy)
}

/// The in-process fault-injection analog: wraps a whole [`Transport`] and
/// injects retryable faults *before* delegating, recovering with its own
/// bounded backoff. The inner transport is never invoked on a faulted
/// attempt, so server-side state (shuffled-store epochs, traces) advances
/// exactly once per logical operation — the same idempotency the wire layer
/// gets from its replay cache, obtained here by construction.
pub struct ChaosHost<T: Transport> {
    inner: T,
    state: FaultState,
    policy: RetryPolicy,
    retries: u64,
}

impl<T: Transport> ChaosHost<T> {
    /// Wraps `inner` under `plan`, recovering per `policy`.
    pub fn new(inner: T, plan: FaultPlan, policy: RetryPolicy) -> Self {
        ChaosHost {
            inner,
            state: FaultState::new(plan),
            policy,
            retries: 0,
        }
    }

    /// The wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Rolls the plan until an attempt comes up clean, spending the retry
    /// budget on each faulted roll. Every fault here is retryable by
    /// construction (drops/corruption/outage all map to pre-call failures).
    fn weather(&mut self) -> Result<()> {
        let attempts = self.policy.max_attempts.max(1);
        let mut backoff = self.policy.backoff;
        let mut last: Option<PirError> = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                self.retries += 1;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(self.policy.backoff_cap.max(self.policy.backoff));
            }
            let err = match self.state.roll() {
                Fault::None | Fault::Duplicate | Fault::Delay => return Ok(()),
                Fault::Outage => PirError::LinkDown("chaos: outage window".into()),
                Fault::Drop => PirError::Timeout("chaos: request dropped".into()),
                Fault::Corrupt | Fault::Truncate => {
                    PirError::CorruptFrame("chaos: frame mangled".into())
                }
            };
            last = Some(err);
        }
        let last = last.expect("at least one attempt");
        if attempts == 1 {
            return Err(last);
        }
        Err(PirError::Exhausted {
            attempts,
            last: Box::new(last),
        })
    }
}

impl<T: Transport> Transport for ChaosHost<T> {
    fn spec(&self) -> &SystemSpec {
        self.inner.spec()
    }

    fn file_pages(&self, f: FileId) -> Result<u32> {
        self.inner.file_pages(f)
    }

    fn begin_query(&mut self) -> Result<()> {
        self.weather()?;
        self.inner.begin_query()
    }

    fn serve_round(
        &mut self,
        round: u32,
        requests: &[(FileId, u32)],
        out: &mut [PageBuf],
    ) -> Result<()> {
        self.weather()?;
        self.inner.serve_round(round, requests, out)
    }

    fn download(&mut self, f: FileId) -> Result<Vec<u8>> {
        self.weather()?;
        self.inner.download(f)
    }

    fn close(&mut self) -> Result<()> {
        self.weather()?;
        self.inner.close()
    }

    fn retries(&self) -> u64 {
        self.retries + self.inner.retries()
    }
}

/// A seeded, deterministic schedule of *disk* faults for [`FaultyDisk`].
/// Rates are per-mille per page read; `max_faults` bounds the total injected
/// so bounded retry budgets always win and soak tests terminate.
#[derive(Debug, Clone)]
pub struct DiskFaultPlan {
    /// RNG seed — the whole schedule derives from it.
    pub seed: u64,
    /// Per-mille chance a read fails with a *transient* I/O error
    /// (`ErrorKind::Interrupted` — retryable per
    /// `StorageError::is_transient`).
    pub transient_per_mille: u64,
    /// Per-mille chance a read returns the page with one bit flipped
    /// (bit rot — caught by the per-page checksum layer as `PageCorrupt`).
    pub flip_per_mille: u64,
    /// Per-mille chance a read comes back short: the tail of the page is
    /// zeroed from a random offset (a torn read — also caught as
    /// `PageCorrupt`).
    pub short_per_mille: u64,
    /// Total fault budget; once spent, the disk behaves perfectly.
    pub max_faults: u64,
}

impl DiskFaultPlan {
    /// No faults (identity wrapper, for differential baselines).
    pub fn clean(seed: u64) -> DiskFaultPlan {
        DiskFaultPlan {
            seed,
            transient_per_mille: 0,
            flip_per_mille: 0,
            short_per_mille: 0,
            max_faults: 0,
        }
    }

    /// Only transient (retryable) errors: ~10% of reads, budget 32.
    pub fn flaky(seed: u64) -> DiskFaultPlan {
        DiskFaultPlan {
            seed,
            transient_per_mille: 100,
            flip_per_mille: 0,
            short_per_mille: 0,
            max_faults: 32,
        }
    }

    /// Bit rot and torn reads (fatal through the checksum layer): ~5% each,
    /// budget 16.
    pub fn corrupting(seed: u64) -> DiskFaultPlan {
        DiskFaultPlan {
            seed,
            transient_per_mille: 0,
            flip_per_mille: 50,
            short_per_mille: 50,
            max_faults: 16,
        }
    }

    /// The full mixed profile: transient errors, bit rot, and torn reads.
    pub fn mixed(seed: u64) -> DiskFaultPlan {
        DiskFaultPlan {
            seed,
            transient_per_mille: 80,
            flip_per_mille: 40,
            short_per_mille: 40,
            max_faults: 48,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DiskFault {
    None,
    Transient,
    Flip,
    Short,
}

struct DiskFaultState {
    plan: DiskFaultPlan,
    rng: XorShift64,
    faults: u64,
}

impl DiskFaultState {
    fn roll(&mut self) -> DiskFault {
        let draw = self.rng.per_mille();
        if self.faults >= self.plan.max_faults {
            return DiskFault::None;
        }
        let p = &self.plan;
        let bands = [
            (p.transient_per_mille, DiskFault::Transient),
            (p.flip_per_mille, DiskFault::Flip),
            (p.short_per_mille, DiskFault::Short),
        ];
        let mut edge = 0;
        for (width, fault) in bands {
            edge += width;
            if draw < edge {
                self.faults += 1;
                return fault;
            }
        }
        DiskFault::None
    }
}

/// A fault-injecting [`PagedFile`] wrapper: page reads may fail with a
/// transient I/O error, come back bit-flipped, or come back torn (tail
/// zeroed), per a seeded [`DiskFaultPlan`]. Layer a
/// [`privpath_storage::ChecksumFile`] *outside* it — as the snapshot loader
/// does for real disks — and the data faults surface as typed `PageCorrupt`
/// while the transient ones stay retryable: exactly the taxonomy the
/// serving front's containment story is tested against.
pub struct FaultyDisk {
    inner: std::sync::Arc<dyn PagedFile>,
    state: std::sync::Mutex<DiskFaultState>,
}

impl FaultyDisk {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: std::sync::Arc<dyn PagedFile>, plan: DiskFaultPlan) -> Self {
        let rng = XorShift64::new(plan.seed);
        FaultyDisk {
            inner,
            state: std::sync::Mutex::new(DiskFaultState {
                plan,
                rng,
                faults: 0,
            }),
        }
    }

    /// Faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.lock_state().faults
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, DiskFaultState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl PagedFile for FaultyDisk {
    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }

    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn read_page(&self, page: u32) -> privpath_storage::Result<PageBuf> {
        let (fault, mangle) = {
            let mut s = self.lock_state();
            let f = s.roll();
            (f, s.rng.next())
        };
        if fault == DiskFault::Transient {
            return Err(privpath_storage::StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                format!("chaos: transient read error on page {page}"),
            )));
        }
        let mut buf = self.inner.read_page(page)?;
        match fault {
            DiskFault::Flip => {
                let bytes = buf.as_mut_slice();
                if !bytes.is_empty() {
                    let at = (mangle as usize) % bytes.len();
                    let bit = (mangle >> 32) % 8;
                    bytes[at] ^= 1 << bit;
                }
            }
            DiskFault::Short => {
                let bytes = buf.as_mut_slice();
                if !bytes.is_empty() {
                    let from = (mangle as usize) % bytes.len();
                    for b in &mut bytes[from..] {
                        *b = 0;
                    }
                }
            }
            DiskFault::None | DiskFault::Transient => {}
        }
        Ok(buf)
    }
}

/// An [`ObliviousStore`] that panics at a scheduled fetch — the sabotage
/// the graceful-degradation tests feed a [`ServerFront`] to prove a
/// panicking handler tears down one session, not the loop.
pub struct PanicStore {
    file: MemFile,
    fetches: u64,
    /// 0-based fetch index at which to panic.
    panic_at: u64,
    log: Vec<u32>,
}

impl PanicStore {
    /// A store over `file` that panics on fetch number `panic_at`.
    pub fn new(file: MemFile, panic_at: u64) -> Self {
        PanicStore {
            file,
            fetches: 0,
            panic_at,
            log: Vec::new(),
        }
    }
}

impl ObliviousStore for PanicStore {
    fn num_pages(&self) -> u32 {
        self.file.num_pages()
    }

    fn fetch(&mut self, page: u32) -> Result<PageBuf> {
        let n = self.fetches;
        self.fetches += 1;
        if n == self.panic_at {
            panic!("chaos: PanicStore scheduled panic at fetch {n}");
        }
        self.log.push(page);
        Ok(self.file.read_page(page)?)
    }

    fn physical_log(&self) -> &[u32] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{PirMode, PirServer, PirSession};
    use crate::transport::InProc;
    use privpath_storage::DEFAULT_PAGE_SIZE;
    use std::sync::Arc;

    fn file(pages: u32) -> MemFile {
        let mut f = MemFile::empty(DEFAULT_PAGE_SIZE);
        for p in 0..pages {
            let mut page = PageBuf::zeroed(DEFAULT_PAGE_SIZE);
            page.as_mut_slice()[..4].copy_from_slice(&p.to_le_bytes());
            f.push_page(page);
        }
        f
    }

    fn server() -> Arc<PirServer> {
        let mut srv = PirServer::new(SystemSpec::default());
        srv.add_file("Fh", file(2), PirMode::CostOnly).unwrap();
        srv.add_file("Fd", file(32), PirMode::Shuffled { seed: 7 })
            .unwrap();
        Arc::new(srv)
    }

    #[test]
    fn fault_plan_is_deterministic() {
        let mut a = FaultState::new(FaultPlan::lossy(42));
        let mut b = FaultState::new(FaultPlan::lossy(42));
        let rolls_a: Vec<Fault> = (0..200).map(|_| a.roll()).collect();
        let rolls_b: Vec<Fault> = (0..200).map(|_| b.roll()).collect();
        assert_eq!(rolls_a, rolls_b);
        assert!(rolls_a.iter().any(|f| *f != Fault::None), "plan too quiet");
        // budget respected
        assert!(a.faults <= a.plan.max_faults);
    }

    #[test]
    fn outage_window_fires_exactly_where_scheduled() {
        let mut s = FaultState::new(FaultPlan {
            // otherwise-clean plan with a 3-op outage at op 5
            ..FaultPlan::with_outage(1, 5, 3)
        });
        s.plan.drop_per_mille = 0;
        s.plan.corrupt_per_mille = 0;
        s.plan.truncate_per_mille = 0;
        s.plan.duplicate_per_mille = 0;
        s.plan.delay_per_mille = 0;
        let rolls: Vec<Fault> = (0..12).map(|_| s.roll()).collect();
        for (i, f) in rolls.iter().enumerate() {
            if (5..8).contains(&i) {
                assert_eq!(*f, Fault::Outage, "op {i}");
            } else {
                assert_eq!(*f, Fault::None, "op {i}");
            }
        }
    }

    #[test]
    fn chaos_wire_channel_still_serves_correct_pages() {
        let srv = server();
        let front = ServerFront::spawn(Arc::clone(&srv));
        let mut chan = connect_chaos(
            &front,
            FaultPlan::with_outage(0xC0FFEE, 6, 2),
            RetryPolicy::resilient(),
        )
        .unwrap();
        chan.begin_query().unwrap();
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 3];
        chan.serve_round(
            2,
            &[(FileId(1), 4), (FileId(1), 19), (FileId(1), 31)],
            &mut out,
        )
        .unwrap();
        for (buf, want) in out.iter().zip([4u32, 19, 31]) {
            assert_eq!(
                u32::from_le_bytes(buf.as_slice()[..4].try_into().unwrap()),
                want
            );
        }
        chan.close().unwrap();
    }

    #[test]
    fn chaos_host_never_double_serves_the_inner_transport() {
        let srv = server();
        let inner = InProc::new(Arc::clone(&srv));
        let mut chan = ChaosHost::new(inner, FaultPlan::lossy(99), RetryPolicy::resilient());
        let mut sess = PirSession::new();
        sess.begin_round(&mut chan).unwrap();
        let pages = sess
            .run_round(&mut chan, &[(FileId(1), 3), (FileId(1), 8)])
            .unwrap();
        assert_eq!(pages.len(), 2);
        // the meter is link-blind: identical to a clean run
        let mut clean_sess = PirSession::new();
        let mut clean = InProc::new(Arc::clone(&srv));
        clean_sess.begin_round(&mut clean).unwrap();
        clean_sess
            .run_round(&mut clean, &[(FileId(1), 3), (FileId(1), 8)])
            .unwrap();
        assert_eq!(sess.meter, clean_sess.meter);
    }

    #[test]
    fn faulty_disk_transient_errors_are_retryable_and_bounded() {
        let plan = DiskFaultPlan::flaky(0xD15C);
        let budget = plan.max_faults;
        let disk = FaultyDisk::new(Arc::new(file(16)), plan);
        let mut transients = 0u64;
        // Hammer reads: every failure must be a transient Io, every success
        // must be byte-correct, and the budget must eventually run dry.
        let clean = file(16);
        for i in 0..2000u32 {
            let p = i % 16;
            match disk.read_page(p) {
                Ok(buf) => assert_eq!(buf, clean.read_page(p).unwrap()),
                Err(e) => {
                    assert!(e.is_transient(), "flaky plan must only inject transients");
                    transients += 1;
                }
            }
        }
        assert!(transients > 0, "plan too quiet");
        assert_eq!(disk.faults_injected(), budget.min(transients));
        // budget spent: now perfect
        for p in 0..16u32 {
            assert_eq!(disk.read_page(p).unwrap(), clean.read_page(p).unwrap());
        }
    }

    #[test]
    fn faulty_disk_data_faults_surface_as_page_corrupt_through_checksums() {
        use privpath_storage::{crc32, ChecksumFile};
        let clean = file(8);
        let crcs: Vec<u32> = (0..8u32)
            .map(|p| crc32(clean.read_page(p).unwrap().as_slice()))
            .collect();
        let faulty = FaultyDisk::new(Arc::new(file(8)), DiskFaultPlan::corrupting(0xBAD));
        let checked = ChecksumFile::new("Fd", Arc::new(faulty), crcs);
        let mut corrupt = 0u64;
        for i in 0..800u32 {
            match checked.read_page(i % 8) {
                Ok(buf) => assert_eq!(buf, clean.read_page(i % 8).unwrap()),
                Err(e) => {
                    assert!(
                        matches!(e, privpath_storage::StorageError::PageCorrupt { .. }),
                        "corrupting plan must only surface PageCorrupt, got {e:?}"
                    );
                    assert!(!e.is_transient());
                    corrupt += 1;
                }
            }
        }
        assert!(corrupt > 0, "plan too quiet");
    }

    #[test]
    fn panic_store_panics_on_schedule() {
        let mut store = PanicStore::new(file(4), 2);
        assert!(store.fetch(0).is_ok());
        assert!(store.fetch(1).is_ok());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| store.fetch(2)));
        assert!(r.is_err());
        assert_eq!(store.physical_log(), &[0, 1]);
    }
}
