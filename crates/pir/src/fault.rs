//! Fault injection — an extension beyond the paper's trust model.
//!
//! The paper's adversary is "curious, but not malicious" (§3.1): it executes
//! page access routines correctly. [`FaultyStore`] deliberately violates that
//! assumption by corrupting selected fetches, letting integration tests show
//! that page checksums catch a server that breaks the honest-but-curious
//! contract instead of silently producing a wrong path.

use crate::backend::ObliviousStore;
use crate::Result;
use privpath_storage::PageBuf;
use std::collections::HashSet;

/// Wraps a store and corrupts the payload of chosen fetches.
pub struct FaultyStore<S: ObliviousStore> {
    inner: S,
    /// 0-based indices of fetches (across the store's lifetime) to corrupt.
    corrupt_fetches: HashSet<u64>,
    fetch_count: u64,
    corruptions: u64,
}

impl<S: ObliviousStore> FaultyStore<S> {
    /// Corrupts the fetches whose 0-based sequence numbers appear in
    /// `corrupt_fetches`.
    pub fn new(inner: S, corrupt_fetches: impl IntoIterator<Item = u64>) -> Self {
        FaultyStore {
            inner,
            corrupt_fetches: corrupt_fetches.into_iter().collect(),
            fetch_count: 0,
            corruptions: 0,
        }
    }

    /// Number of pages actually corrupted so far.
    pub fn corruptions(&self) -> u64 {
        self.corruptions
    }
}

impl<S: ObliviousStore> ObliviousStore for FaultyStore<S> {
    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }

    fn fetch(&mut self, page: u32) -> Result<PageBuf> {
        let mut buf = self.inner.fetch(page)?;
        let seq = self.fetch_count;
        self.fetch_count += 1;
        if self.corrupt_fetches.contains(&seq) {
            // Flip one byte somewhere in the payload.
            let idx = (seq as usize * 131) % buf.len().max(1);
            buf.as_mut_slice()[idx] ^= 0xA5;
            self.corruptions += 1;
        }
        Ok(buf)
    }

    fn physical_log(&self) -> &[u32] {
        self.inner.physical_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::LinearScanStore;
    use privpath_storage::{MemFile, DEFAULT_PAGE_SIZE};

    fn file() -> MemFile {
        let mut f = MemFile::empty(DEFAULT_PAGE_SIZE);
        for p in 0..4u32 {
            let mut page = PageBuf::zeroed(DEFAULT_PAGE_SIZE);
            page.as_mut_slice()[..4].copy_from_slice(&p.to_le_bytes());
            f.push_page(page);
        }
        f
    }

    #[test]
    fn corrupts_only_selected_fetches() {
        let mut s = FaultyStore::new(LinearScanStore::new(file()), [1u64]);
        let clean = s.fetch(2).unwrap();
        let dirty = s.fetch(2).unwrap();
        let clean2 = s.fetch(2).unwrap();
        assert_eq!(clean, clean2);
        assert_ne!(clean, dirty);
        assert_eq!(s.corruptions(), 1);
    }

    #[test]
    fn passthrough_when_no_faults() {
        let mut s = FaultyStore::new(LinearScanStore::new(file()), []);
        for p in 0..4u32 {
            let buf = s.fetch(p).unwrap();
            assert_eq!(
                u32::from_le_bytes(buf.as_slice()[..4].try_into().unwrap()),
                p
            );
        }
        assert_eq!(s.corruptions(), 0);
        assert_eq!(s.num_pages(), 4);
        assert!(!s.physical_log().is_empty());
    }
}
