//! Fault injection — an extension beyond the paper's trust model.
//!
//! The paper's adversary is "curious, but not malicious" (§3.1): it executes
//! page access routines correctly. [`FaultyStore`] deliberately violates that
//! assumption by corrupting selected fetches, letting integration tests show
//! that page checksums catch a server that breaks the honest-but-curious
//! contract instead of silently producing a wrong path.

use crate::backend::ObliviousStore;
use crate::Result;
use privpath_storage::PageBuf;
use std::collections::HashSet;

/// Wraps a store and corrupts the payload of chosen fetches.
pub struct FaultyStore<S: ObliviousStore> {
    inner: S,
    /// 0-based indices of fetches (across the store's lifetime) to corrupt.
    corrupt_fetches: HashSet<u64>,
    fetch_count: u64,
    corruptions: u64,
}

impl<S: ObliviousStore> FaultyStore<S> {
    /// Corrupts the fetches whose 0-based sequence numbers appear in
    /// `corrupt_fetches`.
    pub fn new(inner: S, corrupt_fetches: impl IntoIterator<Item = u64>) -> Self {
        FaultyStore {
            inner,
            corrupt_fetches: corrupt_fetches.into_iter().collect(),
            fetch_count: 0,
            corruptions: 0,
        }
    }

    /// Number of pages actually corrupted so far.
    pub fn corruptions(&self) -> u64 {
        self.corruptions
    }

    /// Consumes the next fetch sequence number and applies the corruption,
    /// if scheduled. Shared by the per-fetch and batched paths so a batch of
    /// `k` pages consumes exactly `k` sequence numbers in issue order — a
    /// fault scheduled at index `i` hits the same logical fetch whether the
    /// round was executed page by page or as one batch.
    fn tamper(&mut self, buf: &mut PageBuf) {
        let seq = self.fetch_count;
        self.fetch_count += 1;
        if self.corrupt_fetches.contains(&seq) {
            // Flip one byte somewhere in the payload.
            let idx = (seq as usize * 131) % buf.len().max(1);
            buf.as_mut_slice()[idx] ^= 0xA5;
            self.corruptions += 1;
        }
    }
}

impl<S: ObliviousStore> ObliviousStore for FaultyStore<S> {
    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }

    fn fetch(&mut self, page: u32) -> Result<PageBuf> {
        let mut buf = self.inner.fetch(page)?;
        self.tamper(&mut buf);
        Ok(buf)
    }

    fn fetch_batch(&mut self, pages: &[u32], out: &mut [PageBuf]) -> Result<()> {
        self.inner.fetch_batch(pages, out)?;
        for buf in out.iter_mut() {
            self.tamper(buf);
        }
        Ok(())
    }

    fn physical_log(&self) -> &[u32] {
        self.inner.physical_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::LinearScanStore;
    use privpath_storage::{MemFile, DEFAULT_PAGE_SIZE};

    fn file() -> MemFile {
        let mut f = MemFile::empty(DEFAULT_PAGE_SIZE);
        for p in 0..4u32 {
            let mut page = PageBuf::zeroed(DEFAULT_PAGE_SIZE);
            page.as_mut_slice()[..4].copy_from_slice(&p.to_le_bytes());
            f.push_page(page);
        }
        f
    }

    #[test]
    fn corrupts_only_selected_fetches() {
        let mut s = FaultyStore::new(LinearScanStore::new(file()), [1u64]);
        let clean = s.fetch(2).unwrap();
        let dirty = s.fetch(2).unwrap();
        let clean2 = s.fetch(2).unwrap();
        assert_eq!(clean, clean2);
        assert_ne!(clean, dirty);
        assert_eq!(s.corruptions(), 1);
    }

    #[test]
    fn batch_consumes_sequence_numbers_in_issue_order() {
        // Fault at sequence number 2: whether the four fetches run one by
        // one or as a single batch, the third page issued is the corrupted
        // one and everything else is clean.
        let pages = [3u32, 0, 2, 1];
        let mut seq_store = FaultyStore::new(LinearScanStore::new(file()), [2u64]);
        let sequential: Vec<PageBuf> = pages.iter().map(|&p| seq_store.fetch(p).unwrap()).collect();

        let mut batch_store = FaultyStore::new(LinearScanStore::new(file()), [2u64]);
        let mut batched = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); pages.len()];
        batch_store.fetch_batch(&pages, &mut batched).unwrap();

        assert_eq!(sequential, batched);
        assert_eq!(seq_store.corruptions(), 1);
        assert_eq!(batch_store.corruptions(), 1);
        // and the corruption really landed mid-batch, on pages[2]
        let clean = LinearScanStore::new(file()).fetch(2).unwrap();
        assert_ne!(batched[2], clean);
        assert_eq!(batched[3], LinearScanStore::new(file()).fetch(1).unwrap());
    }

    #[test]
    fn sequence_numbers_span_batches() {
        // Two batches of two: fault index 3 hits the second page of the
        // second batch.
        let mut s = FaultyStore::new(LinearScanStore::new(file()), [3u64]);
        let mut out = vec![PageBuf::zeroed(DEFAULT_PAGE_SIZE); 2];
        s.fetch_batch(&[0, 1], &mut out).unwrap();
        assert_eq!(s.corruptions(), 0);
        s.fetch_batch(&[2, 3], &mut out).unwrap();
        assert_eq!(s.corruptions(), 1);
        let clean = LinearScanStore::new(file()).fetch(3).unwrap();
        assert_ne!(out[1], clean, "second page of second batch is corrupt");
    }

    #[test]
    fn passthrough_when_no_faults() {
        let mut s = FaultyStore::new(LinearScanStore::new(file()), []);
        for p in 0..4u32 {
            let buf = s.fetch(p).unwrap();
            assert_eq!(
                u32::from_le_bytes(buf.as_slice()[..4].try_into().unwrap()),
                p
            );
        }
        assert_eq!(s.corruptions(), 0);
        assert_eq!(s.num_pages(), 4);
        assert!(!s.physical_log().is_empty());
    }
}
