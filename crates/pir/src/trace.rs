//! The adversary's view: which files are touched, in what order.
//!
//! Theorem 1's proof rests on two facts: (a) each PIR fetch hides *which*
//! page of a file is read, and (b) all queries follow the same query plan, so
//! the number and order of per-file accesses is identical across queries.
//! [`AccessTrace`] records exactly the observable sequence — file identities
//! and round boundaries, never page numbers — so the audit module can assert
//! trace equality between arbitrary queries (an executable Theorem 1).

use crate::server::FileId;

/// One adversary-observable event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The client opened protocol round `n` (1-based).
    RoundStart(u32),
    /// The client downloaded an entire file directly (the header `Fh`, which
    /// "discloses no information about the query itself", §5.3).
    FullDownload(FileId),
    /// One PIR page fetch against a file. The page number is *not* part of
    /// the adversary's view — that is the PIR guarantee.
    PirFetch(FileId),
}

/// The ordered adversary-observable event sequence for one query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessTrace {
    events: Vec<TraceEvent>,
}

impl AccessTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// The observable events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of PIR fetches against `file`.
    pub fn fetches_of(&self, file: FileId) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::PirFetch(f) if *f == file))
            .count()
    }

    /// Total PIR fetches.
    pub fn total_fetches(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::PirFetch(_)))
            .count()
    }

    /// Number of protocol rounds the adversary observed (`RoundStart`
    /// events). Batched round execution preserves this exactly: a round is
    /// one `RoundStart` followed by its fetches whether the client issued
    /// them one by one or as a single batch.
    pub fn num_rounds(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RoundStart(_)))
            .count()
    }

    /// Clears the trace (start of a new query).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// A compact human-readable form, e.g. `R1 D0 | R2 F1 | R3 F2 F2`.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            match e {
                TraceEvent::RoundStart(n) => {
                    if !out.is_empty() {
                        out.push_str("| ");
                    }
                    out.push_str(&format!("R{n} "));
                }
                TraceEvent::FullDownload(f) => out.push_str(&format!("D{} ", f.0)),
                TraceEvent::PirFetch(f) => out.push_str(&format!("F{} ", f.0)),
            }
        }
        out.trim_end().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_observable_equality() {
        let mut a = AccessTrace::new();
        let mut b = AccessTrace::new();
        for t in [&mut a, &mut b] {
            t.push(TraceEvent::RoundStart(1));
            t.push(TraceEvent::FullDownload(FileId(0)));
            t.push(TraceEvent::RoundStart(2));
            t.push(TraceEvent::PirFetch(FileId(1)));
        }
        assert_eq!(a, b);
        b.push(TraceEvent::PirFetch(FileId(1)));
        assert_ne!(a, b);
    }

    #[test]
    fn counts() {
        let mut t = AccessTrace::new();
        t.push(TraceEvent::RoundStart(1));
        t.push(TraceEvent::PirFetch(FileId(1)));
        t.push(TraceEvent::PirFetch(FileId(2)));
        t.push(TraceEvent::RoundStart(2));
        t.push(TraceEvent::PirFetch(FileId(1)));
        assert_eq!(t.fetches_of(FileId(1)), 2);
        assert_eq!(t.fetches_of(FileId(2)), 1);
        assert_eq!(t.total_fetches(), 3);
        assert_eq!(t.num_rounds(), 2);
        t.clear();
        assert_eq!(t.total_fetches(), 0);
        assert_eq!(t.num_rounds(), 0);
    }

    #[test]
    fn summary_format() {
        let mut t = AccessTrace::new();
        t.push(TraceEvent::RoundStart(1));
        t.push(TraceEvent::FullDownload(FileId(0)));
        t.push(TraceEvent::RoundStart(2));
        t.push(TraceEvent::PirFetch(FileId(1)));
        t.push(TraceEvent::PirFetch(FileId(1)));
        assert_eq!(t.summary(), "R1 D0 | R2 F1 F1");
    }
}
