//! The PIR server facade: the LBS-side machinery of Figure 1.
//!
//! The server side is split along the concurrency boundary:
//!
//! * [`PirServer`] — the database files themselves. After the build phase
//!   (`add_file`) it is never mutated again: page serving is `&self`, so one
//!   server can be shared behind an `Arc` and queried from many threads at
//!   once. Functional oblivious stores (which reshuffle internally) sit
//!   behind a `Mutex`; the default cost-only mode reads pages lock-free.
//! * [`PirSession`] — one client's protocol state: the cost [`Meter`], the
//!   adversary-observable [`AccessTrace`] and the round counter. Every
//!   fetch goes through a session so costs and traces are charged to the
//!   querying client, never to the shared server.
//!
//! A session drives a [`crate::transport::Transport`] — the in-process
//! reference link or a wire channel — and exposes the protocol operations:
//!
//! 1. [`PirSession::download_full`] — fetch a whole file directly (only ever
//!    used for the header `Fh`, which every client downloads in full);
//! 2. [`PirSession::run_round`] — open a protocol round and execute all of
//!    its PIR fetches as **one batch** (the primary execution path: the
//!    client derives a round's page list before issuing any of it, so only
//!    rounds — not fetches — cost an RTT, and the server can serve the whole
//!    batch in one store pass);
//! 3. [`PirSession::fetch_batch`] — a further batch *within* the current
//!    round (rounds whose page list is discovered in stages, e.g. the HY
//!    continuation-page walk);
//! 4. [`PirSession::begin_round`] / [`PirSession::pir_fetch`] — the
//!    fine-grained primitives the batch path is defined against. Batched
//!    execution is *accounting-identical* to them by construction: the meter
//!    charges the same Table 2 per-retrieval cost for every page of a batch,
//!    in issue order, and the trace records the same per-fetch event
//!    sequence, so Theorem 1's trace equality is bit-for-bit unaffected by
//!    how the round was executed.
//!
//! Every operation is charged to the [`Meter`] using the Table 2 cost model
//! and appended to the [`AccessTrace`].

use crate::backend::{LinearScanStore, ObliviousStore, ShuffledStore};
use crate::cost::{plain_read_cost, retrieval_cost, CostBreakdown};
use crate::error::PirError;
use crate::meter::Meter;
use crate::spec::SystemSpec;
use crate::trace::{AccessTrace, TraceEvent};
use crate::transport::Transport;
use crate::Result;
use privpath_storage::{ByteReader, ByteWriter, MemFile, PageBuf, PagedFile, StorageError};
use std::sync::Arc;
use std::sync::Mutex;

/// Identifies a registered database file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u16);

/// How a file's pages are physically served.
#[derive(Debug, Clone)]
pub enum PirMode {
    /// No functional obliviousness — pages are read directly and only the
    /// *cost* of the PIR protocol is charged. The default for large-scale
    /// experiments (the paper, likewise, simulates the SCP).
    CostOnly,
    /// Functional: every fetch scans the whole file.
    LinearScan,
    /// Functional: square-root-ORAM-style shuffled store.
    Shuffled {
        /// RNG seed for the shuffle PRP keys.
        seed: u64,
    },
    /// Fault injection: linear-scan store that corrupts the given fetch
    /// sequence numbers — violates the paper's honest-but-curious assumption
    /// so tests can show the client detects tampering via page checksums.
    Faulty {
        /// 0-based fetch sequence numbers to corrupt (per file).
        corrupt_fetches: Vec<u64>,
    },
}

impl PirMode {
    /// Serializes the mode for a snapshot manifest. `Faulty` is a test-only
    /// injection and is not persistable.
    pub fn to_blob(&self) -> Option<Vec<u8>> {
        let mut w = ByteWriter::new();
        match self {
            PirMode::CostOnly => {
                w.u8(0);
            }
            PirMode::LinearScan => {
                w.u8(1);
            }
            PirMode::Shuffled { seed } => {
                w.u8(2).u64(*seed);
            }
            PirMode::Faulty { .. } => return None,
        }
        Some(w.into_vec())
    }

    /// Inverse of [`PirMode::to_blob`]; typed error on unknown tags or a
    /// malformed blob.
    pub fn from_blob(blob: &[u8]) -> std::result::Result<Self, StorageError> {
        let mut r = ByteReader::new(blob);
        let mode = match r.u8()? {
            0 => PirMode::CostOnly,
            1 => PirMode::LinearScan,
            2 => PirMode::Shuffled { seed: r.u64()? },
            t => return Err(StorageError::Corrupt(format!("unknown PIR mode tag {t}"))),
        };
        if r.remaining() != 0 {
            return Err(StorageError::Corrupt(format!(
                "{} trailing bytes after PIR mode",
                r.remaining()
            )));
        }
        Ok(mode)
    }
}

struct ServedFile {
    name: String,
    /// The page driver the file is served from: in-memory ([`MemFile`]) or
    /// disk-backed (a snapshot window with per-page checksum verification).
    /// Serving is driver-agnostic — the same scans, the same replies.
    plain: Arc<dyn PagedFile>,
    /// The mode this file was registered with ([`PirServer::add_file`]), or
    /// `None` for externally supplied stores — those cannot be reproduced
    /// from a snapshot, so servers holding them are not persistable.
    mode: Option<PirMode>,
    /// Functional oblivious store, if any. Stores mutate on fetch (epoch
    /// reshuffles), so concurrent sessions serialize on this lock; the
    /// cost-only default (`None`) reads `plain` without locking.
    store: Option<Mutex<Box<dyn ObliviousStore>>>,
    /// True when a fetch of this file is a pure function of the request —
    /// a linear-scan store whose one-pass sweep reads state-independent
    /// content — so requests from *different* sessions may be merged into
    /// one batched sweep without changing any reply. Stateful stores
    /// (shuffled epochs, fault injectors) and externally supplied stores
    /// are never coalescable.
    coalescable: bool,
}

/// The LBS: database files + SCP. Immutable once built; share with `Arc`.
pub struct PirServer {
    spec: SystemSpec,
    files: Vec<ServedFile>,
}

impl PirServer {
    /// New server with the given hardware/link spec.
    pub fn new(spec: SystemSpec) -> Self {
        PirServer {
            spec,
            files: Vec::new(),
        }
    }

    /// The system spec in force.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Registers an in-memory database file (build phase only).
    pub fn add_file(&mut self, name: &str, file: MemFile, mode: PirMode) -> Result<FileId> {
        self.add_file_with_driver(name, Arc::new(file), mode)
    }

    /// Registers a database file served from an arbitrary page driver —
    /// in-memory or disk-backed (build phase only). Enforces the PIR
    /// interface's file-size limit (§3.2) — the reason the PI scheme becomes
    /// inapplicable on large networks (§7.5). Functional stores read their
    /// working layout through the driver, so a failing disk surfaces here
    /// (shuffled stores preload) or at serve time (linear scans), always as
    /// a typed error.
    pub fn add_file_with_driver(
        &mut self,
        name: &str,
        file: Arc<dyn PagedFile>,
        mode: PirMode,
    ) -> Result<FileId> {
        let pages = u64::from(file.num_pages());
        if pages > self.spec.max_file_pages() {
            return Err(PirError::FileTooLarge {
                pages,
                max_pages: self.spec.max_file_pages(),
            });
        }
        let coalescable = matches!(mode, PirMode::LinearScan);
        let store: Option<Box<dyn ObliviousStore>> = match &mode {
            PirMode::CostOnly => None,
            PirMode::LinearScan => Some(Box::new(LinearScanStore::from_driver(Arc::clone(&file)))),
            PirMode::Shuffled { seed } => Some(Box::new(ShuffledStore::from_driver(
                Arc::clone(&file),
                *seed,
            )?)),
            PirMode::Faulty { corrupt_fetches } => Some(Box::new(crate::fault::FaultyStore::new(
                LinearScanStore::from_driver(Arc::clone(&file)),
                corrupt_fetches.clone(),
            ))),
        };
        self.files.push(ServedFile {
            name: name.to_string(),
            plain: file,
            mode: Some(mode),
            store: store.map(Mutex::new),
            coalescable,
        });
        Ok(FileId((self.files.len() - 1) as u16))
    }

    /// Registers a file served through an explicit oblivious store (build
    /// phase only). The chaos suite uses this to inject misbehaving stores
    /// ([`crate::chaos::PanicStore`]) and prove the server loop survives
    /// them; production callers use [`PirServer::add_file`].
    pub fn add_file_with_store(
        &mut self,
        name: &str,
        file: MemFile,
        store: Box<dyn ObliviousStore>,
    ) -> Result<FileId> {
        let pages = u64::from(file.num_pages());
        if pages > self.spec.max_file_pages() {
            return Err(PirError::FileTooLarge {
                pages,
                max_pages: self.spec.max_file_pages(),
            });
        }
        self.files.push(ServedFile {
            name: name.to_string(),
            plain: Arc::new(file),
            mode: None,
            store: Some(Mutex::new(store)),
            coalescable: false,
        });
        Ok(FileId((self.files.len() - 1) as u16))
    }

    /// The page driver file `f` is served from (snapshot writing).
    pub fn file_driver(&self, f: FileId) -> Result<Arc<dyn PagedFile>> {
        Ok(Arc::clone(&self.file(f)?.plain))
    }

    /// The mode file `f` was registered with, or `None` for externally
    /// supplied stores (those servers cannot be persisted).
    pub fn file_mode(&self, f: FileId) -> Result<Option<&PirMode>> {
        Ok(self.file(f)?.mode.as_ref())
    }

    fn file(&self, f: FileId) -> Result<&ServedFile> {
        self.files
            .get(f.0 as usize)
            .ok_or(PirError::UnknownFile(f.0))
    }

    /// Pages in file `f`.
    pub fn file_pages(&self, f: FileId) -> Result<u32> {
        Ok(self.file(f)?.plain.num_pages())
    }

    /// Name of file `f` (diagnostics only).
    pub fn file_name(&self, f: FileId) -> Result<&str> {
        Ok(self.file(f)?.name.as_str())
    }

    /// True when fetches of file `f` may be merged across sessions into one
    /// batched sweep (see `ServedFile::coalescable`). Unknown files are not
    /// coalescable — the immediate serve path produces the error for them.
    pub fn file_coalescable(&self, f: FileId) -> bool {
        self.file(f).map(|sf| sf.coalescable).unwrap_or(false)
    }

    /// Number of registered files.
    pub fn num_files(&self) -> usize {
        self.files.len()
    }

    /// Total database size in bytes across all files — the storage-space
    /// metric of the evaluation charts.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.plain.size_bytes()).sum()
    }

    /// Serves one round exchange's requests: splits the list into runs of
    /// consecutive same-file requests and reads each run in a single store
    /// pass through [`PirServer::read_pages_raw`]. `run_pages` is caller
    /// scratch (kept outside so steady-state serving allocates nothing).
    /// This is the one serving routine behind both transports: the
    /// in-process [`crate::transport::InProc`] path and the wire server
    /// loop ([`crate::wire::ServerFront`]) call exactly this.
    pub(crate) fn serve_requests(
        &self,
        requests: &[(FileId, u32)],
        run_pages: &mut Vec<u32>,
        out: &mut [PageBuf],
    ) -> Result<()> {
        debug_assert_eq!(requests.len(), out.len());
        let mut start = 0usize;
        while start < requests.len() {
            let f = requests[start].0;
            let end = start
                + requests[start..]
                    .iter()
                    .take_while(|&&(rf, _)| rf == f)
                    .count();
            run_pages.clear();
            run_pages.extend(requests[start..end].iter().map(|&(_, p)| p));
            self.read_pages_raw(f, run_pages, &mut out[start..end])?;
            start = end;
        }
        Ok(())
    }

    /// Reads an entire file's plain bytes (the header download — never
    /// through an oblivious store). One whole-file run read instead of a
    /// page-by-page loop; integrity wrappers still verify page by page
    /// inside the run. No accounting — sessions wrap this.
    pub(crate) fn read_full(&self, f: FileId) -> Result<Vec<u8>> {
        let file = self.file(f)?;
        let mut out = vec![0u8; file.plain.size_bytes() as usize];
        file.plain.read_run_into(0, &mut out)?;
        Ok(out)
    }

    /// Physically reads a round's pages of one file in a single pass:
    /// functional stores take the lock **once** and serve the whole batch
    /// through [`ObliviousStore::fetch_batch`] (the linear-scan store scans
    /// the file once for all of them); cost-only files are read lock-free
    /// straight into the caller's buffers, no allocation. No accounting —
    /// sessions wrap this.
    fn read_pages_raw(&self, f: FileId, pages: &[u32], out: &mut [PageBuf]) -> Result<()> {
        debug_assert_eq!(pages.len(), out.len());
        let file = self.file(f)?;
        match &file.store {
            Some(store) => store
                .lock()
                .map_err(|_| {
                    PirError::Poisoned(format!(
                        "oblivious store of file '{}' poisoned by an earlier panic",
                        file.name
                    ))
                })?
                .fetch_batch(pages, out),
            None => {
                for (&page, buf) in pages.iter().zip(out.iter_mut()) {
                    file.plain.read_page_into(page, buf)?;
                }
                Ok(())
            }
        }
    }
}

/// One client's protocol session: cost meter, access trace, round counter,
/// and the reusable page arena batched rounds are served into.
///
/// Sessions are cheap; every concurrent querier owns one and shares the
/// [`PirServer`] immutably.
#[derive(Debug)]
pub struct PirSession {
    /// Cost accounting for the current query.
    pub meter: Meter,
    /// Adversary-observable trace for the current query.
    pub trace: AccessTrace,
    round: u32,
    /// Execute rounds as server-side batches (the default). Disabled, every
    /// batched call degrades to the per-fetch primitives — same results,
    /// same accounting, k× the server page work; kept for the differential
    /// suites that hold the two paths equal.
    batched: bool,
    /// Round arena: page buffers reused across batches and queries, so
    /// steady-state batched fetches allocate nothing. Returned `&[PageBuf]`
    /// slices point in here and are valid until the next batch call.
    arena: Vec<PageBuf>,
}

impl Default for PirSession {
    fn default() -> Self {
        PirSession {
            meter: Meter::new(),
            trace: AccessTrace::new(),
            round: 0,
            batched: true,
            arena: Vec::new(),
        }
    }
}

impl PirSession {
    /// Fresh session with zeroed accounting (batched execution on).
    pub fn new() -> Self {
        Self::default()
    }

    /// Switches between batched round execution (default) and the per-fetch
    /// reference path. Observable behaviour — answers, meter, trace — is
    /// identical either way; only the server-side page work differs.
    pub fn set_batched(&mut self, on: bool) {
        self.batched = on;
    }

    /// True when rounds execute as server-side batches.
    pub fn is_batched(&self) -> bool {
        self.batched
    }

    /// Starts a new protocol round. The client link RTT is charged once per
    /// query (connection establishment): the paper's Table 3 communication
    /// times match `bytes / bandwidth` almost exactly (LM moves 536 pages in
    /// 46.4 s ≈ 536 × 83 ms), so rounds evidently stream over the persistent
    /// SSL connection without paying a fresh RTT each. Round 1 announces the
    /// query to the transport ([`Transport::begin_query`] — the exchange the
    /// RTT models), which is why this can fail on a wire.
    pub fn begin_round(&mut self, link: &mut dyn Transport) -> Result<()> {
        self.round += 1;
        self.meter.rounds += 1;
        if self.round == 1 {
            self.meter.comm_s += link.spec().comm_rtt_s;
            self.meter.exchanges += 1;
            link.begin_query()?;
        }
        self.trace.push(TraceEvent::RoundStart(self.round));
        Ok(())
    }

    /// Fetches one page via the PIR interface: charges the SCP retrieval
    /// cost (polylog in the file's page count) plus the page transfer to the
    /// client, and logs the fetch (file only, never the page number). One
    /// transport exchange per call — this is the per-fetch reference
    /// primitive the batched path is defined against.
    pub fn pir_fetch(&mut self, link: &mut dyn Transport, f: FileId, page: u32) -> Result<PageBuf> {
        let pages = link.file_pages(f)?;
        let page_bytes = link.spec().page_size as u64;
        self.meter.pir.add(retrieval_cost(link.spec(), pages));
        self.meter.comm_s += link.spec().transfer_s(page_bytes);
        self.meter.bytes_transferred += page_bytes;
        self.meter.record_fetches(f.0 as usize, 1);
        self.meter.exchanges += 1;
        self.trace.push(TraceEvent::PirFetch(f));
        let mut out = [PageBuf::zeroed(link.spec().page_size)];
        link.serve_round(self.round, &[(f, page)], &mut out)?;
        let [page_buf] = out;
        Ok(page_buf)
    }

    /// Opens a new round and executes all of `requests` as one batch:
    /// equivalent to [`PirSession::begin_round`] followed by one
    /// [`PirSession::pir_fetch`] per `(file, page)` request in order, but the
    /// server serves each file's pages in a single store pass. Returns the
    /// fetched pages as slices into the session's reusable arena, `out[i]`
    /// holding the page of `requests[i]`; the slices stay valid until the
    /// next batch call on this session.
    ///
    /// An empty request list just opens the round (the OBF baseline's only
    /// protocol action).
    pub fn run_round(
        &mut self,
        link: &mut dyn Transport,
        requests: &[(FileId, u32)],
    ) -> Result<&[PageBuf]> {
        self.begin_round(link)?;
        self.fetch_batch(link, requests)
    }

    /// Executes a further batch of PIR fetches *within* the current round
    /// (for rounds whose page list is discovered in stages). Accounting is
    /// identical to issuing each request through [`PirSession::pir_fetch`]:
    /// the meter is charged the Table 2 retrieval cost and page transfer per
    /// request in issue order, and the trace gains one `PirFetch` event per
    /// request — batching changes how pages are *served*, never what the
    /// adversary observes or what the client pays. One transport exchange
    /// per call (even for an empty list — a fetch-free round still crosses
    /// the wire so the server observes it).
    pub fn fetch_batch(
        &mut self,
        link: &mut dyn Transport,
        requests: &[(FileId, u32)],
    ) -> Result<&[PageBuf]> {
        let k = requests.len();
        self.ensure_arena(link.spec().page_size, k);
        if !self.batched {
            // Reference path: the per-fetch primitive, verbatim. An empty
            // round still crosses the wire as one exchange — exactly like
            // the batched path below — so the server observes fetch-free
            // rounds identically in both modes.
            if requests.is_empty() {
                self.meter.exchanges += 1;
                link.serve_round(self.round, requests, &mut [])?;
                return Ok(&self.arena[..0]);
            }
            for (i, &(f, page)) in requests.iter().enumerate() {
                let page_buf = self.pir_fetch(link, f, page)?;
                self.arena[i] = page_buf;
            }
            return Ok(&self.arena[..k]);
        }
        // Accounting first, per request in issue order. The retrieval cost
        // depends only on the file, so it is computed once per run of
        // same-file requests and *accumulated* per fetch — the identical
        // f64 addition sequence the unbatched path performs.
        let page_bytes = link.spec().page_size as u64;
        let transfer = link.spec().transfer_s(page_bytes);
        let mut cached: Option<(FileId, CostBreakdown)> = None;
        for &(f, _) in requests {
            let cost = match cached {
                Some((cf, c)) if cf == f => c,
                _ => {
                    let c = retrieval_cost(link.spec(), link.file_pages(f)?);
                    cached = Some((f, c));
                    c
                }
            };
            self.meter.pir.add(cost);
            self.meter.comm_s += transfer;
            self.meter.bytes_transferred += page_bytes;
            self.meter.record_fetches(f.0 as usize, 1);
            self.trace.push(TraceEvent::PirFetch(f));
        }
        self.meter.exchanges += 1;
        // Serving second: one transport exchange for the whole batch; the
        // serving side reads each run of consecutive same-file requests in
        // one store pass.
        link.serve_round(self.round, requests, &mut self.arena[..k])?;
        Ok(&self.arena[..k])
    }

    /// Grows (or re-sizes) the arena to hold `k` pages of `page_size` bytes.
    /// Steady state — same server, same or smaller round size — touches
    /// nothing and allocates nothing.
    fn ensure_arena(&mut self, page_size: usize, k: usize) {
        for buf in self.arena.iter_mut().take(k) {
            if buf.len() != page_size {
                *buf = PageBuf::zeroed(page_size);
            }
        }
        while self.arena.len() < k {
            self.arena.push(PageBuf::zeroed(page_size));
        }
    }

    /// Downloads an entire file directly (no PIR): a plain sequential disk
    /// read at the server plus the byte transfer. Used for the header.
    pub fn download_full(&mut self, link: &mut dyn Transport, f: FileId) -> Result<Vec<u8>> {
        let pages = link.file_pages(f)?;
        let bytes = u64::from(pages) * link.spec().page_size as u64;
        self.meter.server_s += plain_read_cost(link.spec(), u64::from(pages));
        self.meter.comm_s += link.spec().transfer_s(bytes);
        self.meter.bytes_transferred += bytes;
        self.meter.exchanges += 1;
        self.trace.push(TraceEvent::FullDownload(f));
        link.download(f)
    }

    /// Charges server-side plaintext computation (OBF baseline only).
    pub fn add_server_compute(&mut self, seconds: f64) {
        self.meter.server_s += seconds;
    }

    /// Charges client-side computation (measured by the protocol driver).
    pub fn add_client_compute(&mut self, seconds: f64) {
        self.meter.client_s += seconds;
    }

    /// Charges a raw transfer of `bytes` to the client (OBF result paths).
    pub fn add_transfer(&mut self, spec: &SystemSpec, bytes: u64) {
        self.meter.comm_s += spec.transfer_s(bytes);
        self.meter.bytes_transferred += bytes;
    }

    /// Resets per-query accounting (meter, trace, round counter). Server
    /// file state — including functional store shuffle epochs — is unaffected,
    /// as it would be at a real server.
    pub fn reset_query(&mut self) {
        self.meter = Meter::new();
        self.trace.clear();
        self.round = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProc;
    use privpath_storage::DEFAULT_PAGE_SIZE;

    fn file(pages: u32) -> MemFile {
        let mut f = MemFile::empty(DEFAULT_PAGE_SIZE);
        for p in 0..pages {
            let mut page = PageBuf::zeroed(DEFAULT_PAGE_SIZE);
            page.as_mut_slice()[..4].copy_from_slice(&p.to_le_bytes());
            f.push_page(page);
        }
        f
    }

    #[test]
    fn fetch_charges_cost_and_logs_trace() {
        let mut srv = PirServer::new(SystemSpec::default());
        let f = srv.add_file("Fd", file(100), PirMode::CostOnly).unwrap();
        let mut link = InProc::new(&srv);
        let mut sess = PirSession::new();
        sess.begin_round(&mut link).unwrap();
        let p = sess.pir_fetch(&mut link, f, 42).unwrap();
        assert_eq!(
            u32::from_le_bytes(p.as_slice()[..4].try_into().unwrap()),
            42
        );
        assert!(sess.meter.pir.total_s() > 0.0);
        assert!(sess.meter.comm_s > srv.spec().comm_rtt_s);
        assert_eq!(sess.meter.rounds, 1);
        assert_eq!(sess.meter.exchanges, 2); // query open + one fetch
        assert_eq!(sess.trace.total_fetches(), 1);
        assert_eq!(sess.trace.events().len(), 2);
    }

    #[test]
    fn functional_modes_return_same_content() {
        for mode in [
            PirMode::CostOnly,
            PirMode::LinearScan,
            PirMode::Shuffled { seed: 7 },
        ] {
            let mut srv = PirServer::new(SystemSpec::default());
            let f = srv.add_file("Fd", file(33), mode).unwrap();
            let mut link = InProc::new(&srv);
            let mut sess = PirSession::new();
            for q in [0u32, 32, 5, 5, 17] {
                let p = sess.pir_fetch(&mut link, f, q).unwrap();
                assert_eq!(u32::from_le_bytes(p.as_slice()[..4].try_into().unwrap()), q);
            }
        }
    }

    /// Batched and per-fetch execution must be indistinguishable in every
    /// client-observable dimension: returned bytes, meter (bit-for-bit,
    /// including the f64 cost accumulators), and trace. (The `exchanges`
    /// counter is *excluded* by design: it counts transport round-trips,
    /// and per-fetch execution genuinely performs more of them.)
    #[test]
    fn run_round_is_accounting_identical_to_per_fetch() {
        for mode in [
            PirMode::CostOnly,
            PirMode::LinearScan,
            PirMode::Shuffled { seed: 11 },
        ] {
            let mut srv = PirServer::new(SystemSpec::default());
            let fd = srv.add_file("Fd", file(64), mode.clone()).unwrap();
            let fi = srv.add_file("Fi", file(16), mode).unwrap();
            let requests = [(fi, 3u32), (fi, 9), (fd, 40), (fd, 40), (fd, 0)];

            let mut link = InProc::new(&srv);
            let mut batched = PirSession::new();
            let got: Vec<PageBuf> = batched.run_round(&mut link, &requests).unwrap().to_vec();

            let mut link2 = InProc::new(&srv);
            let mut reference = PirSession::new();
            reference.begin_round(&mut link2).unwrap();
            let mut want = Vec::new();
            for &(f, p) in &requests {
                want.push(reference.pir_fetch(&mut link2, f, p).unwrap());
            }

            assert_eq!(got, want, "page contents differ");
            assert_eq!(batched.trace, reference.trace, "traces differ");
            assert_eq!(batched.meter.rounds, reference.meter.rounds);
            assert_eq!(
                batched.meter.fetches_per_file,
                reference.meter.fetches_per_file
            );
            assert_eq!(
                batched.meter.bytes_transferred,
                reference.meter.bytes_transferred
            );
            // f64 accumulators: same additions in the same order => same bits
            assert_eq!(batched.meter.pir.total_s(), reference.meter.pir.total_s());
            assert_eq!(batched.meter.comm_s, reference.meter.comm_s);
            // exchange counts: one per round for the batch, one per fetch
            // (plus the query open) for the reference path
            assert_eq!(batched.meter.exchanges, 2);
            assert_eq!(reference.meter.exchanges, 1 + requests.len() as u32);
        }
    }

    #[test]
    fn unbatched_session_serves_rounds_through_the_per_fetch_path() {
        let mut srv = PirServer::new(SystemSpec::default());
        let f = srv.add_file("Fd", file(8), PirMode::LinearScan).unwrap();
        let mut link = InProc::new(&srv);
        let mut sess = PirSession::new();
        assert!(sess.is_batched());
        sess.set_batched(false);
        let pages: Vec<PageBuf> = sess
            .run_round(&mut link, &[(f, 2), (f, 5)])
            .unwrap()
            .to_vec();
        assert_eq!(
            u32::from_le_bytes(pages[0].as_slice()[..4].try_into().unwrap()),
            2
        );
        assert_eq!(
            u32::from_le_bytes(pages[1].as_slice()[..4].try_into().unwrap()),
            5
        );
        assert_eq!(sess.meter.total_fetches(), 2);
        assert_eq!(sess.meter.rounds, 1);
    }

    #[test]
    fn empty_round_only_opens_the_round() {
        let mut srv = PirServer::new(SystemSpec::default());
        let _ = srv.add_file("Fd", file(4), PirMode::CostOnly).unwrap();
        let mut link = InProc::new(&srv);
        let mut sess = PirSession::new();
        let pages = sess.run_round(&mut link, &[]).unwrap();
        assert!(pages.is_empty());
        assert_eq!(sess.meter.rounds, 1);
        assert_eq!(sess.trace.events().len(), 1);
        assert_eq!(sess.trace.total_fetches(), 0);
    }

    #[test]
    fn batch_with_unknown_file_errors() {
        let mut srv = PirServer::new(SystemSpec::default());
        let f = srv.add_file("Fd", file(4), PirMode::CostOnly).unwrap();
        let mut link = InProc::new(&srv);
        let mut sess = PirSession::new();
        assert!(matches!(
            sess.run_round(&mut link, &[(f, 0), (FileId(9), 0)]),
            Err(PirError::UnknownFile(9))
        ));
    }

    #[test]
    fn arena_reuses_buffers_across_rounds_and_queries() {
        let mut srv = PirServer::new(SystemSpec::default());
        let f = srv.add_file("Fd", file(32), PirMode::CostOnly).unwrap();
        let mut link = InProc::new(&srv);
        let mut sess = PirSession::new();
        let first = sess
            .run_round(&mut link, &[(f, 1), (f, 2), (f, 3)])
            .unwrap();
        let ptr = first[0].as_slice().as_ptr();
        assert_eq!(first.len(), 3);
        sess.reset_query();
        // smaller round after a reset: same backing buffers, fresh contents
        let again = sess.run_round(&mut link, &[(f, 30)]).unwrap();
        assert_eq!(again[0].as_slice().as_ptr(), ptr, "arena buffer reused");
        assert_eq!(
            u32::from_le_bytes(again[0].as_slice()[..4].try_into().unwrap()),
            30
        );
    }

    #[test]
    fn oversized_file_rejected() {
        let spec = SystemSpec {
            scp_memory_bytes: 1 << 20,
            ..Default::default()
        }; // tiny SCP
        let max = spec.max_file_pages();
        let mut srv = PirServer::new(spec);
        let too_big = file(max as u32 + 1);
        assert!(matches!(
            srv.add_file("Fi", too_big, PirMode::CostOnly),
            Err(PirError::FileTooLarge { .. })
        ));
    }

    #[test]
    fn download_full_reassembles_bytes() {
        let mut srv = PirServer::new(SystemSpec::default());
        let f = srv.add_file("Fh", file(3), PirMode::CostOnly).unwrap();
        let mut link = InProc::new(&srv);
        let mut sess = PirSession::new();
        let bytes = sess.download_full(&mut link, f).unwrap();
        assert_eq!(bytes.len(), 3 * DEFAULT_PAGE_SIZE);
        assert_eq!(
            u32::from_le_bytes(
                bytes[DEFAULT_PAGE_SIZE..DEFAULT_PAGE_SIZE + 4]
                    .try_into()
                    .unwrap()
            ),
            1
        );
        assert!(sess.meter.server_s > 0.0);
        assert_eq!(sess.trace.events().len(), 1);
    }

    #[test]
    fn reset_clears_accounting_only() {
        let mut srv = PirServer::new(SystemSpec::default());
        let f = srv
            .add_file("Fd", file(10), PirMode::Shuffled { seed: 1 })
            .unwrap();
        let mut link = InProc::new(&srv);
        let mut sess = PirSession::new();
        sess.begin_round(&mut link).unwrap();
        sess.pir_fetch(&mut link, f, 3).unwrap();
        sess.reset_query();
        assert_eq!(sess.meter.total_fetches(), 0);
        assert_eq!(sess.trace.events().len(), 0);
        assert_eq!(sess.meter.rounds, 0);
        assert_eq!(sess.meter.exchanges, 0);
        // file still there
        assert_eq!(srv.file_pages(f).unwrap(), 10);
        assert_eq!(srv.total_bytes(), 10 * DEFAULT_PAGE_SIZE as u64);
    }

    #[test]
    fn unknown_file() {
        let srv = PirServer::new(SystemSpec::default());
        let mut link = InProc::new(&srv);
        let mut sess = PirSession::new();
        assert!(matches!(
            sess.pir_fetch(&mut link, FileId(3), 0),
            Err(PirError::UnknownFile(3))
        ));
        assert!(matches!(
            sess.download_full(&mut link, FileId(1)),
            Err(PirError::UnknownFile(1))
        ));
    }

    #[test]
    fn bigger_files_cost_more_per_fetch() {
        let mut srv = PirServer::new(SystemSpec::default());
        let small = srv.add_file("s", file(8), PirMode::CostOnly).unwrap();
        let big = srv.add_file("b", file(4096), PirMode::CostOnly).unwrap();
        let mut link = InProc::new(&srv);
        let mut sess = PirSession::new();
        sess.pir_fetch(&mut link, small, 0).unwrap();
        let small_cost = sess.meter.pir.total_s();
        sess.reset_query();
        sess.pir_fetch(&mut link, big, 0).unwrap();
        let big_cost = sess.meter.pir.total_s();
        assert!(big_cost > small_cost);
    }

    #[test]
    fn server_is_shareable_across_threads() {
        use std::sync::Arc;
        let mut srv = PirServer::new(SystemSpec::default());
        let f = srv.add_file("Fd", file(64), PirMode::CostOnly).unwrap();
        let g = srv
            .add_file("Fs", file(16), PirMode::Shuffled { seed: 3 })
            .unwrap();
        let srv = Arc::new(srv);
        std::thread::scope(|scope| {
            for k in 0..4u32 {
                let srv = Arc::clone(&srv);
                scope.spawn(move || {
                    let mut link = InProc::new(Arc::clone(&srv));
                    let mut sess = PirSession::new();
                    sess.begin_round(&mut link).unwrap();
                    for i in 0..32u32 {
                        let page = (k * 7 + i) % 64;
                        let p = sess.pir_fetch(&mut link, f, page).unwrap();
                        assert_eq!(
                            u32::from_le_bytes(p.as_slice()[..4].try_into().unwrap()),
                            page
                        );
                        let page = (k + i) % 16;
                        let p = sess.pir_fetch(&mut link, g, page).unwrap();
                        assert_eq!(
                            u32::from_le_bytes(p.as_slice()[..4].try_into().unwrap()),
                            page
                        );
                    }
                    assert_eq!(sess.meter.total_fetches(), 64);
                });
            }
        });
    }
}
