//! PIR substrate: the "black box" the paper builds on.
//!
//! The paper relies on hardware-aided PIR — the Williams–Sion *Usable PIR*
//! protocol [36] running on an IBM 4764 secure co-processor (SCP) — and,
//! exactly like the paper's own evaluation, we "strictly simulate its
//! performance" rather than require the hardware:
//!
//! * [`spec`] — the system constants of Table 2 (page size, disk, SCP and
//!   crypto rates, 3G link) plus the protocol's structural limits: the SCP
//!   needs `c·√N` pages of memory, capping supported file sizes at ≈2.5 GB
//!   for the 32 MB IBM 4764;
//! * [`cost`] — the calibrated retrieval cost model: amortized
//!   `O(log² N)` page operations per fetch, anchored to the paper's "around
//!   one second to retrieve a page from a Gigabyte file";
//! * [`prp`] — a keyed pseudo-random permutation (4-round Feistel with
//!   cycle-walking) used to shuffle oblivious stores;
//! * [`backend`] — *functional* oblivious stores: a linear-scan store
//!   (information-theoretically oblivious) and a square-root-ORAM-style
//!   shuffled store with per-epoch reshuffles, both exposing their physical
//!   access sequence (bounded by [`backend::PhysicalLog`]) so tests can
//!   check obliviousness;
//! * [`scan`] — the vectorized linear-scan kernel: multi-page run streaming
//!   through a reusable arena plus a branchless `u64`-lane masked select
//!   with constant work per page;
//! * [`fault`] — a fault-injecting wrapper (extension beyond the paper's
//!   honest-but-curious adversary);
//! * [`trace`] — the adversary-observable access trace (which file was
//!   touched, in what order — never which page);
//! * [`meter`] — simulated-time accounting (PIR, communication, server,
//!   client components, mirroring Table 3);
//! * [`server`] — the facade tying it together, split along the concurrency
//!   boundary: an immutable, `Arc`-shareable [`PirServer`] serves pages
//!   read-only while per-client [`PirSession`]s own the meters, traces and
//!   round counters, so many sessions can query one server in parallel;
//! * [`transport`] — the client/server trust boundary as a trait: sessions
//!   drive a [`Transport`], either [`InProc`] (direct calls into the shared
//!   server) or a wire channel;
//! * [`wire`] — the versioned, integrity-checked binary frame protocol
//!   (per-frame CRC + sequence numbers with idempotent server-side replay)
//!   and the multi-client [`ServerFront`] loop serving N [`WireChannel`]
//!   clients over byte channels, with per-session server-side accounting,
//!   recorded adversary-observable frame streams, retry policies and
//!   graceful degradation (panic teardown, idle eviction, shutdown drains),
//!   plus cross-session round coalescing (concurrently pending rounds
//!   merged into one linear-scan sweep) and chunked response streaming;
//! * [`wire::tcp`] — the same frames over real loopback sockets: a
//!   [`TcpFront`] accept loop with per-connection reader/writer threads and
//!   graceful drain, and the [`TcpLink`] client [`FrameLink`];
//! * [`chaos`] — deterministic fault injection for the transport stack:
//!   seeded [`FaultPlan`]s driving lossy [`ChaosLink`]s under any
//!   [`WireChannel`], the in-process [`ChaosHost`] analog, and sabotage
//!   stores for degradation tests.

pub mod backend;
pub mod chaos;
pub mod cost;
pub mod error;
pub mod fault;
pub mod meter;
pub mod prp;
pub mod scan;
pub mod server;
pub mod spec;
pub mod trace;
pub mod transport;
pub mod wire;

pub use backend::{LinearScanStore, LogOverflow, ObliviousStore, PhysicalLog, ShuffledStore};
pub use chaos::{
    connect_chaos, ChaosHost, ChaosLink, DiskFaultPlan, FaultPlan, FaultyDisk, PanicStore,
};
pub use cost::CostBreakdown;
pub use error::PirError;
pub use meter::Meter;
pub use prp::Prp;
pub use server::{FileId, PirMode, PirServer, PirSession};
pub use spec::SystemSpec;
pub use trace::{AccessTrace, TraceEvent};
pub use transport::{GenerationSource, InProc, ServeHost, StaticSource, Transport};
pub use wire::tcp::{TcpFront, TcpLink};
pub use wire::{
    FrameLink, FrontConfig, ObservedEvent, RetryPolicy, ServerFront, ServerInfo, SessionStats,
    WireChannel,
};

/// Result alias for PIR operations.
pub type Result<T> = std::result::Result<T, PirError>;
