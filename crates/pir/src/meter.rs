//! Simulated-time accounting, mirroring the response-time decomposition of
//! Table 3: PIR time + communication time + client-side computation (plus a
//! server-computation bucket used by the OBF baseline).
//!
//! The meter is deliberately *batch-blind*: a round executed as one server
//! batch is charged exactly what the same fetches issued one by one would
//! be — one Table 2 retrieval cost and one page transfer per page, in issue
//! order, plus one round. Batching is a server-side execution strategy, not
//! a discount; the model's fidelity to the paper is unchanged.

use crate::cost::CostBreakdown;

/// Accumulated costs for one query (or a whole workload). `PartialEq`
/// compares every component exactly — the differential suites hold meters
/// bit-identical across transports and (with retries) across link quality.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Meter {
    /// PIR page-retrieval time (the dominant component for our schemes).
    pub pir: CostBreakdown,
    /// Communication time: per-round RTTs plus byte transfer.
    pub comm_s: f64,
    /// Server-side plaintext computation (OBF's shortest-path evaluations;
    /// zero for the PIR schemes, which do not compute at the server).
    pub server_s: f64,
    /// Client-side computation (measured wall time of the client algorithm).
    pub client_s: f64,
    /// Bytes pushed through the client link.
    pub bytes_transferred: u64,
    /// Protocol rounds.
    pub rounds: u32,
    /// Transport request/response exchanges (wire round-trips): the query
    /// open, each full download, and each round batch — including every
    /// sub-round exchange of a round whose page list is discovered in
    /// stages (the HY continuation walk). Transport-independent: in-process
    /// execution counts the exchanges the wire transport would perform.
    /// Unlike `rounds`, this is a cost-model observable only — it carries
    /// no RTT charge, because rounds stream over the persistent connection.
    pub exchanges: u32,
    /// PIR fetches per file id (indexed by `FileId.0`).
    pub fetches_per_file: Vec<u64>,
}

impl Meter {
    /// Fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total response time in seconds — "the elapsed time from query
    /// submission until obtaining the shortest path result" (§7.1).
    pub fn response_time_s(&self) -> f64 {
        self.pir.total_s() + self.comm_s + self.server_s + self.client_s
    }

    /// Records `n` PIR fetches against file `file_idx`.
    pub fn record_fetches(&mut self, file_idx: usize, n: u64) {
        if self.fetches_per_file.len() <= file_idx {
            self.fetches_per_file.resize(file_idx + 1, 0);
        }
        self.fetches_per_file[file_idx] += n;
    }

    /// Total PIR fetches across files.
    pub fn total_fetches(&self) -> u64 {
        self.fetches_per_file.iter().sum()
    }

    /// Adds another meter (workload aggregation).
    pub fn add(&mut self, other: &Meter) {
        self.pir.add(other.pir);
        self.comm_s += other.comm_s;
        self.server_s += other.server_s;
        self.client_s += other.client_s;
        self.bytes_transferred += other.bytes_transferred;
        self.rounds += other.rounds;
        self.exchanges += other.exchanges;
        if self.fetches_per_file.len() < other.fetches_per_file.len() {
            self.fetches_per_file
                .resize(other.fetches_per_file.len(), 0);
        }
        for (i, &n) in other.fetches_per_file.iter().enumerate() {
            self.fetches_per_file[i] += n;
        }
    }

    /// Divides every component by `n` (workload averaging).
    pub fn scale_down(&self, n: u64) -> Meter {
        assert!(n > 0);
        let d = n as f64;
        Meter {
            pir: CostBreakdown {
                disk_s: self.pir.disk_s / d,
                scp_io_s: self.pir.scp_io_s / d,
                crypto_s: self.pir.crypto_s / d,
            },
            comm_s: self.comm_s / d,
            server_s: self.server_s / d,
            client_s: self.client_s / d,
            bytes_transferred: self.bytes_transferred / n,
            rounds: (u64::from(self.rounds) / n) as u32,
            exchanges: (u64::from(self.exchanges) / n) as u32,
            fetches_per_file: self.fetches_per_file.iter().map(|&f| f / n).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_time_sums_components() {
        let mut m = Meter::new();
        m.pir = CostBreakdown {
            disk_s: 1.0,
            scp_io_s: 2.0,
            crypto_s: 3.0,
        };
        m.comm_s = 4.0;
        m.server_s = 0.5;
        m.client_s = 0.25;
        assert!((m.response_time_s() - 10.75).abs() < 1e-12);
    }

    #[test]
    fn fetch_recording() {
        let mut m = Meter::new();
        m.record_fetches(2, 5);
        m.record_fetches(0, 1);
        m.record_fetches(2, 2);
        assert_eq!(m.fetches_per_file, vec![1, 0, 7]);
        assert_eq!(m.total_fetches(), 8);
    }

    #[test]
    fn aggregation_and_averaging() {
        let mut a = Meter::new();
        a.comm_s = 2.0;
        a.rounds = 4;
        a.record_fetches(1, 10);
        let mut b = Meter::new();
        b.comm_s = 4.0;
        b.rounds = 4;
        b.record_fetches(1, 20);
        b.record_fetches(3, 2);
        a.add(&b);
        assert_eq!(a.comm_s, 6.0);
        assert_eq!(a.rounds, 8);
        assert_eq!(a.fetches_per_file, vec![0, 30, 0, 2]);
        let avg = a.scale_down(2);
        assert_eq!(avg.comm_s, 3.0);
        assert_eq!(avg.rounds, 4);
        assert_eq!(avg.fetches_per_file, vec![0, 15, 0, 1]);
    }
}
