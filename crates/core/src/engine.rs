//! The user-facing engine: build a private shortest-path database for a
//! scheme, then run queries that leak nothing to the server.
//!
//! The types are split along the concurrency boundary:
//!
//! * [`Database`] — the immutable built artifact: the scheme state, the
//!   [`PirServer`] hosting the files, and the build statistics. Wrap it in
//!   an [`Arc`] and hand clones to as many threads as you like.
//! * [`QuerySession`] — one client's mutable query state: the PIR session
//!   (meter, trace, round counter), the RNG driving dummy fetches, and the
//!   reusable client-side scratch (subgraph arena + Dijkstra buffers).
//!   Sessions are cheap to create and fully independent; `N` sessions over
//!   one shared database run `N` queries concurrently.
//! * [`Engine`] — a convenience facade bundling one database with one
//!   session for the common single-threaded case.

use crate::config::BuildConfig;
use crate::error::CoreError;
use crate::files::fh::Header;
use crate::plan::{PlanFile, QueryPlan};
use crate::schemes::af::AfScheme;
use crate::schemes::index_scheme::{self, BuildStats, IndexFlavor, IndexScheme};
use crate::schemes::lm::LmScheme;
use crate::schemes::obf::ObfScheme;
use crate::subgraph::{ClientSubgraph, QueryScratch};
use crate::Result;
use privpath_graph::network::RoadNetwork;
use privpath_graph::types::{Dist, NodeId, Point};
use privpath_pir::{
    connect_chaos, AccessTrace, FaultPlan, FileId, FrontConfig, InProc, Meter, PirServer,
    PirSession, RetryPolicy, ServeHost, ServerFront, TcpFront, Transport,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The schemes of the paper's evaluation (§7): the four PIR index schemes,
/// the two PIR baselines, and the non-PIR obfuscation baseline. All seven
/// build into a [`Database`] and query through a [`QuerySession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Concise Index (§5).
    Ci,
    /// Passage Index (§6).
    Pi,
    /// Hybrid (§6).
    Hy,
    /// Clustered Passage Index (§6) — PI with `cluster_pages > 1`.
    PiStar,
    /// Landmark baseline (§4).
    Lm,
    /// Arc-flag baseline (§4).
    Af,
    /// Obfuscation baseline (§7.3) — decoy candidate sets, no PIR. Weak
    /// privacy (the LBS learns both sets); measured for performance context.
    Obf,
}

impl SchemeKind {
    /// All seven scheme kinds, in the paper's presentation order — the one
    /// canonical list for "sweep every scheme" call sites (the perf
    /// baseline's `--scheme all`, the consistency suites), so adding an
    /// eighth kind updates them all at once.
    pub const ALL: [SchemeKind; 7] = [
        SchemeKind::Ci,
        SchemeKind::Pi,
        SchemeKind::Hy,
        SchemeKind::PiStar,
        SchemeKind::Lm,
        SchemeKind::Af,
        SchemeKind::Obf,
    ];

    /// Header discriminator byte.
    pub fn byte(self) -> u8 {
        match self {
            SchemeKind::Ci => 1,
            SchemeKind::Pi => 2,
            SchemeKind::Hy => 3,
            SchemeKind::PiStar => 4,
            SchemeKind::Lm => 5,
            SchemeKind::Af => 6,
            SchemeKind::Obf => 7,
        }
    }

    /// Inverse of [`SchemeKind::byte`] — used when reopening a persisted
    /// snapshot, whose meta block records the scheme as its header byte.
    pub fn from_byte(b: u8) -> Option<SchemeKind> {
        SchemeKind::ALL.into_iter().find(|k| k.byte() == b)
    }

    /// Display name as used in the paper's charts.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Ci => "CI",
            SchemeKind::Pi => "PI",
            SchemeKind::Hy => "HY",
            SchemeKind::PiStar => "PI*",
            SchemeKind::Lm => "LM",
            SchemeKind::Af => "AF",
            SchemeKind::Obf => "OBF",
        }
    }

    /// True for the PIR-based schemes whose Theorem 1 trace-equality
    /// guarantee applies (everything except OBF).
    pub fn is_pir(self) -> bool {
        !matches!(self, SchemeKind::Obf)
    }
}

/// The shortest-path answer returned to the client.
#[derive(Debug, Clone)]
pub struct PathAnswer {
    /// Path cost, or `None` if the destination is unreachable.
    pub cost: Option<Dist>,
    /// Node sequence of the found path (empty when unreachable).
    pub path_nodes: Vec<NodeId>,
    /// Node the source point snapped to.
    pub src_node: NodeId,
    /// Node the destination point snapped to.
    pub dst_node: NodeId,
}

impl PathAnswer {
    /// True if a path was found.
    pub fn found(&self) -> bool {
        self.cost.is_some()
    }
}

/// Everything a query produces: the answer, the simulated costs, and the
/// adversary-observable trace.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The path.
    pub answer: PathAnswer,
    /// Cost accounting (PIR / communication / server / client, Table 3).
    pub meter: Meter,
    /// What the adversary saw.
    pub trace: AccessTrace,
    /// True if the query needed more fetches than the fixed plan allows
    /// (possible only for LM/AF with sampled plan derivation; see
    /// `BuildConfig::plan_sample`).
    pub plan_violation: bool,
}

pub(crate) enum SchemeState {
    Index(IndexScheme),
    Lm(LmScheme),
    Af(AfScheme),
    Obf(ObfScheme),
}

/// Per-session mutable query state handed to the scheme protocol drivers.
///
/// Everything a query mutates lives here: PIR accounting, the dummy-fetch
/// RNG, and the reusable client compute buffers. The buffers are cleared —
/// not reallocated — between queries, so steady-state queries stay off the
/// allocator.
pub struct QueryCtx {
    /// PIR protocol accounting (meter, trace, rounds) and the batched-round
    /// executor with its reusable page arena.
    pub pir: PirSession,
    /// Dummy-request page choices.
    pub rng: SmallRng,
    /// Client-side subgraph arena (CSR adjacency, interner, region runs).
    pub sub: ClientSubgraph,
    /// Client-side Dijkstra solver state (distances, heap, path buffer).
    pub scratch: QueryScratch,
    /// Round-assembly scratch: the `(file, page)` list a scheme builds up
    /// before issuing the round as one batch. Cleared — never reallocated —
    /// between rounds.
    pub reqs: Vec<(FileId, u32)>,
    /// Region-payload scratch for multi-page region groups. Cleared between
    /// regions.
    pub region_bytes: Vec<u8>,
}

impl QueryCtx {
    fn new(seed: u64) -> Self {
        QueryCtx {
            pir: PirSession::new(),
            rng: SmallRng::seed_from_u64(seed),
            sub: ClientSubgraph::new(),
            scratch: QueryScratch::new(),
            reqs: Vec::new(),
            region_bytes: Vec::new(),
        }
    }
}

/// A built private shortest-path database plus its (immutable) server.
///
/// Fields are `pub(crate)` so [`crate::snapshot`] can persist a built
/// database to disk and reconstruct one from a snapshot without widening
/// the public API.
pub struct Database {
    pub(crate) kind: SchemeKind,
    pub(crate) server: PirServer,
    pub(crate) state: SchemeState,
    pub(crate) stats: BuildStats,
    pub(crate) seed: u64,
}

impl Database {
    /// Builds the database for `kind` over `net` and stands up the LBS.
    pub fn build(net: &RoadNetwork, kind: SchemeKind, cfg: &BuildConfig) -> Result<Database> {
        let mut cfg = cfg.clone();
        match kind {
            SchemeKind::PiStar => {
                if cfg.cluster_pages < 2 {
                    cfg.cluster_pages = 2;
                }
            }
            SchemeKind::Pi => {}
            _ => cfg.cluster_pages = 1,
        }
        let mut server = PirServer::new(cfg.spec.clone());
        let (state, stats) = match kind {
            SchemeKind::Ci => {
                let (s, st) =
                    index_scheme::build(net, IndexFlavor::Sets, kind.byte(), &cfg, &mut server)?;
                (SchemeState::Index(s), st)
            }
            SchemeKind::Pi | SchemeKind::PiStar => {
                let (s, st) =
                    index_scheme::build(net, IndexFlavor::Graphs, kind.byte(), &cfg, &mut server)?;
                (SchemeState::Index(s), st)
            }
            SchemeKind::Hy => {
                let threshold = cfg.hy_threshold.unwrap_or(usize::MAX);
                let (s, st) = index_scheme::build(
                    net,
                    IndexFlavor::Hybrid { threshold },
                    kind.byte(),
                    &cfg,
                    &mut server,
                )?;
                (SchemeState::Index(s), st)
            }
            SchemeKind::Lm => {
                let (s, st) = crate::schemes::lm::build(net, &cfg, &mut server)?;
                (SchemeState::Lm(s), st)
            }
            SchemeKind::Af => {
                let (s, st) = crate::schemes::af::build(net, &cfg, &mut server)?;
                (SchemeState::Af(s), st)
            }
            SchemeKind::Obf => {
                let (s, st) = crate::schemes::obf::build(net, &cfg, &mut server)?;
                (SchemeState::Obf(s), st)
            }
        };
        Ok(Database {
            kind,
            server,
            state,
            stats,
            seed: cfg.seed,
        })
    }

    /// The scheme this database serves.
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// Build statistics (regions, borders, m, utilization, page counts).
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The PIR server hosting the files.
    pub fn server(&self) -> &PirServer {
        &self.server
    }

    /// Total database size in bytes — the storage-space metric of the
    /// evaluation charts.
    pub fn db_bytes(&self) -> u64 {
        self.server.total_bytes()
    }

    /// The fixed query plan.
    pub fn plan(&self) -> &QueryPlan {
        match &self.state {
            SchemeState::Index(s) => &s.header.plan,
            SchemeState::Lm(s) => &s.header.plan,
            SchemeState::Af(s) => &s.header.plan,
            SchemeState::Obf(s) => &s.plan,
        }
    }

    /// The parsed public header, or `None` for OBF (which has no PIR files).
    /// The header is public by construction — every client downloads it in
    /// full — so exposing it leaks nothing.
    pub fn header(&self) -> Option<&Header> {
        match &self.state {
            SchemeState::Index(s) => Some(&s.header),
            SchemeState::Lm(s) => Some(&s.header),
            SchemeState::Af(s) => Some(&s.header),
            SchemeState::Obf(_) => None,
        }
    }

    /// Wraps this database as generation 1 of a hot-swappable
    /// [`crate::generation::DbRegistry`]: the entry point to background
    /// rebuilds and atomic generation cutover (see [`crate::generation`]).
    pub fn registry(self: &Arc<Self>) -> Arc<crate::generation::DbRegistry> {
        crate::generation::DbRegistry::new(Arc::clone(self))
    }

    /// Stands up a wire server front for this database: a loop thread that
    /// owns an `Arc` of it and serves any number of [`QuerySession`]s
    /// connected through [`Database::wire_session_with_seed`] (or raw
    /// [`privpath_pir::WireChannel`]s) over the versioned frame protocol.
    /// A front stood up this way serves this database forever; for live
    /// rebuild-and-swap serving, go through [`Database::registry`] and
    /// [`crate::generation::DbRegistry::serve_wire`] instead.
    pub fn serve_wire(self: &Arc<Self>) -> ServerFront {
        ServerFront::spawn(Arc::clone(self))
    }

    /// [`Database::serve_wire`] with explicit degradation knobs (idle
    /// eviction etc.).
    pub fn serve_wire_with(self: &Arc<Self>, cfg: FrontConfig) -> ServerFront {
        ServerFront::spawn_with(Arc::clone(self), cfg)
    }

    /// Stands up a network-real server for this database: the same front
    /// loop as [`Database::serve_wire`], behind a loopback TCP accept loop
    /// serving the frame protocol over real sockets
    /// ([`privpath_pir::TcpFront`]). Clients connect through
    /// [`Database::tcp_session_with_seed`] or any [`privpath_pir::TcpLink`].
    pub fn serve_tcp(self: &Arc<Self>) -> Result<TcpFront> {
        self.serve_tcp_with(FrontConfig::default())
    }

    /// [`Database::serve_tcp`] with explicit front-end knobs — notably
    /// [`FrontConfig::coalesce_window`] for cross-session round coalescing
    /// and [`FrontConfig::chunk_bytes`] for chunked response streaming.
    pub fn serve_tcp_with(self: &Arc<Self>, cfg: FrontConfig) -> Result<TcpFront> {
        Ok(TcpFront::spawn_with(Arc::clone(self), cfg)?)
    }

    /// Opens a query session over a real TCP connection to `front`. Same
    /// contract as [`Database::wire_session_with_seed`], but every frame
    /// crosses a loopback socket.
    pub fn tcp_session_with_seed(
        self: &Arc<Self>,
        front: &TcpFront,
        seed: u64,
    ) -> Result<QuerySession> {
        let chan = front.connect()?;
        Ok(self.session_over(seed, Box::new(chan)))
    }

    /// Opens a TCP session through a client-side [`privpath_pir::ChaosLink`]
    /// fault injector layered over the socket; the channel recovers per
    /// `policy`. The chaos-under-TCP differential in `tests/chaos.rs`
    /// checks answers and meters stay bit-identical to a clean session.
    pub fn chaos_tcp_session_with_seed(
        self: &Arc<Self>,
        front: &TcpFront,
        seed: u64,
        plan: FaultPlan,
        policy: RetryPolicy,
    ) -> Result<QuerySession> {
        let chan = front.connect_chaos(plan, policy)?;
        Ok(self.session_over(seed, Box::new(chan)))
    }

    /// Maps a plan file to the concrete server [`FileId`] this database
    /// registered for it, or `None` when the scheme has no such file. This
    /// is what lets [`crate::audit::check_plan_conformance`] verify a
    /// recorded trace against [`Database::plan`].
    pub fn file_of(&self, file: PlanFile) -> Option<FileId> {
        match (&self.state, file) {
            (SchemeState::Index(s), PlanFile::Header) => Some(s.header_file),
            (SchemeState::Index(s), PlanFile::Lookup) => Some(s.lookup_file),
            (SchemeState::Index(s), PlanFile::Index) => Some(s.index_file),
            (SchemeState::Index(s), PlanFile::Data) => Some(s.data_file),
            // HY registers one combined `Fi|Fd` file under the index id.
            (SchemeState::Index(s), PlanFile::Combined) => Some(s.index_file),
            (SchemeState::Lm(s), PlanFile::Header) => Some(s.header_file),
            (SchemeState::Lm(s), PlanFile::Data) => Some(s.data_file),
            (SchemeState::Af(s), PlanFile::Header) => Some(s.header_file),
            (SchemeState::Af(s), PlanFile::Data) => Some(s.data_file),
            _ => None,
        }
    }

    /// Opens a query session with the database's default RNG stream (the
    /// same dummy-page choices a freshly built [`Engine`] makes).
    pub fn session(self: &Arc<Self>) -> QuerySession {
        self.session_with_seed(self.seed ^ 0x9e37)
    }

    /// Opens a query session with an explicit RNG seed — give each thread
    /// of a parallel workload its own seed. The session runs over the
    /// in-process transport: direct calls into this database's server.
    pub fn session_with_seed(self: &Arc<Self>, seed: u64) -> QuerySession {
        self.session_over(seed, Box::new(InProc::new(Arc::clone(self))))
    }

    /// Opens a query session over a wire connection to `front` (which must
    /// serve this same database — answers are wrong otherwise, exactly as
    /// with a real misdirected client). Every protocol operation of the
    /// session crosses the frame protocol into the front's loop thread.
    pub fn wire_session_with_seed(
        self: &Arc<Self>,
        front: &ServerFront,
        seed: u64,
    ) -> Result<QuerySession> {
        let chan = front.connect()?;
        Ok(self.session_over(seed, Box::new(chan)))
    }

    /// Opens a wire session through a fault-injected link: frames to and
    /// from `front` pass a [`privpath_pir::ChaosLink`] running `plan`, and
    /// the channel recovers per `policy`. Answers, meters and traces are
    /// bit-identical to a clean-link session (the chaos differential suite
    /// enforces it) — only [`QuerySession::transport_retries`] differs.
    pub fn chaos_wire_session_with_seed(
        self: &Arc<Self>,
        front: &ServerFront,
        seed: u64,
        plan: FaultPlan,
        policy: RetryPolicy,
    ) -> Result<QuerySession> {
        let chan = connect_chaos(front, plan, policy)?;
        Ok(self.session_over(seed, Box::new(chan)))
    }

    /// Opens a query session over an explicit transport.
    pub fn session_over(
        self: &Arc<Self>,
        seed: u64,
        link: Box<dyn Transport + Send>,
    ) -> QuerySession {
        QuerySession {
            db: Arc::clone(self),
            ctx: QueryCtx::new(seed),
            link,
        }
    }
}

impl ServeHost for Database {
    fn pir_server(&self) -> &PirServer {
        &self.server
    }
}

/// One client's query session over a shared [`Database`], bound to a
/// [`Transport`] — the in-process reference path by default, or a wire
/// channel into a [`ServerFront`]. Every scheme's round execution drives
/// through the transport; there is no scheme-shaped special case at the
/// boundary, and no transport-shaped one either (the differential suite in
/// `tests/leakage.rs` holds wire and in-process execution observably
/// identical per scheme).
pub struct QuerySession {
    db: Arc<Database>,
    ctx: QueryCtx,
    link: Box<dyn Transport + Send>,
}

impl QuerySession {
    /// The shared database this session queries.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Switches between batched round execution (default) and the per-fetch
    /// reference path. Answers, meters and traces are identical either way —
    /// the differential suite in `tests/leakage.rs` enforces it — so this
    /// only matters for benchmarking the batching win itself.
    pub fn set_batched(&mut self, on: bool) {
        self.ctx.pir.set_batched(on);
    }

    /// Runs one private query from `s` to `t` (Euclidean points anywhere on
    /// the network; they are snapped to nodes of their host regions).
    pub fn query(&mut self, s: Point, t: Point) -> Result<QueryOutput> {
        let db = Arc::clone(&self.db);
        let link = self.link.as_mut();
        match &db.state {
            SchemeState::Index(scheme) => index_scheme::query(scheme, link, &mut self.ctx, s, t),
            SchemeState::Lm(scheme) => crate::schemes::lm::query(scheme, link, &mut self.ctx, s, t),
            SchemeState::Af(scheme) => crate::schemes::af::query(scheme, link, &mut self.ctx, s, t),
            SchemeState::Obf(scheme) => {
                crate::schemes::obf::query(scheme, link, &mut self.ctx, s, t)
            }
        }
    }

    /// Retransmissions the session's transport has performed so far. Zero
    /// on a perfect link; under chaos this is the recovery work the retry
    /// policy spent. Deliberately *not* part of the query meter — retries
    /// depend on the link, not the query, and meters stay bit-identical
    /// across link quality.
    pub fn transport_retries(&self) -> u64 {
        self.link.retries()
    }

    /// Closes the session's transport (sends the close frame on a wire;
    /// no-op in-process).
    pub fn close(mut self) -> Result<()> {
        self.link.close().map_err(CoreError::from)
    }

    /// Convenience: query between two node ids of the original network.
    pub fn query_nodes(&mut self, net: &RoadNetwork, s: NodeId, t: NodeId) -> Result<QueryOutput> {
        if s as usize >= net.num_nodes() || t as usize >= net.num_nodes() {
            return Err(CoreError::Query("node id out of range".into()));
        }
        self.query(net.node_point(s), net.node_point(t))
    }
}

/// A built database bundled with a single query session — the convenience
/// facade for single-threaded use. For concurrent querying, build a
/// [`Database`], wrap it in an [`Arc`], and open one [`QuerySession`] per
/// thread.
pub struct Engine {
    session: QuerySession,
}

impl Engine {
    /// Builds the database for `kind` over `net` and opens a session.
    pub fn build(net: &RoadNetwork, kind: SchemeKind, cfg: &BuildConfig) -> Result<Engine> {
        let db = Arc::new(Database::build(net, kind, cfg)?);
        Ok(Engine {
            session: db.session(),
        })
    }

    /// The scheme this engine serves.
    pub fn kind(&self) -> SchemeKind {
        self.session.db.kind()
    }

    /// Build statistics (regions, borders, m, utilization, page counts).
    pub fn stats(&self) -> &BuildStats {
        self.session.db.stats()
    }

    /// Total database size in bytes.
    pub fn db_bytes(&self) -> u64 {
        self.session.db.db_bytes()
    }

    /// The fixed query plan.
    pub fn plan(&self) -> &QueryPlan {
        self.session.db.plan()
    }

    /// The shared database (clone the `Arc` to open more sessions).
    pub fn database(&self) -> &Arc<Database> {
        self.session.database()
    }

    /// Runs one private query from `s` to `t`.
    pub fn query(&mut self, s: Point, t: Point) -> Result<QueryOutput> {
        self.session.query(s, t)
    }

    /// Convenience: query between two node ids of the original network.
    pub fn query_nodes(&mut self, net: &RoadNetwork, s: NodeId, t: NodeId) -> Result<QueryOutput> {
        self.session.query_nodes(net, s, t)
    }
}
