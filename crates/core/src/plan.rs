//! Fixed query plans.
//!
//! The security proof (Theorem 1) requires every query to (i) execute the
//! same number of rounds, (ii) access the same files in the same order in
//! each round, and (iii) fetch the same number of pages from each file.
//! A [`QueryPlan`] is that contract as data; it is serialized into the
//! public header file, and the client pads its real needs with dummy
//! retrievals to conform.

use privpath_storage::{ByteReader, ByteWriter, StorageError};

/// Which database file a plan step touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanFile {
    /// The header `Fh`, downloaded in full (never via PIR).
    Header,
    /// The look-up file `Fl`.
    Lookup,
    /// The network index `Fi`.
    Index,
    /// The region data `Fd`.
    Data,
    /// The concatenated `Fi|Fd` file of the HY scheme.
    Combined,
}

impl PlanFile {
    fn tag(self) -> u8 {
        match self {
            PlanFile::Header => 0,
            PlanFile::Lookup => 1,
            PlanFile::Index => 2,
            PlanFile::Data => 3,
            PlanFile::Combined => 4,
        }
    }

    fn from_tag(t: u8) -> Result<Self, StorageError> {
        Ok(match t {
            0 => PlanFile::Header,
            1 => PlanFile::Lookup,
            2 => PlanFile::Index,
            3 => PlanFile::Data,
            4 => PlanFile::Combined,
            _ => return Err(StorageError::Corrupt(format!("bad plan file tag {t}"))),
        })
    }
}

/// One protocol round: an ordered list of `(file, page fetches)` steps.
/// A `Header` step means a full download (page count ignored).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RoundSpec {
    /// Steps executed in order within the round.
    pub steps: Vec<(PlanFile, u32)>,
}

impl RoundSpec {
    /// Single-step round.
    pub fn one(file: PlanFile, fetches: u32) -> Self {
        RoundSpec {
            steps: vec![(file, fetches)],
        }
    }
}

/// The full fixed plan for a scheme.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryPlan {
    /// Rounds in execution order.
    pub rounds: Vec<RoundSpec>,
}

impl QueryPlan {
    /// Total PIR fetches against `file` across all rounds.
    pub fn fetches_of(&self, file: PlanFile) -> u32 {
        self.rounds
            .iter()
            .flat_map(|r| &r.steps)
            .filter(|(f, _)| *f == file)
            .map(|&(_, n)| n)
            .sum()
    }

    /// Total PIR fetches (all files except the header download).
    pub fn total_fetches(&self) -> u32 {
        self.rounds
            .iter()
            .flat_map(|r| &r.steps)
            .filter(|(f, _)| *f != PlanFile::Header)
            .map(|&(_, n)| n)
            .sum()
    }

    /// Number of rounds.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Serializes the plan (part of the public header).
    pub fn serialize(&self, w: &mut ByteWriter) {
        w.u16(self.rounds.len() as u16);
        for round in &self.rounds {
            w.u8(round.steps.len() as u8);
            for &(file, n) in &round.steps {
                w.u8(file.tag());
                w.u32(n);
            }
        }
    }

    /// Decodes a plan serialized by [`QueryPlan::serialize`].
    pub fn deserialize(r: &mut ByteReader<'_>) -> Result<QueryPlan, StorageError> {
        let rounds = r.u16()? as usize;
        let mut plan = QueryPlan::default();
        for _ in 0..rounds {
            let steps = r.u8()? as usize;
            let mut round = RoundSpec::default();
            for _ in 0..steps {
                let file = PlanFile::from_tag(r.u8()?)?;
                let n = r.u32()?;
                round.steps.push((file, n));
            }
            plan.rounds.push(round);
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci_like_plan() -> QueryPlan {
        QueryPlan {
            rounds: vec![
                RoundSpec::one(PlanFile::Header, 0),
                RoundSpec::one(PlanFile::Lookup, 1),
                RoundSpec::one(PlanFile::Index, 3),
                RoundSpec::one(PlanFile::Data, 12),
            ],
        }
    }

    #[test]
    fn counts() {
        let p = ci_like_plan();
        assert_eq!(p.num_rounds(), 4);
        assert_eq!(p.fetches_of(PlanFile::Index), 3);
        assert_eq!(p.fetches_of(PlanFile::Data), 12);
        assert_eq!(p.total_fetches(), 16);
    }

    #[test]
    fn serialization_round_trip() {
        let p = QueryPlan {
            rounds: vec![
                RoundSpec::one(PlanFile::Header, 0),
                RoundSpec::one(PlanFile::Lookup, 1),
                RoundSpec {
                    steps: vec![(PlanFile::Index, 4), (PlanFile::Data, 2)],
                },
            ],
        };
        let mut w = ByteWriter::new();
        p.serialize(&mut w);
        let buf = w.into_vec();
        let q = QueryPlan::deserialize(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn corrupt_tag_rejected() {
        let mut w = ByteWriter::new();
        w.u16(1).u8(1).u8(9).u32(1);
        let buf = w.into_vec();
        assert!(QueryPlan::deserialize(&mut ByteReader::new(&buf)).is_err());
    }
}
