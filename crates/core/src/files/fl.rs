//! The look-up file `Fl`: "a dense index over Fi ... for every (i, j) pair,
//! Fl stores a look-up entry that indicates the page number in Fi that holds
//! region set S_ij. ... The pages in Fl are packed ... for any pair (i, j), a
//! division by that number indicates the Fl page that holds the corresponding
//! look-up entry" (§5.3). Entry keys are implicit in the (i, j) ordering.

use super::{seal_file, PAGE_CRC_BYTES};
use crate::error::CoreError;
use crate::Result;
use privpath_storage::MemFile;

/// Fixed-width look-up entries: the `Fi` page number holding the record.
pub const FL_ENTRY_BYTES: usize = 4;

/// Entries per `Fl` page for the given page size.
pub fn entries_per_page(page_size: usize) -> usize {
    (page_size - PAGE_CRC_BYTES) / FL_ENTRY_BYTES
}

/// Entry index of pair `(i, j)` with `R` regions.
pub fn entry_index(i: u16, j: u16, num_regions: u16) -> usize {
    i as usize * num_regions as usize + j as usize
}

/// `Fl` page that holds entry `idx`.
pub fn page_of_entry(idx: usize, page_size: usize) -> u32 {
    (idx / entries_per_page(page_size)) as u32
}

/// Builds `Fl` from the dense entry array (indexed by
/// [`entry_index`]).
pub fn build_fl(entries: &[u32], page_size: usize) -> MemFile {
    let per_page = entries_per_page(page_size);
    let mut payloads = Vec::new();
    for chunk in entries.chunks(per_page) {
        let mut payload = Vec::with_capacity(chunk.len() * FL_ENTRY_BYTES);
        for &e in chunk {
            payload.extend_from_slice(&e.to_le_bytes());
        }
        payloads.push(payload);
    }
    if payloads.is_empty() {
        payloads.push(Vec::new()); // at least one page so the plan's 1 fetch is valid
    }
    seal_file(&payloads, page_size)
}

/// Reads entry `idx` from the unsealed payload of its page.
pub fn read_entry(page_payload: &[u8], idx: usize, page_size: usize) -> Result<u32> {
    let per_page = entries_per_page(page_size);
    let slot = idx % per_page;
    let off = slot * FL_ENTRY_BYTES;
    if off + FL_ENTRY_BYTES > page_payload.len() {
        return Err(CoreError::Query(format!(
            "look-up slot {slot} beyond page payload"
        )));
    }
    Ok(u32::from_le_bytes(
        page_payload[off..off + 4].try_into().expect("4 bytes"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::unseal_page;
    use privpath_storage::PagedFile;

    #[test]
    fn dense_index_round_trip() {
        let r = 37u16;
        let entries: Vec<u32> = (0..u32::from(r) * u32::from(r))
            .map(|k| k.wrapping_mul(2654435761))
            .collect();
        let fl = build_fl(&entries, 4096);
        let per_page = entries_per_page(4096);
        assert_eq!(fl.num_pages() as usize, entries.len().div_ceil(per_page));
        for i in (0..r).step_by(5) {
            for j in (0..r).step_by(7) {
                let idx = entry_index(i, j, r);
                let page = page_of_entry(idx, 4096);
                let payload = unseal_page(&fl.read_page(page).unwrap()).unwrap().to_vec();
                assert_eq!(read_entry(&payload, idx, 4096).unwrap(), entries[idx]);
            }
        }
    }

    #[test]
    fn empty_network_still_has_one_page() {
        let fl = build_fl(&[], 4096);
        assert_eq!(fl.num_pages(), 1);
    }

    #[test]
    fn per_page_math() {
        assert_eq!(entries_per_page(4096), 1023);
        assert_eq!(page_of_entry(0, 4096), 0);
        assert_eq!(page_of_entry(1022, 4096), 0);
        assert_eq!(page_of_entry(1023, 4096), 1);
    }

    #[test]
    fn out_of_page_slot_rejected() {
        let fl = build_fl(&[1, 2, 3], 4096);
        let payload = unseal_page(&fl.read_page(0).unwrap()).unwrap().to_vec();
        // slot 3 exists physically (padding) but reading beyond is fine as
        // long as within payload; slot beyond payload length fails
        assert!(read_entry(&payload[..8], 2, 4096).is_err());
    }
}
