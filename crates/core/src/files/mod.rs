//! The database files of §5.3: header `Fh`, look-up `Fl`, network index
//! `Fi`, region data `Fd`.
//!
//! Every page carries a leading CRC-32 over its payload. The paper's
//! honest-but-curious server never corrupts data, so the checksum costs 4
//! bytes of capacity and buys detection when the fault-injection extension
//! breaks that assumption (DESIGN.md §7).

pub mod fd;
pub mod fh;
pub mod fi;
pub mod fl;

use crate::error::CoreError;
use crate::Result;
#[cfg(test)]
use privpath_storage::PagedFile;
use privpath_storage::{crc32, MemFile, PageBuf};

/// Bytes reserved at the start of each page for the CRC-32 trailer.
pub const PAGE_CRC_BYTES: usize = 4;

/// Seals a payload into a page: `[crc32(padded payload)][payload][zeros]`.
///
/// Sealing is a pure function of `(payload, page_size)` — identical
/// payloads always produce identical page bytes. The leakage suite's
/// bit-identity differentials (in-process vs wire vs chaos vs coalesced,
/// and PR 8's straddling-swap vs solo-halves) depend on this: any
/// nondeterminism here (timestamps, randomized padding) would make equal
/// logical content observably distinguishable.
///
/// # Panics
/// Panics if the payload exceeds `page_size - 4`.
pub fn seal_page(payload: &[u8], page_size: usize) -> PageBuf {
    assert!(
        payload.len() + PAGE_CRC_BYTES <= page_size,
        "payload of {} bytes exceeds page capacity {}",
        payload.len(),
        page_size - PAGE_CRC_BYTES
    );
    let mut body = vec![0u8; page_size - PAGE_CRC_BYTES];
    body[..payload.len()].copy_from_slice(payload);
    let mut page = vec![0u8; page_size];
    page[..4].copy_from_slice(&crc32(&body).to_le_bytes());
    page[4..].copy_from_slice(&body);
    PageBuf::from_bytes(&page, page_size)
}

/// Verifies a sealed page and returns its padded payload
/// (`page_size - 4` bytes).
pub fn unseal_page(page: &PageBuf) -> Result<&[u8]> {
    let bytes = page.as_slice();
    if bytes.len() <= PAGE_CRC_BYTES {
        return Err(CoreError::Query("page too small to unseal".into()));
    }
    let stored = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
    let body = &bytes[4..];
    let actual = crc32(body);
    if stored != actual {
        return Err(CoreError::Storage(
            privpath_storage::StorageError::ChecksumMismatch {
                expected: stored,
                actual,
            },
        ));
    }
    Ok(body)
}

/// Builds a sealed [`MemFile`] from per-page payloads.
pub fn seal_file(payloads: &[Vec<u8>], page_size: usize) -> MemFile {
    let pages = payloads.iter().map(|p| seal_page(p, page_size)).collect();
    MemFile::from_pages(pages, page_size)
}

/// Unseals a full-file download (byte concatenation of sealed pages) back
/// into the concatenated payload stream.
///
/// `bytes` must be exactly the file's sealed pages in order — the
/// `DownloadResponse` (or reassembled `Chunk` train) of one file from one
/// generation. Mixing pages from two generations fails here only if a page
/// happens to be corrupt; the cross-generation guard is upstream, in the
/// session's generation pinning, not in this codec.
pub fn unseal_download(bytes: &[u8], page_size: usize) -> Result<Vec<u8>> {
    if !bytes.len().is_multiple_of(page_size) {
        return Err(CoreError::Query(format!(
            "download of {} bytes is not page aligned",
            bytes.len()
        )));
    }
    let mut out = Vec::with_capacity(bytes.len());
    for chunk in bytes.chunks(page_size) {
        let page = PageBuf::from_bytes(chunk, page_size);
        out.extend_from_slice(unseal_page(&page)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_round_trip() {
        let page = seal_page(b"hello", 64);
        let body = unseal_page(&page).unwrap();
        assert_eq!(&body[..5], b"hello");
        assert_eq!(body.len(), 60);
    }

    #[test]
    fn tamper_detected() {
        let mut page = seal_page(b"data", 64);
        page.as_mut_slice()[10] ^= 1;
        assert!(matches!(
            unseal_page(&page),
            Err(CoreError::Storage(
                privpath_storage::StorageError::ChecksumMismatch { .. }
            ))
        ));
    }

    #[test]
    fn crc_tamper_detected_too() {
        let mut page = seal_page(b"data", 64);
        page.as_mut_slice()[0] ^= 1;
        assert!(unseal_page(&page).is_err());
    }

    #[test]
    fn file_download_round_trip() {
        let payloads = vec![b"page-one".to_vec(), b"page-two".to_vec()];
        let f = seal_file(&payloads, 64);
        assert_eq!(f.num_pages(), 2);
        let mut raw = Vec::new();
        for p in 0..2 {
            raw.extend_from_slice(f.read_page(p).unwrap().as_slice());
        }
        let body = unseal_download(&raw, 64).unwrap();
        assert_eq!(&body[..8], b"page-one");
        assert_eq!(&body[60..68], b"page-two");
    }

    #[test]
    #[should_panic(expected = "exceeds page capacity")]
    fn oversized_payload_panics() {
        seal_page(&[0u8; 61], 64);
    }
}
