//! The region data file `Fd`: "exactly one page for every region ... node
//! identifiers, their adjacency lists and incident edge weights" (§5.3).
//! PI* allocates a fixed cluster of pages per region instead (§6), and the
//! LM/AF baselines extend the node records with landmark vectors / arc
//! flags (§4).

use super::{seal_file, PAGE_CRC_BYTES};
use crate::error::CoreError;
use crate::Result;
use privpath_graph::network::RoadNetwork;
use privpath_graph::types::Point;
use privpath_partition::{Partition, RegionId};
use privpath_storage::{ByteReader, ByteWriter, MemFile};

/// Record layout options (fixed per database, stored in the header).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecordFormat {
    /// Landmark vector length per node (LM baseline; 0 otherwise).
    pub lm_count: u16,
    /// Store each adjacency entry's head-node region (LM/AF baselines need
    /// it to know which page to fetch when the search frontier leaves the
    /// fetched area).
    pub with_regions: bool,
    /// Arc-flag bytes per adjacency entry (AF baseline; 0 otherwise).
    pub flag_bytes: u16,
}

impl RecordFormat {
    /// Serialized bytes of one node record with the given degree.
    pub fn node_bytes(&self, degree: usize) -> usize {
        14 + 4 * self.lm_count as usize
            + degree * (8 + usize::from(self.with_regions) * 2 + self.flag_bytes as usize)
    }
}

/// Per-node / per-edge extras supplied by baseline builders.
pub trait NodeExtra {
    /// Landmark vector of `node` (`lm_count` entries).
    fn lm_vec(&self, _node: u32) -> Vec<u32> {
        Vec::new()
    }
    /// Arc-flag bytes of `edge` (`flag_bytes` bytes).
    fn edge_flags(&self, _edge: u32) -> Vec<u8> {
        Vec::new()
    }
}

/// No extras (CI/PI/HY/PI*).
pub struct NoExtra;
impl NodeExtra for NoExtra {}

/// A decoded adjacency entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjEntry {
    /// Head node.
    pub to: u32,
    /// Weight.
    pub w: u32,
    /// Head node's region (`u16::MAX` when not stored).
    pub to_region: u16,
    /// Arc-flag bytes (empty when not stored).
    pub flags: Vec<u8>,
}

/// A decoded node record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeData {
    /// Node id.
    pub id: u32,
    /// Coordinates.
    pub pos: Point,
    /// Landmark vector (empty unless LM).
    pub lm_vec: Vec<u32>,
    /// Outgoing adjacency.
    pub adj: Vec<AdjEntry>,
}

/// A decoded region page group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionData {
    /// The region id.
    pub region: RegionId,
    /// Its nodes.
    pub nodes: Vec<NodeData>,
}

/// Builds `Fd`: `cluster_pages` sealed pages per region, in region order.
/// Region `r`'s pages are `r * cluster_pages ..`.
pub fn build_fd(
    net: &RoadNetwork,
    partition: &Partition,
    fmt: &RecordFormat,
    extra: &dyn NodeExtra,
    cluster_pages: u16,
    page_size: usize,
) -> Result<MemFile> {
    let payload_cap = page_size - PAGE_CRC_BYTES;
    let cluster = cluster_pages.max(1) as usize;
    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(partition.num_regions() as usize * cluster);
    for (r, nodes) in partition.region_nodes.iter().enumerate() {
        let mut w = ByteWriter::new();
        w.u16(r as u16);
        w.u16(nodes.len() as u16);
        for &u in nodes {
            let p = net.node_point(u);
            w.u32(u).i32(p.x).i32(p.y);
            let lm = extra.lm_vec(u);
            if lm.len() != fmt.lm_count as usize {
                return Err(CoreError::Build(format!(
                    "node {u}: landmark vector has {} entries, format says {}",
                    lm.len(),
                    fmt.lm_count
                )));
            }
            for v in lm {
                w.u32(v);
            }
            w.u16(net.degree(u) as u16);
            for (e, v, wt) in net.arcs_from(u) {
                w.u32(v).u32(wt);
                if fmt.with_regions {
                    w.u16(partition.region_of_node[v as usize]);
                }
                if fmt.flag_bytes > 0 {
                    let flags = extra.edge_flags(e);
                    if flags.len() != fmt.flag_bytes as usize {
                        return Err(CoreError::Build(format!(
                            "edge {e}: {} flag bytes, format says {}",
                            flags.len(),
                            fmt.flag_bytes
                        )));
                    }
                    w.bytes(&flags);
                }
            }
        }
        let stream = w.into_vec();
        if stream.len() > cluster * payload_cap {
            return Err(CoreError::Build(format!(
                "region {r}: {} bytes exceed {} page(s) of capacity {}",
                stream.len(),
                cluster,
                payload_cap
            )));
        }
        for c in 0..cluster {
            let lo = (c * payload_cap).min(stream.len());
            let hi = ((c + 1) * payload_cap).min(stream.len());
            payloads.push(stream[lo..hi].to_vec());
        }
    }
    Ok(seal_file(&payloads, page_size))
}

/// Decodes a region from its concatenated (unsealed) page payloads.
pub fn decode_region(payloads: &[u8], fmt: &RecordFormat) -> Result<RegionData> {
    let mut r = ByteReader::new(payloads);
    let region = r.u16()?;
    let count = r.u16()? as usize;
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.u32()?;
        let x = r.i32()?;
        let y = r.i32()?;
        let mut lm_vec = Vec::with_capacity(fmt.lm_count as usize);
        for _ in 0..fmt.lm_count {
            lm_vec.push(r.u32()?);
        }
        let deg = r.u16()? as usize;
        let mut adj = Vec::with_capacity(deg);
        for _ in 0..deg {
            let to = r.u32()?;
            let w = r.u32()?;
            let to_region = if fmt.with_regions { r.u16()? } else { u16::MAX };
            let flags = if fmt.flag_bytes > 0 {
                r.bytes(fmt.flag_bytes as usize)?.to_vec()
            } else {
                Vec::new()
            };
            adj.push(AdjEntry {
                to,
                w,
                to_region,
                flags,
            });
        }
        nodes.push(NodeData {
            id,
            pos: Point::new(x, y),
            lm_vec,
            adj,
        });
    }
    Ok(RegionData { region, nodes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::unseal_page;
    use privpath_graph::gen::{grid_network, GridGenConfig};
    use privpath_partition::partition_packed;
    use privpath_storage::PagedFile;

    fn read_region(fd: &MemFile, region: u16, cluster: u16) -> Vec<u8> {
        let mut buf = Vec::new();
        for c in 0..cluster {
            let page = fd
                .read_page(u32::from(region) * u32::from(cluster) + u32::from(c))
                .unwrap();
            buf.extend_from_slice(unseal_page(&page).unwrap());
        }
        buf
    }

    #[test]
    fn round_trip_plain_format() {
        let net = grid_network(&GridGenConfig {
            nx: 10,
            ny: 10,
            ..Default::default()
        });
        let fmt = RecordFormat::default();
        let p = partition_packed(&net, 4092 - 4, &|u| fmt.node_bytes(net.degree(u)));
        let fd = build_fd(&net, &p, &fmt, &NoExtra, 1, 4096).unwrap();
        assert_eq!(fd.num_pages(), u32::from(p.num_regions()));
        let mut seen_nodes = 0usize;
        for r in 0..p.num_regions() {
            let data = decode_region(&read_region(&fd, r, 1), &fmt).unwrap();
            assert_eq!(data.region, r);
            for n in &data.nodes {
                assert_eq!(p.region_of_node[n.id as usize], r);
                assert_eq!(n.pos, net.node_point(n.id));
                assert_eq!(n.adj.len(), net.degree(n.id));
                for (k, (_, v, w)) in net.arcs_from(n.id).enumerate() {
                    assert_eq!(n.adj[k].to, v);
                    assert_eq!(n.adj[k].w, w);
                }
            }
            seen_nodes += data.nodes.len();
        }
        assert_eq!(seen_nodes, net.num_nodes());
    }

    #[test]
    fn clustered_regions_span_pages() {
        let net = grid_network(&GridGenConfig {
            nx: 12,
            ny: 12,
            ..Default::default()
        });
        let fmt = RecordFormat::default();
        let cluster = 3u16;
        let cap = (4096 - 4) * cluster as usize - 4;
        let p = partition_packed(&net, cap, &|u| fmt.node_bytes(net.degree(u)));
        let fd = build_fd(&net, &p, &fmt, &NoExtra, cluster, 4096).unwrap();
        assert_eq!(
            fd.num_pages(),
            u32::from(p.num_regions()) * u32::from(cluster)
        );
        for r in 0..p.num_regions() {
            let data = decode_region(&read_region(&fd, r, cluster), &fmt).unwrap();
            assert_eq!(data.region, r);
            assert!(!data.nodes.is_empty());
        }
    }

    struct TestExtra;
    impl NodeExtra for TestExtra {
        fn lm_vec(&self, node: u32) -> Vec<u32> {
            vec![node * 10, node * 10 + 1]
        }
        fn edge_flags(&self, edge: u32) -> Vec<u8> {
            vec![(edge % 251) as u8]
        }
    }

    #[test]
    fn extras_round_trip() {
        let net = grid_network(&GridGenConfig {
            nx: 6,
            ny: 6,
            ..Default::default()
        });
        let fmt = RecordFormat {
            lm_count: 2,
            with_regions: true,
            flag_bytes: 1,
        };
        let p = partition_packed(&net, 2048, &|u| fmt.node_bytes(net.degree(u)));
        let fd = build_fd(&net, &p, &fmt, &TestExtra, 1, 4096).unwrap();
        for r in 0..p.num_regions() {
            let data = decode_region(&read_region(&fd, r, 1), &fmt).unwrap();
            for n in &data.nodes {
                assert_eq!(n.lm_vec, vec![n.id * 10, n.id * 10 + 1]);
                for (k, (e, v, _)) in net.arcs_from(n.id).enumerate() {
                    assert_eq!(n.adj[k].flags, vec![(e % 251) as u8]);
                    assert_eq!(n.adj[k].to_region, p.region_of_node[v as usize]);
                }
            }
        }
    }

    #[test]
    fn format_bytes_match_encoder() {
        let net = grid_network(&GridGenConfig {
            nx: 5,
            ny: 5,
            ..Default::default()
        });
        let fmt = RecordFormat {
            lm_count: 3,
            with_regions: true,
            flag_bytes: 2,
        };
        // encode a single-region file and check stream length
        let p = partition_packed(&net, 1 << 20, &|u| fmt.node_bytes(net.degree(u)));
        assert_eq!(p.num_regions(), 1);
        let expected: usize = 4
            + (0..net.num_nodes() as u32)
                .map(|u| fmt.node_bytes(net.degree(u)))
                .sum::<usize>();
        struct Fill;
        impl NodeExtra for Fill {
            fn lm_vec(&self, _n: u32) -> Vec<u32> {
                vec![0; 3]
            }
            fn edge_flags(&self, _e: u32) -> Vec<u8> {
                vec![0; 2]
            }
        }
        let fd = build_fd(&net, &p, &fmt, &Fill, 16, 4096).unwrap();
        let raw = read_region(&fd, 0, 16);
        // decoded successfully implies the length math is consistent
        let data = decode_region(&raw, &fmt).unwrap();
        assert_eq!(data.nodes.len(), net.num_nodes());
        assert!(expected <= raw.len());
    }

    #[test]
    fn oversized_region_rejected() {
        let net = grid_network(&GridGenConfig {
            nx: 10,
            ny: 10,
            ..Default::default()
        });
        let fmt = RecordFormat::default();
        // partition with a big capacity, then try to build with tiny pages
        let p = partition_packed(&net, 1 << 20, &|u| fmt.node_bytes(net.degree(u)));
        assert!(matches!(
            build_fd(&net, &p, &fmt, &NoExtra, 1, 128),
            Err(CoreError::Build(_))
        ));
    }
}
