//! The header file `Fh` (§5.3): the KD-tree partitioning information, the
//! region → data-page directory, the query plan, and file metadata. `Fh` is
//! public — every client downloads it in full, so it discloses nothing about
//! any individual query.

use super::fd::RecordFormat;
use super::seal_file;
use crate::error::CoreError;
use crate::plan::QueryPlan;
use crate::Result;
use privpath_partition::KdTree;
use privpath_storage::{ByteReader, ByteWriter, MemFile};

const MAGIC: u32 = 0x5050_4831; // "PPH1"

/// Everything a client needs to run the fixed query plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Scheme discriminator (mirrors `engine::SchemeKind`).
    pub scheme: u8,
    /// Disk page size.
    pub page_size: u32,
    /// Number of regions.
    pub num_regions: u16,
    /// Pages per region in the data file (1 except PI*).
    pub cluster_pages: u16,
    /// Region-data record layout.
    pub record_format: RecordFormat,
    /// CI/HY: the plan bound `m` — max regions in any decoded `S_ij`.
    pub m_regions: u16,
    /// Max pages any index record spans (CI `span`, PI `h`, HY `r`).
    pub index_span: u16,
    /// HY: total pages fetched in round 4.
    pub hy_round4: u32,
    /// HY: page offset of the region-data section inside the combined file.
    pub combined_fd_offset: u32,
    /// Page counts of the PIR-served files (for dummy-request ranges and
    /// window clamping).
    pub fl_pages: u32,
    /// Network index page count (or combined-file page count for HY).
    pub fi_pages: u32,
    /// Region data page count.
    pub fd_pages: u32,
    /// The partitioning tree.
    pub tree: KdTree,
    /// Starting data page of each region (within `Fd`, or within the
    /// combined file for HY).
    pub region_page: Vec<u32>,
    /// The fixed query plan.
    pub plan: QueryPlan,
}

impl Header {
    /// Serializes into sealed header pages.
    pub fn to_file(&self, page_size: usize) -> MemFile {
        let mut w = ByteWriter::new();
        w.u32(MAGIC);
        w.u8(self.scheme);
        w.u32(self.page_size);
        w.u16(self.num_regions);
        w.u16(self.cluster_pages);
        w.u16(self.record_format.lm_count);
        w.u8(u8::from(self.record_format.with_regions));
        w.u16(self.record_format.flag_bytes);
        w.u16(self.m_regions);
        w.u16(self.index_span);
        w.u32(self.hy_round4);
        w.u32(self.combined_fd_offset);
        w.u32(self.fl_pages);
        w.u32(self.fi_pages);
        w.u32(self.fd_pages);
        self.tree.serialize(&mut w);
        w.u32(self.region_page.len() as u32);
        for &p in &self.region_page {
            w.u32(p);
        }
        self.plan.serialize(&mut w);
        let bytes = w.into_vec();
        let payload_cap = page_size - super::PAGE_CRC_BYTES;
        let payloads: Vec<Vec<u8>> = bytes.chunks(payload_cap).map(|c| c.to_vec()).collect();
        seal_file(
            &if payloads.is_empty() {
                vec![Vec::new()]
            } else {
                payloads
            },
            page_size,
        )
    }

    /// Decodes a header from the unsealed download payload.
    pub fn parse(payload: &[u8]) -> Result<Header> {
        let mut r = ByteReader::new(payload);
        let magic = r.u32()?;
        if magic != MAGIC {
            return Err(CoreError::Query(format!("bad header magic {magic:#010x}")));
        }
        let scheme = r.u8()?;
        let page_size = r.u32()?;
        let num_regions = r.u16()?;
        let cluster_pages = r.u16()?;
        let record_format = RecordFormat {
            lm_count: r.u16()?,
            with_regions: r.u8()? != 0,
            flag_bytes: r.u16()?,
        };
        let m_regions = r.u16()?;
        let index_span = r.u16()?;
        let hy_round4 = r.u32()?;
        let combined_fd_offset = r.u32()?;
        let fl_pages = r.u32()?;
        let fi_pages = r.u32()?;
        let fd_pages = r.u32()?;
        let tree = KdTree::deserialize(&mut r)?;
        let n = r.u32()? as usize;
        let mut region_page = Vec::with_capacity(n);
        for _ in 0..n {
            region_page.push(r.u32()?);
        }
        let plan = QueryPlan::deserialize(&mut r)?;
        Ok(Header {
            scheme,
            page_size,
            num_regions,
            cluster_pages,
            record_format,
            m_regions,
            index_span,
            hy_round4,
            combined_fd_offset,
            fl_pages,
            fi_pages,
            fd_pages,
            tree,
            region_page,
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::unseal_download;
    use crate::plan::{PlanFile, RoundSpec};
    use privpath_storage::PagedFile;

    fn sample() -> Header {
        Header {
            scheme: 1,
            page_size: 4096,
            num_regions: 4,
            cluster_pages: 1,
            record_format: RecordFormat {
                lm_count: 5,
                with_regions: true,
                flag_bytes: 2,
            },
            m_regions: 17,
            index_span: 3,
            hy_round4: 0,
            combined_fd_offset: 0,
            fl_pages: 2,
            fi_pages: 9,
            fd_pages: 4,
            tree: KdTree::single_region(),
            region_page: vec![0, 1, 2, 3],
            plan: QueryPlan {
                rounds: vec![
                    RoundSpec::one(PlanFile::Header, 0),
                    RoundSpec::one(PlanFile::Lookup, 1),
                    RoundSpec::one(PlanFile::Index, 3),
                    RoundSpec::one(PlanFile::Data, 19),
                ],
            },
        }
    }

    #[test]
    fn round_trip() {
        let h = sample();
        let file = h.to_file(4096);
        let mut raw = Vec::new();
        for p in 0..file.num_pages() {
            raw.extend_from_slice(file.read_page(p).unwrap().as_slice());
        }
        let payload = unseal_download(&raw, 4096).unwrap();
        let parsed = Header::parse(&payload).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn multi_page_header() {
        let mut h = sample();
        h.num_regions = 3000;
        h.region_page = (0..3000u32).collect();
        let file = h.to_file(4096);
        assert!(file.num_pages() > 1);
        let mut raw = Vec::new();
        for p in 0..file.num_pages() {
            raw.extend_from_slice(file.read_page(p).unwrap().as_slice());
        }
        let payload = unseal_download(&raw, 4096).unwrap();
        assert_eq!(Header::parse(&payload).unwrap(), h);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(Header::parse(&[0u8; 64]).is_err());
    }
}
