//! The network index file `Fi` (§5.3).
//!
//! Records are placed contiguously in ascending `(i, j)` order under the
//! paper's placement rules: a record that fits in a page never straddles
//! into the next one; a record larger than a page starts on a fresh page and
//! spans the minimum number of pages. In-page delta compression (§5.5) is
//! applied as records are added.
//!
//! Page layout (payload, after the CRC): records grow from the front,
//! an 8-byte-per-entry directory grows from the back, and the final two
//! bytes hold the entry count — a classic slotted page:
//!
//! ```text
//! [record 0][record 1]...    ...[dir 1][dir 0][n_entries u16]
//! ```
//!
//! Continuation pages of spanning records are raw payload bytes.

use super::PAGE_CRC_BYTES;
use crate::error::CoreError;
use crate::records::{encode_literal, try_delta, IndexPayload};
use crate::Result;
use privpath_storage::{ByteReader, ByteWriter, MemFile};

const DIR_ENTRY_BYTES: usize = 8; // i u16 + j u16 + offset u32
const COUNT_BYTES: usize = 2;

/// Where a record landed: starting page and number of pages spanned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordLocation {
    /// First page of the record (the page with its directory entry).
    pub page: u32,
    /// Pages spanned (1 for in-page records).
    pub span: u32,
}

/// Builds `Fi` by appending records in `(i, j)` order.
pub struct FiBuilder {
    page_size: usize,
    m: usize,
    compress: bool,
    finished: Vec<Vec<u8>>,
    cur_records: Vec<u8>,
    cur_dir: Vec<(u16, u16, u32)>,
    cur_decoded: Vec<IndexPayload>,
    max_span: u32,
    /// Bytes a record may occupy in a page that holds only it.
    single_entry_room: usize,
}

impl FiBuilder {
    /// New builder. `m` is the CI plan bound for decoded region sets;
    /// `compress` enables §5.5.
    pub fn new(page_size: usize, m: usize, compress: bool) -> Self {
        let payload = page_size - PAGE_CRC_BYTES;
        FiBuilder {
            page_size,
            m,
            compress,
            finished: Vec::new(),
            cur_records: Vec::new(),
            cur_dir: Vec::new(),
            cur_decoded: Vec::new(),
            max_span: 0,
            single_entry_room: payload - COUNT_BYTES - DIR_ENTRY_BYTES,
        }
    }

    fn payload_cap(&self) -> usize {
        self.page_size - PAGE_CRC_BYTES
    }

    fn cur_free(&self) -> usize {
        self.payload_cap()
            - COUNT_BYTES
            - self.cur_records.len()
            - DIR_ENTRY_BYTES * self.cur_dir.len()
    }

    fn close_page(&mut self) {
        let cap = self.payload_cap();
        let mut payload = vec![0u8; cap];
        payload[..self.cur_records.len()].copy_from_slice(&self.cur_records);
        let n = self.cur_dir.len();
        // directory: slot s at cap - COUNT - (n - s) * DIR_ENTRY_BYTES
        for (s, &(i, j, off)) in self.cur_dir.iter().enumerate() {
            let pos = cap - COUNT_BYTES - (n - s) * DIR_ENTRY_BYTES;
            payload[pos..pos + 2].copy_from_slice(&i.to_le_bytes());
            payload[pos + 2..pos + 4].copy_from_slice(&j.to_le_bytes());
            payload[pos + 4..pos + 8].copy_from_slice(&off.to_le_bytes());
        }
        payload[cap - 2..].copy_from_slice(&(n as u16).to_le_bytes());
        self.finished.push(payload);
        self.cur_records.clear();
        self.cur_dir.clear();
        self.cur_decoded.clear();
    }

    /// Appends the record for pair `(i, j)`.
    pub fn add(&mut self, i: u16, j: u16, payload: IndexPayload) -> RecordLocation {
        // Try compression against records already in the current page.
        let delta = if self.compress {
            try_delta(&payload, &self.cur_decoded, self.m)
        } else {
            None
        };
        let (bytes, decoded) = match delta {
            Some(d) => (d.bytes, d.decoded),
            None => {
                let mut w = ByteWriter::new();
                encode_literal(&payload, &mut w);
                (w.into_vec(), payload)
            }
        };

        if bytes.len() + DIR_ENTRY_BYTES <= self.cur_free() {
            // fits in the current page
            let off = self.cur_records.len() as u32;
            self.cur_records.extend_from_slice(&bytes);
            self.cur_dir.push((i, j, off));
            self.cur_decoded.push(decoded);
            self.max_span = self.max_span.max(1);
            return RecordLocation {
                page: (self.finished.len()) as u32,
                span: 1,
            };
        }

        if !self.cur_dir.is_empty() {
            self.close_page();
        }

        // A fresh page has no reference candidates, so encode literally.
        // `decoded` is a valid superset of the true payload (it equals the
        // payload when no delta was taken), so storing it keeps correctness.
        let mut w = ByteWriter::new();
        encode_literal(&decoded, &mut w);
        let bytes = w.into_vec();

        if bytes.len() + DIR_ENTRY_BYTES + COUNT_BYTES <= self.payload_cap() {
            // fits alone in a fresh page
            let off = self.cur_records.len() as u32;
            self.cur_records.extend_from_slice(&bytes);
            self.cur_dir.push((i, j, off));
            self.cur_decoded.push(decoded);
            self.max_span = self.max_span.max(1);
            return RecordLocation {
                page: self.finished.len() as u32,
                span: 1,
            };
        }

        // Spanning record: fresh page with a single directory entry, raw
        // continuation pages afterwards.
        let start_page = self.finished.len() as u32;
        let first_chunk = self.single_entry_room.min(bytes.len());
        self.cur_records.extend_from_slice(&bytes[..first_chunk]);
        self.cur_dir.push((i, j, 0));
        self.close_page();
        let mut pos = first_chunk;
        let mut span = 1u32;
        while pos < bytes.len() {
            let chunk = (bytes.len() - pos).min(self.payload_cap());
            self.finished.push(bytes[pos..pos + chunk].to_vec());
            pos += chunk;
            span += 1;
        }
        self.max_span = self.max_span.max(span);
        RecordLocation {
            page: start_page,
            span,
        }
    }

    /// Largest span across all records so far.
    pub fn max_span(&self) -> u32 {
        self.max_span.max(1)
    }

    /// Finishes the file: seals pages and returns `(file, max_span)`.
    pub fn finish(mut self) -> (MemFile, u32) {
        if !self.cur_dir.is_empty() || self.finished.is_empty() {
            self.close_page();
        }
        let span = self.max_span.max(1);
        (super::seal_file(&self.finished, self.page_size), span)
    }
}

/// Parses the directory of an `Fi` page payload: `(i, j, offset)` per slot.
fn parse_directory(payload: &[u8]) -> Result<Vec<(u16, u16, u32)>> {
    if payload.len() < COUNT_BYTES {
        return Err(CoreError::Query("index page too small".into()));
    }
    let n = u16::from_le_bytes(payload[payload.len() - 2..].try_into().expect("2 bytes")) as usize;
    let dir_bytes = n * DIR_ENTRY_BYTES + COUNT_BYTES;
    if dir_bytes > payload.len() {
        return Err(CoreError::Query(format!(
            "index directory of {n} entries overflows page"
        )));
    }
    let mut dir = Vec::with_capacity(n);
    for s in 0..n {
        let pos = payload.len() - COUNT_BYTES - (n - s) * DIR_ENTRY_BYTES;
        let i = u16::from_le_bytes(payload[pos..pos + 2].try_into().expect("2"));
        let j = u16::from_le_bytes(payload[pos + 2..pos + 4].try_into().expect("2"));
        let off = u32::from_le_bytes(payload[pos + 4..pos + 8].try_into().expect("4"));
        dir.push((i, j, off));
    }
    Ok(dir)
}

/// Decodes the record of pair `(i, j)` starting at `start_page`.
///
/// `get_payload(p)` returns the unsealed payload of fetched page `p` (the
/// client's page window); continuation pages are consumed as needed.
pub fn decode_entry(
    get_payload: &dyn Fn(u32) -> Result<Vec<u8>>,
    start_page: u32,
    i: u16,
    j: u16,
) -> Result<IndexPayload> {
    let payload = get_payload(start_page)?;
    let dir = parse_directory(&payload)?;
    let slot = dir
        .iter()
        .position(|&(di, dj, _)| di == i && dj == j)
        .ok_or_else(|| {
            CoreError::Query(format!("pair ({i},{j}) not in index page {start_page}"))
        })?;
    decode_slot(get_payload, start_page, &payload, &dir, slot, 0)
}

fn decode_slot(
    get_payload: &dyn Fn(u32) -> Result<Vec<u8>>,
    start_page: u32,
    payload: &[u8],
    dir: &[(u16, u16, u32)],
    slot: usize,
    depth: usize,
) -> Result<IndexPayload> {
    if depth > dir.len() {
        return Err(CoreError::Query("index reference cycle".into()));
    }
    let (_, _, off) = dir[slot];
    // Assemble the record bytes: rest of this page's record area, plus
    // continuation pages if the record spans (only possible for the sole
    // record of its page, by construction).
    let record_area_end = payload.len() - COUNT_BYTES - dir.len() * DIR_ENTRY_BYTES;
    let mut buf: Vec<u8> = payload[off as usize..record_area_end].to_vec();
    // A reader may need continuation pages; append lazily up to a sane cap.
    let mut next = start_page + 1;
    let mut result;
    loop {
        let mut r = ByteReader::new(&buf);
        result = crate::records::decode_record(&mut r, &|ref_slot| {
            if ref_slot as usize >= dir.len() {
                return Err(CoreError::Query(format!("bad reference slot {ref_slot}")));
            }
            decode_slot(
                get_payload,
                start_page,
                payload,
                dir,
                ref_slot as usize,
                depth + 1,
            )
        });
        match &result {
            Err(CoreError::Storage(privpath_storage::StorageError::UnexpectedEof { .. }))
                if next < start_page + 64 =>
            {
                // record continues on the next page
                match get_payload(next) {
                    Ok(more) => {
                        buf.extend_from_slice(&more);
                        next += 1;
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            _ => break,
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::unseal_page;
    use privpath_storage::PagedFile;

    fn getter(file: &MemFile) -> impl Fn(u32) -> Result<Vec<u8>> + '_ {
        move |p| Ok(unseal_page(&file.read_page(p)?)?.to_vec())
    }

    #[test]
    fn small_records_share_pages() {
        let mut b = FiBuilder::new(4096, 100, false);
        let mut locs = Vec::new();
        for k in 0..50u16 {
            let payload = IndexPayload::Regions((0..k % 7).map(|x| x * 3).collect());
            locs.push((k, b.add(0, k, payload)));
        }
        let (file, span) = b.finish();
        assert_eq!(span, 1);
        assert_eq!(file.num_pages(), 1, "50 tiny records fit one page");
        let get = getter(&file);
        for (k, loc) in locs {
            let got = decode_entry(&get, loc.page, 0, k).unwrap();
            assert_eq!(
                got,
                IndexPayload::Regions((0..k % 7).map(|x| x * 3).collect())
            );
        }
    }

    #[test]
    fn records_do_not_straddle() {
        // Each record ~1000 bytes, page payload 4092: 4 per page, 5th opens
        // a new page (the §5.3 rule).
        let mut b = FiBuilder::new(4096, 1000, false);
        let payload = |k: u16| IndexPayload::Regions((0..498).map(|x| x + k).collect()); // 1+2+996 bytes
        let mut pages = Vec::new();
        for k in 0..8u16 {
            pages.push(b.add(k, 0, payload(k)).page);
        }
        let (file, span) = b.finish();
        assert_eq!(span, 1);
        assert_eq!(pages[..4], [0, 0, 0, 0]);
        assert_eq!(pages[4..], [1, 1, 1, 1]);
        let get = getter(&file);
        for k in 0..8u16 {
            assert_eq!(
                decode_entry(&get, pages[k as usize], k, 0).unwrap(),
                payload(k)
            );
        }
    }

    #[test]
    fn spanning_record_round_trip() {
        let mut b = FiBuilder::new(512, 10_000, false);
        let big = IndexPayload::Edges((0..200).map(|k| (k, k + 1, 10 * k + 7)).collect()); // 2405 bytes
        let small = IndexPayload::Regions(vec![1, 2, 3]);
        let l1 = b.add(0, 0, small.clone());
        let l2 = b.add(0, 1, big.clone());
        let l3 = b.add(0, 2, small.clone());
        let (file, span) = b.finish();
        assert!(l2.span > 1, "record should span pages");
        assert_eq!(span, l2.span);
        assert!(
            l3.page > l2.page,
            "next record starts after the spanning group"
        );
        let get = getter(&file);
        assert_eq!(decode_entry(&get, l1.page, 0, 0).unwrap(), small);
        assert_eq!(decode_entry(&get, l2.page, 0, 1).unwrap(), big);
        assert_eq!(decode_entry(&get, l3.page, 0, 2).unwrap(), small);
        let _ = file.num_pages();
    }

    #[test]
    fn compression_shrinks_similar_sets() {
        let base: Vec<u16> = (0..300).collect();
        let make = |k: u16| {
            let mut v = base.clone();
            v.push(300 + k);
            IndexPayload::Regions(v)
        };
        let mut comp = FiBuilder::new(4096, 400, true);
        let mut plain = FiBuilder::new(4096, 400, false);
        let mut locs = Vec::new();
        for k in 0..20u16 {
            locs.push(comp.add(1, k, make(k)));
            plain.add(1, k, make(k));
        }
        let (cfile, _) = comp.finish();
        let (pfile, _) = plain.finish();
        assert!(
            cfile.num_pages() < pfile.num_pages(),
            "compressed {} pages vs plain {}",
            cfile.num_pages(),
            pfile.num_pages()
        );
        // decoded sets are supersets of the true sets, within m
        let get = getter(&cfile);
        for (k, loc) in locs.iter().enumerate() {
            let got = decode_entry(&get, loc.page, 1, k as u16).unwrap();
            if let (IndexPayload::Regions(d), IndexPayload::Regions(t)) = (&got, &make(k as u16)) {
                assert!(d.len() <= 400);
                for r in t {
                    assert!(d.contains(r), "decoded set must cover true set");
                }
            } else {
                panic!("wrong type");
            }
        }
    }

    #[test]
    fn compression_of_subgraphs() {
        let base: Vec<(u32, u32, u32)> = (0..100).map(|k| (k, k + 1, 5)).collect();
        let make = |k: u32| {
            let mut v = base.clone();
            v.push((1000 + k, 2000 + k, 9));
            IndexPayload::Edges(v)
        };
        let mut comp = FiBuilder::new(4096, 0, true);
        let mut locs = Vec::new();
        for k in 0..10u32 {
            locs.push(comp.add(2, k as u16, make(k)));
        }
        let (cfile, _) = comp.finish();
        let get = getter(&cfile);
        for (k, loc) in locs.iter().enumerate() {
            let got = decode_entry(&get, loc.page, 2, k as u16).unwrap();
            if let (IndexPayload::Edges(d), IndexPayload::Edges(t)) = (&got, &make(k as u32)) {
                for e in t {
                    assert!(d.contains(e));
                }
            } else {
                panic!("wrong type");
            }
        }
    }

    #[test]
    fn missing_pair_is_an_error() {
        let mut b = FiBuilder::new(4096, 10, false);
        b.add(0, 0, IndexPayload::Regions(vec![]));
        let (file, _) = b.finish();
        let get = getter(&file);
        assert!(decode_entry(&get, 0, 5, 5).is_err());
    }

    #[test]
    fn empty_builder_yields_one_page() {
        let (file, span) = FiBuilder::new(4096, 0, true).finish();
        assert_eq!(file.num_pages(), 1);
        assert_eq!(span, 1);
    }
}
