//! Network-index record formats and the in-page delta compression of §5.5.
//!
//! An index record holds either a region set `S_ij` (CI) or a subgraph
//! `G_ij` as edge triples (PI) — the HY scheme mixes both in one file. Each
//! record is stored literally or as a *delta* against a reference record in
//! the same page (the one with the largest overlap):
//!
//! * region deltas carry *includes* plus, when the inflated set would exceed
//!   the plan bound `m`, *excludes* chosen from the reference (§5.5) — the
//!   decoded set may be a superset of the true `S_ij`, which merely replaces
//!   dummy fetches with fetches of unneeded (real) pages;
//! * subgraph deltas carry only includes (§6): extra decoded edges are
//!   genuine network edges and cannot mislead the client's Dijkstra.

use crate::error::CoreError;
use crate::Result;
use privpath_storage::{ByteReader, ByteWriter};

/// An edge of a `G_ij` subgraph, self-contained for the client:
/// `(tail node, head node, weight)`.
pub type EdgeTriple = (u32, u32, u32);

/// A decoded index record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexPayload {
    /// Region identifiers (decoded `S_ij`, possibly inflated, `<= m`).
    Regions(Vec<u16>),
    /// Edge triples (decoded `G_ij`, possibly inflated).
    Edges(Vec<EdgeTriple>),
}

impl IndexPayload {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            IndexPayload::Regions(v) => v.len(),
            IndexPayload::Edges(v) => v.len(),
        }
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

const KIND_REGIONS_LITERAL: u8 = 0;
const KIND_REGIONS_DELTA: u8 = 1;
const KIND_EDGES_LITERAL: u8 = 2;
const KIND_EDGES_DELTA: u8 = 3;

/// Serialized size of a literal record for `payload`.
pub fn literal_size(payload: &IndexPayload) -> usize {
    match payload {
        IndexPayload::Regions(v) => 1 + 2 + 2 * v.len(),
        IndexPayload::Edges(v) => 1 + 4 + 12 * v.len(),
    }
}

/// Encodes `payload` literally.
pub fn encode_literal(payload: &IndexPayload, w: &mut ByteWriter) {
    match payload {
        IndexPayload::Regions(v) => {
            w.u8(KIND_REGIONS_LITERAL);
            w.u16(v.len() as u16);
            for &r in v {
                w.u16(r);
            }
        }
        IndexPayload::Edges(v) => {
            w.u8(KIND_EDGES_LITERAL);
            w.u32(v.len() as u32);
            for &(a, b, wt) in v {
                w.u32(a).u32(b).u32(wt);
            }
        }
    }
}

/// A delta encoding decision: the chosen reference slot, the encoded bytes,
/// and the payload the *client* will decode (possibly inflated).
#[derive(Debug)]
pub struct DeltaEncoding {
    /// Directory slot of the reference record within the same page.
    pub ref_slot: u16,
    /// Serialized record bytes.
    pub bytes: Vec<u8>,
    /// What decoding will yield — a superset of the true payload.
    pub decoded: IndexPayload,
}

/// How many of the most recent in-page records [`try_delta`] considers as
/// delta references. The old exhaustive scan made index formation quadratic
/// per page (compression packs hundreds of records into one page, and every
/// add re-compared against all of them) — at paper scale the `Fi` build
/// dominated the whole offline pipeline. Consecutive `(i, j)` records are
/// the spatially correlated ones, so a short recency window keeps nearly
/// all of the compression at a small, constant per-record cost.
pub const DELTA_WINDOW: usize = 16;

/// Tries to delta-encode `payload` against the decoded payloads already in
/// the page (the [`DELTA_WINDOW`] most recent ones). Returns the best
/// encoding that is strictly smaller than the literal one, or `None`.
///
/// `m` bounds the decoded cardinality for region sets (the CI query plan
/// fetches `m + 2` region pages, so decoded sets must not exceed `m`).
pub fn try_delta(
    payload: &IndexPayload,
    in_page: &[IndexPayload],
    m: usize,
) -> Option<DeltaEncoding> {
    let mut best: Option<DeltaEncoding> = None;
    let start = in_page.len().saturating_sub(DELTA_WINDOW);
    for (slot, reference) in in_page.iter().enumerate().skip(start) {
        let candidate = match (payload, reference) {
            (IndexPayload::Regions(mine), IndexPayload::Regions(refs)) => {
                delta_regions(mine, refs, slot as u16, m)
            }
            (IndexPayload::Edges(mine), IndexPayload::Edges(refs)) => {
                delta_edges(mine, refs, slot as u16)
            }
            _ => None,
        };
        if let Some(c) = candidate {
            if best.as_ref().is_none_or(|b| c.bytes.len() < b.bytes.len()) {
                best = Some(c);
            }
        }
    }
    best.filter(|b| b.bytes.len() < literal_size(payload))
}

/// Merge-walks two strictly sorted slices into `mine \ refs` (the record's
/// includes), `refs \ mine` (exclusion candidates, in reference order) and
/// the sorted union — one allocation-light pass instead of the `BTreeSet`
/// churn this replaced (every payload here is sorted by construction:
/// pre-computation output, sorted edge triples and decoded deltas alike).
fn merge_sets<T: Copy + Ord>(mine: &[T], refs: &[T]) -> (Vec<T>, Vec<T>, Vec<T>) {
    debug_assert!(mine.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(refs.windows(2).all(|w| w[0] < w[1]));
    let mut includes = Vec::new();
    let mut candidates = Vec::new();
    let mut union = Vec::with_capacity(mine.len() + refs.len());
    let (mut a, mut b) = (0usize, 0usize);
    while a < mine.len() || b < refs.len() {
        match (mine.get(a), refs.get(b)) {
            (Some(&x), Some(&y)) if x == y => {
                union.push(x);
                a += 1;
                b += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                includes.push(x);
                union.push(x);
                a += 1;
            }
            (Some(&x), None) => {
                includes.push(x);
                union.push(x);
                a += 1;
            }
            (_, Some(&y)) => {
                candidates.push(y);
                union.push(y);
                b += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    (includes, candidates, union)
}

fn delta_regions(mine: &[u16], refs: &[u16], slot: u16, m: usize) -> Option<DeltaEncoding> {
    debug_assert!(mine.len() <= m || m == 0);
    let (includes, candidates, union) = merge_sets(mine, refs);
    // decoded base = ref ∪ includes
    let base_len = refs.len() + includes.len();
    let (excludes, decoded): (Vec<u16>, Vec<u16>) = if base_len <= m {
        // No exclusions needed: inflation stays within the plan bound.
        (Vec::new(), union)
    } else {
        // Exclude enough reference-only elements to come down to m.
        let need = base_len - m;
        if candidates.len() < need {
            return None; // cannot satisfy the bound (|mine| > m): impossible by definition of m
        }
        let excludes: Vec<u16> = candidates[..need].to_vec();
        // decoded = union \ excludes (both sorted; excludes ⊆ union)
        let mut d = Vec::with_capacity(union.len() - need);
        let mut e = 0usize;
        for &x in &union {
            if e < excludes.len() && excludes[e] == x {
                e += 1;
            } else {
                d.push(x);
            }
        }
        (excludes, d)
    };
    debug_assert!(decoded.len() <= m.max(mine.len()));
    debug_assert!(
        mine.iter().all(|r| decoded.contains(r)),
        "delta must cover the true set"
    );

    let mut w = ByteWriter::new();
    w.u8(KIND_REGIONS_DELTA);
    w.u16(slot);
    w.u16(includes.len() as u16);
    for &r in &includes {
        w.u16(r);
    }
    w.u16(excludes.len() as u16);
    for &r in &excludes {
        w.u16(r);
    }
    Some(DeltaEncoding {
        ref_slot: slot,
        bytes: w.into_vec(),
        decoded: IndexPayload::Regions(decoded),
    })
}

fn delta_edges(mine: &[EdgeTriple], refs: &[EdgeTriple], slot: u16) -> Option<DeltaEncoding> {
    // Sorted edge lists may carry duplicate triples (parallel arcs with
    // equal weight); the delta works on the set view — duplicates change no
    // shortest path, and the decoded superset guarantee is preserved.
    let dedup = |v: &[EdgeTriple]| -> Option<Vec<EdgeTriple>> {
        if v.windows(2).all(|w| w[0] < w[1]) {
            None
        } else {
            let mut d = v.to_vec();
            d.dedup();
            Some(d)
        }
    };
    let (mine_d, refs_d) = (dedup(mine), dedup(refs));
    let mine = mine_d.as_deref().unwrap_or(mine);
    let refs = refs_d.as_deref().unwrap_or(refs);
    let (includes, _, decoded) = merge_sets(mine, refs);

    let mut w = ByteWriter::new();
    w.u8(KIND_EDGES_DELTA);
    w.u16(slot);
    w.u32(includes.len() as u32);
    for &(a, b, wt) in &includes {
        w.u32(a).u32(b).u32(wt);
    }
    Some(DeltaEncoding {
        ref_slot: slot,
        bytes: w.into_vec(),
        decoded: IndexPayload::Edges(decoded),
    })
}

/// Decodes one record from `r`. `resolve` maps a reference slot to its
/// already-decoded payload (in-page references only; the page reader supplies
/// this and guards against reference cycles).
pub fn decode_record(
    r: &mut ByteReader<'_>,
    resolve: &dyn Fn(u16) -> Result<IndexPayload>,
) -> Result<IndexPayload> {
    let kind = r.u8()?;
    match kind {
        KIND_REGIONS_LITERAL => {
            let n = r.u16()? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.u16()?);
            }
            Ok(IndexPayload::Regions(v))
        }
        KIND_REGIONS_DELTA => {
            let slot = r.u16()?;
            let n_incl = r.u16()? as usize;
            let mut incl = Vec::with_capacity(n_incl);
            for _ in 0..n_incl {
                incl.push(r.u16()?);
            }
            let n_excl = r.u16()? as usize;
            let mut excl = Vec::with_capacity(n_excl);
            for _ in 0..n_excl {
                excl.push(r.u16()?);
            }
            match resolve(slot)? {
                IndexPayload::Regions(refs) => {
                    let excl_set: std::collections::BTreeSet<u16> = excl.into_iter().collect();
                    let mut out: Vec<u16> = refs
                        .into_iter()
                        .filter(|x| !excl_set.contains(x))
                        .chain(incl)
                        .collect();
                    out.sort_unstable();
                    out.dedup();
                    Ok(IndexPayload::Regions(out))
                }
                IndexPayload::Edges(_) => Err(CoreError::Query(
                    "region delta references an edge record".into(),
                )),
            }
        }
        KIND_EDGES_LITERAL => {
            let n = r.u32()? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push((r.u32()?, r.u32()?, r.u32()?));
            }
            Ok(IndexPayload::Edges(v))
        }
        KIND_EDGES_DELTA => {
            let slot = r.u16()?;
            let n_incl = r.u32()? as usize;
            let mut incl = Vec::with_capacity(n_incl);
            for _ in 0..n_incl {
                incl.push((r.u32()?, r.u32()?, r.u32()?));
            }
            match resolve(slot)? {
                IndexPayload::Edges(refs) => {
                    let mut out: Vec<EdgeTriple> = refs.into_iter().chain(incl).collect();
                    out.sort_unstable();
                    out.dedup();
                    Ok(IndexPayload::Edges(out))
                }
                IndexPayload::Regions(_) => Err(CoreError::Query(
                    "edge delta references a region record".into(),
                )),
            }
        }
        k => Err(CoreError::Query(format!("unknown index record kind {k}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn decode_bytes(bytes: &[u8], refs: &[IndexPayload]) -> IndexPayload {
        let mut r = ByteReader::new(bytes);
        decode_record(&mut r, &|slot| {
            refs.get(slot as usize)
                .cloned()
                .ok_or_else(|| CoreError::Query("bad slot".into()))
        })
        .unwrap()
    }

    #[test]
    fn literal_round_trip_regions() {
        let p = IndexPayload::Regions(vec![1, 5, 9]);
        let mut w = ByteWriter::new();
        encode_literal(&p, &mut w);
        assert_eq!(w.len(), literal_size(&p));
        assert_eq!(decode_bytes(w.as_slice(), &[]), p);
    }

    #[test]
    fn literal_round_trip_edges() {
        let p = IndexPayload::Edges(vec![(1, 2, 10), (3, 4, 20)]);
        let mut w = ByteWriter::new();
        encode_literal(&p, &mut w);
        assert_eq!(w.len(), literal_size(&p));
        assert_eq!(decode_bytes(w.as_slice(), &[]), p);
    }

    #[test]
    fn region_delta_without_exclusions_inflates_within_m() {
        // Paper's §5.5 example scaled up so the delta beats the literal:
        // S shares a large base with the reference and adds {108}.
        let base: Vec<u16> = (0..20).collect();
        let mut mine_v = base.clone();
        mine_v.push(108);
        let mut ref_v = base.clone();
        ref_v.extend([30u16, 31, 32]); // ref-only extras
        let mine = IndexPayload::Regions(mine_v.clone());
        let refs = vec![IndexPayload::Regions(ref_v.clone())];
        // m large enough that ref ∪ includes stays within the bound:
        let enc = try_delta(&mine, &refs, 30).expect("delta should win");
        if let IndexPayload::Regions(d) = &enc.decoded {
            // decoded = ref ∪ {108}, inflated by the ref-only extras
            let mut want: Vec<u16> = ref_v.clone();
            want.push(108);
            want.sort_unstable();
            assert_eq!(d, &want);
        } else {
            panic!("wrong payload type");
        }
        assert!(enc.bytes.len() < literal_size(&mine));
        assert_eq!(decode_bytes(&enc.bytes, &refs), enc.decoded);
    }

    #[test]
    fn region_delta_with_exclusions_caps_at_m() {
        // m below |ref ∪ includes| forces exclusions of ref-only elements.
        let base: Vec<u16> = (0..20).collect();
        let mut mine_v = base.clone();
        mine_v.push(108); // |mine| = 21
        let mut ref_v = base.clone();
        ref_v.extend([30u16, 31, 32]); // |ref ∪ incl| = 24
        let mine = IndexPayload::Regions(mine_v.clone());
        let refs = vec![IndexPayload::Regions(ref_v)];
        let enc = try_delta(&mine, &refs, 22).expect("delta still fits");
        if let IndexPayload::Regions(d) = &enc.decoded {
            assert_eq!(d.len(), 22);
            for r in &mine_v {
                assert!(d.contains(r), "decoded must cover the true set");
            }
        } else {
            panic!("wrong payload type");
        }
        assert_eq!(decode_bytes(&enc.bytes, &refs), enc.decoded);
    }

    #[test]
    fn delta_not_used_when_literal_is_smaller() {
        let mine = IndexPayload::Regions(vec![100, 200]);
        let refs = vec![IndexPayload::Regions(vec![1, 2, 3])];
        // includes = {100,200} -> delta is 1+2+2+4+2 = 11 > literal 7
        assert!(try_delta(&mine, &refs, 10).is_none());
    }

    #[test]
    fn edge_delta_includes_only() {
        let mine = IndexPayload::Edges(vec![(1, 2, 5), (7, 8, 9)]);
        let refs = vec![IndexPayload::Edges(vec![(1, 2, 5), (3, 4, 6)])];
        let enc = try_delta(&mine, &refs, 0).expect("edge delta");
        // decoded = ref ∪ includes (inflation is harmless for edges)
        assert_eq!(
            enc.decoded,
            IndexPayload::Edges(vec![(1, 2, 5), (3, 4, 6), (7, 8, 9)])
        );
        assert_eq!(decode_bytes(&enc.bytes, &refs), enc.decoded);
    }

    #[test]
    fn picks_best_reference() {
        let mine = IndexPayload::Regions(vec![1, 2, 3, 4]);
        let refs = vec![
            IndexPayload::Regions(vec![9, 10]),
            IndexPayload::Regions(vec![1, 2, 3]),
        ];
        let enc = try_delta(&mine, &refs, 100).unwrap();
        assert_eq!(enc.ref_slot, 1);
    }

    #[test]
    fn unknown_kind_rejected() {
        let bytes = [9u8, 0, 0];
        let mut r = ByteReader::new(&bytes);
        assert!(decode_record(&mut r, &|_| Ok(IndexPayload::Regions(vec![]))).is_err());
    }

    #[test]
    fn cross_type_reference_rejected() {
        let mine = IndexPayload::Regions(vec![1]);
        let mut w = ByteWriter::new();
        w.u8(1).u16(0).u16(1).u16(1).u16(0); // delta ref slot 0
        let refs = [IndexPayload::Edges(vec![])];
        let mut r = ByteReader::new(w.as_slice());
        let out = decode_record(&mut r, &|s| Ok(refs[s as usize].clone()));
        assert!(out.is_err());
        let _ = mine;
    }

    proptest! {
        #[test]
        fn region_delta_always_covers_and_respects_m(
            mine in proptest::collection::btree_set(0u16..60, 1..20),
            reference in proptest::collection::btree_set(0u16..60, 0..30),
        ) {
            let m = 25usize.max(mine.len());
            let mine_v: Vec<u16> = mine.iter().copied().collect();
            let refs = vec![IndexPayload::Regions(reference.iter().copied().collect())];
            if let Some(enc) = try_delta(&IndexPayload::Regions(mine_v.clone()), &refs, m) {
                if let IndexPayload::Regions(d) = &enc.decoded {
                    prop_assert!(d.len() <= m);
                    for r in &mine_v {
                        prop_assert!(d.contains(r));
                    }
                    // decode agrees with predicted decoded payload
                    prop_assert_eq!(decode_bytes(&enc.bytes, &refs), enc.decoded);
                } else {
                    prop_assert!(false, "wrong type");
                }
            }
        }

        #[test]
        fn edge_literal_round_trip(
            edges in proptest::collection::btree_set((0u32..100, 0u32..100, 1u32..1000), 0..50)
        ) {
            let p = IndexPayload::Edges(edges.into_iter().collect());
            let mut w = ByteWriter::new();
            encode_literal(&p, &mut w);
            prop_assert_eq!(decode_bytes(w.as_slice(), &[]), p);
        }
    }
}
