//! Durable database snapshots: persist a built [`Database`] to one
//! integrity-checked file and reopen it — memory-resident or disk-backed —
//! without rebuilding.
//!
//! A snapshot is the storage layer's versioned container
//! ([`privpath_storage::SnapshotWriter`]: magic, header CRC, per-file
//! manifest, per-page CRC-32 tables) carrying:
//!
//! * a **meta blob** (encoded here): scheme kind, build seed,
//!   [`SystemSpec`], [`BuildStats`], and the per-scheme extras that are not
//!   derivable from the files (index flavor, LM/AF plan budgets, file ids);
//! * every PIR-served file's pages, exactly as the server holds them.
//!
//! Reopening re-registers the files in recorded order (file ids are
//! assigned by registration order, so they reproduce deterministically),
//! re-parses the public header `Fh` through the normal download/unseal
//! path, and rebuilds the scheme state. [`StorageBackend`] picks the page
//! driver: [`StorageBackend::Mem`] loads everything up front (verifying
//! every page checksum at load), [`StorageBackend::Disk`] serves pages
//! lazily through a [`privpath_storage::ChecksumFile`] so every read is
//! verified against the manifest — a flipped bit on disk surfaces as a
//! typed [`privpath_storage::StorageError::PageCorrupt`] naming the file
//! and page, never as a wrong answer.
//!
//! What cannot be persisted is rejected with a typed error, not silently
//! dropped: OBF (no PIR files — the LBS keeps the plaintext network),
//! externally-injected stores, and fault-injection modes.
//!
//! The leakage differential in `tests/leakage.rs` holds disk-backed
//! execution bit-identical to in-memory per scheme; `tests/durability.rs`
//! exercises the kill-and-restart round trip via
//! [`crate::generation::DbRegistry::recover`].

use crate::engine::{Database, SchemeKind, SchemeState};
use crate::error::CoreError;
use crate::files::fh::Header;
use crate::schemes::af::AfScheme;
use crate::schemes::index_scheme::{BuildStats, IndexFlavor, IndexScheme, StageBreakdown};
use crate::schemes::lm::LmScheme;
use crate::Result;
use privpath_pir::{FileId, PirMode, PirServer, SystemSpec};
use privpath_storage::{
    ByteReader, ByteWriter, PagedFile, SnapshotReader, SnapshotWriter, StorageError,
};
use std::path::Path;
use std::sync::Arc;

/// Version byte of the meta blob inside the snapshot container (the
/// container itself carries its own format version).
const META_VERSION: u8 = 1;

/// Scheme-extras discriminators inside the meta blob.
const STATE_INDEX: u8 = 1;
const STATE_LM: u8 = 2;
const STATE_AF: u8 = 3;

/// Which page driver a reopened snapshot serves through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageBackend {
    /// Load every file into memory up front (verifying all page checksums
    /// at load). Serving is then identical to a freshly built database.
    Mem,
    /// Serve pages lazily from the snapshot file through a checksum-
    /// verifying reader: every page read is validated against the manifest
    /// CRC before it reaches an oblivious store.
    Disk,
    /// Serve pages from a read-only memory mapping of the snapshot file
    /// (buffered fallback on targets without mappings), through the same
    /// checksum-verifying reader as [`StorageBackend::Disk`]. Observable
    /// behavior is identical to the disk backend; only the run reads come
    /// out of the mapping instead of positioned syscalls.
    Mmap,
}

impl StorageBackend {
    /// The `--storage` flag spelling of this backend.
    pub fn name(self) -> &'static str {
        match self {
            StorageBackend::Mem => "mem",
            StorageBackend::Disk => "disk",
            StorageBackend::Mmap => "mmap",
        }
    }
}

fn corrupt(msg: impl Into<String>) -> CoreError {
    CoreError::Storage(StorageError::Corrupt(msg.into()))
}

fn encode_spec(w: &mut ByteWriter, spec: &SystemSpec) {
    w.u32(spec.page_size as u32);
    w.f64(spec.disk_seek_s);
    w.f64(spec.disk_rate_bps);
    w.f64(spec.scp_io_rate_bps);
    w.f64(spec.crypto_rate_bps);
    w.f64(spec.comm_rtt_s);
    w.f64(spec.comm_rate_bps);
    w.u64(spec.scp_memory_bytes);
    w.f64(spec.scp_mem_factor);
    w.f64(spec.pir_fixed_ops);
    w.f64(spec.pir_ops_per_log2sq);
}

fn decode_spec(r: &mut ByteReader) -> std::result::Result<SystemSpec, StorageError> {
    Ok(SystemSpec {
        page_size: r.u32()? as usize,
        disk_seek_s: r.f64()?,
        disk_rate_bps: r.f64()?,
        scp_io_rate_bps: r.f64()?,
        crypto_rate_bps: r.f64()?,
        comm_rtt_s: r.f64()?,
        comm_rate_bps: r.f64()?,
        scp_memory_bytes: r.u64()?,
        scp_mem_factor: r.f64()?,
        pir_fixed_ops: r.f64()?,
        pir_ops_per_log2sq: r.f64()?,
    })
}

fn encode_stats(w: &mut ByteWriter, st: &BuildStats) {
    w.u32(st.regions);
    w.u32(st.borders);
    w.u32(st.m);
    w.u32(st.index_span);
    w.f64(st.fd_utilization);
    w.u32(st.pages.0);
    w.u32(st.pages.1);
    w.u32(st.pages.2);
    w.u32(st.s_histogram.len() as u32);
    for &(card, count) in &st.s_histogram {
        w.u64(card as u64);
        w.u64(count as u64);
    }
    let s = &st.stage_s;
    w.f64(s.partition_s);
    w.f64(s.borders_s);
    w.f64(s.precompute_s);
    w.f64(s.files_s);
    w.f64(s.plan_s);
}

fn decode_stats(r: &mut ByteReader) -> std::result::Result<BuildStats, StorageError> {
    let regions = r.u32()?;
    let borders = r.u32()?;
    let m = r.u32()?;
    let index_span = r.u32()?;
    let fd_utilization = r.f64()?;
    let pages = (r.u32()?, r.u32()?, r.u32()?);
    let n = r.u32()? as usize;
    // each histogram bucket is 16 bytes; reject counts the payload can't hold
    if n > r.remaining() / 16 {
        return Err(StorageError::Corrupt(format!(
            "snapshot meta claims {n} histogram buckets in {} bytes",
            r.remaining()
        )));
    }
    let mut s_histogram = Vec::with_capacity(n);
    for _ in 0..n {
        s_histogram.push((r.u64()? as usize, r.u64()? as usize));
    }
    let stage_s = StageBreakdown {
        partition_s: r.f64()?,
        borders_s: r.f64()?,
        precompute_s: r.f64()?,
        files_s: r.f64()?,
        plan_s: r.f64()?,
    };
    Ok(BuildStats {
        regions,
        borders,
        m,
        index_span,
        fd_utilization,
        pages,
        s_histogram,
        stage_s,
    })
}

/// Scheme extras the files alone cannot reproduce.
enum StateMeta {
    Index {
        scheme_byte: u8,
        flavor: IndexFlavor,
        header_file: FileId,
        lookup_file: FileId,
        index_file: FileId,
        data_file: FileId,
    },
    Lm {
        header_file: FileId,
        data_file: FileId,
        max_pages: u32,
    },
    Af {
        header_file: FileId,
        data_file: FileId,
        max_regions: u32,
        pages_per_region: u32,
    },
}

fn encode_state(w: &mut ByteWriter, state: &SchemeState) -> Result<()> {
    match state {
        SchemeState::Index(s) => {
            w.u8(STATE_INDEX);
            w.u8(s.scheme_byte);
            match s.flavor {
                IndexFlavor::Sets => {
                    w.u8(0);
                }
                IndexFlavor::Graphs => {
                    w.u8(1);
                }
                IndexFlavor::Hybrid { threshold } => {
                    w.u8(2);
                    w.u64(threshold as u64);
                }
            }
            w.u16(s.header_file.0);
            w.u16(s.lookup_file.0);
            w.u16(s.index_file.0);
            w.u16(s.data_file.0);
        }
        SchemeState::Lm(s) => {
            w.u8(STATE_LM);
            w.u16(s.header_file.0);
            w.u16(s.data_file.0);
            w.u32(s.max_pages);
        }
        SchemeState::Af(s) => {
            w.u8(STATE_AF);
            w.u16(s.header_file.0);
            w.u16(s.data_file.0);
            w.u32(s.max_regions);
            w.u32(s.pages_per_region);
        }
        SchemeState::Obf(_) => {
            return Err(CoreError::Build(
                "OBF databases cannot be snapshotted: the scheme serves no PIR files \
                 (the LBS keeps the plaintext network)"
                    .into(),
            ))
        }
    }
    Ok(())
}

fn decode_state(r: &mut ByteReader) -> std::result::Result<StateMeta, StorageError> {
    match r.u8()? {
        STATE_INDEX => {
            let scheme_byte = r.u8()?;
            let flavor = match r.u8()? {
                0 => IndexFlavor::Sets,
                1 => IndexFlavor::Graphs,
                2 => IndexFlavor::Hybrid {
                    threshold: r.u64()? as usize,
                },
                t => {
                    return Err(StorageError::Corrupt(format!(
                        "snapshot meta: unknown index flavor tag {t}"
                    )))
                }
            };
            Ok(StateMeta::Index {
                scheme_byte,
                flavor,
                header_file: FileId(r.u16()?),
                lookup_file: FileId(r.u16()?),
                index_file: FileId(r.u16()?),
                data_file: FileId(r.u16()?),
            })
        }
        STATE_LM => Ok(StateMeta::Lm {
            header_file: FileId(r.u16()?),
            data_file: FileId(r.u16()?),
            max_pages: r.u32()?,
        }),
        STATE_AF => Ok(StateMeta::Af {
            header_file: FileId(r.u16()?),
            data_file: FileId(r.u16()?),
            max_regions: r.u32()?,
            pages_per_region: r.u32()?,
        }),
        t => Err(StorageError::Corrupt(format!(
            "snapshot meta: unknown scheme-state tag {t}"
        ))),
    }
}

struct Meta {
    kind: SchemeKind,
    seed: u64,
    spec: SystemSpec,
    stats: BuildStats,
    state: StateMeta,
}

fn encode_meta(db: &Database) -> Result<Vec<u8>> {
    let mut w = ByteWriter::new();
    w.u8(META_VERSION);
    w.u8(db.kind.byte());
    w.u64(db.seed);
    encode_spec(&mut w, db.server.spec());
    encode_stats(&mut w, &db.stats);
    encode_state(&mut w, &db.state)?;
    Ok(w.into_vec())
}

fn decode_meta(bytes: &[u8]) -> Result<Meta> {
    let mut r = ByteReader::new(bytes);
    let inner = (|| -> std::result::Result<Meta, StorageError> {
        let version = r.u8()?;
        if version != META_VERSION {
            return Err(StorageError::Corrupt(format!(
                "snapshot meta version {version} is not supported (expected {META_VERSION})"
            )));
        }
        let kind_byte = r.u8()?;
        let kind = SchemeKind::from_byte(kind_byte).ok_or_else(|| {
            StorageError::Corrupt(format!("snapshot meta: unknown scheme byte {kind_byte}"))
        })?;
        let seed = r.u64()?;
        let spec = decode_spec(&mut r)?;
        let stats = decode_stats(&mut r)?;
        let state = decode_state(&mut r)?;
        if r.remaining() != 0 {
            return Err(StorageError::Corrupt(format!(
                "snapshot meta: {} trailing bytes",
                r.remaining()
            )));
        }
        Ok(Meta {
            kind,
            seed,
            spec,
            stats,
            state,
        })
    })();
    inner.map_err(CoreError::Storage)
}

/// Reads the whole `Fh` file through its registered driver and parses the
/// public header — the same unseal path a client's full download takes, so
/// a snapshot whose header pages were tampered with fails here with a typed
/// checksum error instead of producing a bogus plan.
fn parse_header(server: &PirServer, f: FileId) -> Result<Header> {
    let driver = server.file_driver(f)?;
    let mut raw = Vec::with_capacity(driver.size_bytes() as usize);
    for p in 0..driver.num_pages() {
        raw.extend_from_slice(driver.read_page(p)?.as_slice());
    }
    let payload = crate::files::unseal_download(&raw, server.spec().page_size)?;
    Header::parse(&payload)
}

fn check_file(server: &PirServer, f: FileId, what: &str) -> Result<()> {
    if (f.0 as usize) < server.num_files() {
        Ok(())
    } else {
        Err(corrupt(format!(
            "snapshot meta names {what} file id {} but only {} files are present",
            f.0,
            server.num_files()
        )))
    }
}

impl Database {
    /// Persists this built database as one snapshot file at `path`,
    /// atomically (temp file + fsync + rename): a crash mid-write leaves
    /// either the previous snapshot or none, never a torn one.
    ///
    /// Rejected with a typed error: OBF databases (no PIR files),
    /// externally-injected stores, and fault-injection modes.
    pub fn persist(&self, path: &Path) -> Result<()> {
        let meta = encode_meta(self)?;
        let mut w = SnapshotWriter::new(meta);
        for i in 0..self.server.num_files() {
            let f = FileId(i as u16);
            let name = self.server.file_name(f).map_err(CoreError::Pir)?;
            let mode = self
                .server
                .file_mode(f)
                .map_err(CoreError::Pir)?
                .ok_or_else(|| {
                    CoreError::Build(format!(
                        "file {name} is served by an externally-injected store; \
                         snapshots require a registered PIR mode"
                    ))
                })?;
            let blob = mode.to_blob().ok_or_else(|| {
                CoreError::Build(format!(
                    "file {name} uses a fault-injection PIR mode, which is not persistable"
                ))
            })?;
            let driver = self.server.file_driver(f).map_err(CoreError::Pir)?;
            w.add_file(name, blob, driver);
        }
        w.write(path).map_err(CoreError::Storage)
    }

    /// Reopens a snapshot written by [`Database::persist`] as a servable
    /// database, with pages served per `backend`. File ids reproduce
    /// deterministically (registration order is recorded order), the public
    /// header is re-parsed through the normal unseal path, and every
    /// structural defect — truncation, bit flips, a meta blob for an
    /// unknown scheme — surfaces as a typed error, never a panic.
    pub fn open_snapshot(path: &Path, backend: StorageBackend) -> Result<Database> {
        let snap = SnapshotReader::open(path).map_err(CoreError::Storage)?;
        let meta = decode_meta(snap.meta())?;
        let mut server = PirServer::new(meta.spec.clone());
        for (i, entry) in snap.entries().iter().enumerate() {
            let mode = PirMode::from_blob(&entry.mode_blob).map_err(CoreError::Storage)?;
            let driver: Arc<dyn PagedFile> = match backend {
                StorageBackend::Mem => Arc::new(snap.load_mem(i).map_err(CoreError::Storage)?),
                StorageBackend::Disk => Arc::new(snap.open_disk(i).map_err(CoreError::Storage)?),
                StorageBackend::Mmap => Arc::new(snap.open_mmap(i).map_err(CoreError::Storage)?),
            };
            let fid = server
                .add_file_with_driver(&entry.name, driver, mode)
                .map_err(CoreError::Pir)?;
            debug_assert_eq!(fid.0 as usize, i, "file ids are registration order");
        }
        let state = match meta.state {
            StateMeta::Index {
                scheme_byte,
                flavor,
                header_file,
                lookup_file,
                index_file,
                data_file,
            } => {
                for (f, what) in [
                    (header_file, "header"),
                    (lookup_file, "lookup"),
                    (index_file, "index"),
                    (data_file, "data"),
                ] {
                    check_file(&server, f, what)?;
                }
                if scheme_byte != meta.kind.byte() {
                    return Err(corrupt(format!(
                        "snapshot meta scheme byte {scheme_byte} disagrees with kind {}",
                        meta.kind.name()
                    )));
                }
                let header = parse_header(&server, header_file)?;
                SchemeState::Index(IndexScheme {
                    scheme_byte,
                    flavor,
                    header,
                    header_file,
                    lookup_file,
                    index_file,
                    data_file,
                })
            }
            StateMeta::Lm {
                header_file,
                data_file,
                max_pages,
            } => {
                check_file(&server, header_file, "header")?;
                check_file(&server, data_file, "data")?;
                let header = parse_header(&server, header_file)?;
                SchemeState::Lm(LmScheme {
                    header,
                    header_file,
                    data_file,
                    max_pages,
                })
            }
            StateMeta::Af {
                header_file,
                data_file,
                max_regions,
                pages_per_region,
            } => {
                check_file(&server, header_file, "header")?;
                check_file(&server, data_file, "data")?;
                let header = parse_header(&server, header_file)?;
                SchemeState::Af(AfScheme {
                    header,
                    header_file,
                    data_file,
                    max_regions,
                    pages_per_region,
                })
            }
        };
        Ok(Database {
            kind: meta.kind,
            server,
            state,
            stats: meta.stats,
            seed: meta.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BuildConfig;
    use privpath_graph::gen::{grid_network, GridGenConfig};
    use privpath_graph::network::RoadNetwork;

    fn net() -> RoadNetwork {
        grid_network(&GridGenConfig {
            nx: 4,
            ny: 4,
            ..Default::default()
        })
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("privpath-core-snap-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn persist_reopen_round_trip_answers_identically() {
        let n = net();
        let dir = tmpdir("roundtrip");
        for kind in [SchemeKind::Ci, SchemeKind::Lm] {
            let db = Arc::new(Database::build(&n, kind, &BuildConfig::default()).unwrap());
            let path = dir.join(format!("{}.snap", kind.name().replace('*', "s")));
            db.persist(&path).unwrap();
            let want = db.session_with_seed(11).query_nodes(&n, 0, 15).unwrap();
            for backend in [
                StorageBackend::Mem,
                StorageBackend::Disk,
                StorageBackend::Mmap,
            ] {
                let re = Arc::new(Database::open_snapshot(&path, backend).unwrap());
                assert_eq!(re.kind(), kind);
                assert_eq!(re.stats().regions, db.stats().regions);
                assert_eq!(re.db_bytes(), db.db_bytes());
                assert_eq!(re.plan(), db.plan());
                let got = re.session_with_seed(11).query_nodes(&n, 0, 15).unwrap();
                assert_eq!(got.answer.cost, want.answer.cost);
                assert_eq!(got.answer.path_nodes, want.answer.path_nodes);
                assert_eq!(got.trace, want.trace, "{} {:?}", kind.name(), backend);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn obf_is_rejected_with_a_typed_error() {
        let n = net();
        let db = Database::build(&n, SchemeKind::Obf, &BuildConfig::default()).unwrap();
        let dir = tmpdir("obf");
        let err = db.persist(&dir.join("obf.snap")).unwrap_err();
        assert!(matches!(err, CoreError::Build(_)), "{err}");
        assert!(err.to_string().contains("OBF"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn meta_tampering_is_typed_never_panics() {
        let n = net();
        let db = Database::build(&n, SchemeKind::Ci, &BuildConfig::default()).unwrap();
        let dir = tmpdir("tamper");
        let path = dir.join("ci.snap");
        db.persist(&path).unwrap();
        let good = std::fs::read(&path).unwrap();
        // flip one bit at a spread of offsets; every outcome must be a
        // typed error or (for data-page flips under Mem load) PageCorrupt
        for off in (0..good.len()).step_by(good.len() / 64 + 1) {
            let mut bad = good.clone();
            bad[off] ^= 0x10;
            std::fs::write(&path, &bad).unwrap();
            match Database::open_snapshot(&path, StorageBackend::Mem) {
                Ok(_) => {} // flip landed in slack the format does not cover
                Err(CoreError::Storage(_)) | Err(CoreError::Pir(_)) | Err(CoreError::Query(_)) => {}
                Err(other) => panic!("unexpected error class at offset {off}: {other}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
