//! Pre-computation of the region sets `S_ij` (CI, §5.2) and exact subgraphs
//! `G_ij` (PI, §6).
//!
//! For every pair of regions `(R_i, R_j)`, the paper materializes information
//! about the shortest paths between all border-node pairs `(v ∈ R_i,
//! v' ∈ R_j)`:
//!
//! * `S_ij` — the regions those paths cross (precisely: the regions of the
//!   *tail nodes* of their edges, which is exactly the set of `Fd` pages the
//!   client needs to reassemble the paths);
//! * `G_ij` — the exact edges appearing on them.
//!
//! Instead of walking each of the `O(borders²)` paths, we run one Dijkstra
//! per (border, source-region) pair over the augmented graph and then sweep
//! each shortest-path tree bottom-up, propagating *destination-region
//! bitsets*: `J(u)` holds every region `R_j` with a border node in `u`'s
//! subtree, so the tree edge into `u` belongs to the border-pair paths of
//! exactly the destinations in `J(u)`. One bitset union per tree node and
//! per tree edge replaces per-pair path walks.
//!
//! Two exact optimizations keep the border searches affordable at paper
//! scale:
//!
//! * **Pruning.** Only source→border paths matter, and in Dijkstra every
//!   tree ancestor settles before its descendants — so each search
//!   terminates the moment the last reachable border node settles, and the
//!   sweep walks exactly that settled prefix (a node settled after the last
//!   border can never carry a non-empty `J`). The unpruned path survives
//!   behind [`PrecomputeOptions::prune`] for the differential suites.
//! * **Border dedup.** A border node adjacent to regions `(R₁, R₂)` is a
//!   source for *both* regions' rows, and its shortest-path tree — hence
//!   its sweep contribution — is identical both times. The first visit
//!   records the sweep's non-empty-`J` *skeleton* (node, parent, original
//!   arc — everything the bottom-up pass touches); the partner region
//!   *replays* the skeleton instead of re-running the Dijkstra. Replay is a
//!   sweep-only pass, so each shared border pays for one search instead of
//!   two. The cache is bounded by [`PrecomputeOptions::dedup_cache_bytes`];
//!   on overflow a border is simply searched again (slower, never wrong).
//!
//! Work is split across contiguous region ranges (balanced by border
//! count — contiguity is what lets the dedup cache pair a border's two
//! host regions inside one worker) with `std::thread::scope`; each worker
//! owns its scratch buffers and writes its regions' rows straight into the
//! final `s_sets`/`g_sets` tables — ranges are disjoint by construction,
//! so the row writes are lock-free (no result mutex, no reassembly pass).

use crate::augment::{aug_dijkstra_into, AugGraph, DijkstraScratch, NO_NODE};
use privpath_graph::FixedBitset;
use privpath_partition::{Borders, RegionId};
use std::cell::UnsafeCell;

/// Options for [`precompute`].
#[derive(Debug, Clone)]
pub struct PrecomputeOptions {
    /// Also compute the `G_ij` edge sets (needed by PI/HY/PI*; CI only needs
    /// `S_ij`).
    pub compute_g: bool,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Terminate each border Dijkstra once all reachable border nodes are
    /// settled (exact; see the module docs). `false` keeps the full-search
    /// reference path for differential testing.
    pub prune: bool,
    /// Per-worker byte budget for cached border sweep skeletons (the
    /// search-each-border-once dedup). `0` disables the dedup entirely —
    /// every (border, region) pair runs its own search, as in PR 3.
    pub dedup_cache_bytes: usize,
    /// Use the sparse per-worker `G` accumulator (the default). The dense
    /// layout keeps one `r`-bit set per original arc per worker —
    /// `num_arcs × r` bits, which binds memory at paper scale (a 176k-node
    /// net with ~500k arcs and ~2000 regions costs ≈125 MB *per worker*).
    /// The sparse layout maps only the arcs a source region's sweeps
    /// actually touch into a recycled bitset pool (`num_arcs × 32` bits of
    /// slot map plus `touched_max × r` bits of pool), and is bit-identical
    /// to the dense path — a differential proptest holds them equal.
    /// `false` keeps the dense PR 4 layout for that differential.
    pub sparse_g: bool,
}

impl Default for PrecomputeOptions {
    fn default() -> Self {
        PrecomputeOptions {
            compute_g: true,
            threads: 0,
            prune: true,
            dedup_cache_bytes: 256 << 20,
            sparse_g: true,
        }
    }
}

/// Shared output table handing each worker exclusive `&mut` access to the
/// rows of the regions it owns.
///
/// Safety contract: a row index must be owned by exactly one worker (the
/// disjoint contiguous region ranges of [`region_chunks`] guarantee it), so
/// concurrent `row_mut` calls always alias disjoint memory.
struct RowTable<T> {
    cells: UnsafeCell<Vec<Vec<T>>>,
    /// Data pointer of `cells`' backing allocation, captured once at
    /// construction (the Vec is never resized afterwards). `row_mut` works
    /// from this pointer alone so concurrent calls never materialize
    /// aliasing `&mut` references to the Vec header.
    base: *mut Vec<T>,
    rows: usize,
    row_len: usize,
}

// SAFETY: disjoint rows, enforced by the disjoint contiguous region ranges
// of `region_chunks` (each worker only touches rows in its own range).
unsafe impl<T: Send> Sync for RowTable<T> {}

impl<T> RowTable<T> {
    fn new(rows: usize, row_len: usize) -> Self {
        let mut cells: Vec<Vec<T>> = (0..rows * row_len).map(|_| Vec::new()).collect();
        let base = cells.as_mut_ptr();
        RowTable {
            cells: UnsafeCell::new(cells),
            base,
            rows,
            row_len,
        }
    }

    /// Exclusive access to row `i`.
    ///
    /// # Safety
    /// `i` must be owned by exactly one worker for the table's lifetime.
    #[allow(clippy::mut_from_ref)]
    unsafe fn row_mut(&self, i: usize) -> &mut [Vec<T>] {
        debug_assert!(i < self.rows);
        std::slice::from_raw_parts_mut(self.base.add(i * self.row_len), self.row_len)
    }

    fn into_inner(self) -> Vec<Vec<T>> {
        self.cells.into_inner()
    }
}

/// The materialized pre-computation.
#[derive(Debug)]
pub struct Precomputed {
    /// Number of regions `R`.
    pub num_regions: u16,
    /// `s_sets[i·R + j]` — sorted intermediate regions of `S_ij`
    /// (excluding `i` and `j` themselves, which the client always fetches).
    pub s_sets: Vec<Vec<RegionId>>,
    /// `g_sets[i·R + j]` — sorted original arc ids of `G_ij`
    /// (empty vectors when `compute_g` was off).
    pub g_sets: Vec<Vec<u32>>,
    /// `m` — the largest `|S_ij|`; the CI query plan fetches `m + 2` region
    /// pages (§5.4).
    pub m: usize,
}

impl Precomputed {
    /// The `S_ij` set.
    pub fn s(&self, i: RegionId, j: RegionId) -> &[RegionId] {
        &self.s_sets[i as usize * self.num_regions as usize + j as usize]
    }

    /// The `G_ij` arc set.
    pub fn g(&self, i: RegionId, j: RegionId) -> &[u32] {
        &self.g_sets[i as usize * self.num_regions as usize + j as usize]
    }

    /// Histogram of `|S_ij|` cardinalities (Figure 10(a)).
    pub fn s_cardinality_histogram(&self) -> Vec<(usize, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for s in &self.s_sets {
            *counts.entry(s.len()).or_insert(0usize) += 1;
        }
        counts.into_iter().collect()
    }
}

/// One node of a recorded sweep skeleton: exactly what the bottom-up pass
/// reads for a node with a non-empty `J` bitset. Skeleton entries are
/// stored in the sweep's visit order (reverse settle order), so a replay
/// still sees children before parents.
#[derive(Debug, Clone, Copy)]
struct SkelEntry {
    node: u32,
    parent: u32,
    orig_arc: u32,
}

/// The per-worker `G_ij` accumulator: the region set gathered per original
/// arc during the current source region's sweeps.
enum GRows {
    /// `compute_g` off: no accumulator at all.
    Off,
    /// One `r`-bit set per arc (`num_arcs × r` bits per worker) — the PR 4
    /// layout, kept for the sparse-vs-dense differential.
    Dense(Vec<FixedBitset>),
    /// Slot-mapped: `slot_of[arc]` points into a recycled pool of bitsets
    /// that only ever grows to the touched-arc high-water mark. Slots are
    /// handed out in touch order and returned when the row is emitted.
    Sparse {
        slot_of: Vec<u32>,
        pool: Vec<FixedBitset>,
        r: usize,
    },
}

const NO_SLOT: u32 = u32::MAX;

impl GRows {
    /// Unions `j` into arc `e`'s region set, registering `e` in `touched`
    /// on first touch. No-op when the accumulator is off.
    #[inline]
    fn union_touch(&mut self, e: usize, j: &FixedBitset, touched: &mut Vec<u32>) {
        match self {
            GRows::Off => {}
            GRows::Dense(rows) => {
                if rows[e].is_empty() {
                    touched.push(e as u32);
                }
                rows[e].union_with(j);
            }
            GRows::Sparse { slot_of, pool, r } => {
                let slot = if slot_of[e] == NO_SLOT {
                    let s = touched.len();
                    if pool.len() <= s {
                        pool.push(FixedBitset::new(*r));
                    }
                    slot_of[e] = s as u32;
                    touched.push(e as u32);
                    s
                } else {
                    slot_of[e] as usize
                };
                pool[slot].union_with(j);
            }
        }
    }

    /// Arc `e`'s accumulated region set (must be touched).
    fn row(&self, e: usize) -> &FixedBitset {
        match self {
            GRows::Off => unreachable!("row() on a disabled G accumulator"),
            GRows::Dense(rows) => &rows[e],
            GRows::Sparse { slot_of, pool, .. } => &pool[slot_of[e] as usize],
        }
    }

    /// Clears arc `e`'s set and (sparse) returns its slot to the pool.
    fn clear_row(&mut self, e: usize) {
        match self {
            GRows::Off => {}
            GRows::Dense(rows) => rows[e].clear(),
            GRows::Sparse { slot_of, pool, .. } => {
                pool[slot_of[e] as usize].clear();
                slot_of[e] = NO_SLOT;
            }
        }
    }

    fn enabled(&self) -> bool {
        !matches!(self, GRows::Off)
    }
}

/// The per-worker sweep state: `J` bitsets, the destination-region
/// accumulators for the current source region, and their touched lists.
struct SweepBufs {
    j_sets: Vec<FixedBitset>,
    j_nonempty: Vec<bool>,
    s_row: Vec<FixedBitset>,
    g_row: GRows,
    s_touched: Vec<u16>,
    g_touched: Vec<u32>,
}

impl SweepBufs {
    fn new(
        aug: &AugGraph,
        r: usize,
        num_orig_arcs: usize,
        compute_g: bool,
        sparse_g: bool,
    ) -> Self {
        SweepBufs {
            j_sets: (0..aug.n_total).map(|_| FixedBitset::new(r)).collect(),
            j_nonempty: vec![false; aug.n_total],
            s_row: (0..r).map(|_| FixedBitset::new(r)).collect(),
            g_row: match (compute_g, sparse_g) {
                (false, _) => GRows::Off,
                (true, false) => {
                    GRows::Dense((0..num_orig_arcs).map(|_| FixedBitset::new(r)).collect())
                }
                (true, true) => GRows::Sparse {
                    slot_of: vec![NO_SLOT; num_orig_arcs],
                    pool: Vec::new(),
                    r,
                },
            },
            s_touched: Vec::new(),
            g_touched: Vec::new(),
        }
    }

    /// Folds one skeleton node into the accumulators and propagates its `J`
    /// to the parent. `J(node)` must already be complete (children visited).
    #[inline]
    fn fold(&mut self, aug: &AugGraph, node: usize, parent: u32, orig_arc: u32) {
        if parent == NO_NODE {
            return;
        }
        let e = orig_arc as usize;
        let tr = aug.arc_tail_region[e];
        if self.s_row[tr as usize].is_empty() {
            self.s_touched.push(tr);
        }
        self.s_row[tr as usize].union_with(&self.j_sets[node]);
        if self.g_row.enabled() {
            self.g_row
                .union_touch(e, &self.j_sets[node], &mut self.g_touched);
        }
        let p = parent as usize;
        let (a, b) = if p < node {
            let (lo, hi) = self.j_sets.split_at_mut(node);
            (&mut lo[p], &hi[0])
        } else {
            let (lo, hi) = self.j_sets.split_at_mut(p);
            (&mut hi[0], &lo[node])
        };
        a.union_with(b);
        self.j_nonempty[p] = true;
    }

    /// The bottom-up sweep over a freshly computed tree (children before
    /// parents via reverse settle order). When `record` is given, every
    /// visited non-empty-`J` node is appended — the skeleton a later
    /// [`replay`](Self::replay) re-sweeps without re-running the Dijkstra.
    fn sweep_tree(
        &mut self,
        aug: &AugGraph,
        scratch: &DijkstraScratch,
        mut record: Option<&mut Vec<SkelEntry>>,
    ) {
        for &u in scratch.settled.iter().rev() {
            let ui = u as usize;
            if ui >= aug.n_orig {
                let (r1, r2) = aug.border_regions[ui - aug.n_orig];
                self.j_sets[ui].set(r1 as usize);
                self.j_sets[ui].set(r2 as usize);
                self.j_nonempty[ui] = true;
            }
            if !self.j_nonempty[ui] {
                continue;
            }
            let p = scratch.parent[ui];
            let e = scratch.parent_orig[ui];
            if let Some(rec) = record.as_deref_mut() {
                rec.push(SkelEntry {
                    node: u,
                    parent: p,
                    orig_arc: e,
                });
            }
            self.fold(aug, ui, p, e);
        }
        // reset J buffers for the next source
        for &u in &scratch.settled {
            if self.j_nonempty[u as usize] {
                self.j_sets[u as usize].clear();
                self.j_nonempty[u as usize] = false;
            }
        }
    }

    /// Replays a recorded skeleton: the same folds as
    /// [`sweep_tree`](Self::sweep_tree) produced, with no Dijkstra. Exact
    /// because the skeleton holds *every* node the original sweep folded,
    /// in the original visit order.
    fn replay(&mut self, aug: &AugGraph, skel: &[SkelEntry]) {
        for &SkelEntry {
            node,
            parent,
            orig_arc,
        } in skel
        {
            let ui = node as usize;
            if ui >= aug.n_orig {
                let (r1, r2) = aug.border_regions[ui - aug.n_orig];
                self.j_sets[ui].set(r1 as usize);
                self.j_sets[ui].set(r2 as usize);
            }
            self.fold(aug, ui, parent, orig_arc);
        }
        for &SkelEntry { node, .. } in skel {
            self.j_sets[node as usize].clear();
            self.j_nonempty[node as usize] = false;
        }
    }

    /// Drains the accumulators into the final row for source region `i`.
    fn emit_row(
        &mut self,
        aug: &AugGraph,
        i: usize,
        s_lists: &mut [Vec<RegionId>],
        g_lists: Option<&mut [Vec<u32>]>,
    ) {
        self.s_touched.sort_unstable();
        self.s_touched.dedup();
        for k in 0..self.s_touched.len() {
            let tr = self.s_touched[k];
            for j in self.s_row[tr as usize].ones() {
                if tr as usize != i && tr as usize != j {
                    s_lists[j].push(tr);
                }
            }
            self.s_row[tr as usize].clear();
        }
        self.s_touched.clear();

        if let Some(g_lists) = g_lists {
            self.g_touched.sort_unstable();
            self.g_touched.dedup();
            for k in 0..self.g_touched.len() {
                let e = self.g_touched[k];
                // Edges whose tail lies in R_i or R_j are already in the
                // region pages the client always fetches; storing them again
                // would only bloat G_ij (and push records past the in-page
                // compression's reach).
                let tr = aug.arc_tail_region[e as usize] as usize;
                for j in self.g_row.row(e as usize).ones() {
                    if tr != i && tr != j {
                        g_lists[j].push(e);
                    }
                }
                self.g_row.clear_row(e as usize);
            }
            self.g_touched.clear();
        }
    }
}

/// Splits `0..r` into at most `threads` contiguous ranges with roughly
/// equal total border counts. Contiguity keeps each border's two host
/// regions in one worker whenever possible (the dedup cache's hit case);
/// border-count balancing approximates search-cost balancing.
fn region_chunks(region_borders: &[Vec<u32>], threads: usize) -> Vec<(usize, usize)> {
    let r = region_borders.len();
    let total: usize = region_borders.iter().map(|v| v.len()).sum();
    let threads = threads.max(1).min(r.max(1));
    let target = total.div_ceil(threads).max(1);
    let mut chunks = Vec::with_capacity(threads);
    let (mut lo, mut acc) = (0usize, 0usize);
    for (i, b) in region_borders.iter().enumerate() {
        acc += b.len();
        if acc >= target && chunks.len() + 1 < threads {
            chunks.push((lo, i + 1));
            lo = i + 1;
            acc = 0;
        }
    }
    if lo < r {
        chunks.push((lo, r));
    }
    chunks
}

/// Runs the full pre-computation.
pub fn precompute(
    aug: &AugGraph,
    borders: &Borders,
    num_regions: u16,
    num_orig_arcs: usize,
    opts: &PrecomputeOptions,
) -> Precomputed {
    let r = num_regions as usize;
    let threads = if opts.threads > 0 {
        opts.threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };

    // borders adjacent to each region
    let mut region_borders: Vec<Vec<u32>> = vec![Vec::new(); r];
    for (b, node) in borders.nodes.iter().enumerate() {
        let (r1, r2) = node.regions;
        region_borders[r1 as usize].push(b as u32);
        if r2 != r1 {
            region_borders[r2 as usize].push(b as u32);
        }
    }

    let chunks = region_chunks(&region_borders, threads);
    let s_table: RowTable<RegionId> = RowTable::new(r, r);
    let g_table: RowTable<u32> = RowTable::new(if opts.compute_g { r } else { 0 }, r);

    std::thread::scope(|scope| {
        for &(lo, hi) in &chunks {
            let region_borders = &region_borders;
            let s_table = &s_table;
            let g_table = &g_table;
            scope.spawn(move || {
                let mut scratch = DijkstraScratch::new(aug.n_total);
                let mut bufs = SweepBufs::new(aug, r, num_orig_arcs, opts.compute_g, opts.sparse_g);
                // Border-dedup skeleton cache: filled on a border's first
                // visit when its partner region lies later in this chunk,
                // consumed (and freed) on the second visit.
                let mut cache: Vec<Option<Box<[SkelEntry]>>> = vec![
                    None;
                    if opts.dedup_cache_bytes > 0 {
                        borders.len()
                    } else {
                        0
                    }
                ];
                let mut cache_bytes = 0usize;
                let mut skel_buf: Vec<SkelEntry> = Vec::new();

                #[allow(clippy::needless_range_loop)] // `i` is the region id, not just an index
                for i in lo..hi {
                    for &b in &region_borders[i] {
                        if let Some(skel) = cache.get_mut(b as usize).and_then(|slot| slot.take()) {
                            cache_bytes -= std::mem::size_of_val(&skel[..]);
                            bufs.replay(aug, &skel);
                            continue;
                        }
                        let src = aug.border_node(b);
                        // Pruned: the search stops at the last reachable
                        // border node and `scratch.settled` is exactly the
                        // prefix the sweep must visit.
                        aug_dijkstra_into(aug, src, &mut scratch, opts.prune);
                        let (r1, r2) = borders.nodes[b as usize].regions;
                        let partner = if r1 as usize == i { r2 } else { r1 } as usize;
                        let record = opts.dedup_cache_bytes > 0 && partner > i && partner < hi;
                        if record {
                            skel_buf.clear();
                            bufs.sweep_tree(aug, &scratch, Some(&mut skel_buf));
                            let bytes = std::mem::size_of_val(&skel_buf[..]);
                            if cache_bytes + bytes <= opts.dedup_cache_bytes {
                                cache_bytes += bytes;
                                cache[b as usize] =
                                    Some(skel_buf.as_slice().to_vec().into_boxed_slice());
                            }
                        } else {
                            bufs.sweep_tree(aug, &scratch, None);
                        }
                    }

                    // Emit row i straight into the output tables. SAFETY:
                    // the chunks are disjoint contiguous ranges and region
                    // i lies in this worker's range alone, so the row
                    // borrow is exclusive.
                    let s_lists = unsafe { s_table.row_mut(i) };
                    let g_lists = if opts.compute_g {
                        Some(unsafe { g_table.row_mut(i) })
                    } else {
                        None
                    };
                    bufs.emit_row(aug, i, s_lists, g_lists);
                }
            });
        }
    });

    let s_sets = s_table.into_inner();
    let mut g_sets = g_table.into_inner();
    if !opts.compute_g {
        g_sets = vec![Vec::new(); r * r];
    }
    let m = s_sets.iter().map(|s| s.len()).max().unwrap_or(0);
    Precomputed {
        num_regions,
        s_sets,
        g_sets,
        m,
    }
}

/// The PR 3 offline path, retained verbatim as the behavioural reference
/// for the differential suites and the baseline of the
/// `precompute_border_sweep` criterion bench: lazy `BinaryHeap` border
/// Dijkstras returning owned (cloned) trees, full unpruned searches, and a
/// mutex-guarded result collection with a final reassembly pass. The
/// production [`precompute`] replaced all three (indexed-heap kernel +
/// in-scratch trees, border pruning, lock-free row slots); the proptests
/// below hold the two bit-identical.
pub mod reference {
    use super::{Precomputed, RegionId};
    use crate::augment::{AugGraph, NO_NODE};
    use privpath_graph::types::{Dist, EdgeId};
    use privpath_graph::FixedBitset;
    use privpath_partition::Borders;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    struct RefTree {
        parent: Vec<u32>,
        parent_orig_arc: Vec<EdgeId>,
        settled: Vec<u32>,
    }

    struct RefScratch {
        dist: Vec<Dist>,
        parent: Vec<u32>,
        parent_orig: Vec<EdgeId>,
        touched: Vec<u32>,
    }

    /// The PR 3 border Dijkstra: lazy-deletion `BinaryHeap`, per-call
    /// `settled_flag` allocation, cloned output arrays.
    fn aug_dijkstra_ref(g: &AugGraph, source: u32, scratch: &mut RefScratch) -> RefTree {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        for &u in &scratch.touched {
            scratch.dist[u as usize] = Dist::MAX;
            scratch.parent[u as usize] = NO_NODE;
            scratch.parent_orig[u as usize] = NO_NODE;
        }
        scratch.touched.clear();

        let mut settled_flag = vec![false; g.n_total];
        let mut settled = Vec::new();
        let mut heap: BinaryHeap<Reverse<(Dist, u32)>> = BinaryHeap::new();
        scratch.dist[source as usize] = 0;
        scratch.touched.push(source);
        heap.push(Reverse((0, source)));

        while let Some(Reverse((d, u))) = heap.pop() {
            if settled_flag[u as usize] {
                continue;
            }
            settled_flag[u as usize] = true;
            settled.push(u);
            for a in g.arcs_from(u) {
                let nd = d + Dist::from(a.w);
                if nd < scratch.dist[a.to as usize] {
                    if scratch.dist[a.to as usize] == Dist::MAX {
                        scratch.touched.push(a.to);
                    }
                    scratch.dist[a.to as usize] = nd;
                    scratch.parent[a.to as usize] = u;
                    scratch.parent_orig[a.to as usize] = a.orig;
                    heap.push(Reverse((nd, a.to)));
                }
            }
        }

        RefTree {
            parent: scratch.parent.clone(),
            parent_orig_arc: scratch.parent_orig.clone(),
            settled,
        }
    }

    struct RegionRow {
        region: usize,
        s_lists: Vec<Vec<RegionId>>,
        g_lists: Vec<Vec<u32>>,
    }

    /// The PR 3 pre-computation loop (full searches, mutex-collected rows).
    pub fn precompute_ref(
        aug: &AugGraph,
        borders: &Borders,
        num_regions: u16,
        num_orig_arcs: usize,
        compute_g: bool,
        threads: usize,
    ) -> Precomputed {
        let r = num_regions as usize;
        let threads = threads.max(1).min(r.max(1));

        let mut region_borders: Vec<Vec<u32>> = vec![Vec::new(); r];
        for (b, node) in borders.nodes.iter().enumerate() {
            let (r1, r2) = node.regions;
            region_borders[r1 as usize].push(b as u32);
            if r2 != r1 {
                region_borders[r2 as usize].push(b as u32);
            }
        }

        let next_region = AtomicUsize::new(0);
        let results: Mutex<Vec<RegionRow>> = Mutex::new(Vec::with_capacity(r));

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut scratch = RefScratch {
                        dist: vec![Dist::MAX; aug.n_total],
                        parent: vec![NO_NODE; aug.n_total],
                        parent_orig: vec![NO_NODE; aug.n_total],
                        touched: Vec::new(),
                    };
                    let mut j_sets: Vec<FixedBitset> =
                        (0..aug.n_total).map(|_| FixedBitset::new(r)).collect();
                    let mut j_nonempty = vec![false; aug.n_total];
                    let mut s_row: Vec<FixedBitset> = (0..r).map(|_| FixedBitset::new(r)).collect();
                    let mut g_row: Vec<FixedBitset> = if compute_g {
                        (0..num_orig_arcs).map(|_| FixedBitset::new(r)).collect()
                    } else {
                        Vec::new()
                    };
                    let mut g_touched: Vec<u32> = Vec::new();
                    let mut s_touched: Vec<u16> = Vec::new();

                    loop {
                        let i = next_region.fetch_add(1, Ordering::Relaxed);
                        if i >= r {
                            break;
                        }
                        for &b in &region_borders[i] {
                            let src = aug.border_node(b);
                            let tree = aug_dijkstra_ref(aug, src, &mut scratch);
                            for &u in tree.settled.iter().rev() {
                                let ui = u as usize;
                                if ui >= aug.n_orig {
                                    let (r1, r2) = aug.border_regions[ui - aug.n_orig];
                                    j_sets[ui].set(r1 as usize);
                                    j_sets[ui].set(r2 as usize);
                                    j_nonempty[ui] = true;
                                }
                                if !j_nonempty[ui] {
                                    continue;
                                }
                                let p = tree.parent[ui];
                                if p != NO_NODE {
                                    let e = tree.parent_orig_arc[ui] as usize;
                                    let tr = aug.arc_tail_region[e];
                                    if s_row[tr as usize].is_empty() {
                                        s_touched.push(tr);
                                    }
                                    s_row[tr as usize].union_with(&j_sets[ui]);
                                    if compute_g {
                                        if g_row[e].is_empty() {
                                            g_touched.push(e as u32);
                                        }
                                        g_row[e].union_with(&j_sets[ui]);
                                    }
                                    let (a, bse) = if (p as usize) < ui {
                                        let (lo, hi) = j_sets.split_at_mut(ui);
                                        (&mut lo[p as usize], &hi[0])
                                    } else {
                                        let (lo, hi) = j_sets.split_at_mut(p as usize);
                                        (&mut hi[0], &lo[ui])
                                    };
                                    a.union_with(bse);
                                    j_nonempty[p as usize] = true;
                                }
                            }
                            for &u in &tree.settled {
                                if j_nonempty[u as usize] {
                                    j_sets[u as usize].clear();
                                    j_nonempty[u as usize] = false;
                                }
                            }
                        }

                        let mut s_lists: Vec<Vec<RegionId>> = vec![Vec::new(); r];
                        s_touched.sort_unstable();
                        s_touched.dedup();
                        for &tr in &s_touched {
                            for j in s_row[tr as usize].ones() {
                                if tr as usize != i && tr as usize != j {
                                    s_lists[j].push(tr);
                                }
                            }
                            s_row[tr as usize].clear();
                        }
                        s_touched.clear();

                        let mut g_lists: Vec<Vec<u32>> = vec![Vec::new(); r];
                        if compute_g {
                            g_touched.sort_unstable();
                            g_touched.dedup();
                            for &e in &g_touched {
                                let tr = aug.arc_tail_region[e as usize] as usize;
                                for j in g_row[e as usize].ones() {
                                    if tr != i && tr != j {
                                        g_lists[j].push(e);
                                    }
                                }
                                g_row[e as usize].clear();
                            }
                            g_touched.clear();
                        }

                        results.lock().unwrap().push(RegionRow {
                            region: i,
                            s_lists,
                            g_lists,
                        });
                    }
                });
            }
        });

        let mut s_sets: Vec<Vec<RegionId>> = vec![Vec::new(); r * r];
        let mut g_sets: Vec<Vec<u32>> = vec![Vec::new(); r * r];
        for row in results.into_inner().unwrap() {
            for (j, lst) in row.s_lists.into_iter().enumerate() {
                s_sets[row.region * r + j] = lst;
            }
            for (j, lst) in row.g_lists.into_iter().enumerate() {
                g_sets[row.region * r + j] = lst;
            }
        }
        let m = s_sets.iter().map(|s| s.len()).max().unwrap_or(0);
        Precomputed {
            num_regions,
            s_sets,
            g_sets,
            m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privpath_graph::dijkstra::dijkstra;
    use privpath_graph::gen::{grid_network, road_like, GridGenConfig, RoadGenConfig};
    use privpath_graph::network::RoadNetwork;
    use privpath_graph::types::Dist;
    use privpath_partition::{compute_borders, partition_packed, Partition};

    fn setup(net: &RoadNetwork, cap: usize) -> (AugGraph, Partition, Borders) {
        let p = partition_packed(net, cap, &|u| net.node_record_bytes(u));
        let borders = compute_borders(net, &p.tree);
        let aug = AugGraph::build(net, &borders, &p.region_of_node);
        (aug, p, borders)
    }

    /// Brute-force reference: client subgraph from S_ij (the union of region
    /// pages) must support optimal-cost paths for all node pairs.
    fn check_s_correctness(
        net: &RoadNetwork,
        part: &Partition,
        pre: &Precomputed,
        pairs: &[(u32, u32)],
    ) {
        let r = pre.num_regions as usize;
        for &(s, t) in pairs {
            let rs = part.region_of_node[s as usize];
            let rt = part.region_of_node[t as usize];
            // allowed regions: rs, rt, S_{rs,rt}
            let mut allowed = vec![false; r];
            allowed[rs as usize] = true;
            allowed[rt as usize] = true;
            for &x in pre.s(rs, rt) {
                allowed[x as usize] = true;
            }
            // restricted Dijkstra: only arcs whose tail is in an allowed region
            let full = dijkstra(net, s);
            let restricted = restricted_dijkstra(net, s, |u| {
                allowed[part.region_of_node[u as usize] as usize]
            });
            assert_eq!(
                restricted[t as usize], full.dist[t as usize],
                "S_ij misses pages for {s}->{t} (regions {rs}->{rt})"
            );
        }
    }

    fn restricted_dijkstra(net: &RoadNetwork, s: u32, tail_ok: impl Fn(u32) -> bool) -> Vec<Dist> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut dist = vec![Dist::MAX; net.num_nodes()];
        let mut heap = BinaryHeap::new();
        dist[s as usize] = 0;
        heap.push(Reverse((0, s)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            if !tail_ok(u) {
                continue; // node's adjacency lives in a page we don't have
            }
            for (_, v, w) in net.arcs_from(u) {
                let nd = d + Dist::from(w);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        dist
    }

    #[test]
    fn s_sets_support_optimal_paths_on_grid() {
        let net = grid_network(&GridGenConfig {
            nx: 12,
            ny: 12,
            ..Default::default()
        });
        let (aug, part, borders) = setup(&net, 600);
        assert!(part.num_regions() >= 4);
        let pre = precompute(
            &aug,
            &borders,
            part.num_regions(),
            net.num_arcs(),
            &PrecomputeOptions::default(),
        );
        let pairs: Vec<(u32, u32)> = (0..12)
            .map(|k| (k * 11 % 144, (k * 37 + 80) % 144))
            .collect();
        check_s_correctness(&net, &part, &pre, &pairs);
    }

    #[test]
    fn s_sets_support_optimal_paths_on_road_network() {
        let net = road_like(&RoadGenConfig {
            nodes: 600,
            seed: 21,
            ..Default::default()
        });
        let (aug, part, borders) = setup(&net, 700);
        let pre = precompute(
            &aug,
            &borders,
            part.num_regions(),
            net.num_arcs(),
            &PrecomputeOptions::default(),
        );
        let n = net.num_nodes() as u32;
        let pairs: Vec<(u32, u32)> = (0..15).map(|k| (k * 31 % n, (k * 83 + 7) % n)).collect();
        check_s_correctness(&net, &part, &pre, &pairs);
    }

    #[test]
    fn g_sets_support_optimal_costs() {
        let net = grid_network(&GridGenConfig {
            nx: 10,
            ny: 10,
            ..Default::default()
        });
        let (aug, part, borders) = setup(&net, 600);
        let pre = precompute(
            &aug,
            &borders,
            part.num_regions(),
            net.num_arcs(),
            &PrecomputeOptions::default(),
        );
        // client graph for (s,t): arcs of R_s and R_t pages + G_{rs,rt} arcs
        for &(s, t) in &[(0u32, 99u32), (9, 90), (5, 55), (0, 9)] {
            let rs = part.region_of_node[s as usize];
            let rt = part.region_of_node[t as usize];
            let mut arc_ok = vec![false; net.num_arcs()];
            for e in 0..net.num_arcs() as u32 {
                let (u, _) = net.edge_endpoints(e);
                let ru = part.region_of_node[u as usize];
                if ru == rs || ru == rt {
                    arc_ok[e as usize] = true;
                }
            }
            for &e in pre.g(rs, rt) {
                arc_ok[e as usize] = true;
            }
            // Dijkstra over allowed arcs only
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let mut dist = vec![Dist::MAX; net.num_nodes()];
            let mut heap = BinaryHeap::new();
            dist[s as usize] = 0;
            heap.push(Reverse((0, s)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u as usize] {
                    continue;
                }
                for (e, v, w) in net.arcs_from(u) {
                    if !arc_ok[e as usize] {
                        continue;
                    }
                    let nd = d + Dist::from(w);
                    if nd < dist[v as usize] {
                        dist[v as usize] = nd;
                        heap.push(Reverse((nd, v)));
                    }
                }
            }
            let full = dijkstra(&net, s);
            assert_eq!(
                dist[t as usize], full.dist[t as usize],
                "G misses edges for {s}->{t}"
            );
        }
    }

    #[test]
    fn sets_are_sorted_and_deduped() {
        let net = grid_network(&GridGenConfig {
            nx: 8,
            ny: 8,
            ..Default::default()
        });
        let (aug, part, borders) = setup(&net, 512);
        let pre = precompute(
            &aug,
            &borders,
            part.num_regions(),
            net.num_arcs(),
            &PrecomputeOptions::default(),
        );
        let r = pre.num_regions;
        for i in 0..r {
            for j in 0..r {
                let s = pre.s(i, j);
                assert!(
                    s.windows(2).all(|w| w[0] < w[1]),
                    "S_{i},{j} not strictly sorted"
                );
                assert!(
                    !s.contains(&i) && !s.contains(&j),
                    "S must exclude endpoints"
                );
                let g = pre.g(i, j);
                assert!(
                    g.windows(2).all(|w| w[0] < w[1]),
                    "G_{i},{j} not strictly sorted"
                );
            }
        }
        let max_len = (0..r)
            .flat_map(|i| (0..r).map(move |j| (i, j)))
            .map(|(i, j)| pre.s(i, j).len())
            .max()
            .unwrap();
        assert_eq!(pre.m, max_len);
    }

    #[test]
    fn single_region_has_empty_sets() {
        let net = grid_network(&GridGenConfig {
            nx: 4,
            ny: 4,
            ..Default::default()
        });
        let p = partition_packed(&net, 1 << 20, &|u| net.node_record_bytes(u));
        assert_eq!(p.num_regions(), 1);
        let borders = compute_borders(&net, &p.tree);
        let aug = AugGraph::build(&net, &borders, &p.region_of_node);
        let pre = precompute(
            &aug,
            &borders,
            1,
            net.num_arcs(),
            &PrecomputeOptions::default(),
        );
        assert_eq!(pre.m, 0);
        assert!(pre.s(0, 0).is_empty());
        assert!(pre.g(0, 0).is_empty());
    }

    /// Differential harness: the pruned border searches must reproduce both
    /// the unpruned run of the new kernel *and* the retained PR 3
    /// implementation ([`reference::precompute_ref`]) bit-for-bit
    /// (`s_sets`, `g_sets`, `m`).
    fn assert_prune_exact(net: &RoadNetwork, cap: usize, threads: usize) {
        let (aug, part, borders) = setup(net, cap);
        let run = |prune: bool| {
            precompute(
                &aug,
                &borders,
                part.num_regions(),
                net.num_arcs(),
                &PrecomputeOptions {
                    compute_g: true,
                    threads,
                    prune,
                    ..PrecomputeOptions::default()
                },
            )
        };
        let full = run(false);
        let pruned = run(true);
        assert_eq!(full.s_sets, pruned.s_sets, "S_ij diverged under pruning");
        assert_eq!(full.g_sets, pruned.g_sets, "G_ij diverged under pruning");
        assert_eq!(full.m, pruned.m, "m diverged under pruning");
        let pr3 = reference::precompute_ref(
            &aug,
            &borders,
            part.num_regions(),
            net.num_arcs(),
            true,
            threads,
        );
        assert_eq!(pr3.s_sets, pruned.s_sets, "S_ij diverged from PR 3 path");
        assert_eq!(pr3.g_sets, pruned.g_sets, "G_ij diverged from PR 3 path");
        assert_eq!(pr3.m, pruned.m, "m diverged from PR 3 path");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 6, ..Default::default()
        })]

        /// Pruned ≡ unpruned on random road-like networks (the paper's
        /// network shape), across thread counts.
        #[test]
        fn pruned_precompute_is_exact_on_road_nets(
            seed in 0u64..10_000,
            nodes in 150usize..400,
            threads in 1usize..4,
        ) {
            let net = road_like(&RoadGenConfig { nodes, seed, ..Default::default() });
            assert_prune_exact(&net, 600, threads);
        }

        /// Pruned ≡ unpruned on jittered grids (dense border structure —
        /// many equal-cost ties crossing region boundaries).
        #[test]
        fn pruned_precompute_is_exact_on_grids(
            nx in 6usize..13,
            ny in 6usize..13,
            seed in 0u64..10_000,
        ) {
            let net = grid_network(&GridGenConfig { nx, ny, seed, ..Default::default() });
            assert_prune_exact(&net, 480, 2);
        }
    }

    fn assert_sparse_g_exact(net: &RoadNetwork, cap: usize, threads: usize) {
        let (aug, part, borders) = setup(net, cap);
        let run = |sparse_g: bool| {
            precompute(
                &aug,
                &borders,
                part.num_regions(),
                net.num_arcs(),
                &PrecomputeOptions {
                    compute_g: true,
                    threads,
                    sparse_g,
                    ..PrecomputeOptions::default()
                },
            )
        };
        let dense = run(false);
        let sparse = run(true);
        assert_eq!(dense.s_sets, sparse.s_sets, "S_ij diverged under sparse G");
        assert_eq!(dense.g_sets, sparse.g_sets, "G_ij diverged under sparse G");
        assert_eq!(dense.m, sparse.m, "m diverged under sparse G");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 6, ..Default::default()
        })]

        /// The sparse per-worker `G` accumulator (slot-mapped pool) is
        /// bit-identical to the dense `num_arcs × r` layout on road-like
        /// networks, across thread counts.
        #[test]
        fn sparse_g_rows_match_dense_on_road_nets(
            seed in 0u64..10_000,
            nodes in 150usize..400,
            threads in 1usize..4,
        ) {
            let net = road_like(&RoadGenConfig { nodes, seed, ..Default::default() });
            assert_sparse_g_exact(&net, 600, threads);
        }

        /// Same differential on jittered grids (dense border structure).
        #[test]
        fn sparse_g_rows_match_dense_on_grids(
            nx in 6usize..13,
            ny in 6usize..13,
            seed in 0u64..10_000,
        ) {
            let net = grid_network(&GridGenConfig { nx, ny, seed, ..Default::default() });
            assert_sparse_g_exact(&net, 480, 2);
        }
    }

    /// The border-dedup skeleton replay must be invisible in the output:
    /// dedup on (default), dedup off, and a tiny cache budget (forcing the
    /// overflow fallback) all produce identical tables.
    #[test]
    fn border_dedup_is_exact_and_budget_safe() {
        let net = road_like(&RoadGenConfig {
            nodes: 500,
            seed: 77,
            ..Default::default()
        });
        let (aug, part, borders) = setup(&net, 600);
        let run = |dedup_cache_bytes: usize, threads: usize| {
            precompute(
                &aug,
                &borders,
                part.num_regions(),
                net.num_arcs(),
                &PrecomputeOptions {
                    compute_g: true,
                    threads,
                    prune: true,
                    dedup_cache_bytes,
                    ..PrecomputeOptions::default()
                },
            )
        };
        let with_dedup = run(256 << 20, 1);
        let without = run(0, 1);
        assert_eq!(with_dedup.s_sets, without.s_sets);
        assert_eq!(with_dedup.g_sets, without.g_sets);
        assert_eq!(with_dedup.m, without.m);
        // A budget too small for any whole skeleton: every insert overflows,
        // exercising the search-again fallback.
        let starved = run(64, 2);
        assert_eq!(with_dedup.s_sets, starved.s_sets);
        assert_eq!(with_dedup.g_sets, starved.g_sets);
    }

    #[test]
    fn multithreaded_matches_single_thread() {
        let net = road_like(&RoadGenConfig {
            nodes: 400,
            seed: 33,
            ..Default::default()
        });
        let (aug, part, borders) = setup(&net, 600);
        let a = precompute(
            &aug,
            &borders,
            part.num_regions(),
            net.num_arcs(),
            &PrecomputeOptions {
                compute_g: true,
                threads: 1,
                prune: true,
                ..PrecomputeOptions::default()
            },
        );
        let b = precompute(
            &aug,
            &borders,
            part.num_regions(),
            net.num_arcs(),
            &PrecomputeOptions {
                compute_g: true,
                threads: 4,
                prune: true,
                ..PrecomputeOptions::default()
            },
        );
        assert_eq!(a.s_sets, b.s_sets);
        assert_eq!(a.g_sets, b.g_sets);
        assert_eq!(a.m, b.m);
    }

    #[test]
    fn histogram_covers_all_pairs() {
        let net = grid_network(&GridGenConfig {
            nx: 8,
            ny: 8,
            ..Default::default()
        });
        let (aug, part, borders) = setup(&net, 512);
        let pre = precompute(
            &aug,
            &borders,
            part.num_regions(),
            net.num_arcs(),
            &PrecomputeOptions::default(),
        );
        let hist = pre.s_cardinality_histogram();
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        let r = pre.num_regions as usize;
        assert_eq!(total, r * r);
    }
}
