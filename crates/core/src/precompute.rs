//! Pre-computation of the region sets `S_ij` (CI, §5.2) and exact subgraphs
//! `G_ij` (PI, §6).
//!
//! For every pair of regions `(R_i, R_j)`, the paper materializes information
//! about the shortest paths between all border-node pairs `(v ∈ R_i,
//! v' ∈ R_j)`:
//!
//! * `S_ij` — the regions those paths cross (precisely: the regions of the
//!   *tail nodes* of their edges, which is exactly the set of `Fd` pages the
//!   client needs to reassemble the paths);
//! * `G_ij` — the exact edges appearing on them.
//!
//! Instead of walking each of the `O(borders²)` paths, we run one Dijkstra
//! per (border, source-region) pair over the augmented graph and then sweep
//! each shortest-path tree bottom-up, propagating *destination-region
//! bitsets*: `J(u)` holds every region `R_j` with a border node in `u`'s
//! subtree, so the tree edge into `u` belongs to the border-pair paths of
//! exactly the destinations in `J(u)`. One bitset union per tree node and
//! per tree edge replaces per-pair path walks.
//!
//! Work is parallelized across source regions with `std::thread::scope`;
//! each worker owns its scratch buffers and writes disjoint output rows.

use crate::augment::{aug_dijkstra, AugGraph, DijkstraScratch, NO_NODE};
use privpath_graph::FixedBitset;
use privpath_partition::{Borders, RegionId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Options for [`precompute`].
#[derive(Debug, Clone)]
pub struct PrecomputeOptions {
    /// Also compute the `G_ij` edge sets (needed by PI/HY/PI*; CI only needs
    /// `S_ij`).
    pub compute_g: bool,
    /// Worker threads (0 = all cores).
    pub threads: usize,
}

impl Default for PrecomputeOptions {
    fn default() -> Self {
        PrecomputeOptions {
            compute_g: true,
            threads: 0,
        }
    }
}

/// The materialized pre-computation.
#[derive(Debug)]
pub struct Precomputed {
    /// Number of regions `R`.
    pub num_regions: u16,
    /// `s_sets[i·R + j]` — sorted intermediate regions of `S_ij`
    /// (excluding `i` and `j` themselves, which the client always fetches).
    pub s_sets: Vec<Vec<RegionId>>,
    /// `g_sets[i·R + j]` — sorted original arc ids of `G_ij`
    /// (empty vectors when `compute_g` was off).
    pub g_sets: Vec<Vec<u32>>,
    /// `m` — the largest `|S_ij|`; the CI query plan fetches `m + 2` region
    /// pages (§5.4).
    pub m: usize,
}

impl Precomputed {
    /// The `S_ij` set.
    pub fn s(&self, i: RegionId, j: RegionId) -> &[RegionId] {
        &self.s_sets[i as usize * self.num_regions as usize + j as usize]
    }

    /// The `G_ij` arc set.
    pub fn g(&self, i: RegionId, j: RegionId) -> &[u32] {
        &self.g_sets[i as usize * self.num_regions as usize + j as usize]
    }

    /// Histogram of `|S_ij|` cardinalities (Figure 10(a)).
    pub fn s_cardinality_histogram(&self) -> Vec<(usize, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for s in &self.s_sets {
            *counts.entry(s.len()).or_insert(0usize) += 1;
        }
        counts.into_iter().collect()
    }
}

struct RegionRow {
    region: usize,
    s_lists: Vec<Vec<RegionId>>,
    g_lists: Vec<Vec<u32>>,
}

/// Runs the full pre-computation.
pub fn precompute(
    aug: &AugGraph,
    borders: &Borders,
    num_regions: u16,
    num_orig_arcs: usize,
    opts: &PrecomputeOptions,
) -> Precomputed {
    let r = num_regions as usize;
    let threads = if opts.threads > 0 {
        opts.threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
    .min(r.max(1));

    // borders adjacent to each region
    let mut region_borders: Vec<Vec<u32>> = vec![Vec::new(); r];
    for (b, node) in borders.nodes.iter().enumerate() {
        let (r1, r2) = node.regions;
        region_borders[r1 as usize].push(b as u32);
        if r2 != r1 {
            region_borders[r2 as usize].push(b as u32);
        }
    }

    let next_region = AtomicUsize::new(0);
    let results: Mutex<Vec<RegionRow>> = Mutex::new(Vec::with_capacity(r));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = DijkstraScratch::new(aug.n_total);
                let mut j_sets: Vec<FixedBitset> =
                    (0..aug.n_total).map(|_| FixedBitset::new(r)).collect();
                let mut j_nonempty = vec![false; aug.n_total];
                // dest-bitsets per tail-region and (optionally) per arc
                let mut s_row: Vec<FixedBitset> = (0..r).map(|_| FixedBitset::new(r)).collect();
                let mut g_row: Vec<FixedBitset> = if opts.compute_g {
                    (0..num_orig_arcs).map(|_| FixedBitset::new(r)).collect()
                } else {
                    Vec::new()
                };
                let mut g_touched: Vec<u32> = Vec::new();
                let mut s_touched: Vec<u16> = Vec::new();

                loop {
                    let i = next_region.fetch_add(1, Ordering::Relaxed);
                    if i >= r {
                        break;
                    }
                    for &b in &region_borders[i] {
                        let src = aug.border_node(b);
                        let tree = aug_dijkstra(aug, src, &mut scratch);
                        // bottom-up sweep: children before parents
                        for &u in tree.settled.iter().rev() {
                            let ui = u as usize;
                            if ui >= aug.n_orig {
                                let (r1, r2) = aug.border_regions[ui - aug.n_orig];
                                j_sets[ui].set(r1 as usize);
                                j_sets[ui].set(r2 as usize);
                                j_nonempty[ui] = true;
                            }
                            if !j_nonempty[ui] {
                                continue;
                            }
                            let p = tree.parent[ui];
                            if p != NO_NODE {
                                let e = tree.parent_orig_arc[ui] as usize;
                                let tr = aug.arc_tail_region[e];
                                if s_row[tr as usize].is_empty() {
                                    s_touched.push(tr);
                                }
                                s_row[tr as usize].union_with(&j_sets[ui]);
                                if opts.compute_g {
                                    if g_row[e].is_empty() {
                                        g_touched.push(e as u32);
                                    }
                                    g_row[e].union_with(&j_sets[ui]);
                                }
                                let (a, bse) = if (p as usize) < ui {
                                    let (lo, hi) = j_sets.split_at_mut(ui);
                                    (&mut lo[p as usize], &hi[0])
                                } else {
                                    let (lo, hi) = j_sets.split_at_mut(p as usize);
                                    (&mut hi[0], &lo[ui])
                                };
                                a.union_with(bse);
                                j_nonempty[p as usize] = true;
                            }
                        }
                        // reset J buffers for the next source
                        for &u in &tree.settled {
                            if j_nonempty[u as usize] {
                                j_sets[u as usize].clear();
                                j_nonempty[u as usize] = false;
                            }
                        }
                    }

                    // emit row i
                    let mut s_lists: Vec<Vec<RegionId>> = vec![Vec::new(); r];
                    s_touched.sort_unstable();
                    s_touched.dedup();
                    for &tr in &s_touched {
                        for j in s_row[tr as usize].ones() {
                            if tr as usize != i && tr as usize != j {
                                s_lists[j].push(tr);
                            }
                        }
                        s_row[tr as usize].clear();
                    }
                    s_touched.clear();

                    let mut g_lists: Vec<Vec<u32>> = vec![Vec::new(); r];
                    if opts.compute_g {
                        g_touched.sort_unstable();
                        g_touched.dedup();
                        for &e in &g_touched {
                            // Edges whose tail lies in R_i or R_j are already
                            // in the region pages the client always fetches;
                            // storing them again would only bloat G_ij (and
                            // push records past the in-page compression's
                            // reach).
                            let tr = aug.arc_tail_region[e as usize] as usize;
                            for j in g_row[e as usize].ones() {
                                if tr != i && tr != j {
                                    g_lists[j].push(e);
                                }
                            }
                            g_row[e as usize].clear();
                        }
                        g_touched.clear();
                    }

                    results.lock().unwrap().push(RegionRow {
                        region: i,
                        s_lists,
                        g_lists,
                    });
                }
            });
        }
    });

    let mut s_sets: Vec<Vec<RegionId>> = vec![Vec::new(); r * r];
    let mut g_sets: Vec<Vec<u32>> = vec![Vec::new(); r * r];
    for row in results.into_inner().unwrap() {
        for (j, lst) in row.s_lists.into_iter().enumerate() {
            s_sets[row.region * r + j] = lst;
        }
        for (j, lst) in row.g_lists.into_iter().enumerate() {
            g_sets[row.region * r + j] = lst;
        }
    }
    let m = s_sets.iter().map(|s| s.len()).max().unwrap_or(0);
    Precomputed {
        num_regions,
        s_sets,
        g_sets,
        m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privpath_graph::dijkstra::dijkstra;
    use privpath_graph::gen::{grid_network, road_like, GridGenConfig, RoadGenConfig};
    use privpath_graph::network::RoadNetwork;
    use privpath_graph::types::Dist;
    use privpath_partition::{compute_borders, partition_packed, Partition};

    fn setup(net: &RoadNetwork, cap: usize) -> (AugGraph, Partition, Borders) {
        let p = partition_packed(net, cap, &|u| net.node_record_bytes(u));
        let borders = compute_borders(net, &p.tree);
        let aug = AugGraph::build(net, &borders, &p.region_of_node);
        (aug, p, borders)
    }

    /// Brute-force reference: client subgraph from S_ij (the union of region
    /// pages) must support optimal-cost paths for all node pairs.
    fn check_s_correctness(
        net: &RoadNetwork,
        part: &Partition,
        pre: &Precomputed,
        pairs: &[(u32, u32)],
    ) {
        let r = pre.num_regions as usize;
        for &(s, t) in pairs {
            let rs = part.region_of_node[s as usize];
            let rt = part.region_of_node[t as usize];
            // allowed regions: rs, rt, S_{rs,rt}
            let mut allowed = vec![false; r];
            allowed[rs as usize] = true;
            allowed[rt as usize] = true;
            for &x in pre.s(rs, rt) {
                allowed[x as usize] = true;
            }
            // restricted Dijkstra: only arcs whose tail is in an allowed region
            let full = dijkstra(net, s);
            let restricted = restricted_dijkstra(net, s, |u| {
                allowed[part.region_of_node[u as usize] as usize]
            });
            assert_eq!(
                restricted[t as usize], full.dist[t as usize],
                "S_ij misses pages for {s}->{t} (regions {rs}->{rt})"
            );
        }
    }

    fn restricted_dijkstra(net: &RoadNetwork, s: u32, tail_ok: impl Fn(u32) -> bool) -> Vec<Dist> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut dist = vec![Dist::MAX; net.num_nodes()];
        let mut heap = BinaryHeap::new();
        dist[s as usize] = 0;
        heap.push(Reverse((0, s)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            if !tail_ok(u) {
                continue; // node's adjacency lives in a page we don't have
            }
            for (_, v, w) in net.arcs_from(u) {
                let nd = d + Dist::from(w);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        dist
    }

    #[test]
    fn s_sets_support_optimal_paths_on_grid() {
        let net = grid_network(&GridGenConfig {
            nx: 12,
            ny: 12,
            ..Default::default()
        });
        let (aug, part, borders) = setup(&net, 600);
        assert!(part.num_regions() >= 4);
        let pre = precompute(
            &aug,
            &borders,
            part.num_regions(),
            net.num_arcs(),
            &PrecomputeOptions::default(),
        );
        let pairs: Vec<(u32, u32)> = (0..12)
            .map(|k| (k * 11 % 144, (k * 37 + 80) % 144))
            .collect();
        check_s_correctness(&net, &part, &pre, &pairs);
    }

    #[test]
    fn s_sets_support_optimal_paths_on_road_network() {
        let net = road_like(&RoadGenConfig {
            nodes: 600,
            seed: 21,
            ..Default::default()
        });
        let (aug, part, borders) = setup(&net, 700);
        let pre = precompute(
            &aug,
            &borders,
            part.num_regions(),
            net.num_arcs(),
            &PrecomputeOptions::default(),
        );
        let n = net.num_nodes() as u32;
        let pairs: Vec<(u32, u32)> = (0..15).map(|k| (k * 31 % n, (k * 83 + 7) % n)).collect();
        check_s_correctness(&net, &part, &pre, &pairs);
    }

    #[test]
    fn g_sets_support_optimal_costs() {
        let net = grid_network(&GridGenConfig {
            nx: 10,
            ny: 10,
            ..Default::default()
        });
        let (aug, part, borders) = setup(&net, 600);
        let pre = precompute(
            &aug,
            &borders,
            part.num_regions(),
            net.num_arcs(),
            &PrecomputeOptions::default(),
        );
        // client graph for (s,t): arcs of R_s and R_t pages + G_{rs,rt} arcs
        for &(s, t) in &[(0u32, 99u32), (9, 90), (5, 55), (0, 9)] {
            let rs = part.region_of_node[s as usize];
            let rt = part.region_of_node[t as usize];
            let mut arc_ok = vec![false; net.num_arcs()];
            for e in 0..net.num_arcs() as u32 {
                let (u, _) = net.edge_endpoints(e);
                let ru = part.region_of_node[u as usize];
                if ru == rs || ru == rt {
                    arc_ok[e as usize] = true;
                }
            }
            for &e in pre.g(rs, rt) {
                arc_ok[e as usize] = true;
            }
            // Dijkstra over allowed arcs only
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let mut dist = vec![Dist::MAX; net.num_nodes()];
            let mut heap = BinaryHeap::new();
            dist[s as usize] = 0;
            heap.push(Reverse((0, s)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u as usize] {
                    continue;
                }
                for (e, v, w) in net.arcs_from(u) {
                    if !arc_ok[e as usize] {
                        continue;
                    }
                    let nd = d + Dist::from(w);
                    if nd < dist[v as usize] {
                        dist[v as usize] = nd;
                        heap.push(Reverse((nd, v)));
                    }
                }
            }
            let full = dijkstra(&net, s);
            assert_eq!(
                dist[t as usize], full.dist[t as usize],
                "G misses edges for {s}->{t}"
            );
        }
    }

    #[test]
    fn sets_are_sorted_and_deduped() {
        let net = grid_network(&GridGenConfig {
            nx: 8,
            ny: 8,
            ..Default::default()
        });
        let (aug, part, borders) = setup(&net, 512);
        let pre = precompute(
            &aug,
            &borders,
            part.num_regions(),
            net.num_arcs(),
            &PrecomputeOptions::default(),
        );
        let r = pre.num_regions;
        for i in 0..r {
            for j in 0..r {
                let s = pre.s(i, j);
                assert!(
                    s.windows(2).all(|w| w[0] < w[1]),
                    "S_{i},{j} not strictly sorted"
                );
                assert!(
                    !s.contains(&i) && !s.contains(&j),
                    "S must exclude endpoints"
                );
                let g = pre.g(i, j);
                assert!(
                    g.windows(2).all(|w| w[0] < w[1]),
                    "G_{i},{j} not strictly sorted"
                );
            }
        }
        let max_len = (0..r)
            .flat_map(|i| (0..r).map(move |j| (i, j)))
            .map(|(i, j)| pre.s(i, j).len())
            .max()
            .unwrap();
        assert_eq!(pre.m, max_len);
    }

    #[test]
    fn single_region_has_empty_sets() {
        let net = grid_network(&GridGenConfig {
            nx: 4,
            ny: 4,
            ..Default::default()
        });
        let p = partition_packed(&net, 1 << 20, &|u| net.node_record_bytes(u));
        assert_eq!(p.num_regions(), 1);
        let borders = compute_borders(&net, &p.tree);
        let aug = AugGraph::build(&net, &borders, &p.region_of_node);
        let pre = precompute(
            &aug,
            &borders,
            1,
            net.num_arcs(),
            &PrecomputeOptions::default(),
        );
        assert_eq!(pre.m, 0);
        assert!(pre.s(0, 0).is_empty());
        assert!(pre.g(0, 0).is_empty());
    }

    #[test]
    fn multithreaded_matches_single_thread() {
        let net = road_like(&RoadGenConfig {
            nodes: 400,
            seed: 33,
            ..Default::default()
        });
        let (aug, part, borders) = setup(&net, 600);
        let a = precompute(
            &aug,
            &borders,
            part.num_regions(),
            net.num_arcs(),
            &PrecomputeOptions {
                compute_g: true,
                threads: 1,
            },
        );
        let b = precompute(
            &aug,
            &borders,
            part.num_regions(),
            net.num_arcs(),
            &PrecomputeOptions {
                compute_g: true,
                threads: 4,
            },
        );
        assert_eq!(a.s_sets, b.s_sets);
        assert_eq!(a.g_sets, b.g_sets);
        assert_eq!(a.m, b.m);
    }

    #[test]
    fn histogram_covers_all_pairs() {
        let net = grid_network(&GridGenConfig {
            nx: 8,
            ny: 8,
            ..Default::default()
        });
        let (aug, part, borders) = setup(&net, 512);
        let pre = precompute(
            &aug,
            &borders,
            part.num_regions(),
            net.num_arcs(),
            &PrecomputeOptions::default(),
        );
        let hist = pre.s_cardinality_histogram();
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        let r = pre.num_regions as usize;
        assert_eq!(total, r * r);
    }
}
