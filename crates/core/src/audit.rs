//! Theorem 1 as executable checks.
//!
//! "Our methodology leaks no information to the adversary about the shortest
//! path query. Equivalently, every processed query is indistinguishable from
//! any other." The proof rests on (i) PIR hiding which page is fetched and
//! (ii) all queries producing the same observable access sequence. Point (ii)
//! is a property of our protocol *implementation*, so we check it directly:
//! any two query traces must be identical, and every trace must conform to
//! the published plan.

use crate::plan::{PlanFile, QueryPlan};
use privpath_pir::{AccessTrace, FileId, ObservedEvent, TraceEvent};

/// Why a set of traces is distinguishable (a privacy bug).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// Two traces differ at an event position.
    TraceMismatch {
        /// Index of the first differing query.
        first: usize,
        /// Index of the second.
        second: usize,
        /// Position of the first differing event.
        position: usize,
    },
    /// A trace does not follow the published plan.
    PlanMismatch {
        /// Query index.
        query: usize,
        /// Explanation.
        reason: String,
    },
    /// The recorded observable stream hit its size cap
    /// ([`privpath_pir::wire::OBSERVED_CAP_BYTES`]): the events cover only
    /// a prefix of the session, so conformance cannot be certified — a
    /// truncated stream must fail loudly, not vacuously pass on the prefix.
    ObservedTruncated {
        /// Session index.
        session: usize,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::TraceMismatch {
                first,
                second,
                position,
            } => write!(
                f,
                "queries {first} and {second} are distinguishable at event {position}"
            ),
            AuditError::PlanMismatch { query, reason } => {
                write!(f, "query {query} violates the plan: {reason}")
            }
            AuditError::ObservedTruncated { session } => write!(
                f,
                "session {session}: the recorded observable stream was truncated at its \
                 cap, so wire conformance cannot be certified"
            ),
        }
    }
}

impl std::error::Error for AuditError {}

/// Checks that all traces are pairwise identical (query
/// indistinguishability). O(n) — everything is compared to the first.
pub fn assert_indistinguishable(traces: &[AccessTrace]) -> Result<(), AuditError> {
    let Some(first) = traces.first() else {
        return Ok(());
    };
    for (qi, t) in traces.iter().enumerate().skip(1) {
        if t != first {
            let position = first
                .events()
                .iter()
                .zip(t.events())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| first.events().len().min(t.events().len()));
            return Err(AuditError::TraceMismatch {
                first: 0,
                second: qi,
                position,
            });
        }
    }
    Ok(())
}

/// Checks a trace against a plan, given the file-id mapping used by the
/// engine. `file_of` maps a plan file to the concrete [`FileId`].
pub fn check_plan_conformance(
    query: usize,
    trace: &AccessTrace,
    plan: &QueryPlan,
    file_of: &dyn Fn(PlanFile) -> FileId,
) -> Result<(), AuditError> {
    let mut expected: Vec<TraceEvent> = Vec::new();
    for (round_no, round) in plan.rounds.iter().enumerate() {
        expected.push(TraceEvent::RoundStart(round_no as u32 + 1));
        for &(file, n) in &round.steps {
            match file {
                PlanFile::Header => expected.push(TraceEvent::FullDownload(file_of(file))),
                _ => {
                    for _ in 0..n {
                        expected.push(TraceEvent::PirFetch(file_of(file)));
                    }
                }
            }
        }
    }
    if trace.events() != expected.as_slice() {
        let pos = trace
            .events()
            .iter()
            .zip(&expected)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| trace.events().len().min(expected.len()));
        return Err(AuditError::PlanMismatch {
            query,
            reason: format!(
                "event {pos}: observed {:?}, plan expects {:?} (trace: {})",
                trace.events().get(pos),
                expected.get(pos),
                trace.summary()
            ),
        });
    }
    Ok(())
}

/// Checks a session's recorded **wire** view against the plan: the parsed
/// observable frame stream (see [`privpath_pir::wire::parse_observed`])
/// must be `SessionOpen`, then `queries` well-formed query blocks, then
/// optionally `SessionClose`. A query block is one `QueryOpen` (round 1)
/// followed, per plan round in order, by the round's observable activity: a
/// `Download` for a `Header` step, and `Round` exchanges — one or more, to
/// allow fixed sub-round structures like the HY continuation walk — whose
/// concatenated fetch file sequence equals the round's expanded steps.
///
/// **Retransmit runs conform too.** A session served over a lossy link
/// re-sends frames; the server records every copy (the adversary sees them
/// all). [`privpath_pir::wire::parse_observed`] reduces that raw stream to
/// the logical one this function checks: same-sequence duplicates are
/// dropped *after verifying each retransmitted frame is bit-identical to
/// its original* — a "retransmission" that differs would be new information
/// flowing to the server and is reported as an error before the events ever
/// reach this check. So a chaos run with retries conforms exactly when its
/// clean-link counterpart does, which is the wire half of Theorem 1 under
/// faults (the chaos differential suite in `tests/leakage.rs` drives this).
///
/// This is strictly coarser than the byte-identity check the leakage suite
/// also performs across sessions (identical streams trivially conform or
/// fail together); its value is anchoring the stream to the *published*
/// plan, so a uniformly-wrong implementation cannot pass.
///
/// `truncated` is the session's
/// [`observed_truncated`](privpath_pir::SessionStats::observed_truncated)
/// flag: when the server stopped recording at the stream cap, `events` is
/// only a prefix of what the adversary saw, and certifying that prefix
/// would be vacuous — the check fails with
/// [`AuditError::ObservedTruncated`] instead.
pub fn check_wire_conformance(
    session: usize,
    events: &[ObservedEvent],
    truncated: bool,
    queries: usize,
    plan: &QueryPlan,
    file_of: &dyn Fn(PlanFile) -> FileId,
) -> Result<(), AuditError> {
    if truncated {
        return Err(AuditError::ObservedTruncated { session });
    }
    let fail = |reason: String| {
        Err(AuditError::PlanMismatch {
            query: session,
            reason,
        })
    };
    let mut it = events.iter().peekable();
    if it.next() != Some(&ObservedEvent::SessionOpen) {
        return fail("stream does not start with SessionOpen".into());
    }
    for q in 0..queries {
        if it.next() != Some(&ObservedEvent::QueryOpen) {
            return fail(format!("query {q}: expected QueryOpen"));
        }
        for (round_no, round) in plan.rounds.iter().enumerate() {
            let round_no = round_no as u32 + 1;
            // expand the round's non-header steps into the expected per-fetch
            // file sequence; a Header step expects a Download event instead
            let mut expected: Vec<FileId> = Vec::new();
            for &(file, n) in &round.steps {
                match file {
                    PlanFile::Header => {
                        let want = file_of(file);
                        match it.next() {
                            Some(ObservedEvent::Download(f)) if *f == want => {}
                            other => {
                                return fail(format!(
                                    "query {q} round {round_no}: expected Download({want:?}), \
                                     got {other:?}"
                                ))
                            }
                        }
                    }
                    _ => expected.extend((0..n).map(|_| file_of(file))),
                }
            }
            // consume every Round exchange carrying this round number
            let mut got: Vec<FileId> = Vec::new();
            while let Some(ObservedEvent::Round { round: r, .. }) = it.peek() {
                if *r != round_no {
                    break;
                }
                let Some(ObservedEvent::Round { fetches, .. }) = it.next() else {
                    unreachable!("peeked a Round event");
                };
                got.extend_from_slice(fetches);
            }
            if got != expected {
                return fail(format!(
                    "query {q} round {round_no}: observed fetch files {:?} but the plan \
                     expands to {:?}",
                    got, expected
                ));
            }
        }
    }
    match it.next() {
        None => Ok(()),
        Some(ObservedEvent::SessionClose) if it.next().is_none() => Ok(()),
        Some(e) => fail(format!("unexpected trailing event {e:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::RoundSpec;

    fn trace(events: &[TraceEvent]) -> AccessTrace {
        let mut t = AccessTrace::new();
        for &e in events {
            t.push(e);
        }
        t
    }

    #[test]
    fn identical_traces_pass() {
        let a = trace(&[TraceEvent::RoundStart(1), TraceEvent::PirFetch(FileId(1))]);
        let b = a.clone();
        assert!(assert_indistinguishable(&[a, b]).is_ok());
        assert!(assert_indistinguishable(&[]).is_ok());
    }

    #[test]
    fn differing_traces_flagged_with_position() {
        let a = trace(&[TraceEvent::RoundStart(1), TraceEvent::PirFetch(FileId(1))]);
        let b = trace(&[TraceEvent::RoundStart(1), TraceEvent::PirFetch(FileId(2))]);
        let err = assert_indistinguishable(&[a, b]).unwrap_err();
        assert_eq!(
            err,
            AuditError::TraceMismatch {
                first: 0,
                second: 1,
                position: 1
            }
        );
    }

    #[test]
    fn extra_event_flagged() {
        let a = trace(&[TraceEvent::RoundStart(1)]);
        let b = trace(&[TraceEvent::RoundStart(1), TraceEvent::PirFetch(FileId(0))]);
        assert!(assert_indistinguishable(&[a, b]).is_err());
    }

    #[test]
    fn plan_conformance() {
        let plan = QueryPlan {
            rounds: vec![
                RoundSpec::one(PlanFile::Header, 0),
                RoundSpec::one(PlanFile::Data, 2),
            ],
        };
        let file_of = |f: PlanFile| match f {
            PlanFile::Header => FileId(0),
            _ => FileId(1),
        };
        let good = trace(&[
            TraceEvent::RoundStart(1),
            TraceEvent::FullDownload(FileId(0)),
            TraceEvent::RoundStart(2),
            TraceEvent::PirFetch(FileId(1)),
            TraceEvent::PirFetch(FileId(1)),
        ]);
        assert!(check_plan_conformance(0, &good, &plan, &file_of).is_ok());

        let short = trace(&[
            TraceEvent::RoundStart(1),
            TraceEvent::FullDownload(FileId(0)),
            TraceEvent::RoundStart(2),
            TraceEvent::PirFetch(FileId(1)),
        ]);
        assert!(check_plan_conformance(0, &short, &plan, &file_of).is_err());
    }

    #[test]
    fn wire_conformance_accepts_sub_round_exchanges() {
        let plan = QueryPlan {
            rounds: vec![
                RoundSpec::one(PlanFile::Header, 0),
                RoundSpec::one(PlanFile::Data, 3),
            ],
        };
        let file_of = |f: PlanFile| match f {
            PlanFile::Header => FileId(0),
            _ => FileId(1),
        };
        // round 2 split into two exchanges (a continuation walk shape)
        let events = vec![
            ObservedEvent::SessionOpen,
            ObservedEvent::QueryOpen,
            ObservedEvent::Download(FileId(0)),
            ObservedEvent::Round {
                round: 2,
                fetches: vec![FileId(1)],
            },
            ObservedEvent::Round {
                round: 2,
                fetches: vec![FileId(1), FileId(1)],
            },
            ObservedEvent::SessionClose,
        ];
        assert!(check_wire_conformance(0, &events, false, 1, &plan, &file_of).is_ok());

        // one fetch short: the concatenation no longer matches the plan
        let mut short = events.clone();
        short[4] = ObservedEvent::Round {
            round: 2,
            fetches: vec![FileId(1)],
        };
        assert!(check_wire_conformance(0, &short, false, 1, &plan, &file_of).is_err());

        // fetching the wrong file is caught even with matching counts
        let mut wrong = events;
        wrong[3] = ObservedEvent::Round {
            round: 2,
            fetches: vec![FileId(0)],
        };
        assert!(check_wire_conformance(0, &wrong, false, 1, &plan, &file_of).is_err());
    }

    #[test]
    fn truncated_observed_stream_fails_instead_of_vacuously_passing() {
        let plan = QueryPlan {
            rounds: vec![RoundSpec::one(PlanFile::Data, 1)],
        };
        let file_of = |_: PlanFile| FileId(1);
        let events = vec![
            ObservedEvent::SessionOpen,
            ObservedEvent::QueryOpen,
            ObservedEvent::Round {
                round: 1,
                fetches: vec![FileId(1)],
            },
        ];
        // the same stream certifies when complete...
        assert!(check_wire_conformance(3, &events, false, 1, &plan, &file_of).is_ok());
        // ...but a capped recording is only a prefix of what the adversary
        // saw, and must be a typed failure — even though the prefix conforms
        assert_eq!(
            check_wire_conformance(3, &events, true, 1, &plan, &file_of),
            Err(AuditError::ObservedTruncated { session: 3 })
        );
    }
}
