//! Generation-stamped hot swap: live database rebuilds with crash-contained
//! cutover.
//!
//! The paper's database is built once from a road network and then served
//! immutably — but road networks change (edge weights follow traffic), so a
//! production LBS must republish without dropping the clients mid-query.
//! [`DbRegistry`] is that subsystem:
//!
//! * it owns the **current generation** — a monotonically increasing id
//!   paired with an `Arc<Database>`;
//! * [`DbRegistry::rebuild_in_background`] runs a build closure on a worker
//!   thread under the PR 6 retry machinery ([`RetryPolicy`]: bounded
//!   attempts, doubling backoff, overall deadline) and **atomically
//!   publishes** the result on success;
//! * serving fronts stood up via [`DbRegistry::serve_wire`] /
//!   [`DbRegistry::serve_tcp`] pin every session to the generation current
//!   at its `SessionOpen`, so in-flight sessions **drain on the old
//!   generation** while new sessions open on the new one — shuffled-store
//!   epochs, plans and traces stay consistent within a generation;
//! * clients that reopen holding a stale generation id get a typed,
//!   retryable [`privpath_pir::PirError::StaleGeneration`], the signal to
//!   re-download the header and re-plan against the new generation.
//!
//! The robustness contract: a rebuild that panics, errors, or fails publish
//! validation is **contained**. The worker catches the panic, retries per
//! policy, and on exhaustion surfaces [`CoreError::RebuildFailed`] through
//! [`RebuildHandle::wait`] — the old generation never stops serving. The
//! swap differential in `tests/leakage.rs` holds the whole cutover
//! observably lossless per scheme; `tests/chaos.rs` exercises swaps under
//! link chaos and sabotaged rebuilds.

use crate::engine::{Database, QuerySession};
use crate::error::CoreError;
use crate::snapshot::StorageBackend;
use crate::Result;
use privpath_pir::{FrontConfig, GenerationSource, RetryPolicy, ServeHost, ServerFront, TcpFront};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

/// Rebuild accounting, readable at any time via [`DbRegistry::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebuildStats {
    /// Generations published through a background rebuild (manual
    /// [`DbRegistry::publish`] calls are not counted here).
    pub published: u64,
    /// Background rebuilds that exhausted their retry budget.
    pub failed: u64,
    /// Individual build attempts, across all rebuilds, including the ones
    /// that panicked or failed validation.
    pub attempts: u64,
}

/// The generation registry: owner of the current `(id, Arc<Database>)`
/// pair and the background-rebuild worker. See the module docs for the
/// swap semantics.
///
/// Ids start at 1 and only ever grow; a published generation is immutable
/// (publishing replaces the pair, never mutates the old database, whose
/// `Arc` stays alive until the last session pinned to it drains).
pub struct DbRegistry {
    current: Mutex<(u64, Arc<Database>)>,
    published: AtomicU64,
    failed: AtomicU64,
    attempts: AtomicU64,
}

impl DbRegistry {
    /// A registry serving `db` as generation 1.
    pub fn new(db: Arc<Database>) -> Arc<DbRegistry> {
        DbRegistry::with_generation(db, 1)
    }

    /// A registry serving `db` as generation `generation` (clamped to at
    /// least 1). This is how cold-start recovery resumes the generation
    /// counter where the crashed process left it, so clients holding a
    /// pre-crash generation id reconnect without a spurious staleness
    /// signal.
    pub fn with_generation(db: Arc<Database>, generation: u64) -> Arc<DbRegistry> {
        Arc::new(DbRegistry {
            current: Mutex::new((generation.max(1), db)),
            published: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            attempts: AtomicU64::new(0),
        })
    }

    /// The snapshot file name for generation `generation` inside a recovery
    /// directory: `gen-<N>.snap`.
    pub fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
        dir.join(format!("gen-{generation}.snap"))
    }

    /// Persists the current generation as `gen-<N>.snap` in `dir`
    /// (atomically — a crash mid-write never leaves a torn snapshot) and
    /// returns the generation id and path written. Pair with
    /// [`DbRegistry::recover`] for kill-and-restart durability.
    pub fn persist_current(&self, dir: &Path) -> Result<(u64, PathBuf)> {
        let (id, db) = self.current();
        std::fs::create_dir_all(dir)
            .map_err(|e| CoreError::Storage(privpath_storage::StorageError::Io(e)))?;
        let path = DbRegistry::snapshot_path(dir, id);
        db.persist(&path)?;
        Ok((id, path))
    }

    /// Cold-start recovery: scans `dir` for `gen-<N>.snap` files and
    /// reopens the **newest valid** one as generation `N`, serving through
    /// `backend`. Invalid snapshots — truncated by a crash, bit-rotted,
    /// written by a future format — are skipped, and an older valid
    /// generation wins over a newer corrupt one. Only when no snapshot in
    /// the directory opens does this fail, with the newest snapshot's typed
    /// error (or a clear "nothing to recover" when the directory has none).
    pub fn recover(dir: &Path, backend: StorageBackend) -> Result<Arc<DbRegistry>> {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| CoreError::Storage(privpath_storage::StorageError::Io(e)))?;
        let mut found: Vec<(u64, PathBuf)> = Vec::new();
        for entry in entries {
            let entry =
                entry.map_err(|e| CoreError::Storage(privpath_storage::StorageError::Io(e)))?;
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(gen) = name
                .strip_prefix("gen-")
                .and_then(|rest| rest.strip_suffix(".snap"))
                .and_then(|num| num.parse::<u64>().ok())
            else {
                continue;
            };
            found.push((gen, path));
        }
        // newest first; the first that opens cleanly wins
        found.sort_by_key(|e| std::cmp::Reverse(e.0));
        let mut last_err: Option<CoreError> = None;
        for (gen, path) in found {
            match Database::open_snapshot(&path, backend) {
                Ok(db) => return Ok(DbRegistry::with_generation(Arc::new(db), gen)),
                Err(e) => last_err = last_err.or(Some(e)),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            CoreError::Build(format!(
                "nothing to recover: no gen-<N>.snap snapshots in {}",
                dir.display()
            ))
        }))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, (u64, Arc<Database>)> {
        // A poisoned registry lock can only come from a panic between load
        // and store below — none of which run user code — so recovering the
        // guard is safe.
        self.current.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The current generation id and its database, as one consistent pair.
    pub fn current(&self) -> (u64, Arc<Database>) {
        let g = self.lock();
        (g.0, Arc::clone(&g.1))
    }

    /// The current generation id.
    pub fn generation(&self) -> u64 {
        self.lock().0
    }

    /// Rebuild accounting so far.
    pub fn stats(&self) -> RebuildStats {
        RebuildStats {
            published: self.published.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            attempts: self.attempts.load(Ordering::Relaxed),
        }
    }

    /// Atomically publishes `db` as the next generation and returns its id.
    ///
    /// Publish validation is the last line of crash containment: a rebuild
    /// that silently produced a database for the wrong scheme or an
    /// incompatible page size would poison every new session, so both are
    /// rejected here (typed [`CoreError::Build`]) and the old generation
    /// keeps serving.
    pub fn publish(&self, db: Arc<Database>) -> Result<u64> {
        let mut cur = self.lock();
        let old = &cur.1;
        if db.kind() != old.kind() {
            return Err(CoreError::Build(format!(
                "generation publish rejected: rebuilt scheme {} does not match serving scheme {}",
                db.kind().name(),
                old.kind().name()
            )));
        }
        let (new_ps, old_ps) = (db.server().spec().page_size, old.server().spec().page_size);
        if new_ps != old_ps {
            return Err(CoreError::Build(format!(
                "generation publish rejected: rebuilt page size {new_ps} does not match serving page size {old_ps}"
            )));
        }
        cur.0 += 1;
        cur.1 = db;
        Ok(cur.0)
    }

    /// Runs `build` on a worker thread and publishes the result as the next
    /// generation. The old generation serves uninterrupted throughout —
    /// including when every attempt fails.
    ///
    /// `policy` is the PR 6 retry machinery reinterpreted for rebuilds:
    /// `max_attempts` bounds build attempts, `backoff` doubles between them
    /// (capped at `backoff_cap`), and `deadline` bounds the whole rebuild.
    /// `attempt_timeout` is ignored — a build cannot be preempted mid-flight,
    /// so only the overall deadline is enforceable (checked between
    /// attempts).
    ///
    /// Containment: a `build` that panics is caught (`catch_unwind`), one
    /// that errors or fails [`DbRegistry::publish`] validation is retried,
    /// and exhaustion surfaces [`CoreError::RebuildFailed`] via
    /// [`RebuildHandle::wait`] — never a crash, never a serving gap.
    pub fn rebuild_in_background<F>(
        self: &Arc<Self>,
        mut build: F,
        policy: RetryPolicy,
    ) -> RebuildHandle
    where
        F: FnMut() -> Result<Database> + Send + 'static,
    {
        let reg = Arc::clone(self);
        let worker = thread::spawn(move || {
            let started = Instant::now();
            let max_attempts = policy.max_attempts.max(1);
            let mut backoff = policy.backoff;
            let mut last_reason = String::new();
            let mut attempts = 0u32;
            for attempt in 1..=max_attempts {
                if attempt > 1 {
                    if policy
                        .deadline
                        .is_some_and(|d| started.elapsed() + backoff >= d)
                    {
                        last_reason = format!("{last_reason} (rebuild deadline exhausted)");
                        break;
                    }
                    thread::sleep(backoff);
                    backoff = (backoff * 2).min(policy.backoff_cap.max(policy.backoff));
                }
                attempts = attempt;
                reg.attempts.fetch_add(1, Ordering::Relaxed);
                match catch_unwind(AssertUnwindSafe(&mut build)) {
                    Ok(Ok(db)) => match reg.publish(Arc::new(db)) {
                        Ok(id) => {
                            reg.published.fetch_add(1, Ordering::Relaxed);
                            return Ok(id);
                        }
                        Err(e) => last_reason = e.to_string(),
                    },
                    Ok(Err(e)) => last_reason = e.to_string(),
                    Err(panic) => last_reason = panic_reason(panic.as_ref()),
                }
            }
            reg.failed.fetch_add(1, Ordering::Relaxed);
            Err(CoreError::RebuildFailed {
                attempts,
                reason: last_reason,
            })
        });
        RebuildHandle { worker }
    }

    /// Stands up a hot-swappable wire front serving this registry: each
    /// session pins the generation current at its `SessionOpen` and drains
    /// on it across later publishes.
    pub fn serve_wire(self: &Arc<Self>) -> ServerFront {
        self.serve_wire_with(FrontConfig::default())
    }

    /// [`DbRegistry::serve_wire`] with explicit front-end knobs. Round
    /// coalescing composes with swaps: a parked batch never spans
    /// generations (the front flushes the old batch first).
    pub fn serve_wire_with(self: &Arc<Self>, cfg: FrontConfig) -> ServerFront {
        let source: Arc<dyn GenerationSource> = Arc::clone(self) as Arc<dyn GenerationSource>;
        ServerFront::spawn_swappable(source, cfg)
    }

    /// Stands up a hot-swappable TCP front (same semantics as
    /// [`DbRegistry::serve_wire`], over real loopback sockets).
    pub fn serve_tcp(self: &Arc<Self>) -> Result<TcpFront> {
        self.serve_tcp_with(FrontConfig::default())
    }

    /// [`DbRegistry::serve_tcp`] with explicit front-end knobs.
    pub fn serve_tcp_with(self: &Arc<Self>, cfg: FrontConfig) -> Result<TcpFront> {
        let source: Arc<dyn GenerationSource> = Arc::clone(self) as Arc<dyn GenerationSource>;
        Ok(TcpFront::spawn_swappable(source, cfg)?)
    }

    /// Opens a query session over `front` against the current generation,
    /// verifying the server agrees: the connect *expects* the generation
    /// this registry says is current, so a swap racing the connect surfaces
    /// as a retryable [`privpath_pir::PirError::StaleGeneration`] instead
    /// of a session silently planned against the wrong database.
    pub fn wire_session_with_seed(&self, front: &ServerFront, seed: u64) -> Result<QuerySession> {
        let (id, db) = self.current();
        let chan = front.connect_expecting(RetryPolicy::none(), id)?;
        Ok(db.session_over(seed, Box::new(chan)))
    }

    /// [`DbRegistry::wire_session_with_seed`] over a TCP front.
    pub fn tcp_session_with_seed(&self, front: &TcpFront, seed: u64) -> Result<QuerySession> {
        let (id, db) = self.current();
        let chan = front.connect_expecting(RetryPolicy::none(), id)?;
        Ok(db.session_over(seed, Box::new(chan)))
    }
}

impl GenerationSource for DbRegistry {
    fn current_generation(&self) -> (u64, Arc<dyn ServeHost + Send + Sync>) {
        let g = self.lock();
        let host: Arc<dyn ServeHost + Send + Sync> = Arc::clone(&g.1) as _;
        (g.0, host)
    }
}

fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("builder panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("builder panicked: {s}")
    } else {
        "builder panicked".into()
    }
}

/// Handle to a background rebuild started by
/// [`DbRegistry::rebuild_in_background`].
pub struct RebuildHandle {
    worker: thread::JoinHandle<Result<u64>>,
}

impl RebuildHandle {
    /// True once the worker has finished (successfully or not); `wait` will
    /// not block.
    pub fn is_finished(&self) -> bool {
        self.worker.is_finished()
    }

    /// Blocks until the rebuild resolves: the newly published generation id
    /// on success, [`CoreError::RebuildFailed`] when the retry budget ran
    /// out. The worker catches build panics itself, so a join error here
    /// means the *machinery* (not the build closure) panicked — reported as
    /// the same typed failure rather than propagated.
    pub fn wait(self) -> Result<u64> {
        self.worker.join().unwrap_or_else(|_| {
            Err(CoreError::RebuildFailed {
                attempts: 0,
                reason: "rebuild worker panicked outside the build closure".into(),
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BuildConfig;
    use crate::engine::SchemeKind;
    use privpath_graph::gen::{grid_network, GridGenConfig};
    use privpath_graph::network::RoadNetwork;
    use std::time::Duration;

    fn net() -> RoadNetwork {
        grid_network(&GridGenConfig {
            nx: 4,
            ny: 4,
            ..Default::default()
        })
    }

    fn db(net: &RoadNetwork, kind: SchemeKind) -> Arc<Database> {
        Arc::new(Database::build(net, kind, &BuildConfig::default()).unwrap())
    }

    fn quick_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            attempt_timeout: None,
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            deadline: Some(Duration::from_secs(30)),
        }
    }

    #[test]
    fn publish_increments_and_validates() {
        let n = net();
        let reg = DbRegistry::new(db(&n, SchemeKind::Ci));
        assert_eq!(reg.generation(), 1);
        let id = reg.publish(db(&n.reweighted(1), SchemeKind::Ci)).unwrap();
        assert_eq!(id, 2);
        assert_eq!(reg.generation(), 2);
        // wrong scheme: rejected, old generation keeps serving
        let err = reg.publish(db(&n, SchemeKind::Lm)).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
        assert_eq!(reg.generation(), 2);
        let (id, cur) = reg.current();
        assert_eq!(id, 2);
        assert_eq!(cur.kind(), SchemeKind::Ci);
    }

    #[test]
    fn background_rebuild_publishes_and_counts() {
        let n = net();
        let reg = DbRegistry::new(db(&n, SchemeKind::Ci));
        let rebuilt = n.reweighted(5);
        let handle = reg.rebuild_in_background(
            move || Database::build(&rebuilt, SchemeKind::Ci, &BuildConfig::default()),
            quick_retry(),
        );
        assert_eq!(handle.wait().unwrap(), 2);
        assert_eq!(reg.generation(), 2);
        assert_eq!(
            reg.stats(),
            RebuildStats {
                published: 1,
                failed: 0,
                attempts: 1
            }
        );
    }

    #[test]
    fn panicking_rebuild_is_contained_and_typed() {
        let n = net();
        let reg = DbRegistry::new(db(&n, SchemeKind::Ci));
        let handle = reg.rebuild_in_background(|| panic!("sabotaged build"), quick_retry());
        let err = handle.wait().unwrap_err();
        match err {
            CoreError::RebuildFailed {
                attempts,
                ref reason,
            } => {
                assert_eq!(attempts, 3);
                assert!(reason.contains("sabotaged build"), "{reason}");
            }
            ref other => panic!("expected RebuildFailed, got {other}"),
        }
        // containment: generation 1 still serves
        assert_eq!(reg.generation(), 1);
        let stats = reg.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.published, 0);
    }

    #[test]
    fn flaky_rebuild_succeeds_within_budget() {
        let n = net();
        let reg = DbRegistry::new(db(&n, SchemeKind::Ci));
        let rebuilt = n.reweighted(9);
        let mut tries = 0u32;
        let handle = reg.rebuild_in_background(
            move || {
                tries += 1;
                if tries < 3 {
                    Err(CoreError::Build("transient builder failure".into()))
                } else {
                    Database::build(&rebuilt, SchemeKind::Ci, &BuildConfig::default())
                }
            },
            quick_retry(),
        );
        assert_eq!(handle.wait().unwrap(), 2);
        let stats = reg.stats();
        assert_eq!(stats.published, 1);
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn rebuild_that_fails_publish_validation_is_contained() {
        let n = net();
        let reg = DbRegistry::new(db(&n, SchemeKind::Ci));
        // builds fine, but for the wrong scheme: publish validation rejects
        let wrong = n.clone();
        let handle = reg.rebuild_in_background(
            move || Database::build(&wrong, SchemeKind::Lm, &BuildConfig::default()),
            quick_retry(),
        );
        let err = handle.wait().unwrap_err();
        assert!(
            matches!(err, CoreError::RebuildFailed { attempts: 3, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("does not match"), "{err}");
        assert_eq!(reg.generation(), 1);
    }

    #[test]
    fn recover_reopens_newest_valid_snapshot_with_its_generation() {
        let n = net();
        let dir = std::env::temp_dir().join(format!("privpath-recover-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // empty directory: typed "nothing to recover"
        let err = match DbRegistry::recover(&dir, StorageBackend::Disk) {
            Err(e) => e,
            Ok(_) => panic!("recovering an empty directory must fail"),
        };
        assert!(err.to_string().contains("nothing to recover"), "{err}");

        let reg = DbRegistry::new(db(&n, SchemeKind::Ci));
        reg.publish(db(&n.reweighted(2), SchemeKind::Ci)).unwrap();
        let (id, path) = reg.persist_current(&dir).unwrap();
        assert_eq!(id, 2);
        assert!(path.ends_with("gen-2.snap"));
        let want = reg
            .current()
            .1
            .session_with_seed(3)
            .query_nodes(&n, 0, 15)
            .unwrap();

        // a newer-but-torn snapshot (crash artifact) must be skipped
        std::fs::write(DbRegistry::snapshot_path(&dir, 3), b"torn").unwrap();

        let back = DbRegistry::recover(&dir, StorageBackend::Disk).unwrap();
        assert_eq!(back.generation(), 2, "older valid beats newer corrupt");
        let got = back
            .current()
            .1
            .session_with_seed(3)
            .query_nodes(&n, 0, 15)
            .unwrap();
        assert_eq!(got.answer.cost, want.answer.cost);
        assert_eq!(got.answer.path_nodes, want.answer.path_nodes);

        // the recovered registry publishes as generation 3, not 2 again
        let id = back.publish(db(&n.reweighted(7), SchemeKind::Ci)).unwrap();
        assert_eq!(id, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn registry_serves_pinned_wire_sessions_across_a_swap() {
        let n = net();
        let reg = DbRegistry::new(db(&n, SchemeKind::Ci));
        let front = reg.serve_wire();
        let mut s1 = reg.wire_session_with_seed(&front, 7).unwrap();
        let before = s1.query_nodes(&n, 0, 15).unwrap();

        let n2 = n.reweighted(3);
        reg.publish(db(&n2, SchemeKind::Ci)).unwrap();

        // the pinned session drains on generation 1: same answer as before
        let again = s1.query_nodes(&n, 0, 15).unwrap();
        assert_eq!(again.answer.cost, before.answer.cost);
        s1.close().unwrap();

        // a reopen expecting the drained generation is typed staleness
        let err = front
            .connect_expecting(RetryPolicy::none(), 1)
            .err()
            .expect("stale expectation must fail");
        assert!(err.is_retryable(), "{err}");

        // a fresh registry session plans against generation 2
        let mut s2 = reg.wire_session_with_seed(&front, 8).unwrap();
        let after = s2.query_nodes(&n2, 0, 15).unwrap();
        assert!(after.answer.found());
        s2.close().unwrap();
        front.shutdown();
    }
}
