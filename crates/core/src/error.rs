//! Core-layer errors.

use std::fmt;

/// Errors from database construction or query processing.
#[derive(Debug)]
pub enum CoreError {
    /// PIR substrate failure (file too large for the SCP, etc.).
    Pir(privpath_pir::PirError),
    /// Storage/codec failure.
    Storage(privpath_storage::StorageError),
    /// Invalid configuration or impossible construction.
    Build(String),
    /// Query-time protocol failure.
    Query(String),
    /// A fetched page failed its checksum — the server violated the
    /// honest-but-curious assumption (fault-injection extension).
    Tampered {
        /// Which file the bad page came from.
        file: String,
    },
    /// A background database rebuild gave up: every attempt either panicked,
    /// returned an error, or produced a generation that failed publish
    /// validation. The previous generation is still serving — this error is
    /// a report, not an outage.
    RebuildFailed {
        /// Rebuild attempts performed (including the first).
        attempts: u32,
        /// Human-readable reason from the final attempt.
        reason: String,
    },
}

impl CoreError {
    /// True if the failure was a transient link fault that re-issuing might
    /// fix (delegates to [`privpath_pir::PirError::is_retryable`]). Build,
    /// query and tamper failures are never retryable.
    pub fn is_retryable(&self) -> bool {
        matches!(self, CoreError::Pir(e) if e.is_retryable())
    }

    /// True if a transport retry budget ran out — the typed outcome callers
    /// use to distinguish "the link never recovered" from a protocol
    /// violation.
    pub fn is_retry_exhausted(&self) -> bool {
        matches!(self, CoreError::Pir(e) if e.is_retry_exhausted())
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Pir(e) => write!(f, "PIR error: {e}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Build(m) => write!(f, "build error: {m}"),
            CoreError::Query(m) => write!(f, "query error: {m}"),
            CoreError::Tampered { file } => {
                write!(
                    f,
                    "page checksum failure in {file}: server tampered with data"
                )
            }
            CoreError::RebuildFailed { attempts, reason } => {
                write!(
                    f,
                    "background rebuild failed after {attempts} attempts (old generation still serving): {reason}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Pir(e) => Some(e),
            CoreError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<privpath_pir::PirError> for CoreError {
    fn from(e: privpath_pir::PirError) -> Self {
        CoreError::Pir(e)
    }
}

impl From<privpath_storage::StorageError> for CoreError {
    fn from(e: privpath_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(CoreError::Build("bad".into()).to_string().contains("bad"));
        assert!(CoreError::Tampered { file: "Fd".into() }
            .to_string()
            .contains("Fd"));
    }

    #[test]
    fn retryability_delegates_to_pir() {
        let e: CoreError = privpath_pir::PirError::Timeout("t".into()).into();
        assert!(e.is_retryable());
        assert!(!e.is_retry_exhausted());
        let e: CoreError = privpath_pir::PirError::Exhausted {
            attempts: 2,
            last: Box::new(privpath_pir::PirError::Timeout("t".into())),
        }
        .into();
        assert!(!e.is_retryable());
        assert!(e.is_retry_exhausted());
        assert!(!CoreError::Query("q".into()).is_retryable());
        assert!(!CoreError::Tampered { file: "Fd".into() }.is_retryable());
        let e = CoreError::RebuildFailed {
            attempts: 4,
            reason: "builder panicked".into(),
        };
        assert!(!e.is_retryable());
        assert!(e.to_string().contains("4 attempts"));
        assert!(e.to_string().contains("builder panicked"));
    }

    #[test]
    fn conversions() {
        let e: CoreError = privpath_pir::PirError::UnknownFile(1).into();
        assert!(matches!(e, CoreError::Pir(_)));
        let e: CoreError = privpath_storage::StorageError::Corrupt("x".into()).into();
        assert!(matches!(e, CoreError::Storage(_)));
    }
}
