//! Build-time configuration for the private shortest-path schemes.

use privpath_pir::{PirMode, SystemSpec};

/// Configuration shared by all scheme builders. Defaults match the paper's
/// full-featured setting: 4 KB pages, packed partitioning, index compression
/// on, cost-model PIR.
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// Hardware/link constants (Table 2).
    pub spec: SystemSpec,
    /// How PIR fetches are served (cost-only vs functional oblivious store).
    pub pir_mode: PirMode,
    /// Packed KD-tree partitioning (§5.6). Disabling reproduces the CI-P /
    /// PI-P ablation of Figure 8.
    pub packed_partition: bool,
    /// In-page index compression (§5.5). Disabling reproduces the CI-C /
    /// PI-C ablation of Figure 9.
    pub compress_index: bool,
    /// Disk pages per region in the region-data file — 1 for CI/PI/HY, the
    /// cluster-size parameter for PI* (§6).
    pub cluster_pages: u16,
    /// HY: region sets with more regions than this are replaced by their
    /// `G_ij` subgraph (the tuning knob of Figure 10). `None` lets HY pick
    /// the smallest threshold whose index still fits the PIR size limit.
    pub hy_threshold: Option<usize>,
    /// LM: number of landmark anchors (Figure 5's tuning knob).
    pub landmarks: usize,
    /// AF: number of arc-flag regions (bits per edge).
    pub af_regions: usize,
    /// OBF: `|S| = |T|` — the real endpoint plus `obf_decoys - 1` uniform
    /// random fakes (the x-axis of Figure 6). Must be at least 1.
    pub obf_decoys: usize,
    /// LM/AF: node pairs sampled to derive the fixed query plan, plus a
    /// safety margin. `0` derives the plan exhaustively over all node pairs
    /// (small networks only) — the paper's method.
    pub plan_sample: usize,
    /// Relative safety margin added to sampled plan maxima (ignored for
    /// exhaustive derivation).
    pub plan_margin: f64,
    /// RNG seed (dummy-request page choices, plan sampling).
    pub seed: u64,
    /// Worker threads for pre-computation (0 = all available cores).
    pub threads: usize,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            spec: SystemSpec::default(),
            pir_mode: PirMode::CostOnly,
            packed_partition: true,
            compress_index: true,
            cluster_pages: 1,
            hy_threshold: None,
            landmarks: 5,
            af_regions: 8,
            obf_decoys: 20,
            plan_sample: 256,
            plan_margin: 0.25,
            seed: 0x5eed,
            threads: 0,
        }
    }
}

impl BuildConfig {
    /// Resolved worker-thread count.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Payload bytes available in one page after the CRC-32 page trailer.
    pub fn page_payload(&self) -> usize {
        self.spec.page_size - crate::files::PAGE_CRC_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_full_featured() {
        let c = BuildConfig::default();
        assert!(c.packed_partition);
        assert!(c.compress_index);
        assert_eq!(c.cluster_pages, 1);
        assert_eq!(c.page_payload(), 4096 - 4);
        assert!(c.resolved_threads() >= 1);
    }
}
