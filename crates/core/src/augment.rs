//! The augmented graph of §5.2: "Border nodes are treated as normal network
//! nodes during pre-processing".
//!
//! Every arc is subdivided at its region crossings; the pieces' weights are
//! apportioned by the exact crossing fractions and *sum exactly to the
//! original weight* (cumulative rounding), so shortest-path costs through
//! border nodes equal costs in the original network — the property the
//! decomposition argument of §5.2 rests on.

use privpath_graph::network::RoadNetwork;
use privpath_graph::types::{Dist, EdgeId};
use privpath_partition::{Borders, RegionId};

/// Sentinel for "no node" in parent arrays.
pub const NO_NODE: u32 = u32::MAX;

/// An augmented arc: a piece of an original arc.
#[derive(Debug, Clone, Copy)]
pub struct AugArc {
    /// Head (augmented node id).
    pub to: u32,
    /// Piece weight.
    pub w: u32,
    /// The original arc this piece belongs to.
    pub orig: EdgeId,
}

/// The augmented graph: original nodes `0..n_orig`, border nodes
/// `n_orig..n_total`.
#[derive(Debug, Clone)]
pub struct AugGraph {
    /// Number of original network nodes.
    pub n_orig: usize,
    /// Total nodes (original + border).
    pub n_total: usize,
    offsets: Vec<u32>,
    arcs: Vec<AugArc>,
    /// The two regions each border node touches (indexed by border id).
    pub border_regions: Vec<(RegionId, RegionId)>,
    /// Region of the *tail* of each original arc — the region whose `Fd`
    /// page stores the arc (S_ij correctness definition, DESIGN.md §4).
    pub arc_tail_region: Vec<RegionId>,
}

impl AugGraph {
    /// Augmented node id of border node `b`.
    pub fn border_node(&self, b: u32) -> u32 {
        (self.n_orig as u32) + b
    }

    /// Number of border nodes.
    pub fn num_borders(&self) -> usize {
        self.n_total - self.n_orig
    }

    /// Arcs leaving augmented node `u`.
    pub fn arcs_from(&self, u: u32) -> &[AugArc] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.arcs[lo..hi]
    }

    /// Total augmented arcs.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Builds the augmented graph for `net` under `borders` (computed by
    /// [`privpath_partition::compute_borders`]), with `region_of_node` giving
    /// each node's region.
    pub fn build(net: &RoadNetwork, borders: &Borders, region_of_node: &[RegionId]) -> AugGraph {
        let n_orig = net.num_nodes();
        let n_borders = borders.len();
        let n_total = n_orig + n_borders;

        let mut arc_tail_region = vec![0u16; net.num_arcs()];
        for e in 0..net.num_arcs() as u32 {
            let (t, _) = net.edge_endpoints(e);
            arc_tail_region[e as usize] = region_of_node[t as usize];
        }

        // Adjacency as (tail, AugArc) pairs, then CSR-ified.
        let mut pairs: Vec<(u32, AugArc)> = Vec::with_capacity(net.num_arcs() * 2);
        for e in 0..net.num_arcs() as u32 {
            let (u, v) = net.edge_endpoints(e);
            let w = net.edge_weight(e);
            let xs = &borders.arc_crossings[e as usize];
            if xs.is_empty() {
                pairs.push((u, AugArc { to: v, w, orig: e }));
                continue;
            }
            // Piece weights by cumulative rounding: piece i spans
            // [t_{i-1}, t_i]; w_i = round(w·t_i) − round(w·t_{i-1}).
            let mut prev_node = u;
            let mut prev_round = 0u64;
            for x in xs {
                let cum = (f64::from(w) * x.t.to_f64()).round() as u64;
                let piece = (cum - prev_round) as u32;
                let bnode = n_orig as u32 + x.border;
                pairs.push((
                    prev_node,
                    AugArc {
                        to: bnode,
                        w: piece,
                        orig: e,
                    },
                ));
                prev_node = bnode;
                prev_round = cum;
            }
            let last_piece = (u64::from(w) - prev_round) as u32;
            pairs.push((
                prev_node,
                AugArc {
                    to: v,
                    w: last_piece,
                    orig: e,
                },
            ));
        }

        let mut offsets = vec![0u32; n_total + 1];
        for &(t, _) in &pairs {
            offsets[t as usize + 1] += 1;
        }
        for i in 0..n_total {
            offsets[i + 1] += offsets[i];
        }
        let mut arcs = vec![
            AugArc {
                to: 0,
                w: 0,
                orig: 0
            };
            pairs.len()
        ];
        let mut cursor = offsets.clone();
        for (t, a) in pairs {
            let slot = cursor[t as usize] as usize;
            cursor[t as usize] += 1;
            arcs[slot] = a;
        }

        AugGraph {
            n_orig,
            n_total,
            offsets,
            arcs,
            border_regions: borders.nodes.iter().map(|b| b.regions).collect(),
            arc_tail_region,
        }
    }
}

/// A shortest-path tree over the augmented graph.
#[derive(Debug)]
pub struct AugSpTree {
    /// Distance from the source per augmented node (`u64::MAX` unreachable).
    pub dist: Vec<Dist>,
    /// Parent augmented node (`NO_NODE` for source/unreachable).
    pub parent: Vec<u32>,
    /// Original arc of the tree edge into each node.
    pub parent_orig_arc: Vec<EdgeId>,
    /// Settle (pop) order — chronological, so parents always precede
    /// children even across zero-weight augmented pieces.
    pub settled: Vec<u32>,
}

/// Reusable scratch buffers for repeated Dijkstra runs (one per worker).
///
/// [`aug_dijkstra_into`] leaves its whole result here — distances, parents,
/// settle order — so the pre-computation sweep reads the tree in place
/// instead of paying three `O(n_total)` array clones per border source.
/// Entries of `dist`/`parent`/`parent_orig` are meaningful only for nodes the
/// last run touched; everything else still holds the reset sentinels.
pub struct DijkstraScratch {
    /// Tentative/final distance per augmented node.
    pub dist: Vec<Dist>,
    /// Tree parent per augmented node (`NO_NODE` = source/untouched).
    pub parent: Vec<u32>,
    /// Original arc of the tree edge into each node.
    pub parent_orig: Vec<EdgeId>,
    /// Settle (pop) order of the last run — chronological, so parents always
    /// precede children even across zero-weight augmented pieces. With
    /// border pruning this is exactly the settled *prefix*: it ends the
    /// moment the last reachable border node settles.
    pub settled: Vec<u32>,
    /// Nodes whose `dist`/`parent` entries the last run wrote (reset list).
    touched: Vec<u32>,
    heap: privpath_graph::IndexedMinHeap,
}

impl DijkstraScratch {
    /// Buffers for a graph with `n_total` augmented nodes.
    pub fn new(n_total: usize) -> Self {
        let mut heap = privpath_graph::IndexedMinHeap::new();
        heap.reset(n_total);
        DijkstraScratch {
            dist: vec![Dist::MAX; n_total],
            parent: vec![NO_NODE; n_total],
            parent_orig: vec![NO_NODE; n_total],
            settled: Vec::new(),
            touched: Vec::new(),
            heap,
        }
    }
}

/// Dijkstra over the augmented graph from `source` (augmented node id),
/// leaving the tree in `scratch` (allocation-free in steady state: every
/// buffer, including the indexed heap, is reused across runs).
///
/// With `prune_borders`, the search terminates the moment all
/// [`AugGraph::num_borders`] border nodes have settled (or the heap runs
/// dry, whichever is first — so partially reachable border sets still
/// produce the full reachable tree). The pruning is *exact* for the §5.2
/// pre-computation: in Dijkstra every tree ancestor settles before its
/// descendants, so any node settled after the last border node can never lie
/// on a source→border path — its `J` bitset stays empty and the bottom-up
/// sweep would skip it anyway. `scratch.settled` is exactly the prefix the
/// sweep must visit.
///
/// Zero-weight pieces (crossings rounding to the same cumulative weight) are
/// handled; `settled` stays a valid children-after-parents order because a
/// node can only be pushed after its final parent was popped.
pub fn aug_dijkstra_into(
    g: &AugGraph,
    source: u32,
    scratch: &mut DijkstraScratch,
    prune_borders: bool,
) {
    // Reset only what the previous run touched.
    for &u in &scratch.touched {
        scratch.dist[u as usize] = Dist::MAX;
        scratch.parent[u as usize] = NO_NODE;
        scratch.parent_orig[u as usize] = NO_NODE;
    }
    scratch.touched.clear();
    scratch.settled.clear();
    scratch.heap.reset(g.n_total);

    let border_total = g.num_borders();
    let mut borders_settled = 0usize;

    scratch.dist[source as usize] = 0;
    scratch.touched.push(source);
    scratch.heap.push(source, (0, source));

    while let Some(u) = scratch.heap.pop() {
        let d = scratch.dist[u as usize];
        scratch.settled.push(u);
        if prune_borders && u as usize >= g.n_orig {
            borders_settled += 1;
            if borders_settled == border_total {
                break; // every node past this point carries an empty J
            }
        }
        for a in g.arcs_from(u) {
            let nd = d + Dist::from(a.w);
            if nd < scratch.dist[a.to as usize] {
                if scratch.dist[a.to as usize] == Dist::MAX {
                    scratch.touched.push(a.to);
                }
                scratch.dist[a.to as usize] = nd;
                scratch.parent[a.to as usize] = u;
                scratch.parent_orig[a.to as usize] = a.orig;
                scratch.heap.push_or_decrease(a.to, (nd, a.to));
            }
        }
    }

    // Early termination leaves entries enqueued; drop them in O(remaining)
    // so the next run's reset stays cheap.
    scratch.heap.clear_drained();
}

/// Dijkstra over the augmented graph from `source`, returning an owned
/// [`AugSpTree`] (unpruned). The pre-computation hot loop uses
/// [`aug_dijkstra_into`] and reads the scratch directly; this wrapper serves
/// the differential suites and one-shot callers.
pub fn aug_dijkstra(g: &AugGraph, source: u32, scratch: &mut DijkstraScratch) -> AugSpTree {
    aug_dijkstra_into(g, source, scratch, false);
    AugSpTree {
        dist: scratch.dist.clone(),
        parent: scratch.parent.clone(),
        parent_orig_arc: scratch.parent_orig.clone(),
        settled: scratch.settled.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privpath_graph::dijkstra::{dijkstra, INFINITY};
    use privpath_graph::gen::{grid_network, GridGenConfig};
    use privpath_graph::network::NetworkBuilder;
    use privpath_graph::types::Point;
    use privpath_partition::{compute_borders, partition_packed};

    fn setup(net: &RoadNetwork, cap: usize) -> (AugGraph, privpath_partition::Partition) {
        let p = partition_packed(net, cap, &|u| net.node_record_bytes(u));
        let borders = compute_borders(net, &p.tree);
        let g = AugGraph::build(net, &borders, &p.region_of_node);
        (g, p)
    }

    #[test]
    fn piece_weights_sum_to_original() {
        let net = grid_network(&GridGenConfig {
            nx: 10,
            ny: 10,
            ..Default::default()
        });
        let (g, _) = setup(&net, 512);
        assert!(g.num_borders() > 0, "partition should create borders");
        // per original arc, sum piece weights
        let mut sums = vec![0u64; net.num_arcs()];
        for u in 0..g.n_total as u32 {
            for a in g.arcs_from(u) {
                sums[a.orig as usize] += u64::from(a.w);
            }
        }
        for e in 0..net.num_arcs() as u32 {
            assert_eq!(sums[e as usize], u64::from(net.edge_weight(e)), "arc {e}");
        }
    }

    #[test]
    fn augmented_distances_match_original_between_real_nodes() {
        let net = grid_network(&GridGenConfig {
            nx: 8,
            ny: 8,
            ..Default::default()
        });
        let (g, _) = setup(&net, 512);
        let mut scratch = DijkstraScratch::new(g.n_total);
        for s in [0u32, 17, 63] {
            let aug = aug_dijkstra(&g, s, &mut scratch);
            let orig = dijkstra(&net, s);
            for t in 0..net.num_nodes() {
                let od = orig.dist[t];
                let ad = aug.dist[t];
                if od == INFINITY {
                    assert_eq!(ad, Dist::MAX);
                } else {
                    assert_eq!(ad, od, "distance {s}->{t}");
                }
            }
        }
    }

    #[test]
    fn settled_order_has_parents_first() {
        let net = grid_network(&GridGenConfig {
            nx: 6,
            ny: 6,
            ..Default::default()
        });
        let (g, _) = setup(&net, 512);
        let mut scratch = DijkstraScratch::new(g.n_total);
        let tree = aug_dijkstra(&g, 0, &mut scratch);
        let mut pos = vec![usize::MAX; g.n_total];
        for (i, &u) in tree.settled.iter().enumerate() {
            pos[u as usize] = i;
        }
        for &u in &tree.settled {
            let p = tree.parent[u as usize];
            if p != NO_NODE {
                assert!(
                    pos[p as usize] < pos[u as usize],
                    "parent of {u} settled after it"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let net = grid_network(&GridGenConfig {
            nx: 5,
            ny: 5,
            ..Default::default()
        });
        let (g, _) = setup(&net, 512);
        let mut scratch = DijkstraScratch::new(g.n_total);
        let first = aug_dijkstra(&g, 3, &mut scratch);
        let again = aug_dijkstra(&g, 3, &mut scratch);
        assert_eq!(first.dist, again.dist);
        assert_eq!(first.parent, again.parent);
    }

    #[test]
    fn border_dijkstra_reaches_real_nodes() {
        let net = grid_network(&GridGenConfig {
            nx: 8,
            ny: 8,
            ..Default::default()
        });
        let (g, _) = setup(&net, 512);
        let mut scratch = DijkstraScratch::new(g.n_total);
        let b0 = g.border_node(0);
        let tree = aug_dijkstra(&g, b0, &mut scratch);
        let reached = (0..g.n_orig).filter(|&u| tree.dist[u] != Dist::MAX).count();
        assert_eq!(
            reached, g.n_orig,
            "border node should reach the whole (connected) network"
        );
    }

    #[test]
    fn pruned_run_is_exact_prefix_of_full_run() {
        let net = grid_network(&GridGenConfig {
            nx: 10,
            ny: 10,
            ..Default::default()
        });
        let (g, _) = setup(&net, 512);
        assert!(g.num_borders() > 2);
        let mut scratch = DijkstraScratch::new(g.n_total);
        for b in 0..g.num_borders() as u32 {
            let src = g.border_node(b);
            let full = aug_dijkstra(&g, src, &mut scratch);
            aug_dijkstra_into(&g, src, &mut scratch, true);
            // The pruned settle list is a prefix of the full one, ending at
            // the last border node.
            let k = scratch.settled.len();
            assert!(k <= full.settled.len());
            assert_eq!(scratch.settled[..], full.settled[..k], "border {b}");
            assert!(*scratch.settled.last().unwrap() as usize >= g.n_orig);
            let borders_in_prefix = scratch
                .settled
                .iter()
                .filter(|&&u| u as usize >= g.n_orig)
                .count();
            assert_eq!(borders_in_prefix, g.num_borders(), "border {b}");
            // dist/parent agree with the full tree on the settled prefix.
            for &u in &scratch.settled {
                assert_eq!(scratch.dist[u as usize], full.dist[u as usize]);
                assert_eq!(scratch.parent[u as usize], full.parent[u as usize]);
                assert_eq!(
                    scratch.parent_orig[u as usize],
                    full.parent_orig_arc[u as usize]
                );
            }
        }
    }

    #[test]
    fn one_way_arcs_subdivide_too() {
        let mut b = NetworkBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(100, 0));
        b.add_arc(0, 1, 100); // one-way
        let net = b.build();
        use privpath_partition::{KdNode, KdTree};
        let tree = KdTree::from_nodes(vec![
            KdNode::Split {
                axis: 0,
                coord2: 99,
                left: 1,
                right: 2,
            }, // x=49.5
            KdNode::Leaf { region: 0 },
            KdNode::Leaf { region: 1 },
        ]);
        let borders = compute_borders(&net, &tree);
        assert_eq!(borders.len(), 1);
        let region_of = vec![0u16, 1u16];
        let g = AugGraph::build(&net, &borders, &region_of);
        assert_eq!(g.num_arcs(), 2); // two pieces
        let mut scratch = DijkstraScratch::new(g.n_total);
        let tree = aug_dijkstra(&g, 0, &mut scratch);
        assert_eq!(tree.dist[1], 100);
        // reverse direction unreachable
        let tree_rev = aug_dijkstra(&g, 1, &mut scratch);
        assert_eq!(tree_rev.dist[0], Dist::MAX);
    }
}
