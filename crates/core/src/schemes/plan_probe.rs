//! The plan-derivation probe driver shared by the LM and AF baselines.
//!
//! Both baselines fix their query plan by *probing*: run the interleaved
//! fetch-and-search over many (or all) node pairs and take the maximum
//! number of region fetches observed ("from all possible sources s ∈ V to
//! all possible destinations t ∈ V", §4). The probes dominate baseline
//! build time at scale — exhaustive derivation is `O(n²)` searches — so
//! this driver removes the two per-probe overheads the naive loop pays:
//!
//! * **Decoded-region cache.** Every probe fetch used to re-read, unseal
//!   (CRC) and decode the region page(s) through `offline_region`. The
//!   driver receives each region decoded exactly once, as
//!   `Arc<RegionData>`; a probe fetch is a reference-count bump.
//! * **Threaded max-reduction.** Probes are independent and the plan is a
//!   pure maximum, so the pair space is striped across workers (each with
//!   its own arena + scratch) and reduced with `max` — an
//!   order-independent fold, making the derived budget identical for every
//!   thread count, including the serial reference. Sampled probe sets are
//!   drawn *before* striping, so the RNG sequence (and hence the probe
//!   set) never depends on the worker count either.

use crate::files::fd::RegionData;
use crate::subgraph::{search_af, search_lm, ClientSubgraph, QueryScratch};
use crate::Result;
use privpath_graph::network::RoadNetwork;
use privpath_graph::types::NodeId;
use privpath_partition::RegionId;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Which interleaved search drives the probes.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ProbeSearch {
    /// Landmark A* ([`search_lm`]).
    Lm,
    /// Arc-flag Dijkstra ([`search_af`]).
    Af,
}

/// The probe set.
pub(crate) enum ProbePairs {
    /// All ordered pairs `s != t` — the paper's exhaustive derivation.
    Exhaustive,
    /// A pre-drawn sample (see [`sample_pairs`]).
    Sampled(Vec<(NodeId, NodeId)>),
}

/// Draws the sampled probe set: `count` attempts, pairs with `s == t`
/// skipped — the exact draw sequence of the serial loops this replaced, so
/// sampled plans are unchanged.
pub(crate) fn sample_pairs(n: u32, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        if s != t {
            pairs.push((s, t));
        }
    }
    pairs
}

/// Source values handed out per claim in exhaustive mode (amortizes the
/// atomic increment over `stride · n` probes).
const EXHAUSTIVE_STRIDE: usize = 4;
/// Pair indices handed out per claim in sampled mode.
const SAMPLED_STRIDE: usize = 32;

/// Runs every probe in `pairs` and returns the maximum region-fetch count
/// observed (`0` when there are no probes). `cache[r]` must hold region
/// `r`'s decoded data; `threads` ≤ 1 runs inline.
pub(crate) fn probe_max(
    net: &RoadNetwork,
    region_of: &[RegionId],
    cache: &[Arc<RegionData>],
    search: ProbeSearch,
    pairs: &ProbePairs,
    threads: usize,
) -> Result<u32> {
    let n = net.num_nodes() as u32;
    let claims = match pairs {
        ProbePairs::Exhaustive => (n as usize).div_ceil(EXHAUSTIVE_STRIDE),
        ProbePairs::Sampled(v) => v.len().div_ceil(SAMPLED_STRIDE),
    };
    let threads = threads.max(1).min(claims.max(1));

    let run_stripe = |claim: usize,
                      sub: &mut ClientSubgraph,
                      scratch: &mut QueryScratch,
                      best: &mut u32|
     -> Result<()> {
        let mut probe = |s: NodeId, t: NodeId| -> Result<()> {
            let rs = region_of[s as usize];
            let rt = region_of[t as usize];
            let mut fetch = |region: u16| Ok(Arc::clone(&cache[region as usize]));
            sub.clear();
            let (ps, pt) = (net.node_point(s), net.node_point(t));
            let out = match search {
                ProbeSearch::Lm => search_lm(sub, scratch, rs, rt, ps, pt, &mut fetch)?,
                ProbeSearch::Af => search_af(sub, scratch, rs, rt, ps, pt, &mut fetch)?,
            };
            *best = (*best).max(out.fetches);
            Ok(())
        };
        match pairs {
            ProbePairs::Exhaustive => {
                let lo = claim * EXHAUSTIVE_STRIDE;
                let hi = (lo + EXHAUSTIVE_STRIDE).min(n as usize);
                for s in lo as u32..hi as u32 {
                    for t in 0..n {
                        if s != t {
                            probe(s, t)?;
                        }
                    }
                }
            }
            ProbePairs::Sampled(v) => {
                let lo = claim * SAMPLED_STRIDE;
                let hi = (lo + SAMPLED_STRIDE).min(v.len());
                for &(s, t) in &v[lo..hi] {
                    probe(s, t)?;
                }
            }
        }
        Ok(())
    };

    if threads == 1 {
        let mut sub = ClientSubgraph::new();
        let mut scratch = QueryScratch::new();
        let mut best = 0u32;
        for claim in 0..claims {
            run_stripe(claim, &mut sub, &mut scratch, &mut best)?;
        }
        return Ok(best);
    }

    let next = AtomicUsize::new(0);
    let worker = || -> Result<u32> {
        let mut sub = ClientSubgraph::new();
        let mut scratch = QueryScratch::new();
        let mut best = 0u32;
        loop {
            let claim = next.fetch_add(1, Ordering::Relaxed);
            if claim >= claims {
                return Ok(best);
            }
            run_stripe(claim, &mut sub, &mut scratch, &mut best)?;
        }
    };
    let locals: Vec<Result<u32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("probe worker panicked"))
            .collect()
    });
    // Deterministic max-reduction: `max` over the same probe set, however
    // it was striped.
    let mut best = 0u32;
    for local in locals {
        best = best.max(local?);
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_pairs_are_deterministic_and_skip_diagonal() {
        let a = sample_pairs(50, 200, 0xfeed);
        let b = sample_pairs(50, 200, 0xfeed);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(s, t)| s != t));
        assert!(a.len() <= 200);
        let c = sample_pairs(50, 200, 0xbeef);
        assert_ne!(a, c, "different seeds must draw different sets");
    }
}
